#!/usr/bin/env bash
# Configure, build and run the full test suite under AddressSanitizer
# in a separate build tree (build-<san>/). Usage: scripts/asan_check.sh
# [undefined|thread] — pass 'undefined' for UBSan or 'thread' for
# TSan (the sharded runtime is the multi-threaded path TSan covers).
set -euo pipefail
cd "$(dirname "$0")/.."

SAN="${1:-address}"
BUILD_DIR="build-${SAN}"

cmake -B "$BUILD_DIR" -S . -DHIVEMIND_SANITIZE="$SAN"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure
# Reduced-seed chaos fuzz soak: a few random fault plans through both
# engines with the oracles on — enough for the sanitizer to sweep the
# fuzz/oracle/shrinker code paths without the 200-plan CI budget.
"$BUILD_DIR"/bench/fuzz_soak --seed 11 --runs 10

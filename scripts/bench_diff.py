#!/usr/bin/env python3
"""Diff a fresh bench JSON against the checked-in baseline.

Understands two shapes, keyed on the "bench" field:

 - BENCH_scenario_shards.json (the default, no "bench" key): rows by
   shard count from bench/fig11_scenario_shards.
 - BENCH_fleet.json ("bench": "fleet"): capacity rows by worker count
   plus interference curves from bench/fleet_capacity.

CI re-runs the bench on every push; this script compares the fresh
JSON with the baseline committed at the repo root and flags wall-time
regressions.

Gate: the single-worker / shards=1 row — the only row whose wall time
is meaningful on any host, single-core runners included — may not
regress by more than --max-regress (default 15%) against the baseline
row. Checksum drift between the two files is reported as informational
only: the baseline may legitimately change when the simulation does
(the bench's own exit code already enforces invariance *within* a
run).

Exit codes: 0 ok / no comparable data, 1 wall-time regression, 2 bad
input. CI wires this as a non-blocking annotation step
(continue-on-error), so a slow runner warns rather than blocks; run it
locally before re-baselining to catch real regressions.

Inside GitHub Actions (GITHUB_ACTIONS=true) findings are emitted as
::warning:: / ::error:: workflow commands so they surface as PR
annotations.
"""

import argparse
import json
import os
import sys


def in_actions() -> bool:
    return os.environ.get("GITHUB_ACTIONS") == "true"


def note(kind: str, msg: str) -> None:
    """Print msg, doubled as a workflow command under CI."""
    print(f"[{kind}] {msg}")
    if in_actions() and kind in ("warning", "error"):
        print(f"::{kind} file=BENCH_scenario_shards.json::{msg}")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        note("error", f"cannot read {path}: {e}")
        sys.exit(2)


def row_at(doc: dict, shards: int, key: str = "rows"):
    for row in doc.get(key, []):
        if row.get("shards") == shards:
            return row
    return None


def cap_at(doc: dict, workers: int):
    for row in doc.get("capacity", []):
        if row.get("workers") == workers:
            return row
    return None


def diff_fleet(base: dict, fresh: dict, max_regress: float) -> int:
    """BENCH_fleet.json: gate on the workers=1 capacity row."""
    if fresh.get("all_checksums_match_solo") is not True:
        note("error", "fresh fleet run reports "
                      "all_checksums_match_solo != true")
        return 1
    if fresh.get("swarms") != base.get("swarms"):
        note("warning",
             f"swarm count changed {base.get('swarms')} -> "
             f"{fresh.get('swarms')}; comparing anyway")

    print(f"{'workers':>7} {'base wall(s)':>13} {'fresh wall(s)':>14} "
          f"{'delta':>8}")
    for row in fresh.get("capacity", []):
        b = cap_at(base, row.get("workers"))
        if b is None or not b.get("wall_s"):
            continue
        delta = row["wall_s"] / b["wall_s"] - 1.0
        print(f"{row['workers']:>7} {b['wall_s']:>13.2f} "
              f"{row['wall_s']:>14.2f} {delta:>+7.1%}")

    b1, f1 = cap_at(base, 1), cap_at(fresh, 1)
    if b1 is None or f1 is None or not b1.get("wall_s"):
        note("warning", "no comparable workers=1 row; nothing to gate")
        return 0
    regress = f1["wall_s"] / b1["wall_s"] - 1.0
    if regress > max_regress:
        note("error",
             f"workers=1 fleet wall time regressed {regress:+.1%} "
             f"({b1['wall_s']:.2f}s -> {f1['wall_s']:.2f}s), over the "
             f"{max_regress:.0%} budget")
        return 1
    note("ok", f"workers=1 fleet wall time {regress:+.1%} vs baseline "
               f"(budget {max_regress:.0%})")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="BENCH_scenario_shards.json",
                    help="checked-in baseline JSON (repo root)")
    ap.add_argument("--fresh", required=True,
                    help="freshly generated JSON from this run")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="allowed fractional wall-time regression at "
                         "shards=1 (default 0.15)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    if fresh.get("bench") == "fleet":
        return diff_fleet(base, fresh, args.max_regress)

    # Hard correctness signals from the fresh run come first: a bench
    # that already failed its own gates should not hide behind noise.
    if fresh.get("checksum_invariant") is not True:
        note("error", "fresh run reports checksum_invariant != true")
        return 1
    # The rover row rides the same invariance contract (the key is
    # absent in baselines predating the rover port).
    if ("rover_checksum_invariant" in fresh
            and fresh.get("rover_checksum_invariant") is not True):
        note("error", "fresh run reports rover_checksum_invariant != true")
        return 1

    print(f"{'shards':>6} {'base wall(s)':>13} {'fresh wall(s)':>14} "
          f"{'delta':>8}")
    for row in fresh.get("rows", []):
        b = row_at(base, row.get("shards"))
        if b is None or not b.get("wall_s"):
            continue
        delta = row["wall_s"] / b["wall_s"] - 1.0
        print(f"{row['shards']:>6} {b['wall_s']:>13.2f} "
              f"{row['wall_s']:>14.2f} {delta:>+7.1%}")

    if fresh.get("rover_rows"):
        print(f"\n{'rover':>6} {'base wall(s)':>13} {'fresh wall(s)':>14} "
              f"{'delta':>8}")
        for row in fresh.get("rover_rows", []):
            b = row_at(base, row.get("shards"), key="rover_rows")
            if b is None or not b.get("wall_s"):
                continue
            delta = row["wall_s"] / b["wall_s"] - 1.0
            print(f"{row['shards']:>6} {b['wall_s']:>13.2f} "
                  f"{row['wall_s']:>14.2f} {delta:>+7.1%}")

    b1, f1 = row_at(base, 1), row_at(fresh, 1)
    if b1 is None or f1 is None or not b1.get("wall_s"):
        note("warning", "no comparable shards=1 row; nothing to gate")
        return 0

    if b1.get("checksum") != f1.get("checksum"):
        note("warning",
             f"shards=1 checksum changed {b1.get('checksum')} -> "
             f"{f1.get('checksum')} (expected only when the simulation "
             "itself changed; re-baseline deliberately)")

    regress = f1["wall_s"] / b1["wall_s"] - 1.0
    if regress > args.max_regress:
        note("error",
             f"shards=1 wall time regressed {regress:+.1%} "
             f"({b1['wall_s']:.2f}s -> {f1['wall_s']:.2f}s), over the "
             f"{args.max_regress:.0%} budget")
        return 1

    note("ok", f"shards=1 wall time {regress:+.1%} vs baseline "
               f"(budget {args.max_regress:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_kernel.dir/micro_sim_kernel.cpp.o"
  "CMakeFiles/micro_sim_kernel.dir/micro_sim_kernel.cpp.o.d"
  "micro_sim_kernel"
  "micro_sim_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig05b_elasticity.
# This may be replaced when dependencies are built.

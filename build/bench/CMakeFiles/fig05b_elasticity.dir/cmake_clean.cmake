file(REMOVE_RECURSE
  "CMakeFiles/fig05b_elasticity.dir/fig05b_elasticity.cpp.o"
  "CMakeFiles/fig05b_elasticity.dir/fig05b_elasticity.cpp.o.d"
  "fig05b_elasticity"
  "fig05b_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05b_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig04_centralized_vs_distributed.
# This may be replaced when dependencies are built.

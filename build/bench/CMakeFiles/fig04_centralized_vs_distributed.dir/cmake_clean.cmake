file(REMOVE_RECURSE
  "CMakeFiles/fig04_centralized_vs_distributed.dir/fig04_centralized_vs_distributed.cpp.o"
  "CMakeFiles/fig04_centralized_vs_distributed.dir/fig04_centralized_vs_distributed.cpp.o.d"
  "fig04_centralized_vs_distributed"
  "fig04_centralized_vs_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_centralized_vs_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

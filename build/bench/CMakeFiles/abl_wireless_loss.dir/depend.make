# Empty dependencies file for abl_wireless_loss.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_wireless_loss.dir/abl_wireless_loss.cpp.o"
  "CMakeFiles/abl_wireless_loss.dir/abl_wireless_loss.cpp.o.d"
  "abl_wireless_loss"
  "abl_wireless_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wireless_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

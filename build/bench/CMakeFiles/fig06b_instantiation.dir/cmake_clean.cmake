file(REMOVE_RECURSE
  "CMakeFiles/fig06b_instantiation.dir/fig06b_instantiation.cpp.o"
  "CMakeFiles/fig06b_instantiation.dir/fig06b_instantiation.cpp.o.d"
  "fig06b_instantiation"
  "fig06b_instantiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06b_instantiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

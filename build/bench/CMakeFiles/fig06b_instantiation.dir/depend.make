# Empty dependencies file for fig06b_instantiation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig03a_latency_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig03a_latency_breakdown.dir/fig03a_latency_breakdown.cpp.o"
  "CMakeFiles/fig03a_latency_breakdown.dir/fig03a_latency_breakdown.cpp.o.d"
  "fig03a_latency_breakdown"
  "fig03a_latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03a_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

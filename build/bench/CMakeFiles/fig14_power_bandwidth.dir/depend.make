# Empty dependencies file for fig14_power_bandwidth.
# This may be replaced when dependencies are built.

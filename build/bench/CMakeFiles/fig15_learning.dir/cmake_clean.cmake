file(REMOVE_RECURSE
  "CMakeFiles/fig15_learning.dir/fig15_learning.cpp.o"
  "CMakeFiles/fig15_learning.dir/fig15_learning.cpp.o.d"
  "fig15_learning"
  "fig15_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

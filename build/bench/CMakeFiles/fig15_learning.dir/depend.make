# Empty dependencies file for fig15_learning.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for abl_failover.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_failover.dir/abl_failover.cpp.o"
  "CMakeFiles/abl_failover.dir/abl_failover.cpp.o.d"
  "abl_failover"
  "abl_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

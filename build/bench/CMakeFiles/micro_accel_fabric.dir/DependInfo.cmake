
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_accel_fabric.cpp" "bench/CMakeFiles/micro_accel_fabric.dir/micro_accel_fabric.cpp.o" "gcc" "bench/CMakeFiles/micro_accel_fabric.dir/micro_accel_fabric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for micro_accel_fabric.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/micro_accel_fabric.dir/micro_accel_fabric.cpp.o"
  "CMakeFiles/micro_accel_fabric.dir/micro_accel_fabric.cpp.o.d"
  "micro_accel_fabric"
  "micro_accel_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_accel_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig05a_serverless_concurrency.
# This may be replaced when dependencies are built.

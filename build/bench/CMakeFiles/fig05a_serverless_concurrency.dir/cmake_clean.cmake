file(REMOVE_RECURSE
  "CMakeFiles/fig05a_serverless_concurrency.dir/fig05a_serverless_concurrency.cpp.o"
  "CMakeFiles/fig05a_serverless_concurrency.dir/fig05a_serverless_concurrency.cpp.o.d"
  "fig05a_serverless_concurrency"
  "fig05a_serverless_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05a_serverless_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

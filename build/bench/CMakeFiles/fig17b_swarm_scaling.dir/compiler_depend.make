# Empty compiler generated dependencies file for fig17b_swarm_scaling.
# This may be replaced when dependencies are built.

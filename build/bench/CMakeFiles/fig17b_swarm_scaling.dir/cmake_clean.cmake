file(REMOVE_RECURSE
  "CMakeFiles/fig17b_swarm_scaling.dir/fig17b_swarm_scaling.cpp.o"
  "CMakeFiles/fig17b_swarm_scaling.dir/fig17b_swarm_scaling.cpp.o.d"
  "fig17b_swarm_scaling"
  "fig17b_swarm_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17b_swarm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_recovery.
# This may be replaced when dependencies are built.

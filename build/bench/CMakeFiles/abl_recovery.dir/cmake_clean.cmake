file(REMOVE_RECURSE
  "CMakeFiles/abl_recovery.dir/abl_recovery.cpp.o"
  "CMakeFiles/abl_recovery.dir/abl_recovery.cpp.o.d"
  "abl_recovery"
  "abl_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig01_treasure_hunt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig01_treasure_hunt.dir/fig01_treasure_hunt.cpp.o"
  "CMakeFiles/fig01_treasure_hunt.dir/fig01_treasure_hunt.cpp.o.d"
  "fig01_treasure_hunt"
  "fig01_treasure_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_treasure_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/abl_dedup_quality.dir/abl_dedup_quality.cpp.o"
  "CMakeFiles/abl_dedup_quality.dir/abl_dedup_quality.cpp.o.d"
  "abl_dedup_quality"
  "abl_dedup_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dedup_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

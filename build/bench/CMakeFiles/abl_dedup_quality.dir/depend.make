# Empty dependencies file for abl_dedup_quality.
# This may be replaced when dependencies are built.

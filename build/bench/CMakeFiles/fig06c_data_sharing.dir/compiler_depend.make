# Empty compiler generated dependencies file for fig06c_data_sharing.
# This may be replaced when dependencies are built.

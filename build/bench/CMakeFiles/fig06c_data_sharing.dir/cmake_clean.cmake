file(REMOVE_RECURSE
  "CMakeFiles/fig06c_data_sharing.dir/fig06c_data_sharing.cpp.o"
  "CMakeFiles/fig06c_data_sharing.dir/fig06c_data_sharing.cpp.o.d"
  "fig06c_data_sharing"
  "fig06c_data_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06c_data_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

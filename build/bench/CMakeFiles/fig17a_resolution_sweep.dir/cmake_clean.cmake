file(REMOVE_RECURSE
  "CMakeFiles/fig17a_resolution_sweep.dir/fig17a_resolution_sweep.cpp.o"
  "CMakeFiles/fig17a_resolution_sweep.dir/fig17a_resolution_sweep.cpp.o.d"
  "fig17a_resolution_sweep"
  "fig17a_resolution_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17a_resolution_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

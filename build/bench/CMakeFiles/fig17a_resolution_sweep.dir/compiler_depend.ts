# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig17a_resolution_sweep.

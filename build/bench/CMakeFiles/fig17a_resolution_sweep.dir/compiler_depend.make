# Empty compiler generated dependencies file for fig17a_resolution_sweep.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig05c_fault_tolerance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig05c_fault_tolerance.dir/fig05c_fault_tolerance.cpp.o"
  "CMakeFiles/fig05c_fault_tolerance.dir/fig05c_fault_tolerance.cpp.o.d"
  "fig05c_fault_tolerance"
  "fig05c_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05c_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig16_robocars.dir/fig16_robocars.cpp.o"
  "CMakeFiles/fig16_robocars.dir/fig16_robocars.cpp.o.d"
  "fig16_robocars"
  "fig16_robocars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_robocars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

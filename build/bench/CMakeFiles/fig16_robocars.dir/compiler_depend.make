# Empty compiler generated dependencies file for fig16_robocars.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_chaos.dir/abl_chaos.cpp.o"
  "CMakeFiles/abl_chaos.dir/abl_chaos.cpp.o.d"
  "abl_chaos"
  "abl_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

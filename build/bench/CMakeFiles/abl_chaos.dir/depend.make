# Empty dependencies file for abl_chaos.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig03b_network_saturation.dir/fig03b_network_saturation.cpp.o"
  "CMakeFiles/fig03b_network_saturation.dir/fig03b_network_saturation.cpp.o.d"
  "fig03b_network_saturation"
  "fig03b_network_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03b_network_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

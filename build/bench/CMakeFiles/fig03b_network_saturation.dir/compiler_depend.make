# Empty compiler generated dependencies file for fig03b_network_saturation.
# This may be replaced when dependencies are built.

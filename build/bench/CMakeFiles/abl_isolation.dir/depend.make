# Empty dependencies file for abl_isolation.
# This may be replaced when dependencies are built.

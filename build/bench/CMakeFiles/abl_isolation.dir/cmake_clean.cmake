file(REMOVE_RECURSE
  "CMakeFiles/abl_isolation.dir/abl_isolation.cpp.o"
  "CMakeFiles/abl_isolation.dir/abl_isolation.cpp.o.d"
  "abl_isolation"
  "abl_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

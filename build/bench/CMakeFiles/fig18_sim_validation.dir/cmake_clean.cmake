file(REMOVE_RECURSE
  "CMakeFiles/fig18_sim_validation.dir/fig18_sim_validation.cpp.o"
  "CMakeFiles/fig18_sim_validation.dir/fig18_sim_validation.cpp.o.d"
  "fig18_sim_validation"
  "fig18_sim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_sim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig18_sim_validation.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig06a_variability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06a_variability.dir/fig06a_variability.cpp.o"
  "CMakeFiles/fig06a_variability.dir/fig06a_variability.cpp.o.d"
  "fig06a_variability"
  "fig06a_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06a_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

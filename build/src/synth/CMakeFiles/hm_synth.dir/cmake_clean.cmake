file(REMOVE_RECURSE
  "CMakeFiles/hm_synth.dir/api_synth.cpp.o"
  "CMakeFiles/hm_synth.dir/api_synth.cpp.o.d"
  "CMakeFiles/hm_synth.dir/cost_model.cpp.o"
  "CMakeFiles/hm_synth.dir/cost_model.cpp.o.d"
  "CMakeFiles/hm_synth.dir/explorer.cpp.o"
  "CMakeFiles/hm_synth.dir/explorer.cpp.o.d"
  "CMakeFiles/hm_synth.dir/placement.cpp.o"
  "CMakeFiles/hm_synth.dir/placement.cpp.o.d"
  "libhm_synth.a"
  "libhm_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhm_synth.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/api_synth.cpp" "src/synth/CMakeFiles/hm_synth.dir/api_synth.cpp.o" "gcc" "src/synth/CMakeFiles/hm_synth.dir/api_synth.cpp.o.d"
  "/root/repo/src/synth/cost_model.cpp" "src/synth/CMakeFiles/hm_synth.dir/cost_model.cpp.o" "gcc" "src/synth/CMakeFiles/hm_synth.dir/cost_model.cpp.o.d"
  "/root/repo/src/synth/explorer.cpp" "src/synth/CMakeFiles/hm_synth.dir/explorer.cpp.o" "gcc" "src/synth/CMakeFiles/hm_synth.dir/explorer.cpp.o.d"
  "/root/repo/src/synth/placement.cpp" "src/synth/CMakeFiles/hm_synth.dir/placement.cpp.o" "gcc" "src/synth/CMakeFiles/hm_synth.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsl/CMakeFiles/hm_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

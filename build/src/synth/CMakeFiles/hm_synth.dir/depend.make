# Empty dependencies file for hm_synth.
# This may be replaced when dependencies are built.

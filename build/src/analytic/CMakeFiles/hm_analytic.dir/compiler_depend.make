# Empty compiler generated dependencies file for hm_analytic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhm_analytic.a"
)

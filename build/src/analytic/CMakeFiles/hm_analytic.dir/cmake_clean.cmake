file(REMOVE_RECURSE
  "CMakeFiles/hm_analytic.dir/model.cpp.o"
  "CMakeFiles/hm_analytic.dir/model.cpp.o.d"
  "CMakeFiles/hm_analytic.dir/queueing.cpp.o"
  "CMakeFiles/hm_analytic.dir/queueing.cpp.o.d"
  "libhm_analytic.a"
  "libhm_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

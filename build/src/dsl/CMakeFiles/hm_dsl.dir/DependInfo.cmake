
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/graph.cpp" "src/dsl/CMakeFiles/hm_dsl.dir/graph.cpp.o" "gcc" "src/dsl/CMakeFiles/hm_dsl.dir/graph.cpp.o.d"
  "/root/repo/src/dsl/parser.cpp" "src/dsl/CMakeFiles/hm_dsl.dir/parser.cpp.o" "gcc" "src/dsl/CMakeFiles/hm_dsl.dir/parser.cpp.o.d"
  "/root/repo/src/dsl/scenarios.cpp" "src/dsl/CMakeFiles/hm_dsl.dir/scenarios.cpp.o" "gcc" "src/dsl/CMakeFiles/hm_dsl.dir/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for hm_dsl.
# This may be replaced when dependencies are built.

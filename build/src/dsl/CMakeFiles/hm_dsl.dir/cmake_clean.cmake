file(REMOVE_RECURSE
  "CMakeFiles/hm_dsl.dir/graph.cpp.o"
  "CMakeFiles/hm_dsl.dir/graph.cpp.o.d"
  "CMakeFiles/hm_dsl.dir/parser.cpp.o"
  "CMakeFiles/hm_dsl.dir/parser.cpp.o.d"
  "CMakeFiles/hm_dsl.dir/scenarios.cpp.o"
  "CMakeFiles/hm_dsl.dir/scenarios.cpp.o.d"
  "libhm_dsl.a"
  "libhm_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

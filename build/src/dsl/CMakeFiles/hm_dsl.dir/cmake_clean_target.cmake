file(REMOVE_RECURSE
  "libhm_dsl.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/deployment.cpp" "src/platform/CMakeFiles/hm_platform.dir/deployment.cpp.o" "gcc" "src/platform/CMakeFiles/hm_platform.dir/deployment.cpp.o.d"
  "/root/repo/src/platform/graph_runner.cpp" "src/platform/CMakeFiles/hm_platform.dir/graph_runner.cpp.o" "gcc" "src/platform/CMakeFiles/hm_platform.dir/graph_runner.cpp.o.d"
  "/root/repo/src/platform/metrics.cpp" "src/platform/CMakeFiles/hm_platform.dir/metrics.cpp.o" "gcc" "src/platform/CMakeFiles/hm_platform.dir/metrics.cpp.o.d"
  "/root/repo/src/platform/options.cpp" "src/platform/CMakeFiles/hm_platform.dir/options.cpp.o" "gcc" "src/platform/CMakeFiles/hm_platform.dir/options.cpp.o.d"
  "/root/repo/src/platform/scenario.cpp" "src/platform/CMakeFiles/hm_platform.dir/scenario.cpp.o" "gcc" "src/platform/CMakeFiles/hm_platform.dir/scenario.cpp.o.d"
  "/root/repo/src/platform/single_phase.cpp" "src/platform/CMakeFiles/hm_platform.dir/single_phase.cpp.o" "gcc" "src/platform/CMakeFiles/hm_platform.dir/single_phase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/hm_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/hm_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/hm_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/hm_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/hm_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

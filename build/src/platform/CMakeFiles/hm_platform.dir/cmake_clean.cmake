file(REMOVE_RECURSE
  "CMakeFiles/hm_platform.dir/deployment.cpp.o"
  "CMakeFiles/hm_platform.dir/deployment.cpp.o.d"
  "CMakeFiles/hm_platform.dir/graph_runner.cpp.o"
  "CMakeFiles/hm_platform.dir/graph_runner.cpp.o.d"
  "CMakeFiles/hm_platform.dir/metrics.cpp.o"
  "CMakeFiles/hm_platform.dir/metrics.cpp.o.d"
  "CMakeFiles/hm_platform.dir/options.cpp.o"
  "CMakeFiles/hm_platform.dir/options.cpp.o.d"
  "CMakeFiles/hm_platform.dir/scenario.cpp.o"
  "CMakeFiles/hm_platform.dir/scenario.cpp.o.d"
  "CMakeFiles/hm_platform.dir/single_phase.cpp.o"
  "CMakeFiles/hm_platform.dir/single_phase.cpp.o.d"
  "libhm_platform.a"
  "libhm_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

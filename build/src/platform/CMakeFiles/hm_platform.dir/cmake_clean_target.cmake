file(REMOVE_RECURSE
  "libhm_platform.a"
)

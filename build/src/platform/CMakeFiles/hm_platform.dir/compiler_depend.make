# Empty compiler generated dependencies file for hm_platform.
# This may be replaced when dependencies are built.

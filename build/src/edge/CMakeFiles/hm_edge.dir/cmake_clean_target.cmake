file(REMOVE_RECURSE
  "libhm_edge.a"
)

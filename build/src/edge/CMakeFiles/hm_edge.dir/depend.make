# Empty dependencies file for hm_edge.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hm_edge.dir/device.cpp.o"
  "CMakeFiles/hm_edge.dir/device.cpp.o.d"
  "libhm_edge.a"
  "libhm_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hm_sim.dir/rng.cpp.o"
  "CMakeFiles/hm_sim.dir/rng.cpp.o.d"
  "CMakeFiles/hm_sim.dir/simulator.cpp.o"
  "CMakeFiles/hm_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hm_sim.dir/stats.cpp.o"
  "CMakeFiles/hm_sim.dir/stats.cpp.o.d"
  "libhm_sim.a"
  "libhm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

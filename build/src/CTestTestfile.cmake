# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("geo")
subdirs("net")
subdirs("cloud")
subdirs("edge")
subdirs("apps")
subdirs("dsl")
subdirs("synth")
subdirs("core")
subdirs("fault")
subdirs("platform")
subdirs("analytic")

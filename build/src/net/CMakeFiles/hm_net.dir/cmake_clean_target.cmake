file(REMOVE_RECURSE
  "libhm_net.a"
)

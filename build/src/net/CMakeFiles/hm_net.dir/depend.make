# Empty dependencies file for hm_net.
# This may be replaced when dependencies are built.

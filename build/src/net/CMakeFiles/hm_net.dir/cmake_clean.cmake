file(REMOVE_RECURSE
  "CMakeFiles/hm_net.dir/link.cpp.o"
  "CMakeFiles/hm_net.dir/link.cpp.o.d"
  "CMakeFiles/hm_net.dir/rpc.cpp.o"
  "CMakeFiles/hm_net.dir/rpc.cpp.o.d"
  "CMakeFiles/hm_net.dir/topology.cpp.o"
  "CMakeFiles/hm_net.dir/topology.cpp.o.d"
  "libhm_net.a"
  "libhm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

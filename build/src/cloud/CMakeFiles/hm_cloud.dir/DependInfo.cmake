
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/datastore.cpp" "src/cloud/CMakeFiles/hm_cloud.dir/datastore.cpp.o" "gcc" "src/cloud/CMakeFiles/hm_cloud.dir/datastore.cpp.o.d"
  "/root/repo/src/cloud/faas.cpp" "src/cloud/CMakeFiles/hm_cloud.dir/faas.cpp.o" "gcc" "src/cloud/CMakeFiles/hm_cloud.dir/faas.cpp.o.d"
  "/root/repo/src/cloud/iaas.cpp" "src/cloud/CMakeFiles/hm_cloud.dir/iaas.cpp.o" "gcc" "src/cloud/CMakeFiles/hm_cloud.dir/iaas.cpp.o.d"
  "/root/repo/src/cloud/sharing.cpp" "src/cloud/CMakeFiles/hm_cloud.dir/sharing.cpp.o" "gcc" "src/cloud/CMakeFiles/hm_cloud.dir/sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for hm_cloud.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hm_cloud.dir/datastore.cpp.o"
  "CMakeFiles/hm_cloud.dir/datastore.cpp.o.d"
  "CMakeFiles/hm_cloud.dir/faas.cpp.o"
  "CMakeFiles/hm_cloud.dir/faas.cpp.o.d"
  "CMakeFiles/hm_cloud.dir/iaas.cpp.o"
  "CMakeFiles/hm_cloud.dir/iaas.cpp.o.d"
  "CMakeFiles/hm_cloud.dir/sharing.cpp.o"
  "CMakeFiles/hm_cloud.dir/sharing.cpp.o.d"
  "libhm_cloud.a"
  "libhm_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

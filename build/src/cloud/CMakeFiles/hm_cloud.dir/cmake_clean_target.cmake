file(REMOVE_RECURSE
  "libhm_cloud.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/appspec.cpp" "src/apps/CMakeFiles/hm_apps.dir/appspec.cpp.o" "gcc" "src/apps/CMakeFiles/hm_apps.dir/appspec.cpp.o.d"
  "/root/repo/src/apps/detection.cpp" "src/apps/CMakeFiles/hm_apps.dir/detection.cpp.o" "gcc" "src/apps/CMakeFiles/hm_apps.dir/detection.cpp.o.d"
  "/root/repo/src/apps/embedding.cpp" "src/apps/CMakeFiles/hm_apps.dir/embedding.cpp.o" "gcc" "src/apps/CMakeFiles/hm_apps.dir/embedding.cpp.o.d"
  "/root/repo/src/apps/workload.cpp" "src/apps/CMakeFiles/hm_apps.dir/workload.cpp.o" "gcc" "src/apps/CMakeFiles/hm_apps.dir/workload.cpp.o.d"
  "/root/repo/src/apps/world.cpp" "src/apps/CMakeFiles/hm_apps.dir/world.cpp.o" "gcc" "src/apps/CMakeFiles/hm_apps.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/hm_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

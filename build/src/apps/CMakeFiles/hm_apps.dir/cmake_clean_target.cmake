file(REMOVE_RECURSE
  "libhm_apps.a"
)

# Empty dependencies file for hm_apps.
# This may be replaced when dependencies are built.

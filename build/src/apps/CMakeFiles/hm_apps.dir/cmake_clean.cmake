file(REMOVE_RECURSE
  "CMakeFiles/hm_apps.dir/appspec.cpp.o"
  "CMakeFiles/hm_apps.dir/appspec.cpp.o.d"
  "CMakeFiles/hm_apps.dir/detection.cpp.o"
  "CMakeFiles/hm_apps.dir/detection.cpp.o.d"
  "CMakeFiles/hm_apps.dir/embedding.cpp.o"
  "CMakeFiles/hm_apps.dir/embedding.cpp.o.d"
  "CMakeFiles/hm_apps.dir/workload.cpp.o"
  "CMakeFiles/hm_apps.dir/workload.cpp.o.d"
  "CMakeFiles/hm_apps.dir/world.cpp.o"
  "CMakeFiles/hm_apps.dir/world.cpp.o.d"
  "libhm_apps.a"
  "libhm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

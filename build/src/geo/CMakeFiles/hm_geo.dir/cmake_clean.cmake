file(REMOVE_RECURSE
  "CMakeFiles/hm_geo.dir/astar.cpp.o"
  "CMakeFiles/hm_geo.dir/astar.cpp.o.d"
  "CMakeFiles/hm_geo.dir/coverage.cpp.o"
  "CMakeFiles/hm_geo.dir/coverage.cpp.o.d"
  "CMakeFiles/hm_geo.dir/grid.cpp.o"
  "CMakeFiles/hm_geo.dir/grid.cpp.o.d"
  "CMakeFiles/hm_geo.dir/mapping.cpp.o"
  "CMakeFiles/hm_geo.dir/mapping.cpp.o.d"
  "CMakeFiles/hm_geo.dir/maze.cpp.o"
  "CMakeFiles/hm_geo.dir/maze.cpp.o.d"
  "CMakeFiles/hm_geo.dir/motion.cpp.o"
  "CMakeFiles/hm_geo.dir/motion.cpp.o.d"
  "libhm_geo.a"
  "libhm_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

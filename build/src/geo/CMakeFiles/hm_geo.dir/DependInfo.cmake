
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/astar.cpp" "src/geo/CMakeFiles/hm_geo.dir/astar.cpp.o" "gcc" "src/geo/CMakeFiles/hm_geo.dir/astar.cpp.o.d"
  "/root/repo/src/geo/coverage.cpp" "src/geo/CMakeFiles/hm_geo.dir/coverage.cpp.o" "gcc" "src/geo/CMakeFiles/hm_geo.dir/coverage.cpp.o.d"
  "/root/repo/src/geo/grid.cpp" "src/geo/CMakeFiles/hm_geo.dir/grid.cpp.o" "gcc" "src/geo/CMakeFiles/hm_geo.dir/grid.cpp.o.d"
  "/root/repo/src/geo/mapping.cpp" "src/geo/CMakeFiles/hm_geo.dir/mapping.cpp.o" "gcc" "src/geo/CMakeFiles/hm_geo.dir/mapping.cpp.o.d"
  "/root/repo/src/geo/maze.cpp" "src/geo/CMakeFiles/hm_geo.dir/maze.cpp.o" "gcc" "src/geo/CMakeFiles/hm_geo.dir/maze.cpp.o.d"
  "/root/repo/src/geo/motion.cpp" "src/geo/CMakeFiles/hm_geo.dir/motion.cpp.o" "gcc" "src/geo/CMakeFiles/hm_geo.dir/motion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

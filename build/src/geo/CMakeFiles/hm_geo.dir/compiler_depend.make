# Empty compiler generated dependencies file for hm_geo.
# This may be replaced when dependencies are built.

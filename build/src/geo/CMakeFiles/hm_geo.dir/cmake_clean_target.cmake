file(REMOVE_RECURSE
  "libhm_geo.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hm_core.dir/controller.cpp.o"
  "CMakeFiles/hm_core.dir/controller.cpp.o.d"
  "CMakeFiles/hm_core.dir/heartbeat.cpp.o"
  "CMakeFiles/hm_core.dir/heartbeat.cpp.o.d"
  "CMakeFiles/hm_core.dir/learning.cpp.o"
  "CMakeFiles/hm_core.dir/learning.cpp.o.d"
  "CMakeFiles/hm_core.dir/load_balancer.cpp.o"
  "CMakeFiles/hm_core.dir/load_balancer.cpp.o.d"
  "CMakeFiles/hm_core.dir/scheduler.cpp.o"
  "CMakeFiles/hm_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/hm_core.dir/trace.cpp.o"
  "CMakeFiles/hm_core.dir/trace.cpp.o.d"
  "libhm_core.a"
  "libhm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/hm_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/hm_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/heartbeat.cpp" "src/core/CMakeFiles/hm_core.dir/heartbeat.cpp.o" "gcc" "src/core/CMakeFiles/hm_core.dir/heartbeat.cpp.o.d"
  "/root/repo/src/core/learning.cpp" "src/core/CMakeFiles/hm_core.dir/learning.cpp.o" "gcc" "src/core/CMakeFiles/hm_core.dir/learning.cpp.o.d"
  "/root/repo/src/core/load_balancer.cpp" "src/core/CMakeFiles/hm_core.dir/load_balancer.cpp.o" "gcc" "src/core/CMakeFiles/hm_core.dir/load_balancer.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/hm_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/hm_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/hm_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/hm_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/hm_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hm_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

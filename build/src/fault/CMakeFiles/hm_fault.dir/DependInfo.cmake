
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/chaos.cpp" "src/fault/CMakeFiles/hm_fault.dir/chaos.cpp.o" "gcc" "src/fault/CMakeFiles/hm_fault.dir/chaos.cpp.o.d"
  "/root/repo/src/fault/metrics.cpp" "src/fault/CMakeFiles/hm_fault.dir/metrics.cpp.o" "gcc" "src/fault/CMakeFiles/hm_fault.dir/metrics.cpp.o.d"
  "/root/repo/src/fault/plan.cpp" "src/fault/CMakeFiles/hm_fault.dir/plan.cpp.o" "gcc" "src/fault/CMakeFiles/hm_fault.dir/plan.cpp.o.d"
  "/root/repo/src/fault/retry.cpp" "src/fault/CMakeFiles/hm_fault.dir/retry.cpp.o" "gcc" "src/fault/CMakeFiles/hm_fault.dir/retry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/hm_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hm_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

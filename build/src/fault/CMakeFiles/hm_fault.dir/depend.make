# Empty dependencies file for hm_fault.
# This may be replaced when dependencies are built.

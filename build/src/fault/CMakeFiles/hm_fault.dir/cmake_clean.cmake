file(REMOVE_RECURSE
  "CMakeFiles/hm_fault.dir/chaos.cpp.o"
  "CMakeFiles/hm_fault.dir/chaos.cpp.o.d"
  "CMakeFiles/hm_fault.dir/metrics.cpp.o"
  "CMakeFiles/hm_fault.dir/metrics.cpp.o.d"
  "CMakeFiles/hm_fault.dir/plan.cpp.o"
  "CMakeFiles/hm_fault.dir/plan.cpp.o.d"
  "CMakeFiles/hm_fault.dir/retry.cpp.o"
  "CMakeFiles/hm_fault.dir/retry.cpp.o.d"
  "libhm_fault.a"
  "libhm_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhm_fault.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hivemind_cli.dir/hivemind_cli.cpp.o"
  "CMakeFiles/hivemind_cli.dir/hivemind_cli.cpp.o.d"
  "hivemind_cli"
  "hivemind_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivemind_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hivemind_cli.
# This may be replaced when dependencies are built.

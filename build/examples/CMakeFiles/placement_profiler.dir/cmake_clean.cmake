file(REMOVE_RECURSE
  "CMakeFiles/placement_profiler.dir/placement_profiler.cpp.o"
  "CMakeFiles/placement_profiler.dir/placement_profiler.cpp.o.d"
  "placement_profiler"
  "placement_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for placement_profiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/robocar_treasure_hunt.dir/robocar_treasure_hunt.cpp.o"
  "CMakeFiles/robocar_treasure_hunt.dir/robocar_treasure_hunt.cpp.o.d"
  "robocar_treasure_hunt"
  "robocar_treasure_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robocar_treasure_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for robocar_treasure_hunt.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for scenario_items.
# This may be replaced when dependencies are built.

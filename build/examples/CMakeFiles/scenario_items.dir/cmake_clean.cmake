file(REMOVE_RECURSE
  "CMakeFiles/scenario_items.dir/scenario_items.cpp.o"
  "CMakeFiles/scenario_items.dir/scenario_items.cpp.o.d"
  "scenario_items"
  "scenario_items.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_items.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/scenario_people.dir/scenario_people.cpp.o"
  "CMakeFiles/scenario_people.dir/scenario_people.cpp.o.d"
  "scenario_people"
  "scenario_people.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_people.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for scenario_people.
# This may be replaced when dependencies are built.

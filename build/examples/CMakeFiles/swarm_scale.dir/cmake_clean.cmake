file(REMOVE_RECURSE
  "CMakeFiles/swarm_scale.dir/swarm_scale.cpp.o"
  "CMakeFiles/swarm_scale.dir/swarm_scale.cpp.o.d"
  "swarm_scale"
  "swarm_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

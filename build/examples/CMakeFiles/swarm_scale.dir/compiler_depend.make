# Empty compiler generated dependencies file for swarm_scale.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/swarm_scale.cpp" "examples/CMakeFiles/swarm_scale.dir/swarm_scale.cpp.o" "gcc" "examples/CMakeFiles/swarm_scale.dir/swarm_scale.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/hm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/hm_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/hm_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/hm_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/hm_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/hm_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/hm_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Scenario A — Stationary Items, end to end (Sec. 2.1).
 *
 * A swarm of drones sweeps a field looking for tennis balls; the
 * platform decides where recognition runs. Compares the four
 * platforms on the same world and seed.
 *
 * Usage: scenario_items [devices] [targets] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "platform/scenario.hpp"

using namespace hivemind;

int
main(int argc, char** argv)
{
    std::size_t devices = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
    std::size_t targets = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 15;
    std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::StationaryItems;
    sc.field_size_m = 96.0;
    sc.targets = targets;
    sc.time_cap = 1500 * sim::kSecond;

    platform::DeploymentConfig dep;
    dep.devices = devices;
    dep.seed = seed;

    std::printf("Scenario A: locating %zu items with %zu drones "
                "(seed %llu)\n\n",
                targets, devices, static_cast<unsigned long long>(seed));
    std::printf("%-20s %12s %9s %12s %10s %9s\n", "Platform", "completion",
                "found", "battery avg", "bandwidth", "tasks");
    for (auto opt : {platform::PlatformOptions::centralized_iaas(),
                     platform::PlatformOptions::centralized_faas(),
                     platform::PlatformOptions::distributed_edge(),
                     platform::PlatformOptions::hivemind()}) {
        platform::RunMetrics m = platform::run_scenario(sc, opt, dep);
        std::printf("%-20s %11.1fs %8.0f%% %11.1f%% %7.1fMBs %9llu%s\n",
                    opt.label.c_str(), m.completion_s,
                    100.0 * m.goal_fraction, m.battery_pct.mean(),
                    m.bandwidth_MBps.mean(),
                    static_cast<unsigned long long>(m.tasks_completed),
                    m.completed ? "" : "  [did not finish]");
    }
    std::printf("\nHiveMind finishes first because its on-board pre-filter "
                "keeps the wireless links clear while recognition fans out "
                "across the serverless cluster (Secs. 4.2-4.5).\n");
    return 0;
}

/**
 * @file
 * Tour of the HiveMind DSL text front-end and the compiler path:
 * parse a .hm document, validate it, enumerate placements, and print
 * the C++ API stubs the synthesis engine generates (Sec. 4.1).
 *
 * Usage: dsl_tour [file.hm]   (runs a built-in document by default)
 */

#include <cstdio>

#include "dsl/parser.hpp"
#include "synth/api_synth.hpp"
#include "synth/explorer.hpp"

using namespace hivemind;

namespace {

const char* kBuiltinDoc = R"(# Crop-monitoring application (weed mapping).
taskgraph crop_monitor
constraint exec_time=60s cost=500

task collectMultispectral out=rawScans sensor work=6ms output=4MB
task stitchOrtho in=rawScans out=orthomosaic work=180ms input=4MB output=6MB parallelism=4
task weedSegmentation in=orthomosaic out=weedMask work=420ms input=6MB output=1MB parallelism=8 arg.model=unet_small
task sprayPlanner in=weedMask out=sprayPlan work=60ms input=1MB output=64KB
task actuateSprayer in=sprayPlan actuator work=10ms input=64KB

edge collectMultispectral stitchOrtho
edge stitchOrtho weedSegmentation
edge weedSegmentation sprayPlanner
edge sprayPlanner actuateSprayer

serial stitchOrtho weedSegmentation
learn weedSegmentation global
persist weedSegmentation
persist sprayPlanner
restore sprayPlanner checkpoint
priority actuateSprayer 9
)";

}  // namespace

int
main(int argc, char** argv)
{
    dsl::ParseResult parsed = argc > 1 ? dsl::parse_file(argv[1])
                                       : dsl::parse(kBuiltinDoc);
    if (!parsed.ok()) {
        for (const std::string& e : parsed.errors)
            std::fprintf(stderr, "parse error: %s\n", e.c_str());
        return 1;
    }
    dsl::TaskGraph& graph = parsed.graph;
    std::printf("Parsed task graph '%s' with %zu tasks.\n",
                graph.name().c_str(), graph.size());

    auto errors = graph.validate();
    if (!errors.empty()) {
        for (const std::string& e : errors)
            std::fprintf(stderr, "validation: %s\n", e.c_str());
        return 1;
    }
    std::printf("Validation: OK. Topological order:");
    auto topo = graph.topo_order();
    for (const std::string& t : *topo)
        std::printf(" %s", t.c_str());
    std::printf("\n\n");

    // Placement exploration (Sec. 4.2).
    auto placements = synth::enumerate_placements(graph);
    std::printf("Meaningful execution models: %zu (sensor source and "
                "actuator pinned to the edge)\n",
                placements.size());
    synth::PlacementExplorer explorer(graph, synth::CostModelParams{});
    synth::Objective objective;
    objective.w_latency = 1.0;
    objective.w_energy = 0.02;
    auto best = explorer.best(objective);
    std::printf("Selected: %s\n  est. latency %.0f ms | device energy "
                "%.1f J | cloud cost %.1f | crossing %.1f MB\n\n",
                synth::describe(best.placement).c_str(),
                1000.0 * best.estimate.latency_s,
                best.estimate.edge_energy_j, best.estimate.cloud_cost,
                static_cast<double>(best.estimate.crossing_bytes) / 1e6);

    std::printf("Latency/energy Pareto frontier:\n");
    for (const auto& r : explorer.pareto()) {
        std::printf("  %7.0f ms  %7.1f J  %s\n",
                    1000.0 * r.estimate.latency_s,
                    r.estimate.edge_energy_j,
                    synth::describe(r.placement).c_str());
    }

    // API synthesis (Sec. 4.1).
    auto stubs = synth::synthesize_apis(graph, best.placement,
                                        /*use_remote_memory=*/true);
    std::printf("\nGenerated cross-task API header "
                "(%zu stubs):\n------------------------------------------"
                "--------------------------\n%s",
                stubs.size(),
                synth::render_api_header(graph, stubs).c_str());
    return 0;
}

/**
 * @file
 * The robotic-car port (Sec. 5.5): 14 rovers run a Treasure Hunt —
 * drive to a panel, photograph it, wait for image-to-text results
 * that reveal the next leg — and a wall-follower Maze traversal.
 *
 * Usage: robocar_treasure_hunt [rovers] [legs] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "platform/scenario.hpp"

using namespace hivemind;

int
main(int argc, char** argv)
{
    std::size_t rovers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 14;
    int legs = argc > 2 ? std::atoi(argv[2]) : 5;
    std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

    platform::DeploymentConfig dep;
    dep.devices = rovers;
    dep.device_spec = edge::DeviceSpec::rover();
    dep.seed = seed;

    for (auto [name, kind] :
         {std::pair{"Treasure Hunt", platform::ScenarioKind::TreasureHunt},
          std::pair{"Maze", platform::ScenarioKind::RoverMaze}}) {
        platform::ScenarioConfig sc;
        sc.kind = kind;
        sc.field_size_m = 60.0;
        sc.course_legs = legs;
        sc.maze_side = 9;
        sc.time_cap = 2500 * sim::kSecond;

        std::printf("%s with %zu rovers:\n", name, rovers);
        std::printf("%-20s %12s %12s %12s\n", "Platform", "job p50 (s)",
                    "job p99 (s)", "battery avg");
        for (auto opt : {platform::PlatformOptions::centralized_faas(),
                         platform::PlatformOptions::distributed_edge(),
                         platform::PlatformOptions::hivemind()}) {
            platform::RunMetrics m = platform::run_scenario(sc, opt, dep);
            std::printf("%-20s %12.1f %12.1f %11.1f%%%s\n",
                        opt.label.c_str(), m.job_latency_s.median(),
                        m.job_latency_s.p99(), m.battery_pct.mean(),
                        m.completed ? "" : "  [did not finish]");
        }
        std::printf("\n");
    }
    std::printf("The cars are less power-constrained than the drones, so "
                "short planning steps stay on-board while the heavy "
                "image-to-text work is offloaded (Sec. 5.5).\n");
    return 0;
}

/**
 * @file
 * Scenario B — Moving People, end to end (Sec. 2.1, Listing 3).
 *
 * The swarm must count unique people moving through a field:
 * recognition feeds FaceNet-style deduplication, and the continuous-
 * learning mode controls how fast the recognition models improve
 * (Sec. 4.6, Fig. 15). Shows the task graph actually used, then runs
 * the scenario on HiveMind under each retraining mode.
 *
 * Usage: scenario_people [people] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "dsl/scenarios.hpp"
#include "platform/scenario.hpp"

using namespace hivemind;

int
main(int argc, char** argv)
{
    std::size_t people = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 25;
    std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

    // The Listing 3 task graph this scenario executes.
    dsl::TaskGraph graph = dsl::scenario_b_graph();
    std::printf("Task graph '%s' (%zu tasks):", graph.name().c_str(),
                graph.size());
    auto topo = graph.topo_order();
    for (const std::string& t : *topo)
        std::printf(" %s", t.c_str());
    std::printf("\n  obstacleAvoidance pinned: %s | faceRecognition "
                "learning: %s\n\n",
                dsl::to_string(graph.task("obstacleAvoidance").placement),
                dsl::to_string(graph.task("faceRecognition").learn));

    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::MovingPeople;
    sc.field_size_m = 96.0;
    sc.targets = people;
    sc.time_cap = 1500 * sim::kSecond;

    platform::DeploymentConfig dep;
    dep.devices = 16;
    dep.seed = seed;

    std::printf("Counting %zu moving people with 16 drones on HiveMind:\n",
                people);
    std::printf("%-8s %12s %9s %10s %9s %9s\n", "Learn", "completion",
                "counted", "correct%", "FN%", "FP%");
    for (apps::RetrainMode mode :
         {apps::RetrainMode::None, apps::RetrainMode::Self,
          apps::RetrainMode::Swarm}) {
        sc.retrain = mode;
        platform::RunMetrics m = platform::run_scenario(
            sc, platform::PlatformOptions::hivemind(), dep);
        std::printf("%-8s %11.1fs %8.0f%% %10.1f %9.2f %9.2f%s\n",
                    apps::to_string(mode), m.completion_s,
                    100.0 * m.goal_fraction, m.detect_correct_pct,
                    m.detect_fn_pct, m.detect_fp_pct,
                    m.completed ? "" : "  [did not finish]");
    }

    std::printf("\nAnd the distributed baseline for contrast "
                "(the paper's runs left this scenario incomplete):\n");
    sc.retrain = apps::RetrainMode::Swarm;
    platform::RunMetrics distr = platform::run_scenario(
        sc, platform::PlatformOptions::distributed_edge(), dep);
    std::printf("Distributed edge: %.1f s, counted %.0f%%, battery "
                "%.1f%%%s\n",
                distr.completion_s, 100.0 * distr.goal_fraction,
                distr.battery_pct.mean(),
                distr.completed ? "" : "  [did not finish]");
    return 0;
}

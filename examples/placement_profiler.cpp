/**
 * @file
 * Measurement-backed placement exploration (Sec. 4.2, Fig. 8).
 *
 * The paper's synthesis engine "profiles the application on the
 * target swarm" for each meaningful execution model and presents the
 * performance/power results for selection. This example does exactly
 * that: it takes the Listing 3 task graph, profiles every candidate
 * placement with a short simulation of the real platform (the generic
 * task-graph runner), and prints the measured table next to the
 * analytic cost model's predictions.
 *
 * Usage: placement_profiler [activations_per_device_hz]
 */

#include <cstdio>
#include <cstdlib>

#include "dsl/scenarios.hpp"
#include "platform/graph_runner.hpp"

using namespace hivemind;

int
main(int argc, char** argv)
{
    double rate = argc > 1 ? std::atof(argv[1]) : 0.2;

    dsl::TaskGraph graph = dsl::scenario_b_graph();
    std::printf("Profiling all placements of '%s' on the simulated swarm "
                "(%.2f activations/device/s)...\n\n",
                graph.name().c_str(), rate);

    platform::DeploymentConfig dep;
    dep.devices = 8;
    dep.servers = 6;
    dep.cores_per_server = 20;
    dep.seed = 42;
    platform::GraphJobConfig job;
    job.duration = 30 * sim::kSecond;
    job.activation_rate_hz = rate;

    synth::PlacementExplorer measured(graph, synth::CostModelParams{});
    measured.set_profiler(platform::make_simulation_profiler(
        platform::PlatformOptions::hivemind(), dep, job));
    synth::PlacementExplorer predicted(graph, synth::CostModelParams{});

    auto measured_all = measured.explore_all();
    auto predicted_all = predicted.explore_all();

    std::printf("%-58s %12s %12s\n", "placement", "measured", "predicted");
    std::printf("%-58s %12s %12s\n", "", "lat (ms)", "lat (ms)");
    for (std::size_t i = 0; i < measured_all.size(); ++i) {
        std::printf("%-58s %12.0f %12.0f\n",
                    synth::describe(measured_all[i].placement).c_str(),
                    1000.0 * measured_all[i].estimate.latency_s,
                    1000.0 * predicted_all[i].estimate.latency_s);
    }

    auto best = measured.best(synth::Objective{});
    std::printf("\nSelected (measured, latency objective): %s\n",
                synth::describe(best.placement).c_str());
    std::printf("  latency %.0f ms | energy %.2f J/activation\n",
                1000.0 * best.estimate.latency_s,
                best.estimate.edge_energy_j);
    std::printf("\nThe analytic model ranks the same placements without "
                "running anything; HiveMind uses it to prune, then "
                "profiles the survivors (Sec. 4.2).\n");
    return 0;
}

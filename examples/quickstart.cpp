/**
 * @file
 * Quickstart: the 60-second tour of the HiveMind library.
 *
 * 1. Declare a two-tier task graph in the DSL (sense at the edge,
 *    recognize wherever it is cheapest).
 * 2. Let program synthesis enumerate the meaningful placements and
 *    pick one under a latency objective (Sec. 4.2).
 * 3. Run a face-recognition workload on a simulated 8-drone swarm
 *    under the full HiveMind platform and print what happened.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "apps/appspec.hpp"
#include "dsl/graph.hpp"
#include "platform/single_phase.hpp"
#include "synth/api_synth.hpp"
#include "synth/explorer.hpp"

using namespace hivemind;

int
main()
{
    // --- 1. Declare the application as a task graph ---
    dsl::TaskGraph graph("quickstart");
    dsl::TaskDef collect;
    collect.name = "collectImage";
    collect.data_out = "frames";
    collect.sensor_source = true;  // Must run on the drone.
    collect.work_core_ms = 5.0;
    collect.output_bytes = 2u << 20;
    graph.add_task(collect);

    dsl::TaskDef recognize;
    recognize.name = "recognize";
    recognize.data_in = "frames";
    recognize.data_out = "detections";
    recognize.work_core_ms = 350.0;
    recognize.parallelism = 8;
    recognize.input_bytes = 2u << 20;
    recognize.output_bytes = 20u << 10;
    graph.add_task(recognize);
    graph.add_edge("collectImage", "recognize");
    graph.persist("recognize");

    auto errors = graph.validate();
    if (!errors.empty()) {
        std::fprintf(stderr, "graph invalid: %s\n", errors[0].c_str());
        return 1;
    }
    std::printf("Task graph '%s': %zu tasks, valid.\n",
                graph.name().c_str(), graph.size());

    // --- 2. Explore placements ---
    synth::PlacementExplorer explorer(graph, synth::CostModelParams{});
    auto best = explorer.best(synth::Objective{});
    std::printf("Placement search picked: %s  (est. latency %.0f ms, "
                "device energy %.1f J/task)\n",
                synth::describe(best.placement).c_str(),
                1000.0 * best.estimate.latency_s,
                best.estimate.edge_energy_j);
    auto stubs = synth::synthesize_apis(graph, best.placement, true);
    std::printf("Synthesized %zu cross-task API(s); first: %s (%s)\n",
                stubs.size(), stubs[0].name.c_str(),
                synth::to_string(stubs[0].kind));

    // --- 3. Run it on the simulated swarm ---
    platform::DeploymentConfig dep;
    dep.devices = 8;
    dep.servers = 6;
    dep.cores_per_server = 20;
    dep.seed = 1;
    platform::JobConfig job;
    job.duration = 30 * sim::kSecond;
    platform::RunMetrics m = platform::run_single_phase(
        apps::app_by_id("S1"), platform::PlatformOptions::hivemind(), dep,
        job);
    std::printf("\nRan S1 (%s) for 30 s on 8 drones under HiveMind:\n",
                apps::app_by_id("S1").name.c_str());
    std::printf("  tasks completed : %llu\n",
                static_cast<unsigned long long>(m.tasks_completed));
    std::printf("  latency p50/p99 : %.0f / %.0f ms\n",
                1000.0 * m.task_latency_s.median(),
                1000.0 * m.task_latency_s.p99());
    std::printf("  air bandwidth   : %.1f MB/s\n",
                m.bandwidth_MBps.mean());
    std::printf("  battery consumed: %.2f %% per drone (compute+radio)\n",
                m.battery_pct.mean());
    std::printf("  cold/warm starts: %llu / %llu\n",
                static_cast<unsigned long long>(m.cold_starts),
                static_cast<unsigned long long>(m.warm_starts));
    return 0;
}

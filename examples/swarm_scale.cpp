/**
 * @file
 * Swarm scaling study (Sec. 5.6): how far does centralized
 * coordination stretch, and why does HiveMind keep going?
 *
 * Runs the detailed DES at a few sizes, then sweeps to 8192 devices
 * with the analytic queueing-network model, printing the bottleneck
 * station utilization that explains each regime.
 *
 * Usage: swarm_scale [max_des_devices]
 */

#include <cstdio>
#include <cstdlib>

#include "analytic/model.hpp"
#include "platform/scenario.hpp"

using namespace hivemind;

int
main(int argc, char** argv)
{
    std::size_t max_des = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;

    std::printf("Detailed DES, Scenario A, infrastructure scaled with the "
                "swarm:\n");
    std::printf("%-8s %-20s %12s %10s %12s\n", "drones", "platform",
                "completion", "found", "bandwidth");
    for (std::size_t n = 16; n <= max_des; n *= 2) {
        for (auto opt : {platform::PlatformOptions::centralized_faas(),
                         platform::PlatformOptions::hivemind()}) {
            platform::ScenarioConfig sc;
            sc.kind = platform::ScenarioKind::StationaryItems;
            sc.field_size_m = 96.0 * std::sqrt(static_cast<double>(n) / 16.0);
            sc.targets = 15 * n / 16;
            sc.time_cap = 900 * sim::kSecond;
            platform::DeploymentConfig dep;
            dep.devices = n;
            dep.scale_infra = true;
            dep.seed = 42;
            platform::RunMetrics m = platform::run_scenario(sc, opt, dep);
            std::printf("%-8zu %-20s %11.1fs %9.0f%% %9.1fMBs%s\n", n,
                        opt.label.c_str(), m.completion_s,
                        100.0 * m.goal_fraction, m.bandwidth_MBps.mean(),
                        m.completed ? "" : " [cap]");
        }
    }

    std::printf("\nAnalytic queueing model to 8192 devices (validated "
                "against the DES, see bench/fig18):\n");
    std::printf("%-8s %14s %14s %16s %16s\n", "drones", "centr p99(s)",
                "hive p99(s)", "centr bottleneck", "hive bottleneck");
    for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 8192u}) {
        analytic::AnalyticInput in;
        in.devices = n;
        in.scale_infra = true;
        in.task_rate_hz = 1.0;
        in.input_bytes = 16u << 20;
        in.work_core_ms = 220.0;
        in.parallelism = 8;
        analytic::AnalyticInput centr = in;
        centr.apply_platform(platform::PlatformOptions::centralized_faas());
        analytic::AnalyticInput hive = in;
        hive.apply_platform(platform::PlatformOptions::hivemind());
        auto c = analytic::evaluate(centr);
        auto h = analytic::evaluate(hive);
        std::printf("%-8zu %14.2f %14.2f %15.0f%% %15.0f%%\n", n,
                    c.tail_latency_s, h.tail_latency_s,
                    100.0 * c.max_utilization, 100.0 * h.max_utilization);
    }
    std::printf("\nThe centralized stack pins its single controller and "
                "the full-stream wireless links; HiveMind's pre-filtered "
                "uplink and replicated schedulers stay below saturation — "
                "\"centralized platforms can be both scalable and "
                "performant\" (Sec. 1).\n");
    return 0;
}

/**
 * @file
 * hivemind_cli — command-line driver for the simulation stack.
 *
 * Run any single-phase application or end-to-end scenario on any
 * platform from the shell, without writing C++:
 *
 *   hivemind_cli job S1 --platform hivemind --devices 16 --duration 120
 *   hivemind_cli scenario A --platform centralized --devices 32
 *   hivemind_cli scenario treasure --platform distributed --rover
 *   hivemind_cli list
 *
 * Options:
 *   --platform {hivemind|centralized|iaas|distributed}   (default hivemind)
 *   --devices N        swarm size                        (default 16)
 *   --duration S       job window, seconds               (default 120)
 *   --seed N           RNG seed                          (default 42)
 *   --targets N        scenario items/people             (default 15/25)
 *   --rover            use the robotic-car device preset
 *   --scale-infra      scale routers/servers with the swarm
 *   --motion           include motion energy in job battery numbers
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "platform/scenario.hpp"
#include "platform/single_phase.hpp"

using namespace hivemind;

namespace {

struct CliOptions
{
    std::string mode;
    std::string what;
    std::string platform_name = "hivemind";
    std::size_t devices = 16;
    double duration_s = 120.0;
    std::uint64_t seed = 42;
    std::size_t targets = 0;
    bool rover = false;
    bool scale_infra = false;
    bool motion = false;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: hivemind_cli job <S1..S10> [options]\n"
        "       hivemind_cli scenario <A|B|treasure|maze> [options]\n"
        "       hivemind_cli list\n"
        "options: --platform hivemind|centralized|iaas|distributed\n"
        "         --devices N --duration S --seed N --targets N\n"
        "         --rover --scale-infra --motion\n");
    return 2;
}

bool
parse(int argc, char** argv, CliOptions& o)
{
    if (argc < 2)
        return false;
    o.mode = argv[1];
    int i = 2;
    if (o.mode == "job" || o.mode == "scenario") {
        if (argc < 3)
            return false;
        o.what = argv[2];
        i = 3;
    }
    for (; i < argc; ++i) {
        std::string a = argv[i];
        auto need_value = [&](const char* name) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--platform") {
            const char* v = need_value("--platform");
            if (!v)
                return false;
            o.platform_name = v;
        } else if (a == "--devices") {
            const char* v = need_value("--devices");
            if (!v)
                return false;
            o.devices = std::strtoul(v, nullptr, 10);
        } else if (a == "--duration") {
            const char* v = need_value("--duration");
            if (!v)
                return false;
            o.duration_s = std::atof(v);
        } else if (a == "--seed") {
            const char* v = need_value("--seed");
            if (!v)
                return false;
            o.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--targets") {
            const char* v = need_value("--targets");
            if (!v)
                return false;
            o.targets = std::strtoul(v, nullptr, 10);
        } else if (a == "--rover") {
            o.rover = true;
        } else if (a == "--scale-infra") {
            o.scale_infra = true;
        } else if (a == "--motion") {
            o.motion = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            return false;
        }
    }
    return true;
}

bool
pick_platform(const std::string& name, platform::PlatformOptions& out)
{
    if (name == "hivemind")
        out = platform::PlatformOptions::hivemind();
    else if (name == "centralized")
        out = platform::PlatformOptions::centralized_faas();
    else if (name == "iaas")
        out = platform::PlatformOptions::centralized_iaas();
    else if (name == "distributed")
        out = platform::PlatformOptions::distributed_edge();
    else
        return false;
    return true;
}

void
print_metrics(const platform::RunMetrics& m, bool scenario)
{
    if (scenario) {
        std::printf("completion        : %.1f s%s\n", m.completion_s,
                    m.completed ? "" : "  [goal not reached]");
        std::printf("goal fraction     : %.0f %%\n",
                    100.0 * m.goal_fraction);
    }
    std::printf("tasks completed   : %llu  (shed %llu)\n",
                static_cast<unsigned long long>(m.tasks_completed),
                static_cast<unsigned long long>(m.tasks_shed));
    std::printf("task latency      : p50 %.0f ms | p99 %.0f ms\n",
                1000.0 * m.task_latency_s.median(),
                1000.0 * m.task_latency_s.p99());
    std::printf("stage shares (med): net %.0f | mgmt %.0f | data %.0f | "
                "exec %.0f ms\n",
                1000.0 * m.network_s.median(), 1000.0 * m.mgmt_s.median(),
                1000.0 * m.data_s.median(), 1000.0 * m.exec_s.median());
    std::printf("battery           : mean %.1f %% | max %.1f %%\n",
                m.battery_pct.mean(), m.battery_pct.max());
    std::printf("air bandwidth     : mean %.1f MB/s | p99 %.1f MB/s\n",
                m.bandwidth_MBps.mean(), m.bandwidth_MBps.p99());
    std::printf("container starts  : cold %llu | warm %llu\n",
                static_cast<unsigned long long>(m.cold_starts),
                static_cast<unsigned long long>(m.warm_starts));
    if (m.faults > 0 || m.respawns > 0) {
        std::printf("faults/respawns   : %llu / %llu\n",
                    static_cast<unsigned long long>(m.faults),
                    static_cast<unsigned long long>(m.respawns));
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    CliOptions o;
    if (!parse(argc, argv, o))
        return usage();

    if (o.mode == "list") {
        std::printf("Applications:\n");
        for (const apps::AppSpec& a : apps::all_apps()) {
            std::printf("  %-4s %-22s work %5.0f ms  rate %.2f Hz  in "
                        "%5.1f MB%s\n",
                        a.id.c_str(), a.name.c_str(), a.work_core_ms,
                        a.task_rate_hz,
                        static_cast<double>(a.input_bytes) / 1e6,
                        a.edge_friendly ? "  [edge-friendly]" : "");
        }
        std::printf("Scenarios: A (stationary items), B (moving people), "
                    "treasure (rovers), maze (rovers)\n");
        return 0;
    }

    platform::PlatformOptions opt;
    if (!pick_platform(o.platform_name, opt))
        return usage();

    platform::DeploymentConfig dep;
    dep.devices = o.devices;
    dep.seed = o.seed;
    dep.scale_infra = o.scale_infra;
    if (o.rover)
        dep.device_spec = edge::DeviceSpec::rover();

    if (o.mode == "job") {
        const apps::AppSpec* app = nullptr;
        for (const apps::AppSpec& a : apps::all_apps()) {
            if (a.id == o.what)
                app = &a;
        }
        if (!app) {
            std::fprintf(stderr, "unknown application: %s\n",
                         o.what.c_str());
            return usage();
        }
        platform::JobConfig job;
        job.duration = sim::from_seconds(o.duration_s);
        job.include_motion_energy = o.motion;
        std::printf("== %s (%s) on %s, %zu devices, %0.f s ==\n",
                    app->id.c_str(), app->name.c_str(), opt.label.c_str(),
                    o.devices, o.duration_s);
        print_metrics(platform::run_single_phase(*app, opt, dep, job),
                      false);
        return 0;
    }

    if (o.mode == "scenario") {
        platform::ScenarioConfig sc;
        if (o.what == "A" || o.what == "a") {
            sc.kind = platform::ScenarioKind::StationaryItems;
            sc.targets = o.targets ? o.targets : 15;
        } else if (o.what == "B" || o.what == "b") {
            sc.kind = platform::ScenarioKind::MovingPeople;
            sc.targets = o.targets ? o.targets : 25;
        } else if (o.what == "treasure") {
            sc.kind = platform::ScenarioKind::TreasureHunt;
            dep.device_spec = edge::DeviceSpec::rover();
        } else if (o.what == "maze") {
            sc.kind = platform::ScenarioKind::RoverMaze;
            dep.device_spec = edge::DeviceSpec::rover();
        } else {
            std::fprintf(stderr, "unknown scenario: %s\n", o.what.c_str());
            return usage();
        }
        std::printf("== %s on %s, %zu devices ==\n",
                    platform::to_string(sc.kind), opt.label.c_str(),
                    o.devices);
        print_metrics(platform::run_scenario(sc, opt, dep), true);
        return 0;
    }
    return usage();
}

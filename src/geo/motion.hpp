#pragma once

/**
 * @file
 * Random-waypoint motion model for people in Scenario B.
 *
 * "People are allowed to move within the field" (Sec. 2.1): each
 * person walks at pedestrian speed toward a uniformly chosen waypoint,
 * pauses, and picks a new one. The scenario world samples positions
 * from this model when drones photograph the field.
 */

#include <vector>

#include "geo/vec2.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace hivemind::geo {

/** One walker following the random-waypoint model. */
class RandomWaypointWalker
{
  public:
    /**
     * @param bounds area the walker stays within
     * @param speed_mps walking speed in m/s
     * @param pause_s mean pause at each waypoint in seconds
     */
    RandomWaypointWalker(const Rect& bounds, double speed_mps,
                         double pause_s, sim::Rng& rng);

    /** Position at simulated time @p t (t must be non-decreasing). */
    Vec2 position_at(sim::Time t);

  private:
    void pick_next_waypoint();

    Rect bounds_;
    double speed_;
    double pause_s_;
    sim::Rng rng_;
    Vec2 pos_;
    Vec2 target_;
    sim::Time leg_start_ = 0;     // When current leg (or pause) began.
    sim::Time leg_end_ = 0;       // When it finishes.
    Vec2 leg_from_;
    bool pausing_ = false;
};

}  // namespace hivemind::geo

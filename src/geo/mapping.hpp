#pragma once

/**
 * @file
 * Occupancy-grid mapping — the algorithmic core of S10 (SLAM).
 *
 * The paper's S10 runs ORB-SLAM on image+sensor data; its mapping
 * backbone is occupancy-grid integration of range observations. This
 * is that backbone, implemented for the simulated world: a log-odds
 * occupancy grid updated from ray-cast range scans taken along a
 * device's route. The scenario worlds use it to give SLAM tasks real
 * semantics (the property tests recover a known obstacle layout from
 * scans), while the platform models its compute cost.
 */

#include <vector>

#include "geo/grid.hpp"
#include "geo/vec2.hpp"

namespace hivemind::geo {

/** One simulated range-finder return. */
struct RangeReading
{
    Vec2 origin;     ///< Sensor position.
    Vec2 direction;  ///< Unit beam direction.
    double range;    ///< Distance to the hit, or max_range if none.
    bool hit;        ///< Whether the beam hit an obstacle.
};

/**
 * Cast a beam through @p world from @p origin along @p direction
 * (unit vector) up to @p max_range meters; returns the reading.
 * Marching step is half a cell for robustness.
 */
RangeReading cast_ray(const Grid& world, const Vec2& origin,
                      const Vec2& direction, double max_range);

/**
 * Log-odds occupancy grid built from range scans.
 *
 * Cells start unknown (log-odds 0); beams decrease the odds of the
 * traversed cells and increase the odds of the hit cell. Thresholded
 * queries classify cells as free / occupied / unknown.
 */
class OccupancyMapper
{
  public:
    /** Map covering @p bounds with @p cell_size meter cells. */
    OccupancyMapper(const Rect& bounds, double cell_size);

    /** Integrate one reading. */
    void integrate(const RangeReading& reading);

    /** Integrate a full scan (e.g., 360 degrees of beams). */
    void integrate_scan(const std::vector<RangeReading>& scan);

    /** Log-odds of a cell (0 = unknown). */
    double log_odds(const Cell& c) const;

    /** Classification thresholds: occupied above, free below. */
    bool occupied(const Cell& c) const { return log_odds(c) > 1.5; }
    bool free(const Cell& c) const { return log_odds(c) < -1.5; }
    bool known(const Cell& c) const { return occupied(c) || free(c); }

    int width() const { return width_; }
    int height() const { return height_; }
    const Rect& bounds() const { return bounds_; }

    /** Number of cells classified (free or occupied). */
    std::size_t known_count() const;

    /**
     * Agreement with a ground-truth world over the known cells:
     * fraction of known cells whose classification matches the
     * world's blocked/free state. 1.0 = perfect map so far.
     */
    double accuracy_against(const Grid& world) const;

  private:
    std::size_t index(const Cell& c) const
    {
        return static_cast<std::size_t>(c.y) *
            static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(c.x);
    }

    Cell cell_at(const Vec2& p) const;
    bool in_bounds(const Cell& c) const
    {
        return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
    }

    Rect bounds_;
    double cell_size_;
    int width_;
    int height_;
    std::vector<double> log_odds_;

    static constexpr double kHitUpdate = 1.2;
    static constexpr double kMissUpdate = -0.6;
    static constexpr double kClamp = 8.0;
};

/**
 * Generate a 360-degree scan of @p beams rays from @p origin in
 * @p world (the S10 sensing step).
 */
std::vector<RangeReading> scan_world(const Grid& world, const Vec2& origin,
                                     int beams, double max_range);

}  // namespace hivemind::geo

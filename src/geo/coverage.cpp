#include "geo/coverage.hpp"

#include <cmath>

namespace hivemind::geo {

std::vector<Rect>
partition_field(const Rect& field, std::size_t n)
{
    std::vector<Rect> out;
    if (n == 0)
        return out;
    out.reserve(n);
    double strip = field.width() / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
        double x0 = field.x0 + strip * static_cast<double>(i);
        // Last strip absorbs floating point slack.
        double x1 = (i + 1 == n) ? field.x1 : x0 + strip;
        out.push_back(Rect{x0, field.y0, x1, field.y1});
    }
    return out;
}

std::vector<Vec2>
coverage_route(const Rect& region, double track_spacing)
{
    std::vector<Vec2> route;
    if (region.width() <= 0.0 || region.height() <= 0.0)
        return route;
    // Number of passes needed so adjacent tracks overlap or abut.
    int passes = static_cast<int>(
        std::ceil(region.width() / track_spacing));
    if (passes < 1)
        passes = 1;
    double dx = region.width() / static_cast<double>(passes);
    for (int i = 0; i < passes; ++i) {
        double x = region.x0 + dx * (static_cast<double>(i) + 0.5);
        if (i % 2 == 0) {
            route.push_back({x, region.y0});
            route.push_back({x, region.y1});
        } else {
            route.push_back({x, region.y1});
            route.push_back({x, region.y0});
        }
    }
    return route;
}

double
route_length(const std::vector<Vec2>& route)
{
    double len = 0.0;
    for (std::size_t i = 1; i < route.size(); ++i)
        len += route[i - 1].distance_to(route[i]);
    return len;
}

void
repartition_after_failure(std::vector<Rect>& regions,
                          std::size_t failed_index)
{
    if (failed_index >= regions.size())
        return;
    Rect freed = regions[failed_index];
    bool has_left = failed_index > 0;
    bool has_right = failed_index + 1 < regions.size();
    if (has_left && has_right) {
        double mid = (freed.x0 + freed.x1) / 2.0;
        regions[failed_index - 1].x1 = mid;
        regions[failed_index + 1].x0 = mid;
    } else if (has_left) {
        regions[failed_index - 1].x1 = freed.x1;
    } else if (has_right) {
        regions[failed_index + 1].x0 = freed.x0;
    }
    regions.erase(regions.begin() +
                  static_cast<std::ptrdiff_t>(failed_index));
}

}  // namespace hivemind::geo

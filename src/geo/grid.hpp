#pragma once

/**
 * @file
 * Occupancy grid over a rectangular field.
 *
 * The A* route planner (Sec. 2.1: "Routes within each region are
 * derived using A*") and the coverage generator both operate on this
 * grid; cells marked blocked stand for obstacles (trees, buildings)
 * that the on-board obstacle-avoidance engine must route around.
 */

#include <cstddef>
#include <vector>

#include "geo/vec2.hpp"

namespace hivemind::geo {

/** Integer cell coordinate on a grid. */
struct Cell
{
    int x = 0;
    int y = 0;

    bool operator==(const Cell& o) const { return x == o.x && y == o.y; }
    bool operator!=(const Cell& o) const { return !(*this == o); }
};

/** Rectangular occupancy grid with square cells. */
class Grid
{
  public:
    /**
     * Cover @p bounds with square cells of @p cell_size meters.
     * Partial cells at the far edges are included.
     */
    Grid(const Rect& bounds, double cell_size);

    int width() const { return width_; }
    int height() const { return height_; }
    double cell_size() const { return cell_size_; }
    const Rect& bounds() const { return bounds_; }

    /** Whether the cell coordinate is on the grid. */
    bool
    in_bounds(const Cell& c) const
    {
        return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
    }

    /** Mark a cell blocked (true) or free (false). */
    void set_blocked(const Cell& c, bool blocked);

    /** Whether a cell is blocked; out-of-bounds counts as blocked. */
    bool blocked(const Cell& c) const;

    /** Center of a cell in world coordinates. */
    Vec2
    cell_center(const Cell& c) const
    {
        return {bounds_.x0 + (static_cast<double>(c.x) + 0.5) * cell_size_,
                bounds_.y0 + (static_cast<double>(c.y) + 0.5) * cell_size_};
    }

    /** Cell containing a world point (clamped to the grid). */
    Cell cell_at(const Vec2& p) const;

    /** 4-connected free neighbours of a cell. */
    std::vector<Cell> neighbors4(const Cell& c) const;

    /** Number of free (unblocked) cells. */
    std::size_t free_count() const;

  private:
    std::size_t index(const Cell& c) const
    {
        return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(width_)
            + static_cast<std::size_t>(c.x);
    }

    Rect bounds_;
    double cell_size_;
    int width_;
    int height_;
    std::vector<bool> blocked_;
};

}  // namespace hivemind::geo

#pragma once

/**
 * @file
 * Field partitioning and coverage-route generation.
 *
 * Scenario A (Sec. 2.1): "At time zero, the field is divided equally
 * among the drones," and each drone sweeps its region collecting
 * frames. The partitioner slices the field into equal-area strips;
 * the route generator emits a boustrophedon (lawn-mower) sweep whose
 * track spacing matches the camera footprint so every point is imaged.
 * repartition_after_failure() implements the Fig. 10 recovery: a
 * failed device's region is split among its neighbours.
 */

#include <cstddef>
#include <vector>

#include "geo/vec2.hpp"

namespace hivemind::geo {

/**
 * Split @p field into @p n equal-area vertical strips, one per device.
 *
 * Strips are ordered left to right; strip i is assigned to device i.
 */
std::vector<Rect> partition_field(const Rect& field, std::size_t n);

/**
 * Generate a boustrophedon sweep of @p region with @p track_spacing
 * meters between passes (the camera's cross-track footprint). The
 * route starts at the region's lower-left corner.
 */
std::vector<Vec2> coverage_route(const Rect& region, double track_spacing);

/** Total length in meters of a waypoint route. */
double route_length(const std::vector<Vec2>& route);

/**
 * Handle a device failure (Fig. 10): remove region @p failed from the
 * assignment and grow the regions of its immediate neighbours to cover
 * it, splitting the freed strip between them.
 *
 * @param regions current strip assignment (as from partition_field);
 *        the entry at @p failed_index is removed in-place and adjacent
 *        entries are widened.
 */
void repartition_after_failure(std::vector<Rect>& regions,
                               std::size_t failed_index);

}  // namespace hivemind::geo

#include "geo/astar.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>

namespace hivemind::geo {

namespace {

/** Manhattan distance between two cells (admissible for 4-connected). */
int
manhattan(const Cell& a, const Cell& b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

struct Node
{
    int f;
    int g;
    std::uint64_t seq;
    Cell cell;
};

struct NodeWorse
{
    bool
    operator()(const Node& a, const Node& b) const
    {
        if (a.f != b.f)
            return a.f > b.f;
        // Prefer larger g (closer to goal) then FIFO for determinism.
        if (a.g != b.g)
            return a.g < b.g;
        return a.seq > b.seq;
    }
};

}  // namespace

std::optional<Path>
AStarPlanner::plan(const Cell& start, const Cell& goal) const
{
    return search(start, goal, true);
}

std::optional<Path>
AStarPlanner::plan_dijkstra(const Cell& start, const Cell& goal) const
{
    return search(start, goal, false);
}

std::optional<Path>
AStarPlanner::search(const Cell& start, const Cell& goal,
                     bool use_heuristic) const
{
    const Grid& g = *grid_;
    if (g.blocked(start) || g.blocked(goal))
        return std::nullopt;

    const int w = g.width();
    const int h = g.height();
    auto idx = [w](const Cell& c) {
        return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(w)
            + static_cast<std::size_t>(c.x);
    };

    constexpr int kInf = std::numeric_limits<int>::max();
    std::vector<int> dist(static_cast<std::size_t>(w) *
                              static_cast<std::size_t>(h),
                          kInf);
    std::vector<std::int32_t> parent(dist.size(), -1);

    std::priority_queue<Node, std::vector<Node>, NodeWorse> open;
    std::uint64_t seq = 0;
    dist[idx(start)] = 0;
    open.push({use_heuristic ? manhattan(start, goal) : 0, 0, seq++, start});

    while (!open.empty()) {
        Node n = open.top();
        open.pop();
        if (n.g > dist[idx(n.cell)])
            continue;  // Stale entry.
        if (n.cell == goal)
            break;
        for (const Cell& nb : g.neighbors4(n.cell)) {
            int ng = n.g + 1;
            std::size_t ni = idx(nb);
            if (ng < dist[ni]) {
                dist[ni] = ng;
                parent[ni] = static_cast<std::int32_t>(idx(n.cell));
                int f = ng + (use_heuristic ? manhattan(nb, goal) : 0);
                open.push({f, ng, seq++, nb});
            }
        }
    }

    if (dist[idx(goal)] == kInf)
        return std::nullopt;

    Path path;
    std::size_t cur = idx(goal);
    std::size_t start_i = idx(start);
    while (true) {
        Cell c{static_cast<int>(cur % static_cast<std::size_t>(w)),
               static_cast<int>(cur / static_cast<std::size_t>(w))};
        path.cells.push_back(c);
        if (cur == start_i)
            break;
        cur = static_cast<std::size_t>(parent[cur]);
    }
    std::reverse(path.cells.begin(), path.cells.end());
    return path;
}

std::vector<Cell>
order_visits(const Grid& grid, const Cell& start, std::vector<Cell> targets)
{
    std::vector<Cell> out;
    out.reserve(targets.size());
    Vec2 pos = grid.cell_center(start);
    while (!targets.empty()) {
        std::size_t best = 0;
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < targets.size(); ++i) {
            double d = pos.distance_to(grid.cell_center(targets[i]));
            if (d < best_d) {
                best_d = d;
                best = i;
            }
        }
        out.push_back(targets[best]);
        pos = grid.cell_center(targets[best]);
        targets.erase(targets.begin() + static_cast<std::ptrdiff_t>(best));
    }
    return out;
}

}  // namespace hivemind::geo

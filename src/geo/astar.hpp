#pragma once

/**
 * @file
 * A* shortest-path planner on an occupancy grid.
 *
 * Sec. 2.1: "Routes within each region are derived using A*, where
 * each drone tries to minimize the total distance traveled." We use
 * 4-connected moves with a Manhattan-distance heuristic, which is
 * admissible and therefore returns optimal paths (the property tests
 * check this against Dijkstra).
 */

#include <optional>
#include <vector>

#include "geo/grid.hpp"

namespace hivemind::geo {

/** Result of a path query: sequence of cells from start to goal. */
struct Path
{
    std::vector<Cell> cells;

    /** Length in cell steps (cells.size() - 1), 0 when trivial/empty. */
    std::size_t steps() const { return cells.empty() ? 0 : cells.size() - 1; }
};

/**
 * A* planner bound to one grid.
 *
 * The planner is stateless between queries; it can be reused freely.
 */
class AStarPlanner
{
  public:
    explicit AStarPlanner(const Grid& grid) : grid_(&grid) {}

    /**
     * Find a shortest path between two free cells.
     *
     * @return std::nullopt when start or goal is blocked or no path
     *         exists.
     */
    std::optional<Path> plan(const Cell& start, const Cell& goal) const;

    /**
     * Dijkstra reference implementation (heuristic = 0), used by the
     * property tests to cross-check A* optimality.
     */
    std::optional<Path> plan_dijkstra(const Cell& start,
                                      const Cell& goal) const;

  private:
    std::optional<Path> search(const Cell& start, const Cell& goal,
                               bool use_heuristic) const;

    const Grid* grid_;
};

/**
 * Order a set of visit points into a short tour starting at @p start
 * (nearest-neighbour heuristic on straight-line distance). Used to
 * sequence the waypoints A* then connects.
 */
std::vector<Cell> order_visits(const Grid& grid, const Cell& start,
                               std::vector<Cell> targets);

}  // namespace hivemind::geo

#include "geo/maze.hpp"

#include <array>
#include <utility>

namespace hivemind::geo {

namespace {

constexpr int kDx[4] = {0, 1, 0, -1};   // N, E, S, W
constexpr int kDy[4] = {1, 0, -1, 0};

}  // namespace

Dir
left_of(Dir d)
{
    return static_cast<Dir>((static_cast<int>(d) + 3) % 4);
}

Dir
right_of(Dir d)
{
    return static_cast<Dir>((static_cast<int>(d) + 1) % 4);
}

Dir
reverse_of(Dir d)
{
    return static_cast<Dir>((static_cast<int>(d) + 2) % 4);
}

Maze::Maze(int width, int height, sim::Rng& rng)
    : width_(width),
      height_(height),
      open_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
            {false, false, false, false})
{
    // Iterative randomized DFS: visits every cell, carving a spanning
    // tree of passages (a perfect maze).
    std::vector<bool> visited(open_.size(), false);
    std::vector<std::pair<int, int>> stack;
    stack.emplace_back(0, 0);
    visited[0] = true;
    while (!stack.empty()) {
        auto [x, y] = stack.back();
        std::vector<int> dirs{0, 1, 2, 3};
        rng.shuffle(dirs);
        bool advanced = false;
        for (int di : dirs) {
            int nx = x + kDx[di];
            int ny = y + kDy[di];
            if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_)
                continue;
            if (visited[index(nx, ny)])
                continue;
            carve(x, y, static_cast<Dir>(di));
            visited[index(nx, ny)] = true;
            stack.emplace_back(nx, ny);
            advanced = true;
            break;
        }
        if (!advanced)
            stack.pop_back();
    }
}

void
Maze::carve(int x, int y, Dir d)
{
    int di = static_cast<int>(d);
    open_[index(x, y)][static_cast<std::size_t>(di)] = true;
    int nx = x + kDx[di];
    int ny = y + kDy[di];
    open_[index(nx, ny)][static_cast<std::size_t>(
        static_cast<int>(reverse_of(d)))] = true;
}

bool
Maze::wall(int x, int y, Dir d) const
{
    if (x < 0 || x >= width_ || y < 0 || y >= height_)
        return true;
    int di = static_cast<int>(d);
    int nx = x + kDx[di];
    int ny = y + kDy[di];
    if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_)
        return true;  // Outer boundary.
    return !open_[index(x, y)][static_cast<std::size_t>(di)];
}

std::size_t
Maze::passage_count() const
{
    std::size_t n = 0;
    for (const auto& cell : open_) {
        for (bool b : cell) {
            if (b)
                ++n;
        }
    }
    return n / 2;  // Each passage counted from both sides.
}

std::vector<MazeStep>
wall_follow(const Maze& maze, int exit_x, int exit_y, std::size_t max_steps)
{
    std::vector<MazeStep> trace;
    int x = 0;
    int y = 0;
    Dir heading = Dir::East;
    trace.push_back({x, y, heading});
    while (!(x == exit_x && y == exit_y) && trace.size() < max_steps) {
        // Left-hand rule: turn left if possible, else straight, else
        // right, else reverse.
        Dir order[4] = {left_of(heading), heading, right_of(heading),
                        reverse_of(heading)};
        for (Dir d : order) {
            if (!maze.wall(x, y, d)) {
                heading = d;
                break;
            }
        }
        int di = static_cast<int>(heading);
        x += kDx[di];
        y += kDy[di];
        trace.push_back({x, y, heading});
    }
    return trace;
}

}  // namespace hivemind::geo

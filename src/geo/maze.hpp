#pragma once

/**
 * @file
 * Maze generation and the Wall Follower solver.
 *
 * Application S6 ("navigate through a walled maze using the Wall
 * Follower algorithm") and the robotic-car "Maze" scenario (Sec. 5.5)
 * both traverse mazes. The generator produces a perfect maze
 * (spanning tree -> every pair of cells connected by exactly one
 * path), on which the left-hand wall follower is guaranteed to reach
 * the exit; the property tests verify this for random mazes.
 */

#include <array>
#include <cstddef>
#include <vector>

#include "sim/rng.hpp"

namespace hivemind::geo {

/** Cardinal directions used for maze walls and headings. */
enum class Dir : int { North = 0, East = 1, South = 2, West = 3 };

/** Left of, right of, and reverse of a heading. */
Dir left_of(Dir d);
Dir right_of(Dir d);
Dir reverse_of(Dir d);

/**
 * A rectangular perfect maze. Cell (0,0) is the entrance; the exit
 * cell is configurable (defaults to the far corner).
 */
class Maze
{
  public:
    /** Generate a random perfect maze via iterative DFS carving. */
    Maze(int width, int height, sim::Rng& rng);

    int width() const { return width_; }
    int height() const { return height_; }

    /** Whether a wall blocks movement from (x, y) toward @p d. */
    bool wall(int x, int y, Dir d) const;

    /** Number of open (carved) walls; a perfect maze has w*h-1 passages. */
    std::size_t passage_count() const;

  private:
    std::size_t index(int x, int y) const
    {
        return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_)
            + static_cast<std::size_t>(x);
    }

    void carve(int x, int y, Dir d);

    int width_;
    int height_;
    // open_[cell][dir] == true means no wall toward dir.
    std::vector<std::array<bool, 4>> open_;
};

/** One step in a wall-follower traversal. */
struct MazeStep
{
    int x;
    int y;
    Dir heading;
};

/**
 * Left-hand wall-follower traversal from the entrance (0,0, facing
 * East) to the given exit.
 *
 * @param max_steps safety bound; traversal aborts (returns partial
 *        trace) if exceeded, which cannot happen on a perfect maze of
 *        that size but guards against corrupted input.
 * @return the full step trace including the exit cell as last element.
 */
std::vector<MazeStep> wall_follow(const Maze& maze, int exit_x, int exit_y,
                                  std::size_t max_steps);

}  // namespace hivemind::geo

#pragma once

/**
 * @file
 * Minimal 2D geometry: vectors and axis-aligned rectangles.
 *
 * All field-level reasoning in HiveMind (drone routes, camera
 * footprints, load partitioning) happens on a flat 2D plane in meters;
 * altitude only enters through the camera footprint constants.
 */

#include <cmath>

namespace hivemind::geo {

/** 2D vector / point in meters. */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;

    Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(double s) const { return {x * s, y * s}; }
    bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }

    /** Euclidean length. */
    double norm() const { return std::sqrt(x * x + y * y); }

    /** Euclidean distance to another point. */
    double distance_to(const Vec2& o) const { return (*this - o).norm(); }

    /** Unit vector in this direction (zero vector maps to zero). */
    Vec2
    normalized() const
    {
        double n = norm();
        if (n == 0.0)
            return {0.0, 0.0};
        return {x / n, y / n};
    }
};

/** Axis-aligned rectangle [x0, x1) x [y0, y1) in meters. */
struct Rect
{
    double x0 = 0.0;
    double y0 = 0.0;
    double x1 = 0.0;
    double y1 = 0.0;

    double width() const { return x1 - x0; }
    double height() const { return y1 - y0; }
    double area() const { return width() * height(); }
    Vec2 center() const { return {(x0 + x1) / 2.0, (y0 + y1) / 2.0}; }

    /** Whether @p p lies inside the half-open rectangle. */
    bool
    contains(const Vec2& p) const
    {
        return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
    }

    /** Clamp a point to lie within the (closed) rectangle. */
    Vec2
    clamp(const Vec2& p) const
    {
        Vec2 q = p;
        if (q.x < x0) q.x = x0;
        if (q.x > x1) q.x = x1;
        if (q.y < y0) q.y = y0;
        if (q.y > y1) q.y = y1;
        return q;
    }
};

}  // namespace hivemind::geo

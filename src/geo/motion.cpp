#include "geo/motion.hpp"

namespace hivemind::geo {

RandomWaypointWalker::RandomWaypointWalker(const Rect& bounds,
                                           double speed_mps, double pause_s,
                                           sim::Rng& rng)
    : bounds_(bounds),
      speed_(speed_mps),
      pause_s_(pause_s),
      rng_(rng.fork()),
      pos_{rng_.uniform(bounds.x0, bounds.x1),
           rng_.uniform(bounds.y0, bounds.y1)},
      leg_from_(pos_)
{
    pick_next_waypoint();
}

void
RandomWaypointWalker::pick_next_waypoint()
{
    target_ = {rng_.uniform(bounds_.x0, bounds_.x1),
               rng_.uniform(bounds_.y0, bounds_.y1)};
    leg_from_ = pos_;
    leg_start_ = leg_end_;
    double dist = leg_from_.distance_to(target_);
    leg_end_ = leg_start_ + sim::from_seconds(dist / speed_);
    pausing_ = false;
}

Vec2
RandomWaypointWalker::position_at(sim::Time t)
{
    while (t >= leg_end_) {
        if (pausing_) {
            pick_next_waypoint();
        } else {
            // Arrive, then pause for an exponential dwell.
            pos_ = target_;
            leg_from_ = pos_;
            leg_start_ = leg_end_;
            leg_end_ = leg_start_ +
                sim::from_seconds(rng_.exponential(pause_s_));
            pausing_ = true;
        }
    }
    if (pausing_ || leg_end_ == leg_start_)
        return pos_;
    double frac = static_cast<double>(t - leg_start_) /
        static_cast<double>(leg_end_ - leg_start_);
    if (frac < 0.0)
        frac = 0.0;
    pos_ = leg_from_ + (target_ - leg_from_) * frac;
    return pos_;
}

}  // namespace hivemind::geo

#include "geo/mapping.hpp"

#include <cmath>

namespace hivemind::geo {

RangeReading
cast_ray(const Grid& world, const Vec2& origin, const Vec2& direction,
         double max_range)
{
    RangeReading r;
    r.origin = origin;
    r.direction = direction;
    double step = world.cell_size() * 0.5;
    for (double d = step; d <= max_range; d += step) {
        Vec2 p = origin + direction * d;
        if (!world.bounds().contains(p))
            break;
        if (world.blocked(world.cell_at(p))) {
            r.range = d;
            r.hit = true;
            return r;
        }
    }
    r.range = max_range;
    r.hit = false;
    return r;
}

OccupancyMapper::OccupancyMapper(const Rect& bounds, double cell_size)
    : bounds_(bounds),
      cell_size_(cell_size),
      width_(static_cast<int>(std::ceil(bounds.width() / cell_size))),
      height_(static_cast<int>(std::ceil(bounds.height() / cell_size))),
      log_odds_(static_cast<std::size_t>(width_) *
                    static_cast<std::size_t>(height_),
                0.0)
{
}

Cell
OccupancyMapper::cell_at(const Vec2& p) const
{
    return Cell{static_cast<int>((p.x - bounds_.x0) / cell_size_),
                static_cast<int>((p.y - bounds_.y0) / cell_size_)};
}

void
OccupancyMapper::integrate(const RangeReading& reading)
{
    double step = cell_size_ * 0.5;
    Cell last_traversed{-1, -1};
    // Free-space update along the beam, stopping short of the hit.
    double free_extent = reading.hit ? reading.range - step : reading.range;
    for (double d = 0.0; d < free_extent; d += step) {
        Vec2 p = reading.origin + reading.direction * d;
        Cell c = cell_at(p);
        if (!in_bounds(c))
            return;
        if (c != last_traversed) {
            double& lo = log_odds_[index(c)];
            lo += kMissUpdate;
            if (lo < -kClamp)
                lo = -kClamp;
            last_traversed = c;
        }
    }
    if (reading.hit) {
        Vec2 p = reading.origin + reading.direction * reading.range;
        Cell c = cell_at(p);
        if (in_bounds(c)) {
            double& lo = log_odds_[index(c)];
            lo += kHitUpdate;
            if (lo > kClamp)
                lo = kClamp;
        }
    }
}

void
OccupancyMapper::integrate_scan(const std::vector<RangeReading>& scan)
{
    for (const RangeReading& r : scan)
        integrate(r);
}

double
OccupancyMapper::log_odds(const Cell& c) const
{
    if (!in_bounds(c))
        return 0.0;
    return log_odds_[index(c)];
}

std::size_t
OccupancyMapper::known_count() const
{
    std::size_t n = 0;
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            if (known(Cell{x, y}))
                ++n;
        }
    }
    return n;
}

double
OccupancyMapper::accuracy_against(const Grid& world) const
{
    std::size_t known_cells = 0;
    std::size_t correct = 0;
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            Cell c{x, y};
            if (!known(c))
                continue;
            ++known_cells;
            // Compare against the world cell containing this map
            // cell's center.
            Vec2 center{bounds_.x0 + (x + 0.5) * cell_size_,
                        bounds_.y0 + (y + 0.5) * cell_size_};
            bool truth_blocked = world.blocked(world.cell_at(center));
            if (occupied(c) == truth_blocked)
                ++correct;
        }
    }
    return known_cells > 0
        ? static_cast<double>(correct) / static_cast<double>(known_cells)
        : 1.0;
}

std::vector<RangeReading>
scan_world(const Grid& world, const Vec2& origin, int beams,
           double max_range)
{
    std::vector<RangeReading> out;
    out.reserve(static_cast<std::size_t>(beams));
    for (int b = 0; b < beams; ++b) {
        double angle = 2.0 * M_PI * static_cast<double>(b) /
            static_cast<double>(beams);
        Vec2 dir{std::cos(angle), std::sin(angle)};
        out.push_back(cast_ray(world, origin, dir, max_range));
    }
    return out;
}

}  // namespace hivemind::geo

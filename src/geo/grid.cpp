#include "geo/grid.hpp"

#include <cmath>

namespace hivemind::geo {

Grid::Grid(const Rect& bounds, double cell_size)
    : bounds_(bounds),
      cell_size_(cell_size),
      width_(static_cast<int>(std::ceil(bounds.width() / cell_size))),
      height_(static_cast<int>(std::ceil(bounds.height() / cell_size))),
      blocked_(static_cast<std::size_t>(width_) *
                   static_cast<std::size_t>(height_),
               false)
{
}

void
Grid::set_blocked(const Cell& c, bool blocked)
{
    if (in_bounds(c))
        blocked_[index(c)] = blocked;
}

bool
Grid::blocked(const Cell& c) const
{
    if (!in_bounds(c))
        return true;
    return blocked_[index(c)];
}

Cell
Grid::cell_at(const Vec2& p) const
{
    Cell c{static_cast<int>((p.x - bounds_.x0) / cell_size_),
           static_cast<int>((p.y - bounds_.y0) / cell_size_)};
    if (c.x < 0) c.x = 0;
    if (c.y < 0) c.y = 0;
    if (c.x >= width_) c.x = width_ - 1;
    if (c.y >= height_) c.y = height_ - 1;
    return c;
}

std::vector<Cell>
Grid::neighbors4(const Cell& c) const
{
    std::vector<Cell> out;
    out.reserve(4);
    const Cell candidates[4] = {
        {c.x + 1, c.y}, {c.x - 1, c.y}, {c.x, c.y + 1}, {c.x, c.y - 1}};
    for (const Cell& n : candidates) {
        if (in_bounds(n) && !blocked(n))
            out.push_back(n);
    }
    return out;
}

std::size_t
Grid::free_count() const
{
    std::size_t n = 0;
    for (bool b : blocked_) {
        if (!b)
            ++n;
    }
    return n;
}

}  // namespace hivemind::geo

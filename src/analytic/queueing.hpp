#pragma once

/**
 * @file
 * Closed-form queueing primitives.
 *
 * The paper's simulator "is based on queueing network principles and
 * tracks the processing and queueing time both on cloud and edge
 * resources" (Sec. 5.6). These are the textbook building blocks the
 * analytic model composes: M/M/1 and M/M/c (Erlang-C) sojourn times
 * and exponential-tail percentile estimates.
 */

namespace hivemind::analytic {

/**
 * Erlang-C: probability an arrival waits in an M/M/c queue.
 *
 * @param c servers
 * @param a offered load in Erlangs (lambda/mu); must be < c for a
 *        stable queue.
 */
double erlang_c(int c, double a);

/** Mean sojourn (wait + service) time of an M/M/1 queue, seconds. */
double mm1_sojourn(double lambda, double mu);

/** Mean sojourn time of an M/M/c queue, seconds. */
double mmc_sojourn(double lambda, double mu, int c);

/**
 * p-th percentile of an (approximately) exponential sojourn tail with
 * the given mean: T_p = mean * -ln(1 - p/100).
 */
double exponential_percentile(double mean, double p);

/**
 * Utilization-clamped helper: queueing formulas diverge at rho >= 1;
 * real systems instead queue without bound. The clamp maps overload
 * to a finite backlog horizon: sojourn ~= horizon_s * (rho - 1) +
 * stable-part sojourn, modelling the linearly growing backlog a
 * saturated station accumulates over an observation window.
 */
double saturated_sojourn(double lambda, double mu, int c,
                         double horizon_s);

}  // namespace hivemind::analytic

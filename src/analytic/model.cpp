#include "analytic/model.hpp"

#include <algorithm>
#include <cmath>

#include "analytic/queueing.hpp"

namespace hivemind::analytic {

void
AnalyticInput::apply_app(const apps::AppSpec& app)
{
    task_rate_hz = app.task_rate_hz;
    input_bytes = app.input_bytes;
    output_bytes = app.output_bytes;
    inter_bytes = app.inter_bytes;
    work_core_ms = app.work_core_ms;
    parallelism = app.parallelism;
    edge_work_factor = app.edge_work_factor;
    if (app.edge_friendly) {
        // Under HiveMind these run on-board; callers combining
        // apply_app with apply_platform(hivemind) get the same
        // placement the DES platform uses.
        hybrid_runs_on_edge = true;
    }
}

void
AnalyticInput::apply_platform(const platform::PlatformOptions& options)
{
    kind = options.kind;
    if (options.remote_mem_accel) {
        sharing_s = 3.0e-6;        // RDMA-scale hand-off.
        sharing_Bps = 11.0e9;
    }
    if (options.smart_scheduler) {
        controllers = std::max<int>(2, static_cast<int>(devices / 8));
        // Warm reuse under the 10-30 s keep-alive removes most of the
        // instantiation overhead, at median and tail alike.
        faas_overhead_s = 0.022;
        faas_overhead_tail_s = 0.055;
    }
}

namespace {

/** Mean + tail-extra accumulator across the station chain. */
struct Accum
{
    double mean = 0.0;
    double extra = 0.0;  // Sum of (p99 - mean) station contributions.

    void
    add(double mean_s, double extra_s)
    {
        mean += mean_s;
        extra += extra_s;
    }
};

}  // namespace

AnalyticOutput
evaluate(const AnalyticInput& in)
{
    AnalyticOutput out;
    double n = static_cast<double>(in.devices);
    double lambda_total = n * in.task_rate_hz;
    double infra = in.scale_infra && in.devices > 16 ? n / 16.0 : 1.0;

    bool distributed = in.kind == platform::PlatformKind::DistributedEdge;
    bool hive = in.kind == platform::PlatformKind::HiveMind;
    bool on_edge = distributed || (hive && in.hybrid_runs_on_edge);

    auto note_rho = [&out](double lambda, double capacity) {
        if (capacity > 0.0) {
            out.max_utilization =
                std::max(out.max_utilization, lambda / capacity);
        }
    };

    // --- Bytes crossing the air per task ---
    double up_bytes;
    if (on_edge) {
        up_bytes = static_cast<double>(in.output_bytes);
    } else if (hive) {
        up_bytes = static_cast<double>(in.input_bytes) *
                in.hybrid_uplink_fraction +
            static_cast<double>(in.output_bytes);
    } else {
        up_bytes = static_cast<double>(in.input_bytes) +
            static_cast<double>(in.output_bytes);
    }
    double air_Bps = lambda_total * up_bytes;
    out.bandwidth_MBps = air_Bps / 1e6;

    Accum acc;

    // --- Edge compute station (per device, M/M/1 with shedding) ---
    double edge_work_s = 0.0;
    if (on_edge) {
        edge_work_s = in.work_core_ms / 1000.0 * in.edge_work_factor /
            in.edge_cpu_factor;
    } else if (hive) {
        edge_work_s = in.work_core_ms / 1000.0 * in.hybrid_prefilter_share /
            in.edge_cpu_factor;
    }
    if (edge_work_s > 0.0) {
        double mu = 1.0 / edge_work_s;
        note_rho(in.task_rate_hz, mu);
        double rho = in.task_rate_hz / mu;
        if (rho < 0.97) {
            double soj = mmc_sojourn(in.task_rate_hz, mu, 1);
            if (soj < 0.0)
                soj = edge_work_s;
            acc.add(soj, (in.stable_tail_factor - 1.0) *
                        (soj - edge_work_s) +
                        0.35 * edge_work_s);
        } else {
            // Saturated bounded queue. Three effects shape what the
            // DES (and a real run) measures: (1) the deterministic
            // backlog ramp over the observation window, bounded by
            // the drop-oldest queue limit; (2) diffusion — Poisson
            // burstiness makes the backlog fluctuate ~sqrt(lambda*T);
            // (3) censoring — waits longer than the drain window are
            // never observed as completions.
            double excess = in.task_rate_hz - mu;
            double raw_full = std::min(excess * in.horizon_s,
                                       static_cast<double>(
                                           in.edge_queue_limit)) *
                edge_work_s;
            double diff = std::sqrt(in.task_rate_hz * in.horizon_s) *
                edge_work_s;
            double mean_wait =
                0.5 * std::min(raw_full, 0.7 * in.drain_s) + 0.35 * diff;
            double tail_wait =
                std::min(raw_full + 1.3 * diff, in.drain_s);
            if (tail_wait < mean_wait)
                tail_wait = mean_wait;
            acc.add(mean_wait + edge_work_s, tail_wait - mean_wait);
        }
    }

    // --- Wireless stations ---
    if (up_bytes > 0.0) {
        double radio_s = up_bytes * 8.0 / in.device_radio_bps;
        double mu_radio = 1.0 / radio_s;
        note_rho(in.task_rate_hz, mu_radio);
        double soj = saturated_sojourn(in.task_rate_hz, mu_radio, 1,
                                       in.horizon_s);
        acc.add(soj, (in.stable_tail_factor - 1.0) * (soj - radio_s));

        double router_bps = in.router_bps * infra;
        double router_s = up_bytes * 8.0 / router_bps;
        double mu_router = 1.0 / router_s;
        note_rho(lambda_total,
                 mu_router * static_cast<double>(in.routers));
        double rsoj = saturated_sojourn(lambda_total, mu_router,
                                        static_cast<int>(in.routers),
                                        in.horizon_s);
        acc.add(rsoj, (in.stable_tail_factor - 1.0) * (rsoj - router_s));
        acc.add(0.008, 0.0);  // Wireless propagation, both directions.
    }

    // --- Cloud stations ---
    if (!on_edge) {
        double mu_ctl = in.controller_rps;
        note_rho(lambda_total,
                 mu_ctl * static_cast<double>(in.controllers));
        double csoj = saturated_sojourn(lambda_total, mu_ctl,
                                        in.controllers, in.horizon_s);
        acc.add(csoj, (in.stable_tail_factor - 1.0) *
                    (csoj - 1.0 / mu_ctl));
        acc.add(in.faas_overhead_s, in.faas_overhead_tail_s);

        double cloud_work_ms = hive
            ? in.work_core_ms * (1.0 - in.hybrid_prefilter_share)
            : in.work_core_ms;
        int ways = hive ? std::max(1, in.parallelism) : 1;
        double fn_service_s =
            cloud_work_ms / 1000.0 / static_cast<double>(ways);
        double fn_lambda = lambda_total * static_cast<double>(ways);
        int cores = static_cast<int>(
            static_cast<double>(in.servers) * infra *
            static_cast<double>(in.cores_per_server));
        double mu_core = 1.0 / fn_service_s;
        note_rho(fn_lambda, mu_core * static_cast<double>(cores));
        double fsoj = saturated_sojourn(fn_lambda, mu_core, cores,
                                        in.horizon_s);
        // Execution jitter + stragglers stretch the tail of the
        // service time itself.
        acc.add(fsoj, (in.exec_tail_factor - 1.0) * fn_service_s +
                    (in.stable_tail_factor - 1.0) *
                        (fsoj - fn_service_s));

        // Data-sharing hand-offs (input fetch + output publish).
        double share_s = in.sharing_s +
            static_cast<double>(in.inter_bytes) / in.sharing_Bps;
        acc.add(2.0 * share_s, 1.2 * share_s);
    } else {
        // On-board execution jitter tail.
        acc.add(0.0, (in.exec_tail_factor - 1.0) * 0.15 * edge_work_s);
    }

    out.mean_latency_s = acc.mean;
    out.tail_latency_s = acc.mean + acc.extra;

    // --- Battery (percent of a 60 kJ pack per minute) ---
    const double compute_w = 2.5;
    const double radio_j_per_byte = 1.0e-7;
    const double motion_w = 80.0;
    const double idle_w = 1.5;
    const double battery_j = 60000.0;
    double per_s = idle_w + motion_w +
        in.task_rate_hz * (edge_work_s * compute_w +
                           up_bytes * radio_j_per_byte);
    out.battery_pct_per_min = per_s * 60.0 / battery_j * 100.0;
    return out;
}

}  // namespace hivemind::analytic

#include "analytic/queueing.hpp"

#include <cmath>

namespace hivemind::analytic {

double
erlang_c(int c, double a)
{
    if (c <= 0 || a <= 0.0)
        return 0.0;
    if (a >= static_cast<double>(c))
        return 1.0;
    // Iterative Erlang-B, then convert to Erlang-C.
    double b = 1.0;
    for (int k = 1; k <= c; ++k)
        b = a * b / (static_cast<double>(k) + a * b);
    double rho = a / static_cast<double>(c);
    return b / (1.0 - rho + rho * b);
}

double
mm1_sojourn(double lambda, double mu)
{
    if (mu <= lambda)
        return -1.0;  // Unstable; caller should use saturated_sojourn.
    return 1.0 / (mu - lambda);
}

double
mmc_sojourn(double lambda, double mu, int c)
{
    double a = lambda / mu;
    if (a >= static_cast<double>(c))
        return -1.0;
    double pw = erlang_c(c, a);
    double wq = pw / (static_cast<double>(c) * mu - lambda);
    return wq + 1.0 / mu;
}

double
exponential_percentile(double mean, double p)
{
    if (mean <= 0.0)
        return 0.0;
    return mean * -std::log(1.0 - p / 100.0);
}

double
saturated_sojourn(double lambda, double mu, int c, double horizon_s)
{
    double capacity = mu * static_cast<double>(c);
    double rho = lambda / capacity;
    if (rho < 0.97) {
        double s = mmc_sojourn(lambda, mu, c);
        return s > 0.0 ? s : 1.0 / mu;
    }
    // Overloaded: the backlog grows linearly over the horizon; the
    // average arrival waits about half the final backlog.
    double excess = lambda - capacity;
    double backlog_wait =
        excess > 0.0 ? 0.5 * excess * horizon_s / capacity : 0.0;
    // Near-saturation stable part, evaluated at rho = 0.97.
    double s97 = mmc_sojourn(0.97 * capacity, mu, c);
    return (s97 > 0.0 ? s97 : 1.0 / mu) + backlog_wait;
}

}  // namespace hivemind::analytic

#pragma once

/**
 * @file
 * Analytic queueing-network model of a swarm deployment.
 *
 * Plays the role the validated simulator plays in the paper: a fast
 * estimator used for the large-swarm sweeps (Fig. 17b), validated
 * against the detailed DES (Fig. 18). The network is a feed-forward
 * chain of stations — device radio, shared routers, OpenWhisk
 * controller, invoker cores, data store — each approximated as an
 * M/M/c queue; per-task latency is the sum of station sojourns plus
 * the fixed overheads (cold-start amortization, sharing protocol).
 */

#include <cstdint>

#include "apps/appspec.hpp"
#include "platform/options.hpp"

namespace hivemind::analytic {

/** Workload + infrastructure description for the analytic model. */
struct AnalyticInput
{
    std::size_t devices = 16;
    /** Tasks per device per second. */
    double task_rate_hz = 1.0;
    /** Sensor payload per task, bytes. */
    std::uint64_t input_bytes = 2u << 20;
    /** Result payload, bytes. */
    std::uint64_t output_bytes = 16u << 10;
    /** Intermediate data between dependent functions, bytes. */
    std::uint64_t inter_bytes = 256u << 10;
    /** Reference-core work per task, ms. */
    double work_core_ms = 220.0;
    /** Intra-task fan-out exploited (HiveMind). */
    int parallelism = 1;
    /** Edge CPU speed factor. */
    double edge_cpu_factor = 0.12;
    /** Edge work multiplier (S4-style in-place discount). */
    double edge_work_factor = 1.0;

    // Infrastructure (defaults mirror DeploymentConfig).
    std::size_t routers = 2;
    double router_bps = 867e6;
    double device_radio_bps = 600e6;
    std::size_t servers = 12;
    int cores_per_server = 40;
    double controller_rps = 600.0;
    int controllers = 1;
    /** Fixed per-task serverless overhead (mgmt + amortized start). */
    double faas_overhead_s = 0.062;
    /** Extra instantiation paid at the tail (cold-start mix). */
    double faas_overhead_tail_s = 0.140;
    /** Base data-sharing latency per hand-off (CouchDB base+lookup). */
    double sharing_s = 0.016;
    /** Data-sharing payload bandwidth, bytes/second. */
    double sharing_Bps = 150e6;
    /** On-board task-queue bound (drop-oldest shedding in the DES). */
    int edge_queue_limit = 64;
    /** p99/mean multiplier of a stable station's queueing part. */
    double stable_tail_factor = 3.0;
    /** p99/mean multiplier of the execution jitter + stragglers. */
    double exec_tail_factor = 1.7;
    /** Observation horizon for saturated stations. */
    double horizon_s = 120.0;
    /** Post-horizon drain window; completions later are censored. */
    double drain_s = 120.0;
    /** Scale routers/ToR/servers with devices/16 (Sec. 5.6). */
    bool scale_infra = false;

    // Platform behaviour.
    platform::PlatformKind kind = platform::PlatformKind::CentralizedFaas;
    /** HiveMind hybrid: fraction of bytes still uplinked. */
    double hybrid_uplink_fraction = 0.30;
    /** HiveMind hybrid: fraction of work done on-board. */
    double hybrid_prefilter_share = 0.10;
    /** Whether HiveMind places this job entirely on-board (S3/S4/S7). */
    bool hybrid_runs_on_edge = false;

    /** Fill workload fields from an application spec. */
    void apply_app(const apps::AppSpec& app);

    /** Fill platform fields from PlatformOptions. */
    void apply_platform(const platform::PlatformOptions& options);
};

/** Analytic predictions. */
struct AnalyticOutput
{
    double mean_latency_s = 0.0;
    double tail_latency_s = 0.0;   ///< 99th percentile estimate.
    double bandwidth_MBps = 0.0;   ///< Aggregate over-the-air traffic.
    /** Battery percent consumed per minute of operation, per device. */
    double battery_pct_per_min = 0.0;
    /** Bottleneck utilization (max rho across stations). */
    double max_utilization = 0.0;
};

/** Evaluate the model. */
AnalyticOutput evaluate(const AnalyticInput& input);

}  // namespace hivemind::analytic

#include "cloud/iaas.hpp"

#include <algorithm>
#include <utility>

namespace hivemind::cloud {

IaasPool::IaasPool(sim::Simulator& simulator, sim::Rng& rng,
                   const IaasConfig& config)
    : simulator_(&simulator),
      rng_(rng.fork()),
      config_(config)
{
    free_workers_.reserve(static_cast<std::size_t>(config.workers));
    for (int w = config.workers - 1; w >= 0; --w)
        free_workers_.push_back(static_cast<std::size_t>(w));
}

void
IaasPool::submit(double work_core_ms,
                 std::function<void(const IaasTrace&)> done)
{
    Pending p;
    p.work_core_ms = work_core_ms;
    p.done = std::move(done);
    p.submit = simulator_->now();
    ++active_;
    // The load balancer is a single FIFO service stage.
    sim::Time service = sim::from_seconds(1.0 / config_.lb_rps);
    sim::Time start = std::max(lb_free_, simulator_->now());
    lb_free_ = start + service;
    auto self = this;
    simulator_->schedule_at(lb_free_ + config_.dispatch,
                            [self, p = std::move(p)]() mutable {
                                self->dispatch(std::move(p));
                            });
}

void
IaasPool::dispatch(Pending p)
{
    if (!free_workers_.empty()) {
        std::size_t w = free_workers_.back();
        free_workers_.pop_back();
        run(std::move(p), w);
        return;
    }
    queue_.push_back(std::move(p));
}

void
IaasPool::run(Pending p, std::size_t worker)
{
    IaasTrace trace;
    trace.submit = p.submit;
    trace.exec_start = simulator_->now();
    double factor = rng_.lognormal_median(1.0, config_.interference_sigma);
    if (rng_.chance(config_.straggler_prob))
        factor *= rng_.bounded_pareto(1.5, config_.straggler_max_factor, 1.2);
    double exec_ms = p.work_core_ms * factor;
    auto self = this;
    simulator_->schedule_in(
        sim::from_millis(exec_ms),
        [self, worker, trace, done = std::move(p.done)]() mutable {
            self->free_workers_.push_back(worker);
            --self->active_;
            ++self->completed_;
            trace.done = self->simulator_->now();
            if (done)
                done(trace);
            if (!self->queue_.empty()) {
                Pending next = std::move(self->queue_.front());
                self->queue_.pop_front();
                self->dispatch(std::move(next));
            }
        });
}

}  // namespace hivemind::cloud

#pragma once

/**
 * @file
 * CouchDB-style backing store used for serverless data exchange.
 *
 * OpenWhisk routes all inter-function data through CouchDB: "for two
 * functions to exchange data they have to go through the OpenWhisk
 * controller to get a handle to a database object" (Sec. 3.3). The
 * model is a c-server FIFO queue (the DB's request handlers) with a
 * fixed per-request base latency plus a size-dependent transfer term;
 * concurrency contention emerges from the queue, matching the
 * "especially when many functions try to access data concurrently"
 * observation (Sec. 4.4).
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hivemind::cloud {

/** Tuning knobs of the store model. */
struct DataStoreConfig
{
    /** Concurrent request handlers. */
    int handlers = 16;
    /** Base service latency per request (parse/index/commit). */
    sim::Time base_latency = sim::from_millis(10.0);
    /** Payload streaming bandwidth (bytes/second). */
    double bandwidth_Bps = 150e6;
    /** Controller round trip to resolve the object handle (Sec. 3.3). */
    sim::Time handle_lookup = sim::from_millis(3.0);
    /** Lognormal sigma on the base latency (compaction, contention). */
    double jitter_sigma = 0.45;
};

/** FIFO c-server queue model of the CouchDB instance. */
class DataStore
{
  public:
    DataStore(sim::Simulator& simulator, sim::Rng& rng,
              const DataStoreConfig& config);

    /**
     * Issue a read or write of @p bytes; @p done fires at completion.
     * Reads and writes share the handler pool.
     */
    void access(std::uint64_t bytes, std::function<void()> done);

    /** Requests completed so far. */
    std::uint64_t requests() const { return requests_; }

    /** Total payload bytes moved through the store. */
    std::uint64_t bytes_transferred() const { return bytes_transferred_; }

    /** Observed access latencies (seconds). */
    const sim::Summary& latency() const { return latency_; }

    /**
     * Outage window (chaos injection): every handler stalls until
     * @p until; accesses queue behind the outage and complete once the
     * store is back. Overlapping outages extend the window.
     */
    void fail_until(sim::Time until);

    /** Whether an outage window is currently open. */
    bool in_outage() const { return simulator_->now() < outage_until_; }

    /** Outage windows injected so far. */
    std::uint64_t outages() const { return outages_; }

  private:
    sim::Simulator* simulator_;
    sim::Rng rng_;
    DataStoreConfig config_;
    std::vector<sim::Time> handler_free_;
    sim::Time outage_until_ = 0;
    std::uint64_t outages_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t bytes_transferred_ = 0;
    sim::Summary latency_;
};

}  // namespace hivemind::cloud

#include "cloud/sharing.hpp"

#include <utility>

namespace hivemind::cloud {

const char*
to_string(SharingProtocol p)
{
    switch (p) {
      case SharingProtocol::CouchDb:
        return "CouchDB";
      case SharingProtocol::DirectRpc:
        return "RPC";
      case SharingProtocol::InMemory:
        return "In-memory";
      case SharingProtocol::RemoteMemory:
        return "RemoteMem";
    }
    return "?";
}

DataSharingFabric::DataSharingFabric(sim::Simulator& simulator, sim::Rng& rng,
                                     DataStore& store,
                                     const SharingConfig& config)
    : simulator_(&simulator),
      rng_(rng.fork()),
      store_(&store),
      config_(config)
{
}

void
DataSharingFabric::share(SharingProtocol protocol, std::uint64_t bytes,
                         std::function<void()> done)
{
    sim::Time start = simulator_->now();
    switch (protocol) {
      case SharingProtocol::CouchDb: {
        // Parent write, then child read, each a full store access.
        auto self = this;
        store_->access(bytes, [self, bytes, start,
                               done = std::move(done)]() mutable {
            self->store_->access(bytes, [self, start,
                                         done = std::move(done)]() {
                self->latency_couch_.add(
                    sim::to_seconds(self->simulator_->now() - start));
                if (done)
                    done();
            });
        });
        return;
      }
      case SharingProtocol::DirectRpc: {
        sim::Time lat = config_.rpc_latency +
            sim::from_seconds(static_cast<double>(bytes) /
                              config_.rpc_bandwidth_Bps);
        // Mild jitter from the kernel stack.
        lat = sim::from_seconds(
            rng_.lognormal_median(sim::to_seconds(lat), 0.12));
        latency_rpc_.add(sim::to_seconds(lat));
        simulator_->schedule_in(lat, std::move(done));
        return;
      }
      case SharingProtocol::InMemory: {
        sim::Time lat = sim::from_seconds(static_cast<double>(bytes) /
                                          config_.memcpy_bandwidth_Bps);
        latency_mem_.add(sim::to_seconds(lat));
        simulator_->schedule_in(lat, std::move(done));
        return;
      }
      case SharingProtocol::RemoteMemory: {
        sim::Time lat = config_.rdma_latency +
            sim::from_seconds(static_cast<double>(bytes) /
                              config_.rdma_bandwidth_Bps);
        latency_rdma_.add(sim::to_seconds(lat));
        simulator_->schedule_in(lat, std::move(done));
        return;
      }
    }
}

const sim::Summary&
DataSharingFabric::latency(SharingProtocol p) const
{
    switch (p) {
      case SharingProtocol::CouchDb:
        return latency_couch_;
      case SharingProtocol::DirectRpc:
        return latency_rpc_;
      case SharingProtocol::InMemory:
        return latency_mem_;
      case SharingProtocol::RemoteMemory:
        return latency_rdma_;
    }
    return latency_couch_;
}

}  // namespace hivemind::cloud

#pragma once

/**
 * @file
 * Inter-function data-sharing protocols (Fig. 6c, Sec. 4.4).
 *
 * Dependent serverless functions exchange intermediate data through
 * one of four mechanisms:
 *  - CouchDb:    OpenWhisk's default — controller handle lookup plus
 *                a store write by the parent and a read by the child.
 *  - DirectRpc:  point-to-point RPC over the cluster network (what
 *                HiveMind's synthesized Thrift APIs use at the edge
 *                boundary).
 *  - InMemory:   child placed in the parent's container; the hand-off
 *                is a memcpy within one address space.
 *  - RemoteMemory: HiveMind's FPGA fabric (Sec. 4.4) — an RoCE-style
 *                one-sided access over UPI with no host CPU and no OS
 *                buffer copies.
 */

#include <cstdint>
#include <functional>

#include "cloud/datastore.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hivemind::cloud {

/** How a child function obtains its parent's output. */
enum class SharingProtocol
{
    CouchDb,
    DirectRpc,
    InMemory,
    RemoteMemory,
};

/** Human-readable protocol name for table output. */
const char* to_string(SharingProtocol p);

/** Latency/throughput constants of the sharing mechanisms. */
struct SharingConfig
{
    /** Software RPC: per-message stack latency, both ends combined. */
    sim::Time rpc_latency = sim::from_micros(60.0);
    /** Software RPC payload bandwidth (TCP on 10 GbE, one stream). */
    double rpc_bandwidth_Bps = 1.0e9;
    /** In-memory hand-off bandwidth (memcpy). */
    double memcpy_bandwidth_Bps = 8.0e9;
    /** FPGA remote-memory access base latency (RoCE-style over UPI). */
    sim::Time rdma_latency = sim::from_micros(2.4);
    /** FPGA remote-memory streaming bandwidth (UPI-attached). */
    double rdma_bandwidth_Bps = 11.0e9;
};

/**
 * Executes data hand-offs between dependent functions under a chosen
 * protocol, recording per-protocol latency summaries.
 */
class DataSharingFabric
{
  public:
    DataSharingFabric(sim::Simulator& simulator, sim::Rng& rng,
                      DataStore& store, const SharingConfig& config);

    /**
     * Move @p bytes of parent output to the child.
     *
     * @param protocol the mechanism to use
     * @param bytes payload size
     * @param done completion callback
     */
    void share(SharingProtocol protocol, std::uint64_t bytes,
               std::function<void()> done);

    /** Observed hand-off latency (seconds) per protocol. */
    const sim::Summary& latency(SharingProtocol p) const;

  private:
    sim::Simulator* simulator_;
    sim::Rng rng_;
    DataStore* store_;
    SharingConfig config_;
    sim::Summary latency_couch_;
    sim::Summary latency_rpc_;
    sim::Summary latency_mem_;
    sim::Summary latency_rdma_;
};

}  // namespace hivemind::cloud

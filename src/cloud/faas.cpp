#include "cloud/faas.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

namespace hivemind::cloud {

FaasRuntime::FaasRuntime(sim::Simulator& simulator, sim::Rng& rng,
                         Cluster& cluster, DataStore& store,
                         const FaasConfig& config)
    : simulator_(&simulator),
      rng_(rng.fork()),
      cluster_(&cluster),
      config_(config),
      sharing_(simulator, rng, store, SharingConfig{}),
      controller_free_(
          static_cast<std::size_t>(config.controllers > 0 ? config.controllers
                                                          : 1),
          0)
{
}

void
FaasRuntime::set_placement_policy(PlacementPolicy policy)
{
    policy_ = std::move(policy);
}

void
FaasRuntime::fail_controller(sim::Time takeover)
{
    ++controller_failures_;
    sim::Time resume = simulator_->now() + takeover;
    for (sim::Time& t : controller_free_)
        t = std::max(t, resume);
}

bool
FaasRuntime::container_lost(const PendingInvocation& inv) const
{
    return inv.trace.server != kNoServer &&
        cluster_->server(inv.trace.server).epoch() != inv.epoch;
}

void
FaasRuntime::crash_server(std::size_t server, sim::Time down_for)
{
    if (server >= cluster_->size())
        return;
    Server& srv = cluster_->server(server);
    if (srv.down())
        return;
    ++server_crashes_;
    srv.set_down(true);
    srv.bump_epoch();

    // Warm containers on the host die with it: drop their pool entries
    // and cancel the keep-alive expiries. Their memory claims (and the
    // ones of every in-flight container) are wiped wholesale below, so
    // per-entry releases would double-free.
    for (auto& [app, pool] : warm_) {
        (void)app;
        auto it = pool.by_server.find(server);
        if (it == pool.by_server.end())
            continue;
        for (WarmEntry& e : it->second)
            simulator_->cancel(e.expiry);
        pool.total -= it->second.size();
        pool.by_server.erase(it);
    }
    srv.reset_occupancy();

    // Kill the bodies executing on the host and re-drive each through
    // its Restore policy. Invocations caught in another phase
    // (instantiation, data sharing) notice the epoch bump when their
    // callback fires. body_inflight_ is an ordered map, so victims are
    // processed in a deterministic order.
    std::vector<std::uint64_t> victims;
    for (const auto& [id, body] : body_inflight_) {
        if (body.inv.trace.server == server)
            victims.push_back(id);
    }
    for (std::uint64_t id : victims) {
        auto it = body_inflight_.find(id);
        BodyInFlight body = std::move(it->second);
        body_inflight_.erase(it);
        simulator_->cancel(body.event);
        double elapsed_ms =
            sim::to_millis(simulator_->now() - body.exec_start);
        double frac = body.full_exec_ms > 0.0
            ? std::clamp(elapsed_ms / body.full_exec_ms, 0.0, 1.0)
            : 1.0;
        double progressed = body.inv.completed_fraction +
            (1.0 - body.inv.completed_fraction) * frac;
        redrive_after_crash(std::move(body.inv), progressed);
    }

    if (down_for > 0) {
        auto self = this;
        simulator_->schedule_in(down_for, [self, server]() {
            self->restore_server(server);
        });
    }
}

void
FaasRuntime::restore_server(std::size_t server)
{
    if (server >= cluster_->size())
        return;
    Server& srv = cluster_->server(server);
    if (!srv.down())
        return;
    srv.set_down(false);
    drain_queue();
}

void
FaasRuntime::redrive_after_crash(PendingInvocation inv, double progressed)
{
    --running_;
    ++killed_invocations_;
    double saved = inv.completed_fraction;
    if (inv.request.recovery == FaultRecovery::Checkpoint) {
        double g = inv.request.checkpoint_granularity;
        if (g > 0.0)
            saved = std::max(saved, std::floor(progressed / g) * g);
    }
    work_lost_core_ms_ += (progressed - saved) * inv.request.work_core_ms;
    drain_queue();
    if (inv.request.recovery == FaultRecovery::None) {
        ++lost_;
        inv.trace.lost = true;
        inv.trace.exec_done = simulator_->now();
        inv.trace.done = inv.trace.exec_done;
        ++completed_;
        bump_active(-1);
        if (inv.done)
            inv.done(inv.trace);
        return;
    }
    reexecuted_core_ms_ += (progressed - saved) * inv.request.work_core_ms;
    inv.completed_fraction = saved;
    inv.trace.attempts += 1;
    auto self = this;
    simulator_->schedule_in(
        config_.sched_overhead + config_.bus_delay,
        [self, inv = std::move(inv)]() mutable {
            inv.trace.scheduled = self->simulator_->now();
            self->try_start(std::move(inv));
        });
}

void
FaasRuntime::bump_active(int delta)
{
    active_ += delta;
    active_series_.add(simulator_->now(), static_cast<double>(active_));
}

void
FaasRuntime::invoke(const InvokeRequest& request, InvokeCallback done)
{
    PendingInvocation inv;
    inv.request = request;
    inv.done = std::move(done);
    inv.trace.submit = simulator_->now();
    bump_active(1);

    // Front-end: NGINX + controller authentication against the DB,
    // then the scheduling decision and the Kafka hop. The controller
    // replicas form a FIFO service queue whose saturation is the
    // centralized-scalability bottleneck of Sec. 5.6.
    double fe_ms = rng_.lognormal_median(
        sim::to_millis(config_.front_end_median), config_.front_end_sigma);
    sim::Time service = sim::from_seconds(1.0 / config_.controller_rps);
    auto it = std::min_element(controller_free_.begin(),
                               controller_free_.end());
    sim::Time start = std::max(*it, simulator_->now());
    *it = start + service;
    sim::Time decided = *it + sim::from_millis(fe_ms) +
        config_.sched_overhead + config_.bus_delay;
    auto self = this;
    simulator_->schedule_at(decided, [self, inv = std::move(inv)]() mutable {
        inv.trace.scheduled = self->simulator_->now();
        self->try_start(std::move(inv));
    });
}

std::optional<std::size_t>
FaasRuntime::peek_warm(const std::string& app, std::size_t preferred) const
{
    auto it = warm_.find(app);
    if (it == warm_.end() || it->second.total == 0)
        return std::nullopt;
    const WarmPool& pool = it->second;
    auto pref = pool.by_server.find(preferred);
    if (pref != pool.by_server.end() && !pref->second.empty())
        return preferred;
    for (const auto& [server, entries] : pool.by_server) {
        if (!entries.empty())
            return server;
    }
    return std::nullopt;
}

std::optional<std::size_t>
FaasRuntime::claim_warm(const std::string& app, std::size_t preferred)
{
    auto it = warm_.find(app);
    if (it == warm_.end() || it->second.total == 0)
        return std::nullopt;
    WarmPool& pool = it->second;
    auto usable = [this](std::size_t server) {
        const Server& s = cluster_->server(server);
        return !s.down() && s.free_cores() > 0 && !s.on_probation();
    };
    std::size_t chosen = kNoServer;
    auto pref = pool.by_server.find(preferred);
    if (pref != pool.by_server.end() && !pref->second.empty() &&
        usable(preferred)) {
        chosen = preferred;
    } else {
        for (const auto& [server, entries] : pool.by_server) {
            if (!entries.empty() && usable(server)) {
                chosen = server;
                break;
            }
        }
    }
    if (chosen == kNoServer)
        return std::nullopt;
    auto& entries = pool.by_server[chosen];
    WarmEntry e = entries.back();
    entries.pop_back();
    --pool.total;
    simulator_->cancel(e.expiry);
    // Memory stays reserved; the container transitions idle -> active.
    cluster_->server(chosen).release_memory(e.memory_mb);
    return chosen;
}

bool
FaasRuntime::try_start(PendingInvocation inv)
{
    if (running_ >= config_.max_concurrency) {
        // User concurrency limit: park until capacity frees up.
        int prio = inv.request.priority;
        queue_[prio].push_back(std::move(inv));
        return false;
    }

    std::optional<std::size_t> warm_server = inv.request.isolate
        ? std::nullopt
        : peek_warm(inv.request.app, inv.request.preferred_server);

    std::optional<std::size_t> target;
    if (policy_) {
        target = policy_(inv.request, *cluster_, warm_server);
    } else {
        // Stock policy: prefer a warm container, else least loaded.
        if (warm_server &&
            cluster_->server(*warm_server).free_cores() > 0 &&
            !cluster_->server(*warm_server).on_probation()) {
            target = warm_server;
        } else {
            target = cluster_->least_loaded(inv.request.memory_mb);
        }
    }

    if (!target) {
        int prio = inv.request.priority;
        queue_[prio].push_back(std::move(inv));
        return false;
    }

    bool reuse = false;
    if (warm_server && *target == *warm_server) {
        auto claimed = claim_warm(inv.request.app, *target);
        if (claimed && *claimed == *target)
            reuse = true;
        else if (claimed) {
            // Claimed a warm container elsewhere; follow it.
            target = claimed;
            reuse = true;
        }
    }
    if (!reuse && !cluster_->server(*target).can_host(inv.request.memory_mb)) {
        int prio = inv.request.priority;
        queue_[prio].push_back(std::move(inv));
        return false;
    }
    start_on_server(std::move(inv), *target, reuse);
    return true;
}

void
FaasRuntime::start_on_server(PendingInvocation inv, std::size_t server,
                             bool reuse_warm)
{
    Server& srv = cluster_->server(server);
    srv.acquire_core();
    srv.acquire_memory(inv.request.memory_mb);
    ++running_;
    inv.trace.server = server;
    inv.epoch = srv.epoch();

    sim::Time start_latency;
    if (reuse_warm) {
        ++warm_starts_;
        inv.trace.cold_start = false;
        inv.trace.colocated = inv.request.colocate_with_parent &&
            server == inv.request.preferred_server;
        start_latency = config_.warm_start;
    } else {
        ++cold_starts_;
        inv.trace.cold_start = true;
        start_latency = sim::from_millis(rng_.lognormal_median(
            sim::to_millis(config_.cold_start_median),
            config_.cold_start_sigma));
    }

    auto self = this;
    simulator_->schedule_in(
        start_latency, [self, inv = std::move(inv)]() mutable {
            if (self->container_lost(inv)) {
                // The host crashed while the container was starting.
                double progressed = inv.completed_fraction;
                self->redrive_after_crash(std::move(inv), progressed);
                return;
            }
            inv.trace.container_ready = self->simulator_->now();
            // Fetch input produced by a parent function, if any.
            if (inv.request.input_bytes > 0) {
                SharingProtocol proto = inv.trace.colocated
                    ? SharingProtocol::InMemory
                    : self->config_.sharing;
                std::uint64_t bytes = inv.request.input_bytes;
                self->sharing_.share(
                    proto, bytes, [self, inv = std::move(inv)]() mutable {
                        inv.trace.input_ready = self->simulator_->now();
                        self->run_body(std::move(inv));
                    });
            } else {
                inv.trace.input_ready = inv.trace.container_ready;
                self->run_body(std::move(inv));
            }
        });
}

void
FaasRuntime::run_body(PendingInvocation inv)
{
    if (container_lost(inv)) {
        // The host crashed while the input was being fetched.
        double progressed = inv.completed_fraction;
        redrive_after_crash(std::move(inv), progressed);
        return;
    }
    const Server& srv = cluster_->server(inv.trace.server);
    // Interference scales with how full the host is (Sec. 3.3);
    // optional performance isolation (cache/bandwidth partitioning,
    // Sec. 4.3) removes the load-dependent part.
    double sigma = config_.interference_base_sigma +
        (config_.performance_isolation
             ? 0.0
             : config_.interference_load_sigma * srv.occupancy());
    double factor = rng_.lognormal_median(1.0, sigma);
    if (rng_.chance(config_.straggler_prob)) {
        factor *= rng_.bounded_pareto(1.5, config_.straggler_max_factor, 1.2);
    }
    double remaining = 1.0 - inv.completed_fraction;
    double exec_ms = inv.request.work_core_ms * factor * remaining;

    // The body is registered while it runs so a server crash can kill
    // it (cancel the event, measure progress, re-drive). A self-fault
    // (fault_prob, Listing 2 / Sec. 3.2) schedules the death instead
    // of the completion; a crash arriving first wins either way.
    bool self_fault = rng_.chance(config_.fault_prob * remaining);
    double dead_frac = 0.0;
    if (self_fault) {
        dead_frac = rng_.uniform(0.05, 0.95);
        ++faults_;
    }
    sim::Time fire_in =
        sim::from_millis(self_fault ? exec_ms * dead_frac : exec_ms);

    std::uint64_t id = next_body_id_++;
    auto self = this;
    sim::EventId event = simulator_->schedule_in(fire_in, [self, id]() {
        auto it = self->body_inflight_.find(id);
        if (it == self->body_inflight_.end())
            return;  // Killed by a server crash.
        BodyInFlight body = std::move(it->second);
        self->body_inflight_.erase(it);
        if (body.self_fault) {
            self->body_self_fault(std::move(body.inv), body.dead_frac);
        } else {
            body.inv.trace.exec_done = self->simulator_->now();
            self->finish(std::move(body.inv));
        }
    });

    BodyInFlight body;
    body.event = event;
    body.exec_start = simulator_->now();
    body.full_exec_ms = exec_ms;
    body.self_fault = self_fault;
    body.dead_frac = dead_frac;
    body.inv = std::move(inv);
    body_inflight_.emplace(id, std::move(body));
}

void
FaasRuntime::body_self_fault(PendingInvocation inv, double dead_frac)
{
    // The function dies partway through; recovery follows the task's
    // Restore policy (Listing 2 / Sec. 3.2).
    Server& s = cluster_->server(inv.trace.server);
    s.release_core();
    s.release_memory(inv.request.memory_mb);
    --running_;
    drain_queue();
    double progressed = inv.completed_fraction +
        (1.0 - inv.completed_fraction) * dead_frac;
    double saved = inv.completed_fraction;
    if (inv.request.recovery == FaultRecovery::Checkpoint) {
        // Work up to the last checkpoint boundary survives.
        double g = inv.request.checkpoint_granularity;
        if (g > 0.0)
            saved = std::max(saved, std::floor(progressed / g) * g);
    }
    work_lost_core_ms_ += (progressed - saved) * inv.request.work_core_ms;
    if (inv.request.recovery == FaultRecovery::None) {
        // Lost: report once so callers can count misses.
        ++lost_;
        inv.trace.lost = true;
        inv.trace.exec_done = simulator_->now();
        inv.trace.done = inv.trace.exec_done;
        ++completed_;
        bump_active(-1);
        if (inv.done)
            inv.done(inv.trace);
        return;
    }
    reexecuted_core_ms_ += (progressed - saved) * inv.request.work_core_ms;
    inv.completed_fraction = saved;
    inv.trace.attempts += 1;
    // Retry skips the front-end but re-enters scheduling.
    auto self = this;
    simulator_->schedule_in(
        config_.sched_overhead + config_.bus_delay,
        [self, inv = std::move(inv)]() mutable {
            inv.trace.scheduled = self->simulator_->now();
            self->try_start(std::move(inv));
        });
}

void
FaasRuntime::finish(PendingInvocation inv)
{
    auto complete = [this](PendingInvocation done_inv) {
        if (container_lost(done_inv)) {
            // The host crashed while the output was being published;
            // the work itself finished, so progress is 1.0 and a
            // Checkpoint re-drive only re-publishes.
            redrive_after_crash(std::move(done_inv), 1.0);
            return;
        }
        Server& srv = cluster_->server(done_inv.trace.server);
        srv.release_core();
        srv.release_memory(done_inv.request.memory_mb);
        --running_;
        // Park the now-idle container for warm reuse — unless the
        // task demanded a dedicated container (Isolate directive).
        if (!done_inv.request.isolate) {
            park_warm(done_inv.request.app, done_inv.trace.server,
                      done_inv.request.memory_mb);
        }
        done_inv.trace.done = simulator_->now();
        ++completed_;
        bump_active(-1);
        drain_queue();
        if (done_inv.done)
            done_inv.done(done_inv.trace);
    };

    if (inv.request.output_bytes > 0) {
        SharingProtocol proto = inv.trace.colocated
            ? SharingProtocol::InMemory
            : config_.sharing;
        std::uint64_t bytes = inv.request.output_bytes;
        sharing_.share(proto, bytes,
                       [inv = std::move(inv),
                        complete = std::move(complete)]() mutable {
                           complete(std::move(inv));
                       });
    } else {
        complete(std::move(inv));
    }
}

void
FaasRuntime::park_warm(const std::string& app, std::size_t server,
                       std::uint64_t memory_mb)
{
    if (config_.keepalive <= 0)
        return;
    Server& srv = cluster_->server(server);
    if (!srv.has_memory(memory_mb))
        return;  // Under memory pressure, tear down instead.
    srv.acquire_memory(memory_mb);
    auto self = this;
    sim::EventId expiry = simulator_->schedule_in(
        config_.keepalive, [self, app, server, memory_mb]() {
            auto it = self->warm_.find(app);
            if (it == self->warm_.end())
                return;
            auto bucket = it->second.by_server.find(server);
            if (bucket == it->second.by_server.end())
                return;
            auto& entries = bucket->second;
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (entries[i].memory_mb == memory_mb) {
                    self->cluster_->server(server).release_memory(memory_mb);
                    entries.erase(entries.begin() +
                                  static_cast<std::ptrdiff_t>(i));
                    --it->second.total;
                    // Freed memory may unblock queued invocations.
                    self->drain_queue();
                    return;
                }
            }
        });
    WarmPool& pool = warm_[app];
    pool.by_server[server].push_back(WarmEntry{memory_mb, expiry});
    ++pool.total;
}

void
FaasRuntime::drain_queue()
{
    // One bounded sweep in priority order: try_start re-queues at the
    // back on failure. Under deep backlogs requests are homogeneous,
    // so a run of consecutive placement failures means the sweep
    // should stop — without the bound a per-completion full-queue
    // scan turns the saturated regime quadratic.
    int consecutive_failures = 0;
    for (auto& [prio, q] : queue_) {
        (void)prio;
        std::size_t n = q.size();
        for (std::size_t i = 0; i < n && !q.empty(); ++i) {
            PendingInvocation inv = std::move(q.front());
            q.pop_front();
            if (try_start(std::move(inv))) {
                consecutive_failures = 0;
            } else if (++consecutive_failures >= 16) {
                return;
            }
        }
    }
}

void
FaasRuntime::invoke_parallel(const InvokeRequest& request, int ways,
                             InvokeCallback done)
{
    if (ways <= 1) {
        invoke(request, std::move(done));
        return;
    }
    // Fan out: each worker gets an equal slice of the work plus its
    // share of the input; fan-in pays one aggregation hand-off per
    // worker (distributing work and aggregating results "incurs
    // overheads from data sharing and synchronization", Sec. 3.2).
    struct JoinState
    {
        int remaining;
        InvocationTrace merged;
        InvokeCallback done;
        bool first = true;
    };
    auto join = std::make_shared<JoinState>();
    join->remaining = ways;
    join->done = std::move(done);

    InvokeRequest part = request;
    part.work_core_ms = request.work_core_ms / static_cast<double>(ways);
    part.input_bytes = request.input_bytes / static_cast<std::uint64_t>(ways);
    part.output_bytes =
        request.output_bytes / static_cast<std::uint64_t>(ways);

    for (int w = 0; w < ways; ++w) {
        invoke(part, [join](const InvocationTrace& t) {
            if (join->first) {
                join->merged = t;
                join->first = false;
            } else {
                // The merged trace spans the slowest path.
                join->merged.scheduled =
                    std::max(join->merged.scheduled, t.scheduled);
                join->merged.container_ready =
                    std::max(join->merged.container_ready, t.container_ready);
                join->merged.input_ready =
                    std::max(join->merged.input_ready, t.input_ready);
                join->merged.exec_done =
                    std::max(join->merged.exec_done, t.exec_done);
                join->merged.done = std::max(join->merged.done, t.done);
                join->merged.submit = std::min(join->merged.submit, t.submit);
                join->merged.cold_start |= t.cold_start;
            }
            if (--join->remaining == 0 && join->done)
                join->done(join->merged);
        });
    }
}

}  // namespace hivemind::cloud

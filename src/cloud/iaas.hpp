#pragma once

/**
 * @file
 * Statically provisioned (IaaS/PaaS) deployment model.
 *
 * The paper's "fixed" and "Centralized IaaS" baselines run tasks on a
 * reserved pool of long-running containers: no instantiation cost and
 * low interference, but a hard concurrency ceiling — when offered
 * load exceeds the pool, tasks queue and latency balloons (Figs. 5a,
 * 5b). Spinning up additional instances takes "several seconds"
 * (Sec. 3.2), so within an experiment the pool size is fixed.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hivemind::cloud {

/** Reserved-pool deployment knobs. */
struct IaasConfig
{
    /** Long-running worker containers (each pinned to a core). */
    int workers = 40;
    /** Request dispatch overhead (load balancer hop). */
    sim::Time dispatch = sim::from_millis(0.8);
    /**
     * Load-balancer throughput (requests/second). Like the OpenWhisk
     * controller, the reserved deployment's front end is a central
     * process that saturates at large swarm sizes.
     */
    double lb_rps = 800.0;
    /** Service-time jitter (reserved resources are quieter). */
    double interference_sigma = 0.08;
    /** Probability of an extreme straggler. */
    double straggler_prob = 0.004;
    double straggler_max_factor = 4.0;
};

/** Completion record for a reserved-pool task. */
struct IaasTrace
{
    sim::Time submit = 0;
    sim::Time exec_start = 0;
    sim::Time done = 0;

    double queue_s() const { return sim::to_seconds(exec_start - submit); }
    double total_s() const { return sim::to_seconds(done - submit); }
};

/** FIFO task pool over a fixed set of reserved workers. */
class IaasPool
{
  public:
    IaasPool(sim::Simulator& simulator, sim::Rng& rng,
             const IaasConfig& config);

    /** Submit a task of @p work_core_ms; @p done fires at completion. */
    void submit(double work_core_ms,
                std::function<void(const IaasTrace&)> done);

    /** Currently running + queued tasks. */
    int active() const { return active_; }

    /** Tasks completed. */
    std::uint64_t completed() const { return completed_; }

    /** Pool size. */
    int workers() const { return config_.workers; }

  private:
    struct Pending
    {
        double work_core_ms;
        std::function<void(const IaasTrace&)> done;
        sim::Time submit;
    };

    void dispatch(Pending p);
    void run(Pending p, std::size_t worker);

    sim::Simulator* simulator_;
    sim::Rng rng_;
    IaasConfig config_;
    std::vector<std::size_t> free_workers_;  // Stack of idle workers.
    sim::Time lb_free_ = 0;  // Load-balancer next-free time.
    std::deque<Pending> queue_;
    int active_ = 0;
    std::uint64_t completed_ = 0;
};

}  // namespace hivemind::cloud

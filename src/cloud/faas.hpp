#pragma once

/**
 * @file
 * Serverless (FaaS) runtime modeled on Apache OpenWhisk.
 *
 * Invocation pipeline (Sec. 2.3): an HTTP request hits the NGINX
 * front-end, the Controller authenticates against CouchDB and picks
 * an Invoker, the function descriptor travels over Kafka, and the
 * Invoker instantiates the function in a Docker container (cold) or
 * reuses a warm one. Execution occupies a pinned logical core;
 * interference from co-located containers and occasional stragglers
 * perturb the service time (Sec. 3.3). Failed functions are respawned
 * (Fig. 5c). Inter-function inputs/outputs go through the
 * DataSharingFabric under a configurable protocol (Fig. 6c).
 *
 * The placement decision is pluggable: HiveMind's scheduler
 * (src/core) swaps in its own policy that co-locates children with
 * parents and keeps containers warm for 10-30 s (Sec. 4.3).
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/datastore.hpp"
#include "cloud/server.hpp"
#include "cloud/sharing.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hivemind::cloud {

/** Fault-recovery policy for an invocation (DSL Restore, Listing 2). */
enum class FaultRecovery
{
    None,        ///< A failed function is lost (caller never hears back).
    Respawn,     ///< Re-execute from scratch (OpenWhisk default).
    Checkpoint,  ///< Resume from the last persisted checkpoint.
};

/** Sentinel for "no preferred server". */
inline constexpr std::size_t kNoServer = std::numeric_limits<std::size_t>::max();

/** Runtime tuning knobs (defaults model stock OpenWhisk). */
struct FaasConfig
{
    /** NGINX + controller + auth-DB front-end latency (median). */
    sim::Time front_end_median = sim::from_millis(3.0);
    double front_end_sigma = 0.40;
    /** Kafka publish-subscribe hop to the chosen invoker. */
    sim::Time bus_delay = sim::from_millis(2.0);
    /** Controller scheduling decision. */
    sim::Time sched_overhead = sim::from_millis(1.0);
    /** Docker cold-start latency (median, lognormal). */
    sim::Time cold_start_median = sim::from_millis(160.0);
    double cold_start_sigma = 0.35;
    /**
     * Warm container reuse latency. Stock OpenWhisk pauses idle
     * containers; reuse pays an unpause + runtime re-init. HiveMind's
     * scheduler keeps containers hot (Sec. 4.3) and lowers this.
     */
    sim::Time warm_start = sim::from_millis(45.0);
    /**
     * Idle container lifetime. Stock OpenWhisk tears containers down
     * shortly after completion; HiveMind keeps them 10-30 s (Sec. 4.3).
     */
    sim::Time keepalive = sim::from_millis(400.0);
    /** Concurrent-function user limit (AWS default: 1000). */
    int max_concurrency = 1000;
    /**
     * Controller front-end throughput, requests/second. The stock
     * OpenWhisk deployment runs one controller; it becomes the
     * serialization point at large swarm sizes (Sec. 5.6). HiveMind
     * deploys multiple shared-state schedulers when needed.
     */
    double controller_rps = 600.0;
    /** Number of controller/scheduler replicas (Sec. 4.3). */
    int controllers = 1;
    /** Service-time jitter floor (reserved-style noise). */
    double interference_base_sigma = 0.06;
    /** Extra jitter proportional to server occupancy (co-location). */
    double interference_load_sigma = 0.50;
    /** Probability an invocation is an extreme straggler. */
    double straggler_prob = 0.012;
    /** Straggler slow-down upper bound (bounded pareto). */
    double straggler_max_factor = 6.0;
    /** Probability a function fails mid-run and must respawn. */
    double fault_prob = 0.0;
    /** Protocol for inter-function data exchange. */
    SharingProtocol sharing = SharingProtocol::CouchDb;
    /**
     * Cache/memory-bandwidth partitioning between co-located
     * containers (Sec. 4.3 "can also be integrated ... for
     * performance and security isolation"): removes load-dependent
     * interference at a small fixed throughput cost.
     */
    bool performance_isolation = false;
};

/** One function invocation request. */
struct InvokeRequest
{
    /** Action (container image) identifier; warm reuse is per-app. */
    std::string app;
    /** CPU work on a reference cloud core, in core-milliseconds. */
    double work_core_ms = 10.0;
    /** Container memory footprint. */
    std::uint64_t memory_mb = 256;
    /** Bytes of parent output to fetch before executing. */
    std::uint64_t input_bytes = 0;
    /** Bytes of output to publish after executing. */
    std::uint64_t output_bytes = 0;
    /** Preferred server (HiveMind co-location hint). */
    std::size_t preferred_server = kNoServer;
    /**
     * When the preferred server hosts the parent's container and the
     * child can run in it, the hand-off is in-memory (Sec. 4.3).
     */
    bool colocate_with_parent = false;
    /** Fault-recovery policy (DSL Restore directive). */
    FaultRecovery recovery = FaultRecovery::Respawn;
    /**
     * Dedicated container (DSL Isolate directive): never reuse a warm
     * container and never donate this one to the warm pool.
     */
    bool isolate = false;
    /** Scheduling priority (DSL Schedule directive; higher first). */
    int priority = 0;
    /**
     * Checkpoint interval as a fraction of the work; on failure the
     * resumed copy redoes at most this fraction (plus restore cost).
     */
    double checkpoint_granularity = 0.25;
};

/** Timing trace of one completed invocation. */
struct InvocationTrace
{
    sim::Time submit = 0;           ///< Request arrival.
    sim::Time scheduled = 0;        ///< Placement decided (mgmt done).
    sim::Time container_ready = 0;  ///< Cold/warm start finished.
    sim::Time input_ready = 0;      ///< Input data fetched.
    sim::Time exec_done = 0;        ///< Function body finished.
    sim::Time done = 0;             ///< Output published; completion.
    bool cold_start = false;
    bool colocated = false;         ///< Ran in parent's container.
    bool lost = false;              ///< Failed with FaultRecovery::None.
    int attempts = 1;               ///< 1 + respawns after faults.
    std::size_t server = kNoServer;

    /** Management share: front-end + scheduling + bus. */
    double mgmt_s() const { return sim::to_seconds(scheduled - submit); }
    /** Container instantiation share. */
    double instantiation_s() const
    {
        return sim::to_seconds(container_ready - scheduled);
    }
    /** Data I/O share (input fetch + output publish). */
    double data_s() const
    {
        return sim::to_seconds((input_ready - container_ready) +
                               (done - exec_done));
    }
    /** Pure execution share. */
    double exec_s() const { return sim::to_seconds(exec_done - input_ready); }
    /** End-to-end latency in seconds. */
    double total_s() const { return sim::to_seconds(done - submit); }
};

/** Completion callback for an invocation. */
using InvokeCallback = std::function<void(const InvocationTrace&)>;

/**
 * Placement policy hook: return the server to run on, or nullopt to
 * defer (queue) the request. @p warm_server is the server holding a
 * warm container for the app, if any.
 */
using PlacementPolicy = std::function<std::optional<std::size_t>(
    const InvokeRequest& request, const Cluster& cluster,
    std::optional<std::size_t> warm_server)>;

/** OpenWhisk-style serverless runtime over a Cluster. */
class FaasRuntime
{
  public:
    FaasRuntime(sim::Simulator& simulator, sim::Rng& rng, Cluster& cluster,
                DataStore& store, const FaasConfig& config);

    /** Submit an invocation; @p done fires at completion. */
    void invoke(const InvokeRequest& request, InvokeCallback done);

    /**
     * Fan-out/fan-in helper for intra-task parallelism (Sec. 3.2):
     * splits @p request.work_core_ms across @p ways functions, runs
     * them concurrently, pays one extra data aggregation per worker,
     * and reports a trace whose exec window spans first-start to
     * last-finish.
     */
    void invoke_parallel(const InvokeRequest& request, int ways,
                         InvokeCallback done);

    /** Replace the placement policy (HiveMind scheduler hook). */
    void set_placement_policy(PlacementPolicy policy);

    /**
     * Re-attempt queued invocations. Call after cluster capacity was
     * freed outside the runtime's own completion path (e.g., a server
     * leaving probation).
     */
    void poke() { drain_queue(); }

    /**
     * Fail the controller process; requests stall until a standby
     * takes over after @p takeover (Sec. 4.7: the controller runs
     * "with two hot standby copies that can take over"). Already
     * accepted requests are unaffected; new front-end work queues.
     */
    void fail_controller(sim::Time takeover);

    /**
     * Crash a backend server (Sec. 4.7 robustness): every container on
     * it dies instantly — warm pool entries evaporate, in-flight
     * invocations are killed and re-driven through their Restore
     * policies (None loses them, Respawn restarts from scratch,
     * Checkpoint resumes from the last boundary). The server rejoins
     * placement after @p down_for (0 keeps it down until someone calls
     * restore_server). No-op when the server is already down.
     */
    void crash_server(std::size_t server, sim::Time down_for);

    /** Bring a crashed server back into placement immediately. */
    void restore_server(std::size_t server);

    /** Controller failures injected. */
    std::uint64_t controller_failures() const { return controller_failures_; }

    /** Backend server crashes injected. */
    std::uint64_t server_crashes() const { return server_crashes_; }

    /** In-flight invocations killed by server crashes. */
    std::uint64_t killed_invocations() const { return killed_invocations_; }

    /** Function progress discarded by faults and crashes, core-ms. */
    double work_lost_core_ms() const { return work_lost_core_ms_; }

    /** Previously executed work re-driven after recovery, core-ms. */
    double reexecuted_core_ms() const { return reexecuted_core_ms_; }

    /** Currently running + queued invocations. */
    int active() const { return active_; }

    /** Active-task time series (Fig. 5c). */
    const sim::TimeSeries& active_series() const { return active_series_; }

    /** Completed invocation count. */
    std::uint64_t completed() const { return completed_; }

    /** Cold starts incurred. */
    std::uint64_t cold_starts() const { return cold_starts_; }

    /** Warm reuses. */
    std::uint64_t warm_starts() const { return warm_starts_; }

    /** Function faults injected (each triggers recovery). */
    std::uint64_t faults() const { return faults_; }

    /** Invocations lost under FaultRecovery::None. */
    std::uint64_t lost() const { return lost_; }

    /** The data-sharing fabric (for direct experiments, Fig. 6c). */
    DataSharingFabric& sharing() { return sharing_; }

    /** The cluster (worker-monitor view). */
    Cluster& cluster() { return *cluster_; }

    /** Active config. */
    const FaasConfig& config() const { return config_; }

    /** Mutable config access (experiments adjust fault rates live). */
    FaasConfig& mutable_config() { return config_; }

  private:
    /** In-flight state of one invocation attempt. */
    struct PendingInvocation
    {
        InvokeRequest request;
        InvokeCallback done;
        InvocationTrace trace;
        /** Fraction of the work already checkpointed (Checkpoint). */
        double completed_fraction = 0.0;
        /** Host epoch when the container started (crash detection). */
        std::uint64_t epoch = 0;
    };

    /** A function body currently executing on a core. */
    struct BodyInFlight
    {
        PendingInvocation inv;
        sim::EventId event = 0;     ///< Completion (or self-fault) event.
        sim::Time exec_start = 0;
        double full_exec_ms = 0.0;  ///< Time to finish the remaining work.
        bool self_fault = false;    ///< Scheduled to die mid-run.
        double dead_frac = 0.0;
    };

    /**
     * Try to place/start a request; queue it if no capacity.
     * @return true when the invocation started.
     */
    bool try_start(PendingInvocation inv);

    /** Begin container acquisition on the chosen server. */
    void start_on_server(PendingInvocation inv, std::size_t server,
                         bool reuse_warm);

    /** Run the function body (after input fetch). */
    void run_body(PendingInvocation inv);

    /** Function body finished; publish output. */
    void finish(PendingInvocation inv);

    /** Whether the invocation's container died in a server crash. */
    bool container_lost(const PendingInvocation& inv) const;

    /**
     * Recovery path after a server crash killed the invocation's
     * container: account the lost work at overall progress
     * @p progressed and re-drive (or lose) it per its Restore policy.
     * The crashed host's occupancy was already wiped wholesale, so
     * nothing is released here.
     */
    void redrive_after_crash(PendingInvocation inv, double progressed);

    /** The function's own mid-run fault fired (fault_prob path). */
    void body_self_fault(PendingInvocation inv, double dead_frac);

    /** Look up (and claim) a warm container for an app. */
    std::optional<std::size_t> claim_warm(const std::string& app,
                                          std::size_t preferred);

    /** Peek which server holds a warm container without claiming. */
    std::optional<std::size_t> peek_warm(const std::string& app,
                                         std::size_t preferred) const;

    /** Park an idle container as warm with a keep-alive timer. */
    void park_warm(const std::string& app, std::size_t server,
                   std::uint64_t memory_mb);

    /** Service the pending queue after capacity was released. */
    void drain_queue();

    void bump_active(int delta);

    sim::Simulator* simulator_;
    sim::Rng rng_;
    Cluster* cluster_;
    FaasConfig config_;
    DataSharingFabric sharing_;
    PlacementPolicy policy_;

    struct WarmEntry
    {
        std::uint64_t memory_mb;
        sim::EventId expiry;
    };
    /** Idle warm containers: app -> server -> parked entries. */
    struct WarmPool
    {
        std::unordered_map<std::size_t, std::vector<WarmEntry>> by_server;
        std::size_t total = 0;
    };
    std::map<std::string, WarmPool> warm_;

    /** Pending queues by priority (higher priorities drain first). */
    std::map<int, std::deque<PendingInvocation>, std::greater<int>> queue_;
    /**
     * Executing bodies by id — ordered map so crash sweeps visit
     * victims in a deterministic order (bit-identical recovery runs).
     */
    std::map<std::uint64_t, BodyInFlight> body_inflight_;
    std::uint64_t next_body_id_ = 0;
    std::vector<sim::Time> controller_free_;  // Per-replica next-free.
    int active_ = 0;
    int running_ = 0;  // Functions holding a core (gated by the limit).
    sim::TimeSeries active_series_;
    std::uint64_t completed_ = 0;
    std::uint64_t cold_starts_ = 0;
    std::uint64_t warm_starts_ = 0;
    std::uint64_t faults_ = 0;
    std::uint64_t lost_ = 0;
    std::uint64_t controller_failures_ = 0;
    std::uint64_t server_crashes_ = 0;
    std::uint64_t killed_invocations_ = 0;
    double work_lost_core_ms_ = 0.0;
    double reexecuted_core_ms_ = 0.0;
};

}  // namespace hivemind::cloud

#pragma once

/**
 * @file
 * Cloud server and cluster models: cores, memory, occupancy.
 *
 * The paper's backend is 12 two-socket, 40-core Intel servers with
 * 128-256 GB of RAM (Sec. 2.1). A running container occupies one
 * logical core — "two containers can share a physical server, but
 * never share a logical core" (Sec. 4.3) — while any live container
 * (including idle kept-alive ones) reserves its memory footprint.
 * Worker monitors (Sec. 4.3) read the occupancy numbers exposed here.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace hivemind::cloud {

/** One backend server: a pool of pinned core slots and memory. */
class Server
{
  public:
    /**
     * @param id index within the cluster
     * @param cores logical cores available for containers
     * @param memory_mb RAM available for containers
     */
    Server(std::size_t id, int cores, std::uint64_t memory_mb)
        : id_(id), cores_(cores), memory_mb_(memory_mb)
    {
    }

    std::size_t id() const { return id_; }
    int cores() const { return cores_; }
    int busy_cores() const { return busy_cores_; }
    int free_cores() const { return cores_ - busy_cores_; }

    std::uint64_t memory_mb() const { return memory_mb_; }
    std::uint64_t used_memory_mb() const { return used_memory_mb_; }

    /** Fraction of cores currently occupied, in [0, 1]. */
    double
    occupancy() const
    {
        return cores_ > 0
            ? static_cast<double>(busy_cores_) / static_cast<double>(cores_)
            : 1.0;
    }

    /** Whether a new container needing @p memory_mb can start now. */
    bool
    can_host(std::uint64_t memory_mb) const
    {
        return !down_ && !on_probation_ && free_cores() > 0 &&
            has_memory(memory_mb);
    }

    /** Whether @p memory_mb of RAM is available. */
    bool
    has_memory(std::uint64_t memory_mb) const
    {
        return used_memory_mb_ + memory_mb <= memory_mb_;
    }

    /** Claim one logical core (pinned to a container). */
    void acquire_core() { ++busy_cores_; }
    /** Release a logical core. */
    void release_core() { --busy_cores_; }

    /** Reserve container memory. */
    void acquire_memory(std::uint64_t mb) { used_memory_mb_ += mb; }
    /** Release container memory. */
    void release_memory(std::uint64_t mb) { used_memory_mb_ -= mb; }

    /**
     * Probation (Sec. 4.6): a server producing several stragglers is
     * excluded from placement for a few minutes.
     */
    bool on_probation() const { return on_probation_; }
    void set_probation(bool p) { on_probation_ = p; }

    /** Straggler count feeding the probation policy. */
    int straggler_count() const { return straggler_count_; }
    void note_straggler() { ++straggler_count_; }
    void reset_stragglers() { straggler_count_ = 0; }

    /**
     * Crash state (chaos injection, Sec. 4.7): a down server hosts
     * nothing and is excluded from placement until it restarts.
     */
    bool down() const { return down_; }
    void set_down(bool d) { down_ = d; }

    /**
     * Container-generation counter: bumped on every crash so in-flight
     * invocations can detect that the container they were running in no
     * longer exists (their core/memory claims died with it).
     */
    std::uint64_t epoch() const { return epoch_; }
    void bump_epoch() { ++epoch_; }

    /** Wipe all core/memory claims — everything on the host died. */
    void
    reset_occupancy()
    {
        busy_cores_ = 0;
        used_memory_mb_ = 0;
    }

  private:
    std::size_t id_;
    int cores_;
    std::uint64_t memory_mb_;
    int busy_cores_ = 0;
    std::uint64_t used_memory_mb_ = 0;
    bool on_probation_ = false;
    bool down_ = false;
    std::uint64_t epoch_ = 0;
    int straggler_count_ = 0;
};

/** The backend cluster: a fixed set of servers. */
class Cluster
{
  public:
    /** Build @p n identical servers. */
    Cluster(std::size_t n, int cores_per_server, std::uint64_t memory_mb)
    {
        servers_.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            servers_.emplace_back(i, cores_per_server, memory_mb);
    }

    std::size_t size() const { return servers_.size(); }
    Server& server(std::size_t i) { return servers_[i]; }
    const Server& server(std::size_t i) const { return servers_[i]; }
    std::vector<Server>& servers() { return servers_; }
    const std::vector<Server>& servers() const { return servers_; }

    /** Total free cores across the cluster. */
    int
    total_free_cores() const
    {
        int n = 0;
        for (const Server& s : servers_)
            n += s.free_cores();
        return n;
    }

    /**
     * Least-loaded server that can host a container of @p memory_mb.
     * Deterministic tie-break by index.
     */
    std::optional<std::size_t>
    least_loaded(std::uint64_t memory_mb) const
    {
        std::optional<std::size_t> best;
        double best_occ = 2.0;
        for (std::size_t i = 0; i < servers_.size(); ++i) {
            const Server& s = servers_[i];
            if (!s.can_host(memory_mb))
                continue;
            if (s.occupancy() < best_occ) {
                best_occ = s.occupancy();
                best = i;
            }
        }
        return best;
    }

  private:
    std::vector<Server> servers_;
};

}  // namespace hivemind::cloud

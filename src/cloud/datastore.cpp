#include "cloud/datastore.hpp"

#include <algorithm>
#include <utility>

namespace hivemind::cloud {

DataStore::DataStore(sim::Simulator& simulator, sim::Rng& rng,
                     const DataStoreConfig& config)
    : simulator_(&simulator),
      rng_(rng.fork()),
      config_(config),
      handler_free_(static_cast<std::size_t>(config.handlers), 0)
{
}

void
DataStore::fail_until(sim::Time until)
{
    if (until <= simulator_->now())
        return;
    ++outages_;
    outage_until_ = std::max(outage_until_, until);
    // Handlers ride out the outage; queued work resumes afterwards.
    for (sim::Time& t : handler_free_)
        t = std::max(t, outage_until_);
}

void
DataStore::access(std::uint64_t bytes, std::function<void()> done)
{
    sim::Time now = simulator_->now();
    // Controller round trip for the object handle precedes queueing.
    // During an outage window the request stalls until the store is
    // back (handler_free_ was pushed past the window at fail time).
    sim::Time enqueue = std::max(now + config_.handle_lookup, outage_until_);
    auto it = std::min_element(handler_free_.begin(), handler_free_.end());
    sim::Time start = std::max(*it, enqueue);
    double base_ms = sim::to_millis(config_.base_latency);
    sim::Time service = sim::from_millis(
        rng_.lognormal_median(base_ms, config_.jitter_sigma));
    service += sim::from_seconds(static_cast<double>(bytes) /
                                 config_.bandwidth_Bps);
    *it = start + service;
    sim::Time completion = *it;
    ++requests_;
    bytes_transferred_ += bytes;
    latency_.add(sim::to_seconds(completion - now));
    if (done)
        simulator_->schedule_at(completion, std::move(done));
}

}  // namespace hivemind::cloud

#pragma once

/**
 * @file
 * Edge-device battery model.
 *
 * Energy is integrated from three draws: motion (flight / driving),
 * on-board compute (CPU busy time), and radio (per-byte transmit /
 * receive energy). The paper notes that "most power consumption is
 * due to drone motion, [but] communication can also exhaust the
 * device's battery" (Sec. 5.2), and that on-board execution "quickly
 * drains the drones' battery", leaving Scenario B incomplete for the
 * distributed platform (Sec. 2.3) — both effects fall out of this
 * accounting.
 */

namespace hivemind::edge {

/** Energy draw constants for one device class. */
struct PowerModel
{
    /** Motion (hover + translation for drones; drive for rovers), W. */
    double motion_w = 80.0;
    /** On-board CPU at full load, W (above idle). */
    double compute_w = 2.5;
    /** Radio energy per byte sent or received, J/byte. */
    double radio_j_per_byte = 1.0e-7;
    /** Baseline electronics, W (always on while the device is up). */
    double idle_w = 1.5;
};

/** Joule-integrating battery. */
class Battery
{
  public:
    /** @param capacity_j usable capacity in joules. */
    explicit Battery(double capacity_j) : capacity_j_(capacity_j) {}

    double capacity_j() const { return capacity_j_; }
    double used_j() const { return used_j_; }

    /** Remaining charge in [0, 1]. */
    double
    remaining_fraction() const
    {
        double r = 1.0 - used_j_ / capacity_j_;
        return r > 0.0 ? r : 0.0;
    }

    /** Consumed charge in percent, clamped to 100. */
    double consumed_percent() const { return 100.0 * (1.0 - remaining_fraction()); }

    /** Whether the battery is exhausted. */
    bool depleted() const { return used_j_ >= capacity_j_; }

    /** Draw @p joules (clamps at depletion; draw is never negative). */
    void
    drain(double joules)
    {
        if (joules > 0.0)
            used_j_ += joules;
    }

  private:
    double capacity_j_;
    double used_j_ = 0.0;
};

}  // namespace hivemind::edge

#pragma once

/**
 * @file
 * Edge device models: drones and robotic cars.
 *
 * The drone preset mirrors the Parrot AR 2.0 testbed of Sec. 2.1:
 * a 1 GHz 32-bit ARM Cortex A8 (modeled as a 0.12x cloud-core speed
 * factor), 4 m/s flight speed, an 8 fps camera at 2 MB/frame with a
 * 6.7 m x 8.75 m ground footprint, and 802.11 connectivity. The rover
 * preset mirrors the Raspberry Pi cars of Sec. 5.5 (slower motion,
 * larger battery, faster SoC). A device follows a waypoint route,
 * produces camera frames, and runs tasks on a single-core on-board
 * executor whose busy time feeds the battery model.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "edge/battery.hpp"
#include "geo/vec2.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hivemind::edge {

/** Static description of a device class. */
struct DeviceSpec
{
    std::string kind = "drone";
    /** Cruise speed, m/s. */
    double speed_mps = 4.0;
    /** On-board CPU speed relative to a reference cloud core. */
    double cpu_speed_factor = 0.12;
    /** Usable battery capacity, J. */
    double battery_j = 60'000.0;
    /** Power draws. */
    PowerModel power;
    /** Camera frames per second. */
    double camera_fps = 8.0;
    /** Bytes per camera frame (default 2 MB, Sec. 2.1). */
    std::uint64_t frame_bytes = 2u * 1024u * 1024u;
    /** Camera ground footprint, meters (cross-track x along-track). */
    double footprint_w = 6.7;
    double footprint_h = 8.75;
    /** On-board task queue bound; older tasks are shed beyond this. */
    std::size_t queue_limit = 64;
    /** Sensor frames bufferable on-board while disconnected (Sec. 4.6). */
    std::size_t frame_buffer_limit = 256;

    /** The Parrot AR 2.0 drone of the paper's main testbed. */
    static DeviceSpec drone();

    /** The Raspberry Pi robotic car of Sec. 5.5. */
    static DeviceSpec rover();
};

/**
 * Single-core on-board executor with a bounded FIFO queue.
 *
 * Edge devices execute one task at a time; when sensor tasks arrive
 * faster than they complete, the oldest queued tasks are shed (sensor
 * data goes stale). Busy time is reported for energy accounting.
 */
class OnboardExecutor
{
  public:
    OnboardExecutor(sim::Simulator& simulator, sim::Rng& rng,
                    double cpu_speed_factor, std::size_t queue_limit);

    /**
     * Run @p work_core_ms (reference-core milliseconds) on the device
     * CPU; @p done fires at completion with the task latency in
     * seconds. Tasks shed due to queue overflow never call back.
     */
    void submit(double work_core_ms, std::function<void(double)> done);

    /** Total CPU-busy seconds (feeds compute energy). */
    double busy_seconds() const { return busy_seconds_; }

    /** Tasks shed because the queue was full. */
    std::uint64_t shed() const { return shed_; }

    /** Tasks completed. */
    std::uint64_t completed() const { return completed_; }

    /** Queue length including the running task. */
    std::size_t depth() const { return queue_.size() + (running_ ? 1 : 0); }

  private:
    struct Pending
    {
        double work_core_ms;
        std::function<void(double)> done;
        sim::Time submit;
    };

    void maybe_run();

    sim::Simulator* simulator_;
    sim::Rng rng_;
    double speed_factor_;
    std::size_t queue_limit_;
    std::deque<Pending> queue_;
    bool running_ = false;
    double busy_seconds_ = 0.0;
    std::uint64_t shed_ = 0;
    std::uint64_t completed_ = 0;

    // --- Send-horizon classification (adaptive lookahead) ---
    // A completion event is *silent* only when its task has no done
    // callback AND no send-capable task is queued behind it (starting
    // a queued task from a silent completion would hide a future send
    // from the shard's send horizon). If a send-capable task arrives
    // while a silent completion is in flight, the pending completion
    // is upgraded via Simulator::mark_send.
    std::size_t queue_sendable_ = 0;   ///< Queued tasks with a callback.
    sim::EventId running_event_ = 0;   ///< In-flight completion event.
    sim::Time running_done_at_ = 0;    ///< Its scheduled time.
    bool running_silent_ = false;      ///< Whether it was classed silent.
};

/** One edge device: kinematics, camera, battery, on-board executor. */
class Device
{
  public:
    Device(sim::Simulator& simulator, sim::Rng& rng, std::size_t id,
           const DeviceSpec& spec);

    std::size_t id() const { return id_; }
    const DeviceSpec& spec() const { return spec_; }
    Battery& battery() { return battery_; }
    const Battery& battery() const { return battery_; }
    OnboardExecutor& executor() { return executor_; }
    const OnboardExecutor& executor() const { return executor_; }

    /** Assign a waypoint route; motion starts at the current time. */
    void set_route(std::vector<geo::Vec2> route);

    /** Position at time @p t (clamped to route endpoints). */
    geo::Vec2 position_at(sim::Time t) const;

    /** Simulated time at which the current route completes. */
    sim::Time route_complete_at() const { return route_end_; }

    /** Whether the route has been fully flown at @p t. */
    bool route_done(sim::Time t) const { return t >= route_end_; }

    /** Seconds of motion needed for the current route. */
    double route_duration_s() const;

    /** Charge motion energy for @p seconds of flight/drive. */
    void account_motion(double seconds);

    /** Charge radio energy for @p bytes sent or received. */
    void account_radio(std::uint64_t bytes);

    /** Charge compute energy for @p seconds of CPU busy time. */
    void account_compute(double seconds);

    /** Charge idle electronics for @p seconds. */
    void account_idle(double seconds);

    /** Mark the device failed (crash / power loss); stops heartbeats. */
    void set_failed(bool failed) { failed_ = failed; }
    bool failed() const { return failed_; }

    /** Whether the device can still operate. */
    bool alive() const { return !failed_ && !battery_.depleted(); }

    // --- Degraded-mode local autonomy (Sec. 4.6) ---
    // While no controller is reachable the device falls back to
    // on-board control: it keeps flying locally-derived waypoints and
    // buffers sensor frames instead of offloading them, draining the
    // buffer once a controller is back.

    /** Enter/leave on-board local control. */
    void set_degraded(bool on) { degraded_ = on; }
    bool degraded() const { return degraded_; }

    /**
     * Buffer one sensor frame of @p bytes on-board.
     * @return false when the (bounded) buffer is full — the frame is
     *         dropped and counted in frames_dropped_onboard().
     */
    bool buffer_frame(std::uint64_t bytes);

    std::uint64_t buffered_frames() const { return buffered_frames_; }
    std::uint64_t buffered_bytes() const { return buffered_bytes_; }
    std::uint64_t frames_dropped_onboard() const { return frames_dropped_; }

    /** Drained buffer contents on reconnect. */
    struct DrainedFrames
    {
        std::uint64_t frames = 0;
        std::uint64_t bytes = 0;
    };

    /** Take (and clear) the buffered frames for uplink. */
    DrainedFrames drain_buffered();

    /**
     * Local waypoint continuation: with no controller to hand out a
     * fresh route, re-fly the just-finished route in reverse so the
     * device keeps covering its last-known region instead of freezing.
     * @return false when there is no route to continue (device holds
     *         position).
     */
    bool resume_route_reversed();

  private:
    sim::Simulator* simulator_;
    std::size_t id_;
    DeviceSpec spec_;
    Battery battery_;
    OnboardExecutor executor_;
    std::vector<geo::Vec2> route_;
    std::vector<double> cum_dist_;  // Cumulative distance at waypoint i.
    sim::Time route_start_ = 0;
    sim::Time route_end_ = 0;
    bool failed_ = false;
    bool degraded_ = false;
    std::uint64_t buffered_frames_ = 0;
    std::uint64_t buffered_bytes_ = 0;
    std::uint64_t frames_dropped_ = 0;
};

}  // namespace hivemind::edge

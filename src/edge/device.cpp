#include "edge/device.hpp"

#include <utility>

namespace hivemind::edge {

DeviceSpec
DeviceSpec::drone()
{
    DeviceSpec s;
    s.kind = "drone";
    s.speed_mps = 4.0;
    s.cpu_speed_factor = 0.12;
    s.battery_j = 60'000.0;          // ~16.6 Wh pack.
    s.power.motion_w = 80.0;         // Quadrotor hover + translation.
    s.power.compute_w = 2.5;         // Cortex A8 at full load.
    s.power.radio_j_per_byte = 1.0e-7;
    s.power.idle_w = 1.5;
    s.camera_fps = 8.0;
    s.frame_bytes = 2u * 1024u * 1024u;
    s.footprint_w = 6.7;
    s.footprint_h = 8.75;
    return s;
}

DeviceSpec
DeviceSpec::rover()
{
    DeviceSpec s;
    s.kind = "rover";
    s.speed_mps = 1.0;
    s.cpu_speed_factor = 0.25;       // Raspberry Pi class SoC.
    s.battery_j = 100'000.0;         // Larger ground-vehicle pack.
    s.power.motion_w = 18.0;         // Driving is far cheaper than hovering.
    s.power.compute_w = 4.0;
    s.power.radio_j_per_byte = 1.0e-7;
    s.power.idle_w = 2.0;
    s.camera_fps = 8.0;
    s.frame_bytes = 2u * 1024u * 1024u;
    s.footprint_w = 4.0;             // Forward-facing camera swath.
    s.footprint_h = 5.0;
    return s;
}

OnboardExecutor::OnboardExecutor(sim::Simulator& simulator, sim::Rng& rng,
                                 double cpu_speed_factor,
                                 std::size_t queue_limit)
    : simulator_(&simulator),
      rng_(rng.fork()),
      speed_factor_(cpu_speed_factor),
      queue_limit_(queue_limit)
{
}

void
OnboardExecutor::submit(double work_core_ms, std::function<void(double)> done)
{
    if (queue_.size() >= queue_limit_) {
        // Shed the oldest queued task: its sensor data is stale.
        if (queue_.front().done)
            --queue_sendable_;
        queue_.pop_front();
        ++shed_;
    }
    if (done) {
        ++queue_sendable_;
        if (running_ && running_silent_) {
            // The in-flight completion was classified silent, but it
            // will now start this send-capable task when it fires —
            // surface that to the shard's send horizon.
            simulator_->mark_send(running_event_, running_done_at_);
            running_silent_ = false;
        }
    }
    queue_.push_back(Pending{work_core_ms, std::move(done),
                             simulator_->now()});
    maybe_run();
}

void
OnboardExecutor::maybe_run()
{
    if (running_ || queue_.empty())
        return;
    running_ = true;
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    if (p.done)
        --queue_sendable_;
    // Slow single core plus thermal/DVFS jitter.
    double exec_ms = p.work_core_ms / speed_factor_ *
        rng_.lognormal_median(1.0, 0.10);
    busy_seconds_ += exec_ms / 1000.0;
    const bool sendable = static_cast<bool>(p.done);
    auto self = this;
    auto body = [self, p = std::move(p)]() {
        self->running_ = false;
        self->running_silent_ = false;
        ++self->completed_;
        double latency_s =
            sim::to_seconds(self->simulator_->now() - p.submit);
        if (p.done)
            p.done(latency_s);
        self->maybe_run();
    };
    const sim::Time delay = sim::from_millis(exec_ms);
    running_silent_ = !sendable && queue_sendable_ == 0;
    running_done_at_ = simulator_->now() + delay;
    running_event_ =
        running_silent_
            ? simulator_->schedule_silent_in(delay, std::move(body))
            : simulator_->schedule_in(delay, std::move(body));
}

Device::Device(sim::Simulator& simulator, sim::Rng& rng, std::size_t id,
               const DeviceSpec& spec)
    : simulator_(&simulator),
      id_(id),
      spec_(spec),
      battery_(spec.battery_j),
      executor_(simulator, rng, spec.cpu_speed_factor, spec.queue_limit)
{
}

void
Device::set_route(std::vector<geo::Vec2> route)
{
    route_ = std::move(route);
    cum_dist_.assign(route_.size(), 0.0);
    for (std::size_t i = 1; i < route_.size(); ++i) {
        cum_dist_[i] =
            cum_dist_[i - 1] + route_[i - 1].distance_to(route_[i]);
    }
    route_start_ = simulator_->now();
    double total = cum_dist_.empty() ? 0.0 : cum_dist_.back();
    route_end_ = route_start_ + sim::from_seconds(total / spec_.speed_mps);
}

double
Device::route_duration_s() const
{
    return sim::to_seconds(route_end_ - route_start_);
}

geo::Vec2
Device::position_at(sim::Time t) const
{
    if (route_.empty())
        return {0.0, 0.0};
    if (t <= route_start_ || route_.size() == 1)
        return route_.front();
    if (t >= route_end_)
        return route_.back();
    double traveled =
        sim::to_seconds(t - route_start_) * spec_.speed_mps;
    // Find the active segment (cum_dist_ is nondecreasing).
    std::size_t i = 1;
    while (i < cum_dist_.size() && cum_dist_[i] < traveled)
        ++i;
    if (i >= route_.size())
        return route_.back();
    double seg = cum_dist_[i] - cum_dist_[i - 1];
    double frac = seg > 0.0 ? (traveled - cum_dist_[i - 1]) / seg : 0.0;
    return route_[i - 1] + (route_[i] - route_[i - 1]) * frac;
}

bool
Device::buffer_frame(std::uint64_t bytes)
{
    if (buffered_frames_ >= spec_.frame_buffer_limit) {
        ++frames_dropped_;  // Bounded store: oldest data ages out of
        return false;       // relevance, so new frames are refused.
    }
    ++buffered_frames_;
    buffered_bytes_ += bytes;
    return true;
}

Device::DrainedFrames
Device::drain_buffered()
{
    DrainedFrames out{buffered_frames_, buffered_bytes_};
    buffered_frames_ = 0;
    buffered_bytes_ = 0;
    return out;
}

bool
Device::resume_route_reversed()
{
    if (route_.size() < 2)
        return false;
    std::vector<geo::Vec2> reversed(route_.rbegin(), route_.rend());
    set_route(std::move(reversed));
    return true;
}

void
Device::account_motion(double seconds)
{
    battery_.drain(spec_.power.motion_w * seconds);
}

void
Device::account_radio(std::uint64_t bytes)
{
    battery_.drain(spec_.power.radio_j_per_byte *
                   static_cast<double>(bytes));
}

void
Device::account_compute(double seconds)
{
    battery_.drain(spec_.power.compute_w * seconds);
}

void
Device::account_idle(double seconds)
{
    battery_.drain(spec_.power.idle_w * seconds);
}

}  // namespace hivemind::edge

#pragma once

/**
 * @file
 * RPC processing models: kernel software stack vs FPGA offload.
 *
 * Sec. 4.5: HiveMind offloads the entire RPC stack onto an FPGA seen
 * as a NUMA node over UPI, achieving 2.1 us round trips and 12.4 Mrps
 * per core for 64 B RPCs, versus tens of microseconds and sub-Mrps
 * through the kernel TCP/IP stack. Each RpcProcessor models one end's
 * message processing as a single-server queue with a fixed per-message
 * service time plus a processing latency; the host CPU time each
 * message would consume is tracked so experiments can report the CPU
 * cycles acceleration frees for function execution.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hivemind::net {

/** Per-endpoint RPC processing parameters. */
struct RpcConfig
{
    /** Fixed processing latency added to each message (one end). */
    sim::Time latency = 0;
    /** Sustainable messages/second per processing core. */
    double throughput_rps = 1.0;
    /** Processing cores at this endpoint. */
    int cores = 1;
    /** Host-CPU seconds consumed per message (0 when offloaded). */
    double cpu_s_per_msg = 0.0;

    /**
     * Kernel TCP/IP + Thrift-style software stack: ~25 us per end and
     * ~0.6 Mrps per core, each message burning host CPU.
     */
    static RpcConfig software_stack(int cores);

    /**
     * HiveMind's FPGA offload (Sec. 4.5): 2.1 us RTT means ~1.05 us
     * per end; 12.4 Mrps per core; zero host CPU per message.
     */
    static RpcConfig fpga_offload(int cores);
};

/**
 * Models RPC message processing at one endpoint as an M/D/c-style
 * queue (deterministic service, c cores, FIFO).
 */
class RpcProcessor
{
  public:
    RpcProcessor(sim::Simulator& simulator, RpcConfig config);

    /**
     * Process one message; @p done fires when processing completes.
     *
     * @return the completion time.
     */
    sim::Time process(std::function<void()> done);

    /** Host CPU seconds consumed so far by message processing. */
    double cpu_seconds_used() const { return cpu_seconds_; }

    /** Messages processed. */
    std::uint64_t messages() const { return messages_; }

    /** The active configuration. */
    const RpcConfig& config() const { return config_; }

  private:
    sim::Simulator* simulator_;
    RpcConfig config_;
    std::vector<sim::Time> core_free_;  // Per-core next-free times.
    double cpu_seconds_ = 0.0;
    std::uint64_t messages_ = 0;
};

}  // namespace hivemind::net

#pragma once

/**
 * @file
 * Cloud-edge network topology for a swarm deployment.
 *
 * Mirrors the paper's testbed (Sec. 2.1): edge devices reach the
 * cluster through two 867 Mbps 802.11ac routers; the 12 servers sit
 * behind 10 GbE NICs on a 40 Gbps ToR switch. Device i is associated
 * with router i mod R. Transfers are chained store-and-forward over
 * the flow-level links, and every message additionally pays RPC
 * processing at both endpoints (software stack, or FPGA offload on the
 * cloud side when acceleration is enabled, Sec. 4.5).
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/flow.hpp"
#include "net/link.hpp"
#include "net/rpc.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hivemind::net {

/** Static description of the deployment's network. */
struct TopologyConfig
{
    std::size_t devices = 16;
    std::size_t routers = 2;
    std::size_t servers = 12;
    /** Effective per-device radio rate (802.11ac client, ~600 Mbps). */
    double device_radio_bps = 600e6;
    /** Per-router shared medium capacity (LinkSys AC2200). */
    double router_bps = 867e6;
    double server_nic_bps = 10e9;
    double tor_bps = 40e9;
    /** One-way wireless latency (media access + air). */
    sim::Time wireless_prop = sim::from_millis(2.0);
    /** One-way wired latency per hop inside the cluster. */
    sim::Time lan_prop = sim::from_micros(20.0);
    /** Use the FPGA RPC offload on cloud servers (Sec. 4.5). */
    bool cloud_rpc_offload = false;
    /**
     * Multiply all shared-infrastructure capacities (routers, ToR) by
     * this factor; Fig. 17b scales links proportionally to swarm size.
     */
    double infra_scale = 1.0;
    /**
     * Wireless unreliability (Sec. 1: devices "are prone to
     * unreliable network connections"): probability that a wireless
     * transfer is corrupted and must be retransmitted after a
     * timeout. Applied per attempt, up to max_retransmits retries.
     */
    double wireless_loss = 0.0;
    sim::Time retransmit_timeout = sim::from_millis(50.0);
    int max_retransmits = 3;
};

/**
 * Delivery-time sentinel passed to a DeliveryCallback when a wireless
 * transfer was dropped: the retransmit budget ran out, either because
 * the device's radio was hard-partitioned (every attempt burns a
 * timeout without touching the air) or because probabilistic loss
 * corrupted every attempt including the last one.
 */
inline constexpr sim::Time kDropped = -1;

/** The full edge-cloud network with per-device accounting. */
class SwarmTopology
{
  public:
    /**
     * @param rng randomness source for the wireless-loss model; may
     *        be null when config.wireless_loss == 0.
     */
    SwarmTopology(sim::Simulator& simulator, const TopologyConfig& config,
                  sim::Rng* rng = nullptr);

    const TopologyConfig& config() const { return config_; }

    /**
     * Send @p bytes from device @p device to server @p server,
     * including RPC processing at both ends.
     */
    void send_uplink(std::size_t device, std::size_t server,
                     std::uint64_t bytes, DeliveryCallback done);

    /** Send @p bytes from a server down to a device. */
    void send_downlink(std::size_t server, std::size_t device,
                       std::uint64_t bytes, DeliveryCallback done);

    /** Intra-cluster transfer between two servers via the ToR. */
    void send_server_to_server(std::size_t from, std::size_t to,
                               std::uint64_t bytes, DeliveryCallback done);

    /**
     * Wired half of an uplink: router -> ToR -> server NIC plus the
     * receiving server's RPC processing. No radio hop, no wireless
     * loss model — the sharded scenario runtime serializes the air
     * segment on the device's owner shard (net::ShardLink) and hands
     * the frame to the cloud shard here.
     */
    void send_uplink_wired(std::size_t device, std::size_t server,
                           std::uint64_t bytes, DeliveryCallback done);

    /**
     * Wired half of a downlink: server RPC + NIC -> ToR -> router.
     * The radio hop back to the device is the caller's ShardLink.
     */
    void send_downlink_wired(std::size_t server, std::size_t device,
                             std::uint64_t bytes, DeliveryCallback done);

    /** Total bytes a device has sent + received (radio energy input). */
    std::uint64_t device_bytes(std::size_t device) const
    {
        return device_bytes_[device];
    }

    /** Aggregate over-the-air traffic meter (bandwidth figures). */
    const sim::RateMeter& air_meter() const { return air_meter_; }

    /**
     * Host CPU seconds the cloud spent on RPC processing (zero under
     * FPGA offload; Sec. 4.5 "frees up a lot of CPU resources").
     */
    double cloud_rpc_cpu_seconds() const;

    /** Queueing backlog currently on a router uplink (diagnostics). */
    sim::Time router_backlog(std::size_t router) const
    {
        return router_up_[router]->backlog();
    }

    /** Wireless retransmissions performed so far. */
    std::uint64_t retransmissions() const { return retransmissions_; }

    /**
     * Override the wireless loss probability for every device (the
     * ChaosEngine drives this during Gilbert-Elliott burst windows).
     * Negative restores the configured static loss.
     */
    void set_loss_override(double loss) { loss_override_ = loss; }

    /** Current loss override; negative when none is active. */
    double loss_override() const { return loss_override_; }

    /**
     * Black out (or restore) one device's radio — a hard partition.
     * While blocked, wireless attempts only burn retransmit timeouts;
     * once the budget is gone the frame is dropped (kDropped).
     */
    void set_device_blocked(std::size_t device, bool blocked);

    /** Whether the device's radio is currently blacked out. */
    bool device_blocked(std::size_t device) const;

    /** Effective wireless loss for a device right now. */
    double wireless_loss_now(std::size_t device) const;

    /** Wireless frames dropped after exhausting retries in a blackout. */
    std::uint64_t frames_dropped() const { return frames_dropped_; }

    /** The pooled-flow allocator all send paths run on (diagnostics). */
    const FlowPool& flows() const { return flows_; }

  private:
    /**
     * Run a wireless transfer with the loss model: invoke @p attempt
     * (which performs one try and reports its delivery time); on a
     * simulated corruption, wait out the retransmit timeout and try
     * again, up to the configured retry budget.
     */
    void with_retransmits(std::size_t device,
                          std::function<void(DeliveryCallback)> attempt,
                          DeliveryCallback done, int tries_left);

    sim::Simulator* simulator_;
    TopologyConfig config_;
    sim::Rng* rng_ = nullptr;
    std::uint64_t retransmissions_ = 0;
    std::uint64_t frames_dropped_ = 0;
    double loss_override_ = -1.0;
    std::vector<char> blocked_;
    std::vector<std::unique_ptr<Link>> device_up_;    // device -> router
    std::vector<std::unique_ptr<Link>> device_down_;  // router -> device
    std::vector<std::unique_ptr<Link>> router_up_;    // router -> tor
    std::vector<std::unique_ptr<Link>> router_down_;  // tor -> router
    std::unique_ptr<Link> tor_up_;
    std::unique_ptr<Link> tor_down_;
    std::vector<std::unique_ptr<Link>> nic_in_;       // tor -> server
    std::vector<std::unique_ptr<Link>> nic_out_;      // server -> tor
    std::vector<std::unique_ptr<RpcProcessor>> device_rpc_;
    std::vector<std::unique_ptr<RpcProcessor>> server_rpc_;
    std::vector<std::uint64_t> device_bytes_;
    sim::RateMeter air_meter_;
    /** Pooled flow records for every multi-hop transfer. */
    FlowPool flows_;
};

}  // namespace hivemind::net

#include "net/link.hpp"

#include <utility>

namespace hivemind::net {

Link::Link(sim::Simulator& simulator, std::string name, double rate_bps,
           sim::Time propagation)
    : simulator_(&simulator),
      name_(std::move(name)),
      rate_bps_(rate_bps),
      propagation_(propagation),
      meter_(sim::kSecond)
{
}

sim::Time
Link::transfer(std::uint64_t bytes, std::function<void()> done)
{
    sim::Time now = simulator_->now();
    sim::Time start = busy_until_ > now ? busy_until_ : now;
    if (busy_until_ <= now) {
        // The serializer went idle: close the previous busy period and
        // open a new one at this transfer's start.
        busy_accum_ += busy_until_ - busy_start_;
        busy_start_ = now;
    }
    double bits = static_cast<double>(bytes) * 8.0;
    sim::Time serialize = sim::from_seconds(bits / rate_bps_);
    busy_until_ = start + serialize;
    bytes_total_ += bytes;
    // Meter at serialization start — when the bytes cross the wire —
    // not at enqueue, so congestion spreads the reported bandwidth
    // instead of spiking it above the physical capacity.
    meter_.add(start, static_cast<double>(bytes));
    sim::Time arrival = busy_until_ + propagation_;
    if (done)
        simulator_->schedule_at(arrival, std::move(done));
    return arrival;
}

double
Link::utilization() const
{
    sim::Time now = simulator_->now();
    if (now <= 0)
        return 0.0;
    // Completed periods plus the elapsed part of the open one: a deep
    // backlog queued just now extends busy_until_ into the future but
    // contributes nothing until that time actually passes.
    sim::Time busy = busy_accum_;
    sim::Time open_end = busy_until_ < now ? busy_until_ : now;
    if (open_end > busy_start_)
        busy += open_end - busy_start_;
    if (busy > now)
        busy = now;
    return static_cast<double>(busy) / static_cast<double>(now);
}

}  // namespace hivemind::net

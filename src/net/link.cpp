#include "net/link.hpp"

#include <utility>

namespace hivemind::net {

Link::Link(sim::Simulator& simulator, std::string name, double rate_bps,
           sim::Time propagation)
    : simulator_(&simulator),
      name_(std::move(name)),
      rate_bps_(rate_bps),
      propagation_(propagation),
      meter_(sim::kSecond)
{
}

sim::Time
Link::transfer(std::uint64_t bytes, std::function<void()> done)
{
    sim::Time now = simulator_->now();
    sim::Time start = busy_until_ > now ? busy_until_ : now;
    double bits = static_cast<double>(bytes) * 8.0;
    sim::Time serialize = sim::from_seconds(bits / rate_bps_);
    busy_until_ = start + serialize;
    busy_accum_ += serialize;
    bytes_total_ += bytes;
    meter_.add(now, static_cast<double>(bytes));
    sim::Time arrival = busy_until_ + propagation_;
    if (done)
        simulator_->schedule_at(arrival, std::move(done));
    return arrival;
}

double
Link::utilization() const
{
    sim::Time now = simulator_->now();
    if (now <= 0)
        return 0.0;
    // Busy time can exceed "now" when a backlog extends into the
    // future; clip to the elapsed horizon.
    sim::Time busy = busy_accum_;
    if (busy > now)
        busy = now;
    return static_cast<double>(busy) / static_cast<double>(now);
}

}  // namespace hivemind::net

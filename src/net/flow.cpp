#include "net/flow.hpp"

#include <cassert>
#include <utility>

#include "net/link.hpp"
#include "net/rpc.hpp"

namespace hivemind::net {

FlowPool::Flow*
FlowPool::acquire()
{
    if (free_ == nullptr) {
        auto slab = std::make_unique<Flow[]>(kSlabFlows);
        for (std::size_t i = 0; i < kSlabFlows; ++i) {
            slab[i].free_next = free_;
            free_ = &slab[i];
        }
        slabs_.push_back(std::move(slab));
    }
    Flow* flow = free_;
    free_ = flow->free_next;
    flow->free_next = nullptr;
    ++live_;
    if (live_ > high_water_)
        high_water_ = live_;
    return flow;
}

void
FlowPool::release(Flow* flow)
{
    flow->done = nullptr;
    flow->hop_count = 0;
    flow->next_hop = 0;
    flow->meter = nullptr;
    flow->dst_rpc = nullptr;
    flow->free_next = free_;
    free_ = flow;
    --live_;
}

void
FlowPool::advance(Flow* flow)
{
    if (flow->next_hop < flow->hop_count) {
        Link* hop = flow->hops[flow->next_hop++];
        // Two raw pointers: fits std::function's inline storage, so
        // the hot per-hop path stays allocation-free.
        hop->transfer(flow->bytes, [this, flow] { advance(flow); });
        return;
    }
    const sim::Time arrival = simulator_->now();
    if (flow->meter != nullptr)
        flow->meter->add(arrival, static_cast<double>(flow->bytes));
    RpcProcessor* dst_rpc = flow->dst_rpc;
    DeliveryCallback done = std::move(flow->done);
    release(flow);  // Back on the freelist before the RPC tail runs.
    if (dst_rpc != nullptr) {
        sim::Simulator* simulator = simulator_;
        dst_rpc->process([simulator, done = std::move(done)]() {
            if (done)
                done(simulator->now());
        });
        return;
    }
    if (done)
        done(arrival);
}

void
FlowPool::launch(RpcProcessor* src_rpc, std::initializer_list<Link*> hops,
                 std::uint64_t bytes, sim::RateMeter* meter,
                 RpcProcessor* dst_rpc, DeliveryCallback done)
{
    assert(hops.size() <= static_cast<std::size_t>(kMaxHops));
    Flow* flow = acquire();
    int n = 0;
    for (Link* hop : hops)
        flow->hops[n++] = hop;
    flow->hop_count = n;
    flow->next_hop = 0;
    flow->bytes = bytes;
    flow->meter = meter;
    flow->dst_rpc = dst_rpc;
    flow->done = std::move(done);
    if (src_rpc != nullptr) {
        src_rpc->process([this, flow] { advance(flow); });
        return;
    }
    advance(flow);
}

}  // namespace hivemind::net

#pragma once

/**
 * @file
 * Pooled multi-hop flow records.
 *
 * A "flow" is one store-and-forward transfer across up to kMaxHops
 * consecutive links, with optional RPC processing at either end and
 * an optional delivered-bytes meter: the pipeline every
 * SwarmTopology send path runs. The topology's original recursive
 * chain() allocated a fresh std::vector of the remaining hops plus a
 * heap-backed closure per hop per transfer; at 8k devices that is
 * millions of short-lived allocations per simulated second, all with
 * the same shape. FlowPool replaces them with a freelist of slab-
 * allocated Flow records — the hop array lives inline, the per-hop
 * continuation captures one Flow pointer (small enough for
 * std::function's inline buffer), and the only remaining allocation
 * is the caller's completion callback, moved exactly once into the
 * record.
 *
 * Flows are simulator-local and single-threaded, like everything
 * else scheduled on one kernel; records return to the freelist the
 * moment the last hop lands, before the destination RPC stage runs.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hivemind::net {

class Link;
class RpcProcessor;

/** Completion callback carrying the delivery time. */
using DeliveryCallback = std::function<void(sim::Time)>;

/** Freelist-slab allocator driving pooled multi-hop transfers. */
class FlowPool
{
  public:
    /** Longest hop sequence any topology path uses. */
    static constexpr int kMaxHops = 4;

    explicit FlowPool(sim::Simulator& simulator)
        : simulator_(&simulator)
    {
    }

    FlowPool(const FlowPool&) = delete;
    FlowPool& operator=(const FlowPool&) = delete;

    /**
     * Run one flow: @p src_rpc processing (if any), then @p hops in
     * order, then — at last-bit arrival time t — @p meter->add(t,
     * bytes) (if any), then @p dst_rpc processing (if any), then
     * @p done. With a destination RPC stage, @p done observes the
     * post-processing clock (done(now)); without one it receives the
     * arrival time t directly. An empty @p hops list completes
     * immediately at the current time.
     */
    void launch(RpcProcessor* src_rpc, std::initializer_list<Link*> hops,
                std::uint64_t bytes, sim::RateMeter* meter,
                RpcProcessor* dst_rpc, DeliveryCallback done);

    /** Flows currently in their hop/meter stages. */
    std::size_t live() const { return live_; }

    /** Most flows ever simultaneously live (sizes the slabs). */
    std::size_t high_water() const { return high_water_; }

    /** Slabs allocated so far (kSlabFlows records each). */
    std::size_t slabs() const { return slabs_.size(); }

    /** Records per slab. */
    static constexpr std::size_t kSlabFlows = 64;

  private:
    /** One pooled transfer; dormant records chain the freelist. */
    struct Flow
    {
        Link* hops[kMaxHops] = {};
        int hop_count = 0;
        int next_hop = 0;
        std::uint64_t bytes = 0;
        sim::RateMeter* meter = nullptr;
        RpcProcessor* dst_rpc = nullptr;
        DeliveryCallback done;
        Flow* free_next = nullptr;
    };

    Flow* acquire();
    void release(Flow* flow);
    /** Start the next hop, or run the meter/RPC/done tail. */
    void advance(Flow* flow);

    sim::Simulator* simulator_;
    std::vector<std::unique_ptr<Flow[]>> slabs_;
    Flow* free_ = nullptr;
    std::size_t live_ = 0;
    std::size_t high_water_ = 0;
};

}  // namespace hivemind::net

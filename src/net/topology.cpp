#include "net/topology.hpp"

#include <string>
#include <utility>

namespace hivemind::net {

SwarmTopology::SwarmTopology(sim::Simulator& simulator,
                             const TopologyConfig& config, sim::Rng* rng)
    : simulator_(&simulator),
      config_(config),
      rng_(rng),
      blocked_(config.devices, 0),
      device_bytes_(config.devices, 0),
      air_meter_(sim::kSecond),
      flows_(simulator)
{
    double scale = config.infra_scale;
    for (std::size_t i = 0; i < config.devices; ++i) {
        device_up_.push_back(std::make_unique<Link>(
            simulator, "dev" + std::to_string(i) + ".up",
            config.device_radio_bps, config.wireless_prop));
        device_down_.push_back(std::make_unique<Link>(
            simulator, "dev" + std::to_string(i) + ".down",
            config.device_radio_bps, config.wireless_prop));
        device_rpc_.push_back(std::make_unique<RpcProcessor>(
            simulator, RpcConfig::software_stack(1)));
    }
    for (std::size_t r = 0; r < config.routers; ++r) {
        router_up_.push_back(std::make_unique<Link>(
            simulator, "router" + std::to_string(r) + ".up",
            config.router_bps * scale, config.lan_prop));
        router_down_.push_back(std::make_unique<Link>(
            simulator, "router" + std::to_string(r) + ".down",
            config.router_bps * scale, config.lan_prop));
    }
    tor_up_ = std::make_unique<Link>(simulator, "tor.up",
                                     config.tor_bps * scale,
                                     config.lan_prop);
    tor_down_ = std::make_unique<Link>(simulator, "tor.down",
                                       config.tor_bps * scale,
                                       config.lan_prop);
    for (std::size_t s = 0; s < config.servers; ++s) {
        nic_in_.push_back(std::make_unique<Link>(
            simulator, "srv" + std::to_string(s) + ".in",
            config.server_nic_bps, config.lan_prop));
        nic_out_.push_back(std::make_unique<Link>(
            simulator, "srv" + std::to_string(s) + ".out",
            config.server_nic_bps, config.lan_prop));
        server_rpc_.push_back(std::make_unique<RpcProcessor>(
            simulator,
            config.cloud_rpc_offload ? RpcConfig::fpga_offload(2)
                                     : RpcConfig::software_stack(2)));
    }
}

void
SwarmTopology::set_device_blocked(std::size_t device, bool blocked)
{
    if (device < blocked_.size())
        blocked_[device] = blocked ? 1 : 0;
}

bool
SwarmTopology::device_blocked(std::size_t device) const
{
    return device < blocked_.size() && blocked_[device] != 0;
}

double
SwarmTopology::wireless_loss_now(std::size_t device) const
{
    if (device_blocked(device))
        return 1.0;
    return loss_override_ >= 0.0 ? loss_override_ : config_.wireless_loss;
}

void
SwarmTopology::with_retransmits(
    std::size_t device, std::function<void(DeliveryCallback)> attempt,
    DeliveryCallback done, int tries_left)
{
    auto self = this;
    if (wireless_loss_now(device) >= 1.0) {
        // Radio blackout: nothing reaches the air. Each retry only
        // burns a retransmit timeout; when the budget runs out the
        // frame is dropped and the caller is told via kDropped.
        if (tries_left <= 0) {
            ++frames_dropped_;
            if (done)
                done(kDropped);
            return;
        }
        ++retransmissions_;
        simulator_->schedule_in(
            config_.retransmit_timeout,
            [self, device, attempt = std::move(attempt),
             done = std::move(done), tries_left]() mutable {
                self->with_retransmits(device, std::move(attempt),
                                       std::move(done), tries_left - 1);
            });
        return;
    }
    attempt([self, device, attempt, done = std::move(done),
             tries_left](sim::Time t) mutable {
        double loss = self->wireless_loss_now(device);
        if (self->rng_ != nullptr && loss > 0.0 && loss < 1.0 &&
            self->rng_->chance(loss)) {
            // The final attempt rolls the loss like every other one;
            // with the budget exhausted the frame is dropped, not
            // silently delivered.
            if (tries_left <= 0) {
                ++self->frames_dropped_;
                if (done)
                    done(kDropped);
                return;
            }
            ++self->retransmissions_;
            self->simulator_->schedule_in(
                self->config_.retransmit_timeout,
                [self, device, attempt = std::move(attempt),
                 done = std::move(done), tries_left]() mutable {
                    self->with_retransmits(device, std::move(attempt),
                                           std::move(done), tries_left - 1);
                });
            return;
        }
        if (done)
            done(t);
    });
}

void
SwarmTopology::send_uplink(std::size_t device, std::size_t server,
                           std::uint64_t bytes, DeliveryCallback done)
{
    std::size_t r = device % config_.routers;
    device_bytes_[device] += bytes;
    // Sender-side RPC processing, then the link chain, then
    // receiver-side RPC processing. The air meter records *delivered*
    // bytes at arrival time, so reported bandwidth is utilization and
    // never exceeds the physical capacity. Wireless corruption causes
    // timed-out retransmissions of the whole transfer.
    auto self = this;
    auto attempt = [self, device, server, r,
                    bytes](DeliveryCallback finished) {
        self->flows_.launch(self->device_rpc_[device].get(),
                            {self->device_up_[device].get(),
                             self->router_up_[r].get(),
                             self->tor_up_.get(),
                             self->nic_in_[server].get()},
                            bytes, &self->air_meter_,
                            self->server_rpc_[server].get(),
                            std::move(finished));
    };
    with_retransmits(device, std::move(attempt), std::move(done),
                     config_.max_retransmits);
}

void
SwarmTopology::send_downlink(std::size_t server, std::size_t device,
                             std::uint64_t bytes, DeliveryCallback done)
{
    std::size_t r = device % config_.routers;
    device_bytes_[device] += bytes;
    auto self = this;
    auto attempt = [self, device, server, r,
                    bytes](DeliveryCallback finished) {
        self->flows_.launch(self->server_rpc_[server].get(),
                            {self->nic_out_[server].get(),
                             self->tor_down_.get(),
                             self->router_down_[r].get(),
                             self->device_down_[device].get()},
                            bytes, &self->air_meter_,
                            self->device_rpc_[device].get(),
                            std::move(finished));
    };
    with_retransmits(device, std::move(attempt), std::move(done),
                     config_.max_retransmits);
}

void
SwarmTopology::send_uplink_wired(std::size_t device, std::size_t server,
                                 std::uint64_t bytes, DeliveryCallback done)
{
    std::size_t r = device % config_.routers;
    flows_.launch(nullptr,
                  {router_up_[r].get(), tor_up_.get(),
                   nic_in_[server].get()},
                  bytes, nullptr, server_rpc_[server].get(),
                  std::move(done));
}

void
SwarmTopology::send_downlink_wired(std::size_t server, std::size_t device,
                                   std::uint64_t bytes,
                                   DeliveryCallback done)
{
    std::size_t r = device % config_.routers;
    flows_.launch(server_rpc_[server].get(),
                  {nic_out_[server].get(), tor_down_.get(),
                   router_down_[r].get()},
                  bytes, nullptr, nullptr, std::move(done));
}

void
SwarmTopology::send_server_to_server(std::size_t from, std::size_t to,
                                     std::uint64_t bytes,
                                     DeliveryCallback done)
{
    flows_.launch(server_rpc_[from].get(),
                  {nic_out_[from].get(), tor_up_.get(),
                   nic_in_[to].get()},
                  bytes, nullptr, server_rpc_[to].get(),
                  std::move(done));
}

double
SwarmTopology::cloud_rpc_cpu_seconds() const
{
    double total = 0.0;
    for (const auto& p : server_rpc_)
        total += p->cpu_seconds_used();
    return total;
}

}  // namespace hivemind::net

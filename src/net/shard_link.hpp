#pragma once

/**
 * @file
 * Shard-aware link endpoint for the sharded runtime.
 *
 * A ShardLink is the cross-shard edition of Link: FIFO serialization
 * at a fixed rate plus propagation, but the completion callback is
 * delivered through the SwarmRuntime mailbox path instead of being
 * scheduled directly, so sender and receiver may live on different
 * shard kernels (and threads).
 *
 * The propagation delay doubles as the link's lookahead bound: the
 * constructor declares a (src, dst) channel with min latency equal to
 * the propagation, which is the earliest any send can arrive. Keep
 * propagation >= 1 tick — a zero-latency cross-shard link would
 * collapse the conservative window to nothing.
 *
 * Serializer state lives on the source shard and is only touched from
 * its thread, so no synchronization is needed beyond the runtime's
 * epoch barriers.
 */

#include <cstdint>
#include <string>

#include "sim/inline_fn.hpp"
#include "sim/swarm_runtime.hpp"
#include "sim/time.hpp"

namespace hivemind::net {

/** Unidirectional cross-shard link: FIFO serializer + mailbox hop. */
class ShardLink
{
  public:
    /**
     * @param runtime the sharded runtime carrying deliveries
     * @param src shard owning the sender (serializer lives here)
     * @param dst shard owning the receiver
     * @param origin actor id used as the deterministic merge tiebreak
     * @param rate_bps capacity in bits per second
     * @param propagation one-way latency; also the channel lookahead
     */
    ShardLink(sim::SwarmRuntime& runtime, int src, int dst,
              std::uint64_t origin, double rate_bps,
              sim::Time propagation);

    /**
     * Enqueue a transfer of @p bytes; @p done runs on the destination
     * shard when the last bit arrives. Call only from the source
     * shard's thread.
     *
     * @return the arrival time at the far end.
     */
    sim::Time transfer(std::uint64_t bytes, sim::InlineFn done);

    /** Time at which the serializer becomes free. */
    sim::Time busy_until() const { return busy_until_; }

    /** Total payload bytes accepted. */
    std::uint64_t bytes_total() const { return bytes_total_; }

    /** Destination shard. */
    int dst() const { return dst_; }

    /** Earliest possible delivery delay (the declared lookahead). */
    sim::Time propagation() const { return propagation_; }

    /**
     * Chaos loss override for this link. Negative (the default) means
     * no override; [0, 1] is the probability a caller-rolled
     * transmission attempt over this link is lost. The link itself
     * never drops — callers sample against loss() with their own
     * shard-local RNG so the roll participates in deterministic
     * replay. Only touch from the source shard's thread.
     */
    void set_loss(double loss) { loss_ = loss; }
    double loss() const { return loss_; }

  private:
    sim::SwarmRuntime* runtime_;
    int src_;
    int dst_;
    std::uint64_t origin_;
    double rate_bps_;
    sim::Time propagation_;
    sim::Time busy_until_ = 0;
    std::uint64_t bytes_total_ = 0;
    double loss_ = -1.0;
};

}  // namespace hivemind::net

#include "net/rpc.hpp"

#include <algorithm>
#include <utility>

namespace hivemind::net {

RpcConfig
RpcConfig::software_stack(int cores)
{
    RpcConfig c;
    c.latency = sim::from_micros(25.0);
    c.throughput_rps = 600'000.0;
    c.cores = cores;
    c.cpu_s_per_msg = 1.0 / c.throughput_rps;
    return c;
}

RpcConfig
RpcConfig::fpga_offload(int cores)
{
    RpcConfig c;
    c.latency = sim::from_micros(1.05);
    c.throughput_rps = 12'400'000.0;
    c.cores = cores;
    c.cpu_s_per_msg = 0.0;
    return c;
}

RpcProcessor::RpcProcessor(sim::Simulator& simulator, RpcConfig config)
    : simulator_(&simulator),
      config_(config),
      core_free_(static_cast<std::size_t>(config.cores > 0 ? config.cores : 1),
                 0)
{
}

sim::Time
RpcProcessor::process(std::function<void()> done)
{
    sim::Time now = simulator_->now();
    // Pick the earliest-free core (deterministic tie-break by index).
    auto it = std::min_element(core_free_.begin(), core_free_.end());
    sim::Time start = std::max(*it, now);
    sim::Time service = sim::from_seconds(1.0 / config_.throughput_rps);
    *it = start + service;
    cpu_seconds_ += config_.cpu_s_per_msg;
    ++messages_;
    sim::Time completion = *it + config_.latency;
    if (done)
        simulator_->schedule_at(completion, std::move(done));
    return completion;
}

}  // namespace hivemind::net

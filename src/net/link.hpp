#pragma once

/**
 * @file
 * Flow-level network link model.
 *
 * A Link serializes transfers FIFO at a fixed rate and adds a
 * propagation delay, the standard flow-level abstraction for
 * queueing-network simulators. Congestion emerges naturally: when
 * offered load exceeds the link rate the busy horizon grows and
 * latency explodes, which is exactly the Fig. 3b saturation behaviour.
 */

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hivemind::net {

/** A unidirectional link with FIFO serialization and propagation. */
class Link
{
  public:
    /**
     * @param simulator event kernel the link schedules on
     * @param name human-readable identifier for traces
     * @param rate_bps capacity in bits per second
     * @param propagation one-way propagation + switching latency
     */
    Link(sim::Simulator& simulator, std::string name, double rate_bps,
         sim::Time propagation);

    /**
     * Enqueue a transfer of @p bytes; @p done fires when the last bit
     * arrives at the far end.
     *
     * @return the completion time of the transfer.
     */
    sim::Time transfer(std::uint64_t bytes, std::function<void()> done);

    /** Time at which the serializer becomes free. */
    sim::Time busy_until() const { return busy_until_; }

    /** Queueing delay a new transfer would currently see. */
    sim::Time
    backlog() const
    {
        sim::Time now = simulator_->now();
        return busy_until_ > now ? busy_until_ - now : 0;
    }

    /** Total payload bytes accepted. */
    std::uint64_t bytes_total() const { return bytes_total_; }

    /** Capacity in bits per second. */
    double rate_bps() const { return rate_bps_; }

    /** Adjust capacity (used to scale links with swarm size, Fig. 17b). */
    void set_rate_bps(double rate_bps) { rate_bps_ = rate_bps; }

    /** Per-second throughput meter in bytes (for bandwidth figures). */
    const sim::RateMeter& meter() const { return meter_; }

    /** Link name. */
    const std::string& name() const { return name_; }

    /** Fraction of time busy since construction, up to now. */
    double utilization() const;

  private:
    sim::Simulator* simulator_;
    std::string name_;
    double rate_bps_;
    sim::Time propagation_;
    sim::Time busy_until_ = 0;
    std::uint64_t bytes_total_ = 0;
    /// Busy time of completed busy periods (periods that ended before
    /// the serializer next went idle). The open period, if any, spans
    /// [busy_start_, busy_until_] and is clipped to now on read, so a
    /// queued backlog never counts as utilization before it happens.
    sim::Time busy_accum_ = 0;
    sim::Time busy_start_ = 0;
    sim::RateMeter meter_;
};

}  // namespace hivemind::net

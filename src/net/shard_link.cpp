#include "net/shard_link.hpp"

#include <cassert>
#include <utility>

namespace hivemind::net {

ShardLink::ShardLink(sim::SwarmRuntime& runtime, int src, int dst,
                     std::uint64_t origin, double rate_bps,
                     sim::Time propagation)
    : runtime_(&runtime),
      src_(src),
      dst_(dst),
      origin_(origin),
      rate_bps_(rate_bps),
      propagation_(propagation)
{
    assert(propagation >= 1);
    runtime.declare_channel(src, dst, propagation);
}

sim::Time
ShardLink::transfer(std::uint64_t bytes, sim::InlineFn done)
{
    sim::Time now = runtime_->shard(src_).now();
    sim::Time start = busy_until_ > now ? busy_until_ : now;
    double bits = static_cast<double>(bytes) * 8.0;
    sim::Time serialize = sim::from_seconds(bits / rate_bps_);
    busy_until_ = start + serialize;
    bytes_total_ += bytes;
    sim::Time arrival = busy_until_ + propagation_;
    if (done)
        runtime_->post(src_, dst_, arrival, origin_, std::move(done));
    return arrival;
}

}  // namespace hivemind::net

#pragma once

/**
 * @file
 * Canonical task graphs for the paper's end-to-end scenarios.
 *
 * scenario_b_graph() is the C++ rendering of Listing 3 (People
 * Recognition and Deduplication): createRoute -> collectImage ->
 * {obstacleAvoidance || faceRecognition} -> deduplication, with
 * Parallel/Serial orderings, global learning on recognition, edge
 * pinning of obstacle avoidance, and persistence of the recognition
 * and deduplication outputs. scenario_a_graph() is the analogous
 * graph for Stationary Item recognition (Sec. 2.1, Scenario A), and
 * the rover graphs cover the Treasure Hunt and Maze scenarios of
 * Sec. 5.5.
 */

#include "dsl/graph.hpp"

namespace hivemind::dsl {

/** Scenario A — Stationary Items (tennis balls in a field). */
TaskGraph scenario_a_graph();

/** Scenario B — Moving People (Listing 3). */
TaskGraph scenario_b_graph();

/** Rover Treasure Hunt (Sec. 5.5): navigate -> photo -> OCR -> next. */
TaskGraph treasure_hunt_graph();

/** Rover Maze (Sec. 5.5): wall-follower traversal with sensing. */
TaskGraph rover_maze_graph();

}  // namespace hivemind::dsl

#include "dsl/scenarios.hpp"

namespace hivemind::dsl {

namespace {

/** Shared collect/route front of both drone scenarios. */
void
add_sensing_front(TaskGraph& g)
{
    TaskDef route;
    route.name = "createRoute";
    route.data_in = "map";
    route.data_out = "route";
    route.code_path = "tasks/create_route";
    route.args["load_balancer"] = "round robin";
    route.work_core_ms = 40.0;
    route.output_bytes = 32u << 10;
    g.add_task(route);

    TaskDef collect;
    collect.name = "collectImage";
    collect.data_in = "route";
    collect.data_out = "sensorData";
    collect.code_path = "tasks/collect_image";
    collect.args["speed"] = "4";
    collect.args["resolution"] = "1024p";
    collect.args["colorFormat"] = "color";
    collect.sensor_source = true;
    collect.work_core_ms = 5.0;
    collect.output_bytes = 2u << 20;
    g.add_task(collect);
    g.add_edge("createRoute", "collectImage");

    TaskDef avoid;
    avoid.name = "obstacleAvoidance";
    avoid.data_in = "sensorData";
    avoid.data_out = "adjustRoute";
    avoid.code_path = "tasks/obstacle_avoidance";
    avoid.args["algorithm"] = "slam";
    avoid.actuator_sink = true;
    avoid.work_core_ms = 18.0;
    avoid.input_bytes = 512u << 10;
    avoid.output_bytes = 2u << 10;
    g.add_task(avoid);
    g.add_edge("collectImage", "obstacleAvoidance");
}

}  // namespace

TaskGraph
scenario_a_graph()
{
    TaskGraph g("stationary_items");
    GraphConstraints c;
    c.exec_time_s = 300.0;
    g.constrain(c);
    add_sensing_front(g);

    TaskDef rec;
    rec.name = "itemRecognition";
    rec.data_in = "sensorData";
    rec.data_out = "detections";
    rec.code_path = "tasks/item_recognition";
    rec.args["algorithm"] = "svm_orange_tag";
    rec.work_core_ms = 220.0;
    rec.input_bytes = 2u << 20;
    rec.output_bytes = 16u << 10;
    rec.parallelism = 8;
    g.add_task(rec);
    g.add_edge("collectImage", "itemRecognition");

    TaskDef agg;
    agg.name = "aggregateMap";
    agg.data_in = "detections";
    agg.data_out = "itemMap";
    agg.code_path = "tasks/aggregate_map";
    agg.args["sync"] = "all";
    agg.work_core_ms = 60.0;
    agg.input_bytes = 16u << 10;
    agg.output_bytes = 8u << 10;
    g.add_task(agg);
    g.add_edge("itemRecognition", "aggregateMap");

    g.parallel("obstacleAvoidance", "itemRecognition");
    g.serial("itemRecognition", "aggregateMap");
    g.synchronize("aggregateMap", "all");
    g.learn("itemRecognition", LearnScope::Global);
    g.place("obstacleAvoidance", PlacementHint::Edge);
    g.persist("aggregateMap");
    return g;
}

TaskGraph
scenario_b_graph()
{
    // Listing 3, task for task.
    TaskGraph g("people_recognition");
    GraphConstraints c;
    c.exec_time_s = 10.0;
    g.constrain(c);
    add_sensing_front(g);

    TaskDef face;
    face.name = "faceRecognition";
    face.data_in = "sensorData";
    face.data_out = "recognitionStats";
    face.code_path = "tasks/face_recognition";
    face.args["trainingData"] = "zoo";
    face.args["algorithm"] = "tensorflow_zoo";
    face.work_core_ms = 350.0;
    face.input_bytes = 2u << 20;
    face.output_bytes = 20u << 10;
    face.parallelism = 8;
    g.add_task(face);
    g.add_edge("collectImage", "faceRecognition");

    TaskDef dedup;
    dedup.name = "deduplication";
    dedup.data_in = "recognitionStats";
    dedup.data_out = "dedupList";
    dedup.code_path = "tasks/deduplication";
    dedup.args["sync"] = "all";
    dedup.work_core_ms = 420.0;
    dedup.input_bytes = 256u << 10;
    dedup.output_bytes = 8u << 10;
    dedup.parallelism = 8;
    g.add_task(dedup);
    g.add_edge("faceRecognition", "deduplication");

    g.parallel("obstacleAvoidance", "faceRecognition");
    g.serial("faceRecognition", "deduplication");
    g.synchronize("deduplication", "all");
    g.learn("faceRecognition", LearnScope::Global);
    g.place("obstacleAvoidance", PlacementHint::Edge);
    g.persist("faceRecognition");
    g.persist("deduplication");
    return g;
}

TaskGraph
treasure_hunt_graph()
{
    TaskGraph g("treasure_hunt");
    GraphConstraints c;
    c.exec_time_s = 600.0;
    g.constrain(c);

    TaskDef nav;
    nav.name = "navigate";
    nav.data_in = "target";
    nav.data_out = "position";
    nav.code_path = "tasks/navigate";
    nav.actuator_sink = true;
    nav.work_core_ms = 15.0;
    nav.output_bytes = 1u << 10;
    g.add_task(nav);

    TaskDef photo;
    photo.name = "photographPanel";
    photo.data_in = "position";
    photo.data_out = "panelImage";
    photo.code_path = "tasks/photograph_panel";
    photo.sensor_source = true;
    photo.work_core_ms = 5.0;
    photo.output_bytes = 2u << 20;
    g.add_task(photo);
    g.add_edge("navigate", "photographPanel");

    TaskDef ocr;
    ocr.name = "readInstructions";
    ocr.data_in = "panelImage";
    ocr.data_out = "target";
    ocr.code_path = "tasks/read_instructions";
    ocr.args["algorithm"] = "img2text";
    ocr.work_core_ms = 500.0;
    ocr.input_bytes = 2u << 20;
    ocr.output_bytes = 1u << 10;
    ocr.parallelism = 12;
    g.add_task(ocr);
    g.add_edge("photographPanel", "readInstructions");

    g.serial("photographPanel", "readInstructions");
    g.persist("readInstructions");
    return g;
}

TaskGraph
rover_maze_graph()
{
    TaskGraph g("rover_maze");
    GraphConstraints c;
    c.exec_time_s = 900.0;
    g.constrain(c);

    TaskDef sense;
    sense.name = "senseWalls";
    sense.data_in = "pose";
    sense.data_out = "wallScan";
    sense.code_path = "tasks/sense_walls";
    sense.sensor_source = true;
    sense.work_core_ms = 4.0;
    sense.output_bytes = 64u << 10;
    g.add_task(sense);

    TaskDef plan;
    plan.name = "planStep";
    plan.data_in = "wallScan";
    plan.data_out = "move";
    plan.code_path = "tasks/plan_step";
    plan.args["algorithm"] = "wall_follower";
    plan.work_core_ms = 700.0;
    plan.input_bytes = 64u << 10;
    plan.output_bytes = 1u << 10;
    plan.parallelism = 2;
    g.add_task(plan);
    g.add_edge("senseWalls", "planStep");

    TaskDef drive;
    drive.name = "driveStep";
    drive.data_in = "move";
    drive.data_out = "pose";
    drive.code_path = "tasks/drive_step";
    drive.actuator_sink = true;
    drive.work_core_ms = 8.0;
    drive.input_bytes = 1u << 10;
    g.add_task(drive);
    g.add_edge("planStep", "driveStep");

    g.serial("senseWalls", "planStep");
    g.serial("planStep", "driveStep");
    g.place("driveStep", PlacementHint::Edge);
    return g;
}

}  // namespace hivemind::dsl

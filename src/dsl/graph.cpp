#include "dsl/graph.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

namespace hivemind::dsl {

const char*
to_string(PlacementHint p)
{
    switch (p) {
      case PlacementHint::Auto:
        return "Auto";
      case PlacementHint::Edge:
        return "Edge";
      case PlacementHint::Cloud:
        return "Cloud";
    }
    return "?";
}

const char*
to_string(LearnScope s)
{
    switch (s) {
      case LearnScope::Off:
        return "Off";
      case LearnScope::Local:
        return "Local";
      case LearnScope::Global:
        return "Global";
    }
    return "?";
}

const char*
to_string(RestorePolicy r)
{
    switch (r) {
      case RestorePolicy::None:
        return "None";
      case RestorePolicy::Respawn:
        return "Respawn";
      case RestorePolicy::Checkpoint:
        return "Checkpoint";
    }
    return "?";
}

TaskGraph&
TaskGraph::add_task(TaskDef task)
{
    if (tasks_.count(task.name) > 0) {
        build_errors_.push_back("duplicate task name: " + task.name);
        return *this;
    }
    order_.push_back(task.name);
    tasks_.emplace(task.name, std::move(task));
    return *this;
}

TaskGraph&
TaskGraph::add_edge(const std::string& parent, const std::string& child)
{
    auto pit = tasks_.find(parent);
    auto cit = tasks_.find(child);
    if (pit == tasks_.end()) {
        build_errors_.push_back("edge references unknown task: " + parent);
        return *this;
    }
    if (cit == tasks_.end()) {
        build_errors_.push_back("edge references unknown task: " + child);
        return *this;
    }
    auto& kids = pit->second.children;
    if (std::find(kids.begin(), kids.end(), child) == kids.end())
        kids.push_back(child);
    auto& folks = cit->second.parents;
    if (std::find(folks.begin(), folks.end(), parent) == folks.end())
        folks.push_back(parent);
    return *this;
}

TaskGraph&
TaskGraph::parallel(const std::string& a, const std::string& b)
{
    rules_.push_back({a, b, Ordering::Parallel});
    return *this;
}

TaskGraph&
TaskGraph::overlap(const std::string& a, const std::string& b)
{
    rules_.push_back({a, b, Ordering::Overlap});
    return *this;
}

TaskGraph&
TaskGraph::serial(const std::string& a, const std::string& b)
{
    rules_.push_back({a, b, Ordering::Serial});
    return *this;
}

TaskGraph&
TaskGraph::synchronize(const std::string& task, const std::string& condition)
{
    syncs_.push_back({task, condition});
    if (auto it = tasks_.find(task); it != tasks_.end())
        it->second.sync_all = (condition == "all");
    return *this;
}

TaskGraph&
TaskGraph::place(const std::string& task, PlacementHint hint)
{
    if (auto it = tasks_.find(task); it != tasks_.end())
        it->second.placement = hint;
    else
        build_errors_.push_back("Place() on unknown task: " + task);
    return *this;
}

TaskGraph&
TaskGraph::isolate(const std::string& task)
{
    if (auto it = tasks_.find(task); it != tasks_.end())
        it->second.isolate = true;
    else
        build_errors_.push_back("Isolate() on unknown task: " + task);
    return *this;
}

TaskGraph&
TaskGraph::persist(const std::string& task)
{
    if (auto it = tasks_.find(task); it != tasks_.end())
        it->second.persist = true;
    else
        build_errors_.push_back("Persist() on unknown task: " + task);
    return *this;
}

TaskGraph&
TaskGraph::learn(const std::string& task, LearnScope scope)
{
    if (auto it = tasks_.find(task); it != tasks_.end())
        it->second.learn = scope;
    else
        build_errors_.push_back("Learn() on unknown task: " + task);
    return *this;
}

TaskGraph&
TaskGraph::restore(const std::string& task, RestorePolicy policy)
{
    if (auto it = tasks_.find(task); it != tasks_.end())
        it->second.restore = policy;
    else
        build_errors_.push_back("Restore() on unknown task: " + task);
    return *this;
}

TaskGraph&
TaskGraph::schedule_priority(const std::string& task, int priority)
{
    if (auto it = tasks_.find(task); it != tasks_.end())
        it->second.priority = priority;
    else
        build_errors_.push_back("Schedule() on unknown task: " + task);
    return *this;
}

TaskGraph&
TaskGraph::constrain(const GraphConstraints& constraints)
{
    constraints_ = constraints;
    return *this;
}

bool
TaskGraph::has_task(const std::string& name) const
{
    return tasks_.count(name) > 0;
}

const TaskDef&
TaskGraph::task(const std::string& name) const
{
    return tasks_.at(name);
}

TaskDef&
TaskGraph::task(const std::string& name)
{
    return tasks_.at(name);
}

bool
TaskGraph::has_edge(const std::string& parent, const std::string& child) const
{
    auto it = tasks_.find(parent);
    if (it == tasks_.end())
        return false;
    const auto& kids = it->second.children;
    return std::find(kids.begin(), kids.end(), child) != kids.end();
}

std::vector<std::string>
TaskGraph::roots() const
{
    std::vector<std::string> out;
    for (const std::string& n : order_) {
        if (tasks_.at(n).parents.empty())
            out.push_back(n);
    }
    return out;
}

std::vector<std::string>
TaskGraph::leaves() const
{
    std::vector<std::string> out;
    for (const std::string& n : order_) {
        if (tasks_.at(n).children.empty())
            out.push_back(n);
    }
    return out;
}

std::optional<std::vector<std::string>>
TaskGraph::topo_order() const
{
    std::map<std::string, int> indegree;
    for (const std::string& n : order_)
        indegree[n] = 0;
    for (const auto& [name, t] : tasks_) {
        (void)name;
        for (const std::string& c : t.children) {
            if (indegree.count(c) > 0)
                ++indegree[c];
        }
    }
    // Kahn's algorithm, preferring declaration order for determinism.
    std::deque<std::string> ready;
    for (const std::string& n : order_) {
        if (indegree[n] == 0)
            ready.push_back(n);
    }
    std::vector<std::string> out;
    while (!ready.empty()) {
        std::string n = ready.front();
        ready.pop_front();
        out.push_back(n);
        for (const std::string& c : tasks_.at(n).children) {
            if (indegree.count(c) > 0 && --indegree[c] == 0)
                ready.push_back(c);
        }
    }
    if (out.size() != order_.size())
        return std::nullopt;  // Cycle.
    return out;
}

std::vector<std::string>
TaskGraph::validate() const
{
    std::vector<std::string> errors = build_errors_;

    for (const auto& [name, t] : tasks_) {
        for (const std::string& p : t.parents) {
            if (tasks_.count(p) == 0)
                errors.push_back(name + ": unknown parent " + p);
        }
        for (const std::string& c : t.children) {
            if (tasks_.count(c) == 0)
                errors.push_back(name + ": unknown child " + c);
            if (c == name)
                errors.push_back(name + ": self-edge");
        }
        if (t.sensor_source && t.placement == PlacementHint::Cloud) {
            errors.push_back(name +
                             ": sensor source cannot be placed in the cloud");
        }
        if (t.actuator_sink && t.placement == PlacementHint::Cloud) {
            errors.push_back(name +
                             ": actuator sink cannot be placed in the cloud");
        }
        // Dataset wiring: a consumed dataset must be produced by a
        // declared parent (roots consume external data freely).
        if (!t.data_in.empty() && !t.parents.empty()) {
            bool produced = false;
            for (const std::string& p : t.parents) {
                auto pit = tasks_.find(p);
                if (pit != tasks_.end() &&
                    pit->second.data_out == t.data_in) {
                    produced = true;
                    break;
                }
            }
            if (!produced) {
                errors.push_back(name + ": consumes dataset '" + t.data_in +
                                 "' which no parent produces");
            }
        }
    }

    // Contradictory orderings on the same (unordered) pair.
    std::set<std::pair<std::string, std::string>> par, ser;
    for (const OrderingRule& r : rules_) {
        if (tasks_.count(r.a) == 0)
            errors.push_back("ordering references unknown task: " + r.a);
        if (tasks_.count(r.b) == 0)
            errors.push_back("ordering references unknown task: " + r.b);
        auto key = r.a < r.b ? std::make_pair(r.a, r.b)
                             : std::make_pair(r.b, r.a);
        if (r.kind == Ordering::Serial)
            ser.insert(key);
        else
            par.insert(key);
    }
    for (const auto& k : par) {
        if (ser.count(k) > 0) {
            errors.push_back("contradictory ordering between " + k.first +
                             " and " + k.second);
        }
    }

    // Sync points must reference known tasks.
    for (const SyncPoint& s : syncs_) {
        if (tasks_.count(s.task) == 0)
            errors.push_back("Synchronize() on unknown task: " + s.task);
    }

    if (!topo_order())
        errors.push_back("task graph contains a cycle");

    return errors;
}

}  // namespace hivemind::dsl

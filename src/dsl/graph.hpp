#pragma once

/**
 * @file
 * The TaskGraph builder of the HiveMind DSL (Listing 1).
 *
 * Users declare tasks and the timing/execution relationships between
 * them — Parallel (may run concurrently), Serial (must not overlap),
 * Overlap (may partially overlap), Synchronize (barrier) — plus
 * performance and cost constraints the synthesized deployment must
 * satisfy. validate() reports structural errors (unknown references,
 * cycles, contradictory orderings); public bug reports identify
 * incorrect API/task wiring as a primary source of failures in
 * multi-tier apps (Sec. 4.1), so validation is strict.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dsl/task.hpp"

namespace hivemind::dsl {

/** Performance/cost targets the deployment must meet (Sec. 4.1). */
struct GraphConstraints
{
    /** Max end-to-end execution time, seconds (0 = unconstrained). */
    double exec_time_s = 0.0;
    /** Max per-task latency, seconds (0 = unconstrained). */
    double latency_s = 0.0;
    /** Min task throughput, tasks/s (0 = unconstrained). */
    double throughput_hz = 0.0;
    /** Max cloud-resource cost, arbitrary units (0 = unconstrained). */
    double cloud_cost = 0.0;
    /** Max battery consumption fraction (0 = unconstrained). */
    double battery_fraction = 0.0;
};

/** Pairwise ordering relations (Listing 1). */
enum class Ordering
{
    Parallel,
    Overlap,
    Serial,
};

/** A declared ordering between two tasks. */
struct OrderingRule
{
    std::string a;
    std::string b;
    Ordering kind;
};

/** A synchronization barrier on a task (Listing 1: Synchronize). */
struct SyncPoint
{
    std::string task;
    std::string condition;  ///< e.g., "all" — every instance finished.
};

/** An application's declarative task graph. */
class TaskGraph
{
  public:
    TaskGraph() = default;
    explicit TaskGraph(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    /** Add a task; duplicate names are a validation error. */
    TaskGraph& add_task(TaskDef task);

    /** Declare an edge parent -> child (merged with TaskDef lists). */
    TaskGraph& add_edge(const std::string& parent, const std::string& child);

    /** Listing 1 ordering declarations. */
    TaskGraph& parallel(const std::string& a, const std::string& b);
    TaskGraph& overlap(const std::string& a, const std::string& b);
    TaskGraph& serial(const std::string& a, const std::string& b);
    TaskGraph& synchronize(const std::string& task,
                           const std::string& condition);

    /** Listing 2 management directives. */
    TaskGraph& place(const std::string& task, PlacementHint hint);
    TaskGraph& isolate(const std::string& task);
    TaskGraph& persist(const std::string& task);
    TaskGraph& learn(const std::string& task, LearnScope scope);
    TaskGraph& restore(const std::string& task, RestorePolicy policy);
    TaskGraph& schedule_priority(const std::string& task, int priority);

    /** Set the deployment constraints. */
    TaskGraph& constrain(const GraphConstraints& constraints);
    const GraphConstraints& constraints() const { return constraints_; }

    /** Number of tasks. */
    std::size_t size() const { return order_.size(); }

    /** Whether a task exists. */
    bool has_task(const std::string& name) const;

    /** Task by name; throws std::out_of_range when missing. */
    const TaskDef& task(const std::string& name) const;
    TaskDef& task(const std::string& name);

    /** Tasks in declaration order. */
    const std::vector<std::string>& task_names() const { return order_; }

    /** Whether edge parent -> child exists. */
    bool has_edge(const std::string& parent, const std::string& child) const;

    /** All declared ordering rules. */
    const std::vector<OrderingRule>& orderings() const { return rules_; }

    /** All synchronization points. */
    const std::vector<SyncPoint>& sync_points() const { return syncs_; }

    /** Tasks with no parents / no children. */
    std::vector<std::string> roots() const;
    std::vector<std::string> leaves() const;

    /**
     * Topological order of the tasks.
     *
     * @return std::nullopt when the graph has a cycle.
     */
    std::optional<std::vector<std::string>> topo_order() const;

    /**
     * Validate the graph; returns a list of human-readable errors
     * (empty = valid). Checks: duplicate/unknown task references,
     * self-edges, cycles, contradictory orderings (Parallel + Serial
     * on the same pair), sensor sources pinned to the cloud, actuator
     * sinks pinned to the cloud, and dangling dataset wiring (a task
     * consuming data no parent produces).
     */
    std::vector<std::string> validate() const;

  private:
    std::string name_;
    std::map<std::string, TaskDef> tasks_;
    std::vector<std::string> order_;
    std::vector<OrderingRule> rules_;
    std::vector<SyncPoint> syncs_;
    GraphConstraints constraints_;
    std::vector<std::string> build_errors_;
};

}  // namespace hivemind::dsl

#pragma once

/**
 * @file
 * Task definitions and management directives of the HiveMind DSL.
 *
 * Mirrors Listings 1 and 2 of the paper: a Task carries its I/O
 * datasets, a link to its code, optional arguments, and parent/child
 * edges; optional management directives pin placement (Place), demand
 * a dedicated container (Isolate), persist outputs (Persist), enable
 * continuous learning (Learn), set a fault-tolerance policy (Restore),
 * and set scheduling priority (Schedule). Cost annotations (work,
 * data sizes) feed the program-synthesis cost model; in the real
 * system they come from profiling runs.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hivemind::dsl {

/** Where a task is allowed / forced to run (Place directive). */
enum class PlacementHint
{
    Auto,   ///< Synthesis explores both options.
    Edge,   ///< Pinned to the device (e.g., obstacle avoidance).
    Cloud,  ///< Pinned to the backend.
};

/** Continuous-learning scope (Learn directive, Sec. 4.6). */
enum class LearnScope
{
    Off,
    Local,   ///< Retrain from this device's decisions only.
    Global,  ///< Retrain from the whole swarm's decisions.
};

/** Fault-tolerance policy for a task (Restore directive). */
enum class RestorePolicy
{
    None,        ///< Lost work is dropped.
    Respawn,     ///< Re-execute on failure (OpenWhisk default).
    Checkpoint,  ///< Resume from the last persisted output.
};

/** Human-readable enum names. */
const char* to_string(PlacementHint p);
const char* to_string(LearnScope s);
const char* to_string(RestorePolicy r);

/** One task in an application's task graph (Listing 1: Task(...)). */
struct TaskDef
{
    std::string name;
    /** Logical input/output dataset names. */
    std::string data_in;
    std::string data_out;
    /** Path to the task's code (opaque to the synthesis engine). */
    std::string code_path;
    /** Free-form task arguments (speed='4', algorithm='slam', ...). */
    std::map<std::string, std::string> args;
    /** Upstream dependencies. */
    std::vector<std::string> parents;
    /** Downstream dependents. */
    std::vector<std::string> children;

    // --- Management directives (Listing 2) ---
    PlacementHint placement = PlacementHint::Auto;
    bool isolate = false;
    bool persist = false;
    LearnScope learn = LearnScope::Off;
    RestorePolicy restore = RestorePolicy::Respawn;
    int priority = 0;
    /** Tasks that synchronize on all instances completing. */
    bool sync_all = false;

    // --- Cost annotations for the synthesis cost model ---
    /** Reference-core milliseconds of work per activation. */
    double work_core_ms = 10.0;
    /** Bytes consumed from the parent per activation. */
    std::uint64_t input_bytes = 0;
    /** Bytes produced per activation. */
    std::uint64_t output_bytes = 0;
    /** Whether the task reads physical sensors (must start at edge). */
    bool sensor_source = false;
    /** Whether the task actuates the device (must end at edge). */
    bool actuator_sink = false;
    /** Exploitable intra-task parallelism in the cloud. */
    int parallelism = 1;
};

}  // namespace hivemind::dsl

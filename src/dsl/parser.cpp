#include "dsl/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hivemind::dsl {

namespace {

/** Split a line into whitespace-separated tokens; quotes group. */
std::vector<std::string>
tokenize(const std::string& line)
{
    std::vector<std::string> out;
    std::string cur;
    bool quoted = false;
    for (char c : line) {
        if (c == '"') {
            quoted = !quoted;
            continue;
        }
        if (!quoted && std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Split "key=value" (returns false when '=' is absent). */
bool
split_kv(const std::string& tok, std::string& key, std::string& value)
{
    auto pos = tok.find('=');
    if (pos == std::string::npos)
        return false;
    key = tok.substr(0, pos);
    value = tok.substr(pos + 1);
    return true;
}

bool
parse_double_prefix(const std::string& text, double& value,
                    std::string& suffix)
{
    char* end = nullptr;
    value = std::strtod(text.c_str(), &end);
    if (end == text.c_str())
        return false;
    suffix = std::string(end);
    return true;
}

}  // namespace

bool
parse_size(const std::string& text, std::uint64_t& bytes)
{
    double v = 0.0;
    std::string suffix;
    if (!parse_double_prefix(text, v, suffix) || v < 0.0)
        return false;
    double scale = 1.0;
    if (suffix.empty() || suffix == "B")
        scale = 1.0;
    else if (suffix == "KB" || suffix == "kB")
        scale = 1024.0;
    else if (suffix == "MB")
        scale = 1024.0 * 1024.0;
    else if (suffix == "GB")
        scale = 1024.0 * 1024.0 * 1024.0;
    else
        return false;
    bytes = static_cast<std::uint64_t>(v * scale);
    return true;
}

bool
parse_duration(const std::string& text, double& seconds)
{
    double v = 0.0;
    std::string suffix;
    if (!parse_double_prefix(text, v, suffix) || v < 0.0)
        return false;
    if (suffix == "us")
        seconds = v * 1e-6;
    else if (suffix == "ms")
        seconds = v * 1e-3;
    else if (suffix == "s" || suffix.empty())
        seconds = v;
    else if (suffix == "min")
        seconds = v * 60.0;
    else
        return false;
    return true;
}

ParseResult
parse(const std::string& text)
{
    ParseResult result;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    // Edges and statements referencing tasks are deferred until all
    // tasks are declared, so forward references work.
    struct Deferred
    {
        int lineno;
        std::vector<std::string> tokens;
    };
    std::vector<Deferred> deferred;

    auto err = [&result](int ln, const std::string& msg) {
        result.errors.push_back("line " + std::to_string(ln) + ": " + msg);
    };

    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::vector<std::string> toks = tokenize(line);
        if (toks.empty())
            continue;
        const std::string& kw = toks[0];

        if (kw == "taskgraph") {
            if (toks.size() != 2) {
                err(lineno, "taskgraph expects a name");
                continue;
            }
            result.graph = TaskGraph(toks[1]);
        } else if (kw == "task") {
            if (toks.size() < 2) {
                err(lineno, "task expects a name");
                continue;
            }
            TaskDef t;
            t.name = toks[1];
            bool ok = true;
            for (std::size_t i = 2; i < toks.size(); ++i) {
                std::string key, value;
                if (!split_kv(toks[i], key, value)) {
                    if (toks[i] == "sensor")
                        t.sensor_source = true;
                    else if (toks[i] == "actuator")
                        t.actuator_sink = true;
                    else {
                        err(lineno, "unknown task attribute: " + toks[i]);
                        ok = false;
                    }
                    continue;
                }
                if (key == "in") {
                    t.data_in = value;
                } else if (key == "out") {
                    t.data_out = value;
                } else if (key == "code") {
                    t.code_path = value;
                } else if (key == "work") {
                    double s = 0.0;
                    if (!parse_duration(value, s)) {
                        err(lineno, "bad duration: " + value);
                        ok = false;
                    } else {
                        t.work_core_ms = s * 1000.0;
                    }
                } else if (key == "input") {
                    if (!parse_size(value, t.input_bytes)) {
                        err(lineno, "bad size: " + value);
                        ok = false;
                    }
                } else if (key == "output") {
                    if (!parse_size(value, t.output_bytes)) {
                        err(lineno, "bad size: " + value);
                        ok = false;
                    }
                } else if (key == "parallelism") {
                    t.parallelism = std::atoi(value.c_str());
                    if (t.parallelism < 1) {
                        err(lineno, "parallelism must be >= 1");
                        ok = false;
                    }
                } else if (key.rfind("arg.", 0) == 0) {
                    t.args[key.substr(4)] = value;
                } else {
                    err(lineno, "unknown task attribute: " + key);
                    ok = false;
                }
            }
            if (ok)
                result.graph.add_task(std::move(t));
        } else if (kw == "constraint") {
            GraphConstraints c = result.graph.constraints();
            for (std::size_t i = 1; i < toks.size(); ++i) {
                std::string key, value;
                if (!split_kv(toks[i], key, value)) {
                    err(lineno, "constraint expects key=value");
                    continue;
                }
                double s = 0.0;
                if (key == "exec_time" && parse_duration(value, s))
                    c.exec_time_s = s;
                else if (key == "latency" && parse_duration(value, s))
                    c.latency_s = s;
                else if (key == "throughput")
                    c.throughput_hz = std::atof(value.c_str());
                else if (key == "cost")
                    c.cloud_cost = std::atof(value.c_str());
                else if (key == "battery")
                    c.battery_fraction = std::atof(value.c_str());
                else
                    err(lineno, "unknown constraint: " + key);
            }
            result.graph.constrain(c);
        } else {
            deferred.push_back({lineno, toks});
        }
    }

    for (const auto& d : deferred) {
        const auto& toks = d.tokens;
        const std::string& kw = toks[0];
        auto need = [&](std::size_t n) {
            if (toks.size() != n) {
                err(d.lineno, kw + " expects " + std::to_string(n - 1) +
                        " arguments");
                return false;
            }
            return true;
        };
        if (kw == "edge") {
            if (need(3))
                result.graph.add_edge(toks[1], toks[2]);
        } else if (kw == "parallel") {
            if (need(3))
                result.graph.parallel(toks[1], toks[2]);
        } else if (kw == "serial") {
            if (need(3))
                result.graph.serial(toks[1], toks[2]);
        } else if (kw == "overlap") {
            if (need(3))
                result.graph.overlap(toks[1], toks[2]);
        } else if (kw == "synchronize") {
            if (need(3))
                result.graph.synchronize(toks[1], toks[2]);
        } else if (kw == "place") {
            if (need(3)) {
                if (toks[2] == "edge")
                    result.graph.place(toks[1], PlacementHint::Edge);
                else if (toks[2] == "cloud")
                    result.graph.place(toks[1], PlacementHint::Cloud);
                else
                    err(d.lineno, "place expects edge|cloud");
            }
        } else if (kw == "isolate") {
            if (need(2))
                result.graph.isolate(toks[1]);
        } else if (kw == "persist") {
            if (need(2))
                result.graph.persist(toks[1]);
        } else if (kw == "learn") {
            if (need(3)) {
                if (toks[2] == "local")
                    result.graph.learn(toks[1], LearnScope::Local);
                else if (toks[2] == "global")
                    result.graph.learn(toks[1], LearnScope::Global);
                else
                    err(d.lineno, "learn expects local|global");
            }
        } else if (kw == "restore") {
            if (need(3)) {
                if (toks[2] == "none")
                    result.graph.restore(toks[1], RestorePolicy::None);
                else if (toks[2] == "respawn")
                    result.graph.restore(toks[1], RestorePolicy::Respawn);
                else if (toks[2] == "checkpoint")
                    result.graph.restore(toks[1], RestorePolicy::Checkpoint);
                else
                    err(d.lineno, "restore expects none|respawn|checkpoint");
            }
        } else if (kw == "priority") {
            if (need(3))
                result.graph.schedule_priority(toks[1],
                                               std::atoi(toks[2].c_str()));
        } else {
            err(d.lineno, "unknown statement: " + kw);
        }
    }

    return result;
}

ParseResult
parse_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        ParseResult r;
        r.errors.push_back("cannot open file: " + path);
        return r;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

}  // namespace hivemind::dsl

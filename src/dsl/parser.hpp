#pragma once

/**
 * @file
 * Text front-end for the HiveMind DSL.
 *
 * The paper exposes the DSL as a declarative Python embedding
 * (Listing 3); for a C++ library we additionally provide a small
 * line-oriented text format (".hm") so task graphs can be authored
 * without recompiling. One statement per line:
 *
 *   taskgraph <name>
 *   constraint exec_time=10s [latency=200ms] [throughput=5]
 *   task <name> [in=<ds>] [out=<ds>] [code="<path>"] [work=350ms]
 *        [input=2MB] [output=20KB] [parallelism=8] [sensor] [actuator]
 *        [arg.<key>=<value>]
 *   edge <parent> <child>
 *   parallel <a> <b> | serial <a> <b> | overlap <a> <b>
 *   synchronize <task> <condition>
 *   place <task> edge|cloud
 *   isolate <task> | persist <task>
 *   learn <task> local|global
 *   restore <task> none|respawn|checkpoint
 *   priority <task> <n>
 *   # comments and blank lines are ignored
 *
 * Sizes accept B/KB/MB suffixes; durations accept us/ms/s.
 */

#include <string>
#include <vector>

#include "dsl/graph.hpp"

namespace hivemind::dsl {

/** Outcome of parsing a DSL document. */
struct ParseResult
{
    TaskGraph graph;
    /** Syntax errors with line numbers; empty when parsing succeeded. */
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

/** Parse a DSL document from text. */
ParseResult parse(const std::string& text);

/** Parse a DSL document from a file; missing files report an error. */
ParseResult parse_file(const std::string& path);

/** Parse a human size literal ("512KB", "2MB", "64") into bytes. */
bool parse_size(const std::string& text, std::uint64_t& bytes);

/** Parse a duration literal ("250ms", "10s", "80us") into seconds. */
bool parse_duration(const std::string& text, double& seconds);

}  // namespace hivemind::dsl

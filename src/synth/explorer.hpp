#pragma once

/**
 * @file
 * Placement exploration and selection (Sec. 4.2, Fig. 8).
 *
 * The explorer enumerates all meaningful execution models, profiles
 * each (via the analytic cost model by default, or a caller-supplied
 * profiler that runs the real simulation), filters by the user's
 * constraints, and "the performance and power results are presented
 * to the user, who selects the initial work partitioning scheme" — or
 * best() picks automatically under a weighted objective. pareto()
 * exposes the latency/energy frontier.
 */

#include <functional>
#include <vector>

#include "dsl/graph.hpp"
#include "synth/cost_model.hpp"
#include "synth/placement.hpp"

namespace hivemind::synth {

/** Relative weights when auto-selecting a placement. */
struct Objective
{
    double w_latency = 1.0;
    double w_energy = 0.0;
    double w_cost = 0.0;
};

/** One explored execution model with its estimate. */
struct ExplorationResult
{
    PlacementAssignment placement;
    PlacementEstimate estimate;
    /** Whether the graph's constraints are satisfied. */
    bool feasible = true;
    /** Weighted score under the last objective (lower is better). */
    double score = 0.0;
};

/** Profiler hook: estimate a placement (simulation-backed or analytic). */
using Profiler = std::function<PlacementEstimate(
    const dsl::TaskGraph&, const PlacementAssignment&)>;

/** Explores the placement space of one task graph. */
class PlacementExplorer
{
  public:
    PlacementExplorer(const dsl::TaskGraph& graph,
                      const CostModelParams& params);

    /** Replace the analytic model with a measurement-backed profiler. */
    void set_profiler(Profiler profiler);

    /** Profile every meaningful placement. */
    std::vector<ExplorationResult> explore_all() const;

    /**
     * Best feasible placement under @p objective; falls back to the
     * best infeasible one when nothing satisfies the constraints
     * (with feasible == false so the caller can warn the user).
     */
    ExplorationResult best(const Objective& objective) const;

    /** Latency/energy Pareto frontier over all placements. */
    std::vector<ExplorationResult> pareto() const;

  private:
    bool satisfies_constraints(const PlacementEstimate& est) const;
    double score(const PlacementEstimate& est,
                 const Objective& objective) const;

    const dsl::TaskGraph* graph_;
    CostModelParams params_;
    Profiler profiler_;
};

}  // namespace hivemind::synth

#pragma once

/**
 * @file
 * Placement-space enumeration for program synthesis (Sec. 4.2).
 *
 * For a task graph with n unpinned tasks there are 2^n edge/cloud
 * assignments; HiveMind enumerates the *meaningful* ones — "requiring
 * the scenario to be meaningful reduces the search space by
 * discarding execution models that would not make sense practically,
 * e.g., collecting sensor data in the cloud." Pins come from three
 * sources: user Place() directives, sensor sources (must run on the
 * device), and actuator sinks (must run on the device).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dsl/graph.hpp"

namespace hivemind::synth {

/** Where a task runs in a concrete execution model. */
enum class Location
{
    Edge,
    Cloud,
};

/** Human-readable location name. */
const char* to_string(Location loc);

/** One concrete execution model: task name -> location. */
using PlacementAssignment = std::map<std::string, Location>;

/**
 * Enumerate all meaningful placements of @p graph.
 *
 * Pinned tasks (Place() directives, sensor sources, actuator sinks)
 * take their forced location; all combinations of the remaining tasks
 * are generated, in a deterministic order (task declaration order,
 * edge-first).
 */
std::vector<PlacementAssignment>
enumerate_placements(const dsl::TaskGraph& graph);

/**
 * The number of cloud-edge boundary crossings in an assignment — each
 * crossing needs a synthesized RPC API; the count grows with the
 * number of phases (Sec. 4.1).
 */
std::size_t count_crossings(const dsl::TaskGraph& graph,
                            const PlacementAssignment& placement);

/** Render an assignment as "task@Edge,task@Cloud,..." for tables. */
std::string describe(const PlacementAssignment& placement);

}  // namespace hivemind::synth

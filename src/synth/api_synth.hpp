#pragma once

/**
 * @file
 * Cross-tier API synthesis (Sec. 4.1).
 *
 * Once a placement is chosen, HiveMind "automatically synthesiz[es]
 * the required APIs for data communication between computational
 * steps": Thrift-style RPC stubs in C++ for edges that cross the
 * cloud-edge boundary or connect two edge tasks on different devices,
 * and OpenWhisk action interfaces (CouchDB data exchange, or the
 * remote-memory fabric when available) for cloud-to-cloud edges.
 * This module generates descriptor records and renders compilable
 * C++ stub text — the "28,000 lines of C++ and Python" compiler path
 * of Sec. 4.7, distilled.
 */

#include <string>
#include <vector>

#include "dsl/graph.hpp"
#include "synth/placement.hpp"

namespace hivemind::synth {

/** The transport a synthesized API uses. */
enum class ApiKind
{
    ThriftRpc,       ///< Edge <-> cloud or edge <-> edge (TCP/IP RPC).
    OpenWhiskAction, ///< Cloud <-> cloud via CouchDB (default).
    RemoteMemory,    ///< Cloud <-> cloud via the FPGA fabric (Sec. 4.4).
    LocalCall,       ///< Same tier, same process: direct invocation.
};

/** Human-readable API kind. */
const char* to_string(ApiKind k);

/** One synthesized cross-task API. */
struct ApiStub
{
    std::string name;     ///< e.g., "collectImage_to_faceRecognition".
    std::string parent;
    std::string child;
    std::string dataset;  ///< The dataset flowing over the API.
    ApiKind kind = ApiKind::LocalCall;

    /** Render a compilable C++ stub declaration for this API. */
    std::string render() const;
};

/**
 * Synthesize the API set for @p placement.
 *
 * @param use_remote_memory replace CouchDB exchange with the
 *        remote-memory fabric for cloud-to-cloud edges (Sec. 4.4).
 */
std::vector<ApiStub> synthesize_apis(const dsl::TaskGraph& graph,
                                     const PlacementAssignment& placement,
                                     bool use_remote_memory);

/** Render a full C++ header for all of a placement's APIs. */
std::string render_api_header(const dsl::TaskGraph& graph,
                              const std::vector<ApiStub>& stubs);

}  // namespace hivemind::synth

#pragma once

/**
 * @file
 * Analytic cost model for placement exploration (Sec. 4.2).
 *
 * HiveMind profiles each meaningful execution model on the target
 * swarm; as profiling every candidate end-to-end is expensive, an
 * analytic estimate prunes the space first (and doubles as the unit
 * under test for the explorer). The model computes, per task-graph
 * activation: the critical-path latency through the DAG, the energy
 * drawn from the device battery, the cloud core-seconds consumed, and
 * the bytes crossing the wireless boundary.
 */

#include <cstdint>

#include "dsl/graph.hpp"
#include "synth/placement.hpp"

namespace hivemind::synth {

/** Constants of the analytic estimate. */
struct CostModelParams
{
    /** Edge CPU speed relative to a cloud core. */
    double edge_cpu_factor = 0.12;
    /** Effective device uplink bandwidth, bytes/second. */
    double uplink_Bps = 20e6;
    /** One-way wireless latency, seconds. */
    double wireless_latency_s = 0.004;
    /** Serverless management latency per cloud task, seconds. */
    double faas_mgmt_s = 0.006;
    /** Amortized instantiation latency per cloud task, seconds. */
    double faas_instantiation_s = 0.080;
    /** Cloud-to-cloud data hand-off latency per edge, seconds. */
    double cloud_sharing_s = 0.012;
    /** Cloud sharing bandwidth, bytes/second (CouchDB). */
    double cloud_sharing_Bps = 250e6;
    /** Device compute power, W. */
    double compute_w = 2.5;
    /** Radio energy, J/byte. */
    double radio_j_per_byte = 1.0e-7;
    /** Cloud price, cost units per core-second. */
    double cloud_cost_per_core_s = 1.0;
    /** Max useful intra-task fan-out in the cloud. */
    int max_parallelism = 16;
};

/** Analytic estimate for one placement. */
struct PlacementEstimate
{
    /** Critical-path latency of one graph activation, seconds. */
    double latency_s = 0.0;
    /** Device energy per activation, joules. */
    double edge_energy_j = 0.0;
    /** Cloud cost per activation (core-seconds x price). */
    double cloud_cost = 0.0;
    /** Bytes crossing the wireless boundary per activation. */
    std::uint64_t crossing_bytes = 0;
};

/** Compute the analytic estimate of @p placement for @p graph. */
PlacementEstimate estimate_placement(const dsl::TaskGraph& graph,
                                     const PlacementAssignment& placement,
                                     const CostModelParams& params);

}  // namespace hivemind::synth

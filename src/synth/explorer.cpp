#include "synth/explorer.hpp"

#include <algorithm>
#include <limits>

namespace hivemind::synth {

PlacementExplorer::PlacementExplorer(const dsl::TaskGraph& graph,
                                     const CostModelParams& params)
    : graph_(&graph), params_(params)
{
}

void
PlacementExplorer::set_profiler(Profiler profiler)
{
    profiler_ = std::move(profiler);
}

bool
PlacementExplorer::satisfies_constraints(const PlacementEstimate& est) const
{
    const dsl::GraphConstraints& c = graph_->constraints();
    if (c.latency_s > 0.0 && est.latency_s > c.latency_s)
        return false;
    if (c.exec_time_s > 0.0 && est.latency_s > c.exec_time_s)
        return false;
    if (c.cloud_cost > 0.0 && est.cloud_cost > c.cloud_cost)
        return false;
    return true;
}

double
PlacementExplorer::score(const PlacementEstimate& est,
                         const Objective& objective) const
{
    return objective.w_latency * est.latency_s +
        objective.w_energy * est.edge_energy_j +
        objective.w_cost * est.cloud_cost;
}

std::vector<ExplorationResult>
PlacementExplorer::explore_all() const
{
    std::vector<ExplorationResult> out;
    for (PlacementAssignment& a : enumerate_placements(*graph_)) {
        ExplorationResult r;
        r.estimate = profiler_ ? profiler_(*graph_, a)
                               : estimate_placement(*graph_, a, params_);
        r.feasible = satisfies_constraints(r.estimate);
        r.placement = std::move(a);
        out.push_back(std::move(r));
    }
    return out;
}

ExplorationResult
PlacementExplorer::best(const Objective& objective) const
{
    std::vector<ExplorationResult> all = explore_all();
    const ExplorationResult* best_feasible = nullptr;
    const ExplorationResult* best_any = nullptr;
    double best_feasible_score = std::numeric_limits<double>::max();
    double best_any_score = std::numeric_limits<double>::max();
    for (ExplorationResult& r : all) {
        r.score = score(r.estimate, objective);
        if (r.score < best_any_score) {
            best_any_score = r.score;
            best_any = &r;
        }
        if (r.feasible && r.score < best_feasible_score) {
            best_feasible_score = r.score;
            best_feasible = &r;
        }
    }
    if (best_feasible)
        return *best_feasible;
    if (best_any)
        return *best_any;
    return ExplorationResult{};
}

std::vector<ExplorationResult>
PlacementExplorer::pareto() const
{
    std::vector<ExplorationResult> all = explore_all();
    std::vector<ExplorationResult> frontier;
    for (const ExplorationResult& r : all) {
        bool dominated = false;
        for (const ExplorationResult& other : all) {
            if (&other == &r)
                continue;
            bool no_worse =
                other.estimate.latency_s <= r.estimate.latency_s &&
                other.estimate.edge_energy_j <= r.estimate.edge_energy_j;
            bool better =
                other.estimate.latency_s < r.estimate.latency_s ||
                other.estimate.edge_energy_j < r.estimate.edge_energy_j;
            if (no_worse && better) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(r);
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const ExplorationResult& a, const ExplorationResult& b) {
                  return a.estimate.latency_s < b.estimate.latency_s;
              });
    return frontier;
}

}  // namespace hivemind::synth

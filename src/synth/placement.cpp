#include "synth/placement.hpp"

namespace hivemind::synth {

const char*
to_string(Location loc)
{
    return loc == Location::Edge ? "Edge" : "Cloud";
}

std::vector<PlacementAssignment>
enumerate_placements(const dsl::TaskGraph& graph)
{
    std::vector<std::string> free_tasks;
    PlacementAssignment pinned;
    for (const std::string& name : graph.task_names()) {
        const dsl::TaskDef& t = graph.task(name);
        if (t.sensor_source || t.actuator_sink ||
            t.placement == dsl::PlacementHint::Edge) {
            pinned[name] = Location::Edge;
        } else if (t.placement == dsl::PlacementHint::Cloud) {
            pinned[name] = Location::Cloud;
        } else {
            free_tasks.push_back(name);
        }
    }

    std::vector<PlacementAssignment> out;
    std::uint64_t combos = 1ull << free_tasks.size();
    out.reserve(combos);
    for (std::uint64_t mask = 0; mask < combos; ++mask) {
        PlacementAssignment a = pinned;
        for (std::size_t i = 0; i < free_tasks.size(); ++i) {
            a[free_tasks[i]] = (mask >> i) & 1 ? Location::Cloud
                                               : Location::Edge;
        }
        out.push_back(std::move(a));
    }
    return out;
}

std::size_t
count_crossings(const dsl::TaskGraph& graph,
                const PlacementAssignment& placement)
{
    std::size_t n = 0;
    for (const std::string& name : graph.task_names()) {
        const dsl::TaskDef& t = graph.task(name);
        auto it = placement.find(name);
        if (it == placement.end())
            continue;
        for (const std::string& c : t.children) {
            auto cit = placement.find(c);
            if (cit != placement.end() && cit->second != it->second)
                ++n;
        }
    }
    return n;
}

std::string
describe(const PlacementAssignment& placement)
{
    std::string out;
    for (const auto& [task, loc] : placement) {
        if (!out.empty())
            out += ",";
        out += task;
        out += "@";
        out += to_string(loc);
    }
    return out;
}

}  // namespace hivemind::synth

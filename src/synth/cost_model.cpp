#include "synth/cost_model.hpp"

#include <algorithm>
#include <map>

namespace hivemind::synth {

PlacementEstimate
estimate_placement(const dsl::TaskGraph& graph,
                   const PlacementAssignment& placement,
                   const CostModelParams& params)
{
    PlacementEstimate est;
    auto topo = graph.topo_order();
    if (!topo)
        return est;

    // Longest-path DP: finish[t] = max over parents of
    //   finish[parent] + edge_cost(parent, t) + node_cost(t).
    std::map<std::string, double> finish;

    for (const std::string& name : *topo) {
        const dsl::TaskDef& t = graph.task(name);
        Location loc = placement.at(name);

        // Node latency.
        double node_s;
        if (loc == Location::Edge) {
            node_s = t.work_core_ms / 1000.0 / params.edge_cpu_factor;
            est.edge_energy_j += node_s * params.compute_w;
        } else {
            int ways = std::min(t.parallelism, params.max_parallelism);
            node_s = params.faas_mgmt_s + params.faas_instantiation_s +
                t.work_core_ms / 1000.0 / static_cast<double>(ways);
            est.cloud_cost +=
                t.work_core_ms / 1000.0 * params.cloud_cost_per_core_s;
        }

        double start = 0.0;
        for (const std::string& p : t.parents) {
            auto pit = finish.find(p);
            if (pit == finish.end())
                continue;
            const dsl::TaskDef& pt = graph.task(p);
            Location ploc = placement.at(p);
            double edge_s = 0.0;
            std::uint64_t bytes = pt.output_bytes;
            if (ploc != loc) {
                // Wireless boundary crossing.
                edge_s = params.wireless_latency_s +
                    static_cast<double>(bytes) / params.uplink_Bps;
                est.crossing_bytes += bytes;
                est.edge_energy_j +=
                    params.radio_j_per_byte * static_cast<double>(bytes);
            } else if (loc == Location::Cloud) {
                edge_s = params.cloud_sharing_s +
                    static_cast<double>(bytes) / params.cloud_sharing_Bps;
            }
            start = std::max(start, pit->second + edge_s);
        }
        finish[name] = start + node_s;
        est.latency_s = std::max(est.latency_s, finish[name]);
    }
    return est;
}

}  // namespace hivemind::synth

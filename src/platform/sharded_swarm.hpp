#pragma once

/**
 * @file
 * Fig. 1-style swarm scenario running natively on the sharded
 * runtime.
 *
 * Devices are partitioned round-robin across SwarmRuntime shards;
 * each device is a self-contained actor (own RNG stream, position,
 * battery, strip assignment) driven by recurring kernel tasks on its
 * owner shard: a motion tick that burns configurable arithmetic work
 * steering toward its strip, a 1 Hz heartbeat, and a Poisson
 * recognition-frame process. All interaction with the shard-0
 * SwarmController rides per-device ShardLinks (uplink owner -> 0,
 * downlink 0 -> owner), whose propagation doubles as the runtime's
 * lookahead bound.
 *
 * Because every message crosses the mailbox path and all per-device
 * state is keyed by device id — never by shard — a run's checksum is
 * byte-identical for any shard count, which tests/shard_test.cpp and
 * the determinism suite assert for {1, 2, 4} shards, chaos included.
 */

#include <cstddef>
#include <cstdint>

#include "core/swarm_controller.hpp"
#include "fault/plan.hpp"
#include "fault/shard_chaos.hpp"
#include "sim/time.hpp"

namespace hivemind::platform {

/** Knobs for one sharded swarm run. */
struct ShardedSwarmConfig
{
    int shards = 1;
    std::size_t devices = 8;
    std::uint64_t seed = 42;
    sim::Time duration = 60 * sim::kSecond;

    sim::Time motion_tick = 50 * sim::kMillisecond;
    int obstacle_work = 16;     ///< Arithmetic iterations per tick.
    /**
     * Drive heartbeats and motion ticks from one batched recurring
     * task per shard (devices visited in id order) instead of one
     * kernel event per device per tick. Batching cuts kernel events
     * per simulated second by ~2x device count, and the motion batch
     * is silent-classified (it never sends), which widens adaptive
     * lookahead windows. The checksum is identical either way.
     */
    bool batched_ticks = true;
    double frame_rate_hz = 4.0; ///< Poisson frames per device.
    std::uint64_t frame_bytes = 32 * 1024;

    double uplink_bps = 20e6;
    double downlink_bps = 50e6;
    sim::Time propagation = 2 * sim::kMillisecond;  ///< Lookahead bound.

    sim::Time crash_controller_at = 0;  ///< 0 = no failover episode.
    fault::FaultPlan faults;            ///< Device crash/rejoin chaos.
};

/** Aggregated outcome; checksum is the byte-identity witness. */
struct ShardedSwarmResult
{
    std::uint64_t checksum = 0;  ///< Devices in id order + controller.
    core::SwarmController::Stats controller;
    std::uint64_t frames_sent = 0;
    std::uint64_t acks = 0;
    std::uint64_t motion_ticks = 0;
    std::uint64_t epochs = 0;
    std::uint64_t executed = 0;
    std::uint64_t forwarded = 0;
    fault::ShardChaosReport chaos;
    double wall_s = 0.0;  ///< Host time inside run_until.
};

/** Run the swarm on @p config.shards shard kernels. */
ShardedSwarmResult run_sharded_swarm(const ShardedSwarmConfig& config);

}  // namespace hivemind::platform

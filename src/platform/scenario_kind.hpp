#pragma once

/** @file Scenario identifiers, shared by configs and pipeline specs. */

namespace hivemind::platform {

/** Which end-to-end scenario to run. */
enum class ScenarioKind
{
    StationaryItems,
    MovingPeople,
    TreasureHunt,
    RoverMaze,
};

/** Human-readable scenario name. */
const char* to_string(ScenarioKind k);

}  // namespace hivemind::platform

#pragma once

/**
 * @file
 * Result records produced by experiment runs.
 *
 * RunMetrics carries everything the paper's figures report: per-task
 * latency distributions with the four-way stage breakdown (network /
 * management / data I/O / execution), per-device battery consumption,
 * over-the-air bandwidth, scenario completion time and status, and
 * runtime counters (cold starts, faults, respawns).
 */

#include <cstdint>
#include <string>

#include "fault/metrics.hpp"
#include "sim/stats.hpp"

namespace hivemind::platform {

/** Everything measured by one experiment run. */
struct RunMetrics
{
    /** End-to-end per-task latency, seconds. */
    sim::Summary task_latency_s;
    /** Per-task stage shares, seconds. */
    sim::Summary network_s;
    sim::Summary mgmt_s;
    sim::Summary data_s;
    sim::Summary exec_s;
    /** Per-device battery consumed at the end of the run, percent. */
    sim::Summary battery_pct;
    /** Per-device end-to-end job completion times (rover scenarios). */
    sim::Summary job_latency_s;
    /** Per-second over-the-air bandwidth, MB/s. */
    sim::Summary bandwidth_MBps;
    /** Scenario completion time, seconds (scenario runs only). */
    double completion_s = 0.0;
    /** Whether the scenario goal was reached (always true for jobs). */
    bool completed = true;
    /** Fraction of scenario targets found/counted. */
    double goal_fraction = 1.0;
    /** Counters. */
    std::uint64_t tasks_completed = 0;
    std::uint64_t tasks_shed = 0;
    std::uint64_t cold_starts = 0;
    std::uint64_t warm_starts = 0;
    std::uint64_t faults = 0;
    std::uint64_t respawns = 0;
    /** Host CPU seconds spent on cloud RPC processing. */
    double cloud_rpc_cpu_s = 0.0;
    /**
     * Total bytes sent + received over the device radios — the radio
     * energy ledger's input, summed over the fleet. Both engines fill
     * this, so cross-engine accounting drift is testable.
     */
    std::uint64_t radio_bytes_total = 0;
    /** Final detection-model quality (scenario runs; Fig. 15). */
    double detect_correct_pct = 0.0;
    double detect_fn_pct = 0.0;
    double detect_fp_pct = 0.0;
    /** Fault-injection ledger (MTTD/MTTR, lost work, retries). */
    fault::RecoveryMetrics recovery;

    /** Merge a repeat run into this record (summaries append). */
    void merge(const RunMetrics& other);
};

/** Fixed-width helper for printing table rows. */
std::string format_cell(double value, int width = 10, int precision = 2);

}  // namespace hivemind::platform

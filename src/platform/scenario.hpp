#pragma once

/**
 * @file
 * End-to-end scenario runner.
 *
 * Drives the paper's four multi-phase scenarios to completion:
 *  - Scenario A (Stationary Items): locate N tennis balls in a field.
 *    The field is strip-partitioned, drones sweep their regions at
 *    4 m/s collecting frames, an on-board obstacle-avoidance engine
 *    always runs locally, and recognition (plus aggregation) runs
 *    wherever the platform places it. Misses are retried on later
 *    sweeps; retraining improves accuracy between passes.
 *  - Scenario B (Moving People): count M moving people; recognition
 *    feeds a deduplication stage (FaceNet-style), so the same person
 *    seen by two drones is counted once.
 *  - Treasure Hunt (rovers): each rover follows a chain of panels,
 *    photographing each and waiting for image-to-text results that
 *    reveal the next leg.
 *  - Rover Maze: each rover traverses a maze with a wall-follower
 *    planner invoked per step.
 *
 * The runner integrates battery (motion, compute, radio) once per
 * second; a device whose battery empties fails — its heartbeats stop,
 * and on HiveMind the controller repartitions its region (Fig. 10).
 * Scenarios end when the goal is met, the time cap expires, or no
 * device is left alive.
 */

#include <cstdint>

#include "apps/detection.hpp"
#include "core/ha.hpp"
#include "fault/oracle.hpp"
#include "fault/plan.hpp"
#include "fault/retry.hpp"
#include "platform/deployment.hpp"
#include "platform/metrics.hpp"
#include "platform/options.hpp"
#include "platform/scenario_kind.hpp"

namespace hivemind::platform {

/**
 * Which scenario engine executes a run. An explicit config field —
 * not an env probe — so profiles, fleet tenants and sweeps can mix
 * engines in one process. HIVEMIND_LEGACY_ENGINE=1 remains the
 * documented environment override (see platform::env) for A/B runs
 * that cannot edit configs.
 */
enum class EngineChoice
{
    /** The sharded engine for every scenario kind, at shards=1 too —
     *  the default dispatch since the rover port. */
    Auto,
    /** The single-kernel ScenarioHarness, `shards` ignored. Kept as
     *  the cross-engine parity baseline; scheduled for deletion after
     *  a release cycle of green parity runs. */
    Legacy,
    /** The sharded engine at max(shards, 1) kernels. */
    Sharded,
};

/** Stable profile name ("auto" / "legacy" / "sharded"). */
const char* to_string(EngineChoice e);

/** Scenario parameters (defaults follow Sec. 2.1 / 5.5). */
struct ScenarioConfig
{
    ScenarioKind kind = ScenarioKind::StationaryItems;
    /** Operating area, meters. */
    double field_size_m = 96.0;
    /** Items (Scenario A: 15) or people (Scenario B: 25). */
    std::size_t targets = 15;
    /** Recognition tasks per device per second while sweeping. */
    double frame_task_rate_hz = 1.0;
    /** On-board obstacle-avoidance rate (always at the edge). */
    double obstacle_rate_hz = 2.0;
    /** Continuous-learning mode (Fig. 15). */
    apps::RetrainMode retrain = apps::RetrainMode::Swarm;
    apps::DetectionConfig detection;
    /** Retraining round period. */
    sim::Time retrain_interval = 10 * sim::kSecond;
    /** Give-up horizon. */
    sim::Time time_cap = 1500 * sim::kSecond;
    /** Maximum coverage sweeps before declaring failure. */
    int max_passes = 8;
    /** Treasure hunt: panels per rover. / Maze: side length. */
    int course_legs = 5;
    int maze_side = 9;
    /** Override the sensor frame size (0 = pipeline default). */
    std::uint64_t frame_bytes_override = 0;
    /**
     * Legacy fault injection: force-fail a device at this time
     * (0 = off). Kept as a shim — it is translated into a permanent
     * FaultPlan::device_crash event and merged into @ref faults.
     */
    sim::Time inject_failure_at = 0;
    std::size_t inject_failure_device = 0;
    /** Declarative chaos plan executed by fault::ChaosEngine. */
    fault::FaultPlan faults;
    /** Restore policy applied to cloud pipeline stages. */
    cloud::FaultRecovery recovery = cloud::FaultRecovery::Respawn;
    /** Edge->cloud offload retry / circuit-breaker tuning (Sec. 4.6). */
    fault::RetryConfig retry;
    /**
     * Swarm-controller HA tuning (Sec. 4.6-4.7). The HA stack spins up
     * on HiveMind when `ha.enabled` is set or the fault plan contains
     * controller_crash / controller_partition events; otherwise runs
     * are byte-identical to the pre-HA behavior.
     */
    core::HaConfig ha;
    /**
     * Simulation shards for the sharded engine: device actors (all
     * four scenario kinds) spread over this many sim::SwarmRuntime
     * kernels. The result is checksum-identical for any shard count.
     * The sharded engine is a different (message-passing) model than
     * the legacy harness, so its numbers are compared against other
     * sharded runs; only RecoveryMetrics parity is pinned
     * cross-engine (resilience_parity_test).
     */
    int shards = 1;
    /**
     * Sharded engine only: drive the 1 Hz device housekeeping from
     * one batched recurring task per shard (devices in id order)
     * instead of one kernel event per device. Off replays the
     * per-device event layout; results are checksum-identical either
     * way. Ignored by the legacy shards=1 harness.
     */
    bool batched_ticks = true;
    /**
     * Sharded engine only: use adaptive per-pair lookahead windows
     * (see sim::SwarmRuntime::set_adaptive_lookahead). Off pins the
     * classic global-lookahead epochs. A config knob rather than an
     * env toggle so sweeps can mix modes across concurrent runs.
     */
    bool adaptive_lookahead = true;
    /** Engine dispatch (see EngineChoice). */
    EngineChoice engine = EngineChoice::Auto;

    bool operator==(const ScenarioConfig&) const = default;
};

/** Everything platform::run() reports about one swarm run. */
struct RunResult
{
    RunMetrics metrics;
    /**
     * FNV digest of the run's end state (device roster, ledgers,
     * completion). Engine-specific: sharded checksums compare with
     * sharded runs of the same config at any shard count, legacy
     * checksums with legacy runs. Identical configs + seeds yield
     * identical checksums — the fleet determinism gate.
     */
    std::uint64_t checksum = 0;
    /** Which engine actually ran (never Auto). */
    EngineChoice engine_used = EngineChoice::Legacy;
    /** Shard kernels used (1 for the legacy engine). */
    int shards_used = 1;
    /** Host wall-clock spent inside the engine, seconds. */
    double wall_s = 0.0;
    /** Conservative-sync epochs (sharded engine; 0 for legacy). */
    std::uint64_t epochs = 0;
};

/**
 * The one entry point for scenario execution: resolves
 * `scenario.engine` (and the documented HIVEMIND_LEGACY_ENGINE /
 * HIVEMIND_GLOBAL_LOOKAHEAD environment overrides, via
 * platform::env) and dispatches to the legacy harness or the sharded
 * engine. Benches, tests, examples, the fuzz harness and the fleet
 * driver all route through here — engine selection logic lives
 * nowhere else.
 */
RunResult run(const ScenarioConfig& scenario, const PlatformOptions& options,
              const DeploymentConfig& deployment_config);

/** Run one scenario on one platform (metrics-only run() shorthand). */
RunMetrics run_scenario(const ScenarioConfig& scenario,
                        const PlatformOptions& options,
                        const DeploymentConfig& deployment_config);

/** One legacy-harness run plus the ledger the oracles audit. */
struct AuditedRun
{
    RunMetrics metrics;
    fault::RunAudit audit;
};

/**
 * Run @p scenario on the legacy single-kernel harness (regardless of
 * `scenario.shards`) and return the metrics together with a filled
 * fault::RunAudit for the invariant oracles. The sharded engine's
 * equivalent is ShardedScenarioResult::audit.
 */
AuditedRun run_scenario_audited(const ScenarioConfig& scenario,
                                const PlatformOptions& options,
                                const DeploymentConfig& deployment_config);

}  // namespace hivemind::platform

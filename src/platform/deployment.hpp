#pragma once

/**
 * @file
 * Deployment: one fully wired swarm + cloud instance.
 *
 * A Deployment instantiates the whole stack for one experiment run —
 * simulator, network topology, cluster, data store, FaaS runtime,
 * IaaS pool, edge devices, and (for HiveMind) the scheduler — and
 * applies the PlatformOptions feature flags: FPGA RPC offload on the
 * cloud NICs, the remote-memory data-sharing fabric, and the
 * HiveMind scheduler with its wide keep-alive window and co-location
 * policy. cloud_invoke() routes a task to whichever cloud backend the
 * platform uses and normalizes the resulting stage breakdown.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cloud/datastore.hpp"
#include "cloud/faas.hpp"
#include "cloud/iaas.hpp"
#include "cloud/server.hpp"
#include "core/scheduler.hpp"
#include "edge/device.hpp"
#include "net/topology.hpp"
#include "platform/options.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hivemind::platform {

/** Sizing and tuning of one deployment. */
struct DeploymentConfig
{
    std::size_t devices = 16;
    std::size_t servers = 12;
    int cores_per_server = 40;
    std::uint64_t server_memory_mb = 192ull * 1024ull;
    std::uint64_t seed = 42;
    edge::DeviceSpec device_spec = edge::DeviceSpec::drone();
    net::TopologyConfig net;
    cloud::FaasConfig faas;
    cloud::IaasConfig iaas;
    cloud::DataStoreConfig store;
    core::SchedulerConfig scheduler;
    /**
     * Scale routers/ToR/servers proportionally with the swarm (the
     * paper's simulator experiments "scale up the network links
     * proportionately", Sec. 5.6). Reference size is 16 devices.
     */
    bool scale_infra = false;
};

/** Normalized result of one cloud task (FaaS or IaaS). */
struct CloudResult
{
    double mgmt_s = 0.0;   ///< Scheduling + instantiation (+ queueing).
    double data_s = 0.0;   ///< Inter-function data exchange.
    double exec_s = 0.0;   ///< Pure execution.
    sim::Time done = 0;    ///< Completion time.
    std::size_t server = cloud::kNoServer;
};

/** One wired-up experiment instance. */
class Deployment
{
  public:
    Deployment(const DeploymentConfig& config,
               const PlatformOptions& options);

    sim::Simulator& simulator() { return simulator_; }
    sim::Rng& rng() { return rng_; }
    net::SwarmTopology& network() { return *network_; }
    cloud::Cluster& cluster() { return *cluster_; }
    cloud::DataStore& store() { return *store_; }
    cloud::FaasRuntime& faas() { return *faas_; }
    cloud::IaasPool& iaas() { return *iaas_; }
    /** Non-null when the HiveMind scheduler is installed. */
    core::HiveMindScheduler* scheduler() { return scheduler_.get(); }
    edge::Device& device(std::size_t i) { return *devices_[i]; }
    std::size_t device_count() const { return devices_.size(); }
    const PlatformOptions& options() const { return options_; }
    const DeploymentConfig& config() const { return config_; }

    /**
     * Run one task on the platform's cloud backend (FaaS via the
     * HiveMind scheduler when installed, plain FaaS otherwise, or the
     * reserved IaaS pool for CentralizedIaas), with @p parallelism
     * intra-task fan-out where the backend supports it.
     */
    void cloud_invoke(const cloud::InvokeRequest& request, int parallelism,
                      std::function<void(const CloudResult&)> done);

    /** Charge each device's radio energy from the topology counters. */
    void settle_radio_energy();

  private:
    DeploymentConfig config_;
    PlatformOptions options_;
    sim::Simulator simulator_;
    sim::Rng rng_;
    std::unique_ptr<net::SwarmTopology> network_;
    std::unique_ptr<cloud::Cluster> cluster_;
    std::unique_ptr<cloud::DataStore> store_;
    std::unique_ptr<cloud::FaasRuntime> faas_;
    std::unique_ptr<cloud::IaasPool> iaas_;
    std::unique_ptr<core::HiveMindScheduler> scheduler_;
    std::vector<std::unique_ptr<edge::Device>> devices_;
    std::vector<std::uint64_t> radio_settled_;
};

}  // namespace hivemind::platform

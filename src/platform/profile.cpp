#include "platform/profile.hpp"

#include <cstdint>
#include <utility>

#include "fault/fuzz.hpp"

namespace hivemind::platform {

namespace {

constexpr int kProfileVersion = 1;

std::int64_t
ns(sim::Time t)
{
    return static_cast<std::int64_t>(t);
}

sim::Time
parse_time(util::JsonCursor& in)
{
    return static_cast<sim::Time>(in.parse_int());
}

ScenarioKind
parse_kind(util::JsonCursor& in)
{
    const std::string name = in.parse_string();
    if (name == "stationary_items")
        return ScenarioKind::StationaryItems;
    if (name == "moving_people")
        return ScenarioKind::MovingPeople;
    if (name == "treasure_hunt")
        return ScenarioKind::TreasureHunt;
    if (name == "rover_maze")
        return ScenarioKind::RoverMaze;
    in.fail("unknown scenario kind \"" + name + "\"");
}

apps::RetrainMode
parse_retrain(util::JsonCursor& in)
{
    const std::string name = in.parse_string();
    if (name == "none")
        return apps::RetrainMode::None;
    if (name == "self")
        return apps::RetrainMode::Self;
    if (name == "swarm")
        return apps::RetrainMode::Swarm;
    in.fail("unknown retrain mode \"" + name + "\"");
}

cloud::FaultRecovery
parse_recovery(util::JsonCursor& in)
{
    const std::string name = in.parse_string();
    if (name == "none")
        return cloud::FaultRecovery::None;
    if (name == "respawn")
        return cloud::FaultRecovery::Respawn;
    if (name == "checkpoint")
        return cloud::FaultRecovery::Checkpoint;
    in.fail("unknown recovery policy \"" + name + "\"");
}

EngineChoice
parse_engine(util::JsonCursor& in)
{
    const std::string name = in.parse_string();
    if (name == "auto")
        return EngineChoice::Auto;
    if (name == "legacy")
        return EngineChoice::Legacy;
    if (name == "sharded")
        return EngineChoice::Sharded;
    in.fail("unknown engine \"" + name + "\"");
}

util::Json
detection_json(const apps::DetectionConfig& d)
{
    return util::Json::object()
        .kv("base_correct", d.base_correct)
        .kv("max_correct", d.max_correct)
        .kv("tau_samples", d.tau_samples)
        .kv("fn_share", d.fn_share);
}

apps::DetectionConfig
parse_detection(util::JsonCursor& in)
{
    apps::DetectionConfig d;
    util::parse_object(in, [&](util::JsonCursor& in,
                               const std::string& key) {
        if (key == "base_correct")
            d.base_correct = in.parse_number();
        else if (key == "max_correct")
            d.max_correct = in.parse_number();
        else if (key == "tau_samples")
            d.tau_samples = in.parse_number();
        else if (key == "fn_share")
            d.fn_share = in.parse_number();
        else
            in.fail("unknown detection key \"" + key + "\"");
    });
    return d;
}

util::Json
retry_json(const fault::RetryConfig& r)
{
    return util::Json::object()
        .kv("max_attempts", r.max_attempts)
        .kv("base_backoff", ns(r.base_backoff))
        .kv("multiplier", r.multiplier)
        .kv("jitter", r.jitter)
        .kv("breaker_threshold", r.breaker_threshold)
        .kv("breaker_cooldown", ns(r.breaker_cooldown));
}

fault::RetryConfig
parse_retry(util::JsonCursor& in)
{
    fault::RetryConfig r;
    util::parse_object(in, [&](util::JsonCursor& in,
                               const std::string& key) {
        if (key == "max_attempts")
            r.max_attempts = static_cast<int>(in.parse_int());
        else if (key == "base_backoff")
            r.base_backoff = parse_time(in);
        else if (key == "multiplier")
            r.multiplier = in.parse_number();
        else if (key == "jitter")
            r.jitter = in.parse_number();
        else if (key == "breaker_threshold")
            r.breaker_threshold = static_cast<int>(in.parse_int());
        else if (key == "breaker_cooldown")
            r.breaker_cooldown = parse_time(in);
        else
            in.fail("unknown retry key \"" + key + "\"");
    });
    return r;
}

util::Json
ha_json(const core::HaConfig& h)
{
    return util::Json::object()
        .kv("enabled", h.enabled)
        .kv("checkpoint_interval", ns(h.checkpoint_interval))
        .kv("primary_beat_interval", ns(h.primary_beat_interval))
        .kv("election_timeout", ns(h.election_timeout))
        .kv("standbys", h.standbys)
        .kv("replay_Bps", h.replay_Bps)
        .kv("reconcile_per_device", ns(h.reconcile_per_device))
        .kv("redrive_per_offload", ns(h.redrive_per_offload))
        .kv("drift_replay_frac", h.drift_replay_frac);
}

core::HaConfig
parse_ha(util::JsonCursor& in)
{
    core::HaConfig h;
    util::parse_object(in, [&](util::JsonCursor& in,
                               const std::string& key) {
        if (key == "enabled")
            h.enabled = in.parse_bool();
        else if (key == "checkpoint_interval")
            h.checkpoint_interval = parse_time(in);
        else if (key == "primary_beat_interval")
            h.primary_beat_interval = parse_time(in);
        else if (key == "election_timeout")
            h.election_timeout = parse_time(in);
        else if (key == "standbys")
            h.standbys = static_cast<int>(in.parse_int());
        else if (key == "replay_Bps")
            h.replay_Bps = in.parse_number();
        else if (key == "reconcile_per_device")
            h.reconcile_per_device = parse_time(in);
        else if (key == "redrive_per_offload")
            h.redrive_per_offload = parse_time(in);
        else if (key == "drift_replay_frac")
            h.drift_replay_frac = in.parse_number();
        else
            in.fail("unknown ha key \"" + key + "\"");
    });
    return h;
}

}  // namespace

const char*
scenario_kind_name(ScenarioKind k)
{
    switch (k) {
    case ScenarioKind::StationaryItems:
        return "stationary_items";
    case ScenarioKind::MovingPeople:
        return "moving_people";
    case ScenarioKind::TreasureHunt:
        return "treasure_hunt";
    case ScenarioKind::RoverMaze:
        return "rover_maze";
    }
    return "stationary_items";
}

const char*
retrain_mode_name(apps::RetrainMode m)
{
    switch (m) {
    case apps::RetrainMode::None:
        return "none";
    case apps::RetrainMode::Self:
        return "self";
    case apps::RetrainMode::Swarm:
        return "swarm";
    }
    return "none";
}

const char*
recovery_name(cloud::FaultRecovery r)
{
    switch (r) {
    case cloud::FaultRecovery::None:
        return "none";
    case cloud::FaultRecovery::Respawn:
        return "respawn";
    case cloud::FaultRecovery::Checkpoint:
        return "checkpoint";
    }
    return "none";
}

util::Json
scenario_json(const ScenarioConfig& sc)
{
    return util::Json::object()
        .kv("version", kProfileVersion)
        .kv("kind", scenario_kind_name(sc.kind))
        .kv("engine", to_string(sc.engine))
        .kv("field_size_m", sc.field_size_m)
        .kv("targets", static_cast<std::uint64_t>(sc.targets))
        .kv("frame_task_rate_hz", sc.frame_task_rate_hz)
        .kv("obstacle_rate_hz", sc.obstacle_rate_hz)
        .kv("retrain", retrain_mode_name(sc.retrain))
        .kv("detection", detection_json(sc.detection))
        .kv("retrain_interval", ns(sc.retrain_interval))
        .kv("time_cap", ns(sc.time_cap))
        .kv("max_passes", sc.max_passes)
        .kv("course_legs", sc.course_legs)
        .kv("maze_side", sc.maze_side)
        .kv("frame_bytes_override", sc.frame_bytes_override)
        .kv("inject_failure_at", ns(sc.inject_failure_at))
        .kv("inject_failure_device",
            static_cast<std::uint64_t>(sc.inject_failure_device))
        .kv("faults", fault::plan_json(sc.faults))
        .kv("recovery", recovery_name(sc.recovery))
        .kv("retry", retry_json(sc.retry))
        .kv("ha", ha_json(sc.ha))
        .kv("shards", sc.shards)
        .kv("batched_ticks", sc.batched_ticks)
        .kv("adaptive_lookahead", sc.adaptive_lookahead);
}

std::string
scenario_to_json(const ScenarioConfig& sc)
{
    return scenario_json(sc).str() + "\n";
}

ScenarioConfig
scenario_from_cursor(util::JsonCursor& in)
{
    ScenarioConfig sc;
    bool saw_version = false;
    util::parse_object(in, [&](util::JsonCursor& in,
                               const std::string& key) {
        if (key == "version") {
            const std::int64_t v = in.parse_int();
            if (v != kProfileVersion)
                in.fail("unsupported profile version " +
                        std::to_string(v));
            saw_version = true;
        } else if (key == "kind") {
            sc.kind = parse_kind(in);
        } else if (key == "engine") {
            sc.engine = parse_engine(in);
        } else if (key == "field_size_m") {
            sc.field_size_m = in.parse_number();
        } else if (key == "targets") {
            sc.targets = static_cast<std::size_t>(in.parse_int());
        } else if (key == "frame_task_rate_hz") {
            sc.frame_task_rate_hz = in.parse_number();
        } else if (key == "obstacle_rate_hz") {
            sc.obstacle_rate_hz = in.parse_number();
        } else if (key == "retrain") {
            sc.retrain = parse_retrain(in);
        } else if (key == "detection") {
            sc.detection = parse_detection(in);
        } else if (key == "retrain_interval") {
            sc.retrain_interval = parse_time(in);
        } else if (key == "time_cap") {
            sc.time_cap = parse_time(in);
        } else if (key == "max_passes") {
            sc.max_passes = static_cast<int>(in.parse_int());
        } else if (key == "course_legs") {
            sc.course_legs = static_cast<int>(in.parse_int());
        } else if (key == "maze_side") {
            sc.maze_side = static_cast<int>(in.parse_int());
        } else if (key == "frame_bytes_override") {
            sc.frame_bytes_override =
                static_cast<std::uint64_t>(in.parse_int());
        } else if (key == "inject_failure_at") {
            sc.inject_failure_at = parse_time(in);
        } else if (key == "inject_failure_device") {
            sc.inject_failure_device =
                static_cast<std::size_t>(in.parse_int());
        } else if (key == "faults") {
            sc.faults = fault::plan_from_cursor(in);
        } else if (key == "recovery") {
            sc.recovery = parse_recovery(in);
        } else if (key == "retry") {
            sc.retry = parse_retry(in);
        } else if (key == "ha") {
            sc.ha = parse_ha(in);
        } else if (key == "shards") {
            sc.shards = static_cast<int>(in.parse_int());
        } else if (key == "batched_ticks") {
            sc.batched_ticks = in.parse_bool();
        } else if (key == "adaptive_lookahead") {
            sc.adaptive_lookahead = in.parse_bool();
        } else {
            in.fail("unknown profile key \"" + key + "\"");
        }
    });
    if (!saw_version)
        in.fail("profile missing \"version\"");
    return sc;
}

ScenarioConfig
scenario_from_json(const std::string& json)
{
    util::JsonCursor in(json, "scenario profile");
    ScenarioConfig sc = scenario_from_cursor(in);
    if (!in.done())
        in.fail("trailing content after profile object");
    return sc;
}

}  // namespace hivemind::platform

#pragma once

/**
 * @file
 * Generic task-graph executor: runs any DSL TaskGraph under any
 * placement on a simulated deployment.
 *
 * This is the execution half of the compiler path (Sec. 4.1/4.2):
 * once the synthesis engine picks a placement, activations of the
 * graph flow through it — edge tasks on the device's on-board
 * executor, cloud tasks through the serverless runtime (with
 * intra-task parallelism and parent co-location), and every
 * cloud/edge boundary crossing over the wireless network. It also
 * serves as the measurement-backed Profiler for the
 * PlacementExplorer: instead of trusting the analytic cost model,
 * profile each candidate placement on the simulated swarm exactly the
 * way the paper profiles candidates on the real one.
 */

#include "dsl/graph.hpp"
#include "platform/deployment.hpp"
#include "platform/metrics.hpp"
#include "platform/options.hpp"
#include "synth/cost_model.hpp"
#include "synth/explorer.hpp"
#include "synth/placement.hpp"

namespace hivemind::platform {

/** Graph-run parameters. */
struct GraphJobConfig
{
    /** Generation window. */
    sim::Time duration = 60 * sim::kSecond;
    /** Extra drain time for in-flight activations. */
    sim::Time drain = 60 * sim::kSecond;
    /** Graph activations per device per second. */
    double activation_rate_hz = 0.5;
    /** Count hover/drive energy. */
    bool include_motion_energy = false;
};

/**
 * Run @p graph under @p placement; returns metrics where
 * task_latency_s holds per-*activation* end-to-end latencies (root
 * sensor reading to last leaf completion) and the stage summaries
 * hold per-activation shares.
 */
RunMetrics run_task_graph(const dsl::TaskGraph& graph,
                          const synth::PlacementAssignment& placement,
                          const PlatformOptions& options,
                          const DeploymentConfig& deployment_config,
                          const GraphJobConfig& job);

/**
 * A measurement-backed Profiler for synth::PlacementExplorer: runs a
 * short simulation of each candidate placement and reports observed
 * latency/energy (Sec. 4.2: "profiles the application on the target
 * swarm").
 */
synth::Profiler make_simulation_profiler(const PlatformOptions& options,
                                         const DeploymentConfig& deployment,
                                         const GraphJobConfig& job);

}  // namespace hivemind::platform

#include "platform/sharded_swarm.hpp"

#include <chrono>
#include <vector>

#include "net/shard_link.hpp"
#include "platform/fnv.hpp"
#include "platform/options.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/swarm_runtime.hpp"

namespace hivemind::platform {

namespace {

using fnv::bits;
using fnv::mix;

constexpr std::uint64_t kFnvBasis = fnv::kBasis;
constexpr std::uint64_t kDownlinkOrigin = 1u << 20;  ///< Above any device.
constexpr std::uint64_t kCtrlMsgBytes = 64;
constexpr double kFieldM = 48.0;
constexpr int kStripWidth = 1024;

/** One edge device; all state is touched only by its owner shard. */
struct Device
{
    std::size_t id = 0;
    sim::Rng rng;
    double x = 0.0;
    double y = 0.0;
    double battery = 1.0;
    int lo = 0;
    int hi = 0;
    bool alive = true;
    std::uint64_t frames = 0;
    std::uint64_t acks = 0;
    std::uint64_t ticks = 0;
    std::uint64_t hash = kFnvBasis;
    net::ShardLink* up = nullptr;
    core::SwarmController* ctrl = nullptr;

    explicit Device(std::uint64_t seed) : rng(seed) {}

    void send_register()
    {
        core::SwarmController* c = ctrl;
        const std::size_t d = id;
        up->transfer(kCtrlMsgBytes,
                     sim::InlineFn([c, d] { c->on_register(d); }));
    }

    /** Runs on the owner shard when a downlink message lands. */
    void apply(const core::DownMsg& msg)
    {
        if (!alive)
            return;  // Dark devices miss their mail.
        switch (msg.kind) {
        case core::DownMsg::Kind::FrameAck:
            ++acks;
            mix(hash, 0xac ^ msg.frame);
            break;
        case core::DownMsg::Kind::Assign:
            lo = msg.lo;
            hi = msg.hi;
            mix(hash, (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(msg.lo))
                       << 32) |
                          static_cast<std::uint32_t>(msg.hi));
            break;
        case core::DownMsg::Kind::ReRegister:
            mix(hash, 0x5e);
            send_register();
            break;
        }
    }
};

}  // namespace

ShardedSwarmResult
run_sharded_swarm(const ShardedSwarmConfig& config)
{
    const std::size_t n = config.devices;
    sim::SwarmRuntime runtime(config.shards);
    // Documented env override (A/B runs): pin global-lookahead epochs.
    if (env::global_lookahead())
        runtime.set_adaptive_lookahead(false);

    std::vector<Device> devices;
    devices.reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
        devices.emplace_back(config.seed ^
                             (0x9e3779b97f4a7c15ull * (d + 1)));
        devices.back().id = d;
        devices.back().x = kFieldM * 0.5;
        devices.back().y =
            kFieldM * static_cast<double>(d + 1) / static_cast<double>(n + 1);
    }

    std::vector<net::ShardLink> uplinks;
    std::vector<net::ShardLink> downlinks;
    uplinks.reserve(n);
    downlinks.reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
        const int owner = runtime.owner_of(d);
        uplinks.emplace_back(runtime, owner, 0, d, config.uplink_bps,
                             config.propagation);
        downlinks.emplace_back(runtime, 0, owner, kDownlinkOrigin + d,
                               config.downlink_bps, config.propagation);
    }

    core::SwarmController::Config cc;
    cc.devices = n;
    cc.strip_width = kStripWidth;
    cc.crash_at = config.crash_controller_at;
    core::SwarmController controller(
        runtime.shard(0), cc,
        [&devices, &downlinks](std::size_t d, core::DownMsg msg) {
            Device* dev = &devices[d];
            downlinks[d].transfer(
                kCtrlMsgBytes,
                sim::InlineFn([dev, msg] { dev->apply(msg); }));
        });

    // One heartbeat / one motion step for one device. Shared by the
    // per-device and batched drive modes so both produce identical
    // per-device state transitions (and hence identical checksums).
    auto beat_one = [](Device& dev) {
        if (!dev.alive)
            return;
        core::SwarmController* c = dev.ctrl;
        const std::size_t id = dev.id;
        dev.up->transfer(kCtrlMsgBytes,
                         sim::InlineFn([c, id] { c->on_beat(id); }));
    };
    auto tick_one = [&config](Device& dev) {
        if (!dev.alive)
            return;
        ++dev.ticks;
        const double target =
            kFieldM * (dev.lo + dev.hi) * 0.5 / kStripWidth;
        double vx = (target - dev.x) * 0.05;
        for (int i = 0; i < config.obstacle_work; ++i) {
            vx = vx * 0.999 + 0.001 * (target - dev.x);
            dev.x += vx * 0.01;
        }
        dev.y += dev.rng.uniform(-0.05, 0.05);
        dev.battery -= 1e-5;
        mix(dev.hash, bits(dev.x));
        mix(dev.hash, bits(dev.y));
    };

    for (std::size_t d = 0; d < n; ++d) {
        Device& dev = devices[d];
        dev.up = &uplinks[d];
        dev.ctrl = &controller;
        // Registration rides the uplink before the run starts, so the
        // controller learns the roster in deterministic merge order.
        dev.send_register();
    }

    // Owner-shard roster in ascending device id: the batched drive
    // visits devices in id order, pinning the intra-batch order to a
    // shard-agnostic key (part of the checksum-invariance contract).
    std::vector<std::vector<std::size_t>> by_shard(
        static_cast<std::size_t>(runtime.shards()));
    for (std::size_t d = 0; d < n; ++d)
        by_shard[static_cast<std::size_t>(runtime.owner_of(d))]
            .push_back(d);

    if (config.batched_ticks) {
        // One wheel event per shard per tick, not one per device. The
        // heartbeat batch sends (it feeds the uplinks); the motion
        // batch never does, so it runs silent and stays out of the
        // adaptive send horizon. Batches are wired before the frame
        // processes below so same-time ties resolve batch-first on
        // every shard count.
        for (int s = 0; s < runtime.shards(); ++s) {
            if (by_shard[static_cast<std::size_t>(s)].empty())
                continue;
            const auto* grp = &by_shard[static_cast<std::size_t>(s)];
            sim::Simulator& shard = runtime.shard(s);
            // 1 Hz heartbeats (Sec. 4.6) — silence > 3 s means failed.
            sim::recurring(shard, sim::kSecond,
                           [&devices, grp, beat_one](
                               const sim::Recur& self) {
                               for (std::size_t d : *grp)
                                   beat_one(devices[d]);
                               self.again_in(sim::kSecond);
                           });
            // Motion ticks: steer toward the assigned strip's centre
            // with configurable per-tick arithmetic (the obstacle-
            // avoidance stand-in that gives shards real work).
            sim::recurring_silent(
                shard, config.motion_tick,
                [&devices, grp, tick_one, &config](
                    const sim::Recur& self) {
                    for (std::size_t d : *grp)
                        tick_one(devices[d]);
                    self.again_in(config.motion_tick);
                });
        }
    }

    for (std::size_t d = 0; d < n; ++d) {
        Device& dev = devices[d];
        sim::Simulator& shard = runtime.shard(runtime.owner_of(d));

        if (!config.batched_ticks) {
            // Legacy drive: one kernel event per device per tick.
            sim::recurring(shard, sim::kSecond,
                           [&dev, beat_one](const sim::Recur& self) {
                               beat_one(dev);
                               self.again_in(sim::kSecond);
                           });
        }

        // Poisson recognition frames toward the controller.
        const double mean_s = 1.0 / config.frame_rate_hz;
        sim::recurring(
            shard, sim::from_seconds(dev.rng.exponential(mean_s)),
            [&dev, &config, mean_s](const sim::Recur& self) {
                if (dev.alive) {
                    const std::uint64_t frame = ++dev.frames;
                    core::SwarmController* c = dev.ctrl;
                    const std::size_t id = dev.id;
                    mix(dev.hash, 0xf0 ^ frame);
                    dev.up->transfer(config.frame_bytes,
                                     sim::InlineFn([c, id, frame] {
                                         c->on_frame(id, frame);
                                     }));
                }
                self.again_in(
                    sim::from_seconds(dev.rng.exponential(mean_s)));
            });

        if (!config.batched_ticks) {
            sim::recurring_silent(
                shard, config.motion_tick,
                [&dev, tick_one, &config](const sim::Recur& self) {
                    tick_one(dev);
                    self.again_in(config.motion_tick);
                });
        }
    }

    controller.start();

    fault::ShardChaosHooks hooks;
    hooks.crash_device = [&devices](std::size_t d) {
        devices[d].alive = false;
        mix(devices[d].hash, 0xdead);
    };
    hooks.rejoin_device = [&devices](std::size_t d) {
        Device& dev = devices[d];
        dev.alive = true;
        mix(dev.hash, 0x11fe);
        dev.send_register();
    };
    hooks.crash_controller = [&controller] { controller.crash_now(); };
    hooks.recover_controller = [&controller] { controller.takeover_now(); };
    ShardedSwarmResult result;
    result.chaos = fault::route_plan(
        runtime, config.faults,
        [&runtime](std::size_t d) { return runtime.owner_of(d); }, hooks);

    const auto wall0 = std::chrono::steady_clock::now();
    sim::SwarmRuntime::Report report = runtime.run_until(config.duration);
    const auto wall1 = std::chrono::steady_clock::now();

    result.epochs = report.epochs;
    result.executed = report.executed;
    result.forwarded = report.forwarded;
    result.wall_s =
        std::chrono::duration<double>(wall1 - wall0).count();
    result.controller = controller.stats();

    // Checksum in device-id order, then the controller's event
    // digest: both keys are shard-agnostic, so this is the quantity
    // the invariance tests compare across shard counts.
    std::uint64_t cs = kFnvBasis;
    for (const Device& dev : devices) {
        mix(cs, dev.hash);
        mix(cs, dev.frames);
        mix(cs, dev.acks);
        mix(cs, dev.ticks);
        mix(cs, (static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(dev.lo))
                 << 32) |
                    static_cast<std::uint32_t>(dev.hi));
        mix(cs, dev.alive ? 1 : 0);
        mix(cs, bits(dev.x));
        mix(cs, bits(dev.y));
        mix(cs, bits(dev.battery));
        result.frames_sent += dev.frames;
        result.acks += dev.acks;
        result.motion_ticks += dev.ticks;
    }
    mix(cs, controller.digest());
    mix(cs, result.controller.beats);
    mix(cs, result.controller.frames);
    mix(cs, result.controller.repartitions);
    result.checksum = cs;
    return result;
}

}  // namespace hivemind::platform

#include "platform/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace hivemind::platform {

const char*
to_string(PlatformKind k)
{
    switch (k) {
      case PlatformKind::CentralizedIaas:
        return "CentralizedIaaS";
      case PlatformKind::CentralizedFaas:
        return "CentralizedFaaS";
      case PlatformKind::DistributedEdge:
        return "DistributedEdge";
      case PlatformKind::HiveMind:
        return "HiveMind";
    }
    return "?";
}

PlatformOptions
PlatformOptions::centralized_iaas()
{
    PlatformOptions o;
    o.kind = PlatformKind::CentralizedIaas;
    o.label = "Centralized IaaS";
    return o;
}

PlatformOptions
PlatformOptions::centralized_faas()
{
    PlatformOptions o;
    o.kind = PlatformKind::CentralizedFaas;
    o.label = "Centralized Cloud";
    return o;
}

PlatformOptions
PlatformOptions::distributed_edge()
{
    PlatformOptions o;
    o.kind = PlatformKind::DistributedEdge;
    o.label = "Distributed Edge";
    return o;
}

PlatformOptions
PlatformOptions::hivemind()
{
    PlatformOptions o;
    o.kind = PlatformKind::HiveMind;
    o.net_accel = true;
    o.remote_mem_accel = true;
    o.hybrid = true;
    o.smart_scheduler = true;
    o.label = "HiveMind";
    return o;
}

PlatformOptions
PlatformOptions::centralized_net_accel()
{
    PlatformOptions o = centralized_faas();
    o.net_accel = true;
    o.label = "Centr-Net Accel";
    return o;
}

PlatformOptions
PlatformOptions::centralized_net_remote_mem()
{
    PlatformOptions o = centralized_net_accel();
    o.remote_mem_accel = true;
    o.label = "+Remote Mem";
    return o;
}

PlatformOptions
PlatformOptions::distributed_net_accel()
{
    PlatformOptions o = distributed_edge();
    o.net_accel = true;
    o.label = "Distr-Net Accel";
    return o;
}

PlatformOptions
PlatformOptions::hivemind_no_accel()
{
    PlatformOptions o = hivemind();
    o.net_accel = false;
    o.remote_mem_accel = false;
    o.label = "HiveMind-No Accel";
    return o;
}

const char*
platform_preset_name(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::CentralizedIaas:
        return "centralized_iaas";
      case PlatformKind::CentralizedFaas:
        return "centralized_faas";
      case PlatformKind::DistributedEdge:
        return "distributed_edge";
      case PlatformKind::HiveMind:
        return "hivemind";
    }
    return "?";
}

PlatformOptions
platform_from_name(const std::string& name)
{
    if (name == "hivemind")
        return PlatformOptions::hivemind();
    if (name == "centralized_faas")
        return PlatformOptions::centralized_faas();
    if (name == "centralized_iaas")
        return PlatformOptions::centralized_iaas();
    if (name == "distributed_edge")
        return PlatformOptions::distributed_edge();
    throw std::invalid_argument("unknown platform preset \"" + name + "\"");
}

namespace env {

namespace {

/** Non-empty and not "0" — the repo-wide boolean env convention. */
bool
flag_set(const char* name)
{
    const char* v = std::getenv(name);
    return v != nullptr && *v != '\0' && *v != '0';
}

}  // namespace

bool
legacy_engine()
{
    return flag_set("HIVEMIND_LEGACY_ENGINE");
}

bool
global_lookahead()
{
    return flag_set("HIVEMIND_GLOBAL_LOOKAHEAD");
}

std::optional<int>
shards()
{
    if (const char* v = std::getenv("HIVEMIND_SHARDS")) {
        const int n = std::atoi(v);
        if (n >= 1)
            return n;
    }
    return std::nullopt;
}

std::optional<long>
mission_s()
{
    if (const char* v = std::getenv("HIVEMIND_MISSION_S")) {
        const long n = std::atol(v);
        if (n >= 1)
            return n;
    }
    return std::nullopt;
}

std::optional<unsigned>
sweep_threads()
{
    if (const char* v = std::getenv("HIVEMIND_SWEEP_THREADS")) {
        const long n = std::strtol(v, nullptr, 10);
        return n > 0 ? static_cast<unsigned>(n) : 1u;
    }
    return std::nullopt;
}

}  // namespace env

}  // namespace hivemind::platform

#include "platform/options.hpp"

namespace hivemind::platform {

const char*
to_string(PlatformKind k)
{
    switch (k) {
      case PlatformKind::CentralizedIaas:
        return "CentralizedIaaS";
      case PlatformKind::CentralizedFaas:
        return "CentralizedFaaS";
      case PlatformKind::DistributedEdge:
        return "DistributedEdge";
      case PlatformKind::HiveMind:
        return "HiveMind";
    }
    return "?";
}

PlatformOptions
PlatformOptions::centralized_iaas()
{
    PlatformOptions o;
    o.kind = PlatformKind::CentralizedIaas;
    o.label = "Centralized IaaS";
    return o;
}

PlatformOptions
PlatformOptions::centralized_faas()
{
    PlatformOptions o;
    o.kind = PlatformKind::CentralizedFaas;
    o.label = "Centralized Cloud";
    return o;
}

PlatformOptions
PlatformOptions::distributed_edge()
{
    PlatformOptions o;
    o.kind = PlatformKind::DistributedEdge;
    o.label = "Distributed Edge";
    return o;
}

PlatformOptions
PlatformOptions::hivemind()
{
    PlatformOptions o;
    o.kind = PlatformKind::HiveMind;
    o.net_accel = true;
    o.remote_mem_accel = true;
    o.hybrid = true;
    o.smart_scheduler = true;
    o.label = "HiveMind";
    return o;
}

PlatformOptions
PlatformOptions::centralized_net_accel()
{
    PlatformOptions o = centralized_faas();
    o.net_accel = true;
    o.label = "Centr-Net Accel";
    return o;
}

PlatformOptions
PlatformOptions::centralized_net_remote_mem()
{
    PlatformOptions o = centralized_net_accel();
    o.remote_mem_accel = true;
    o.label = "+Remote Mem";
    return o;
}

PlatformOptions
PlatformOptions::distributed_net_accel()
{
    PlatformOptions o = distributed_edge();
    o.net_accel = true;
    o.label = "Distr-Net Accel";
    return o;
}

PlatformOptions
PlatformOptions::hivemind_no_accel()
{
    PlatformOptions o = hivemind();
    o.net_accel = false;
    o.remote_mem_accel = false;
    o.label = "HiveMind-No Accel";
    return o;
}

}  // namespace hivemind::platform

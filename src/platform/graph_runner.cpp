#include "platform/graph_runner.hpp"

#include <map>
#include <memory>

namespace hivemind::platform {

namespace {

/** State of one in-flight graph activation. */
struct Activation
{
    std::size_t device;
    sim::Time start = 0;
    /** Tasks whose outputs are ready, with completion times. */
    std::map<std::string, sim::Time> finished;
    /** Remaining unmet parent count per task. */
    std::map<std::string, int> waiting;
    /** Server that ran each cloud task (co-location hints). */
    std::map<std::string, std::size_t> servers;
    /** Accumulated stage shares. */
    double network_s = 0.0;
    double mgmt_s = 0.0;
    double data_s = 0.0;
    double exec_s = 0.0;
    int outstanding = 0;  ///< Tasks currently running.
    int remaining = 0;    ///< Tasks not yet finished.
};

/** The whole run's mutable state. */
struct GraphHarness
{
    Deployment* dep;
    const dsl::TaskGraph* graph;
    const synth::PlacementAssignment* placement;
    const GraphJobConfig* job;
    RunMetrics metrics;
    sim::Rng arrivals;
    std::size_t next_server = 0;

    GraphHarness(Deployment& d, const dsl::TaskGraph& g,
                 const synth::PlacementAssignment& p,
                 const GraphJobConfig& j)
        : dep(&d), graph(&g), placement(&p), job(&j),
          arrivals(d.rng().fork())
    {
    }

    void start_activation(std::size_t device);
    void launch_task(const std::shared_ptr<Activation>& act,
                     const std::string& name, sim::Time ready_at);
    void task_finished(const std::shared_ptr<Activation>& act,
                       const std::string& name);
};

void
GraphHarness::start_activation(std::size_t device)
{
    auto act = std::make_shared<Activation>();
    act->device = device;
    act->start = dep->simulator().now();
    act->remaining = static_cast<int>(graph->size());
    for (const std::string& name : graph->task_names()) {
        act->waiting[name] =
            static_cast<int>(graph->task(name).parents.size());
    }
    for (const std::string& root : graph->roots())
        launch_task(act, root, act->start);
}

void
GraphHarness::launch_task(const std::shared_ptr<Activation>& act,
                          const std::string& name, sim::Time ready_at)
{
    const dsl::TaskDef& task = graph->task(name);
    synth::Location loc = placement->at(name);
    ++act->outstanding;

    // Latest-finishing parent determines the data source.
    sim::Time parents_done = ready_at;
    std::string latest_parent;
    for (const std::string& p : task.parents) {
        auto it = act->finished.find(p);
        if (it != act->finished.end() && it->second >= parents_done) {
            parents_done = it->second;
            latest_parent = p;
        }
    }

    auto self = this;
    if (loc == synth::Location::Edge) {
        // Crossing cloud -> edge first? Ship the parent output down.
        auto run_local = [self, act, name, task]() {
            edge::Device& dev = self->dep->device(act->device);
            dev.executor().submit(
                task.work_core_ms, [self, act, name](double exec_s) {
                    act->exec_s += exec_s;
                    self->task_finished(act, name);
                });
        };
        bool parent_in_cloud = !latest_parent.empty() &&
            placement->at(latest_parent) == synth::Location::Cloud;
        if (parent_in_cloud) {
            std::size_t from = act->servers.count(latest_parent)
                ? act->servers[latest_parent]
                : act->device % dep->config().servers;
            sim::Time t0 = dep->simulator().now();
            dep->network().send_downlink(
                from, act->device, task.input_bytes,
                [self, act, t0, run_local](sim::Time t1) {
                    act->network_s += sim::to_seconds(t1 - t0);
                    run_local();
                });
        } else {
            run_local();
        }
        return;
    }

    // Cloud task. If the latest parent ran at the edge, the input
    // crosses the wireless boundary; if it ran in the cloud, the
    // sharing fabric inside the runtime handles the hand-off.
    bool parent_at_edge = latest_parent.empty() ||
        placement->at(latest_parent) == synth::Location::Edge;
    cloud::InvokeRequest req;
    req.app = graph->name() + ":" + name;
    req.work_core_ms = task.work_core_ms;
    req.memory_mb = 256;
    req.input_bytes = parent_at_edge ? 0 : task.input_bytes;
    req.output_bytes = task.persist ? task.output_bytes : 0;
    if (task.restore == dsl::RestorePolicy::Checkpoint)
        req.recovery = cloud::FaultRecovery::Checkpoint;
    else if (task.restore == dsl::RestorePolicy::None)
        req.recovery = cloud::FaultRecovery::None;
    req.isolate = task.isolate;
    req.priority = task.priority;
    if (!latest_parent.empty() && !parent_at_edge &&
        dep->options().smart_scheduler &&
        act->servers.count(latest_parent)) {
        req.preferred_server = act->servers[latest_parent];
        req.colocate_with_parent = true;
    }
    int par = dep->options().smart_scheduler
        ? std::max(1, task.parallelism)
        : 1;

    auto invoke_cloud = [self, act, name, req, par]() {
        self->dep->cloud_invoke(
            req, par, [self, act, name](const CloudResult& r) {
                act->mgmt_s += r.mgmt_s;
                act->data_s += r.data_s;
                act->exec_s += r.exec_s;
                if (r.server != cloud::kNoServer)
                    act->servers[name] = r.server;
                self->task_finished(act, name);
            });
    };
    if (parent_at_edge) {
        std::size_t server = next_server;
        next_server = (next_server + 1) % dep->config().servers;
        sim::Time t0 = dep->simulator().now();
        dep->network().send_uplink(
            act->device, server, task.input_bytes,
            [self, act, t0, invoke_cloud](sim::Time t1) {
                act->network_s += sim::to_seconds(t1 - t0);
                invoke_cloud();
            });
    } else {
        invoke_cloud();
    }
}

void
GraphHarness::task_finished(const std::shared_ptr<Activation>& act,
                            const std::string& name)
{
    sim::Time now = dep->simulator().now();
    act->finished[name] = now;
    --act->outstanding;
    --act->remaining;
    for (const std::string& child : graph->task(name).children) {
        if (--act->waiting[child] == 0)
            launch_task(act, child, now);
    }
    if (act->remaining == 0) {
        metrics.task_latency_s.add(sim::to_seconds(now - act->start));
        metrics.network_s.add(act->network_s);
        metrics.mgmt_s.add(act->mgmt_s);
        metrics.data_s.add(act->data_s);
        metrics.exec_s.add(act->exec_s);
        ++metrics.tasks_completed;
    }
}

}  // namespace

RunMetrics
run_task_graph(const dsl::TaskGraph& graph,
               const synth::PlacementAssignment& placement,
               const PlatformOptions& options,
               const DeploymentConfig& deployment_config,
               const GraphJobConfig& job)
{
    Deployment dep(deployment_config, options);
    GraphHarness harness(dep, graph, placement, job);
    sim::Simulator& simulator = dep.simulator();

    for (std::size_t d = 0; d < dep.device_count(); ++d) {
        sim::recurring(
            simulator,
            sim::from_seconds(
                harness.arrivals.uniform(0.0, 1.0 / job.activation_rate_hz)),
            [&harness, &simulator, &job, d](const sim::Recur& self) {
                if (simulator.now() >= job.duration)
                    return;
                harness.start_activation(d);
                self.again_in(sim::from_seconds(harness.arrivals.exponential(
                    1.0 / job.activation_rate_hz)));
            });
    }

    simulator.run_until(job.duration + job.drain);

    dep.settle_radio_energy();
    double active_s = sim::to_seconds(
        std::min(simulator.now(), job.duration + job.drain));
    for (std::size_t d = 0; d < dep.device_count(); ++d) {
        edge::Device& dev = dep.device(d);
        dev.account_compute(dev.executor().busy_seconds());
        dev.account_idle(active_s);
        if (job.include_motion_energy)
            dev.account_motion(active_s);
        harness.metrics.battery_pct.add(dev.battery().consumed_percent());
        harness.metrics.tasks_shed += dev.executor().shed();
    }
    sim::Summary bw = dep.network().air_meter().rate_summary(job.duration);
    for (double r : bw.samples())
        harness.metrics.bandwidth_MBps.add(r / 1e6);
    harness.metrics.cold_starts = dep.faas().cold_starts();
    harness.metrics.warm_starts = dep.faas().warm_starts();
    harness.metrics.faults = dep.faas().faults();
    if (dep.scheduler())
        harness.metrics.respawns = dep.scheduler()->respawns();
    return harness.metrics;
}

synth::Profiler
make_simulation_profiler(const PlatformOptions& options,
                         const DeploymentConfig& deployment,
                         const GraphJobConfig& job)
{
    return [options, deployment, job](
               const dsl::TaskGraph& graph,
               const synth::PlacementAssignment& placement) {
        RunMetrics m =
            run_task_graph(graph, placement, options, deployment, job);
        synth::PlacementEstimate est;
        est.latency_s = m.task_latency_s.mean();
        // Joules per activation per device.
        double activations = static_cast<double>(m.tasks_completed);
        if (activations > 0.0) {
            double total_j = 0.0;
            // battery_pct holds one entry per device; convert back.
            for (double pct : m.battery_pct.samples()) {
                total_j +=
                    pct / 100.0 * deployment.device_spec.battery_j;
            }
            est.edge_energy_j = total_j / activations;
        }
        est.crossing_bytes = static_cast<std::uint64_t>(
            m.bandwidth_MBps.mean() * 1e6 /
            std::max(1e-9,
                     activations /
                         sim::to_seconds(job.duration)));
        return est;
    };
}

}  // namespace hivemind::platform

#pragma once

/**
 * @file
 * Platform configurations under evaluation.
 *
 * The paper compares: Centralized IaaS (statically provisioned cloud
 * of equal cost), Centralized FaaS (all compute in the serverless
 * cloud), Distributed Edge (all compute on-board, only final outputs
 * uplinked), and HiveMind. Fig. 13 additionally ablates HiveMind's
 * mechanisms; the feature flags here express every column of that
 * figure.
 */

#include <string>

namespace hivemind::platform {

/** Coordination strategy. */
enum class PlatformKind
{
    CentralizedIaas,
    CentralizedFaas,
    DistributedEdge,
    HiveMind,
};

/** Human-readable kind name. */
const char* to_string(PlatformKind k);

/** A platform plus its hardware/software feature flags. */
struct PlatformOptions
{
    PlatformKind kind = PlatformKind::HiveMind;
    /** FPGA RPC offload on the cloud NICs (Sec. 4.5). */
    bool net_accel = false;
    /** FPGA remote-memory fabric for function data exchange (4.4). */
    bool remote_mem_accel = false;
    /** Hybrid cloud/edge task placement (Sec. 4.2). */
    bool hybrid = false;
    /** HiveMind scheduler (co-location, keep-alive, stragglers, 4.3). */
    bool smart_scheduler = false;
    /** Label for result tables. */
    std::string label;

    /** The four headline platforms. */
    static PlatformOptions centralized_iaas();
    static PlatformOptions centralized_faas();
    static PlatformOptions distributed_edge();
    static PlatformOptions hivemind();

    /** Fig. 13 ablation columns. */
    static PlatformOptions centralized_net_accel();
    static PlatformOptions centralized_net_remote_mem();
    static PlatformOptions distributed_net_accel();
    static PlatformOptions hivemind_no_accel();
};

}  // namespace hivemind::platform

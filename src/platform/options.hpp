#pragma once

/**
 * @file
 * Platform configurations under evaluation.
 *
 * The paper compares: Centralized IaaS (statically provisioned cloud
 * of equal cost), Centralized FaaS (all compute in the serverless
 * cloud), Distributed Edge (all compute on-board, only final outputs
 * uplinked), and HiveMind. Fig. 13 additionally ablates HiveMind's
 * mechanisms; the feature flags here express every column of that
 * figure.
 */

#include <optional>
#include <string>

namespace hivemind::platform {

/** Coordination strategy. */
enum class PlatformKind
{
    CentralizedIaas,
    CentralizedFaas,
    DistributedEdge,
    HiveMind,
};

/** Human-readable kind name. */
const char* to_string(PlatformKind k);

/** A platform plus its hardware/software feature flags. */
struct PlatformOptions
{
    PlatformKind kind = PlatformKind::HiveMind;
    /** FPGA RPC offload on the cloud NICs (Sec. 4.5). */
    bool net_accel = false;
    /** FPGA remote-memory fabric for function data exchange (4.4). */
    bool remote_mem_accel = false;
    /** Hybrid cloud/edge task placement (Sec. 4.2). */
    bool hybrid = false;
    /** HiveMind scheduler (co-location, keep-alive, stragglers, 4.3). */
    bool smart_scheduler = false;
    /** Label for result tables. */
    std::string label;

    /** The four headline platforms. */
    static PlatformOptions centralized_iaas();
    static PlatformOptions centralized_faas();
    static PlatformOptions distributed_edge();
    static PlatformOptions hivemind();

    /** Fig. 13 ablation columns. */
    static PlatformOptions centralized_net_accel();
    static PlatformOptions centralized_net_remote_mem();
    static PlatformOptions distributed_net_accel();
    static PlatformOptions hivemind_no_accel();
};

/** Parse a platform preset name ("hivemind", "centralized_faas",
 *  "centralized_iaas", "distributed_edge"); throws
 *  std::invalid_argument on anything else. Inverse of
 *  platform_preset_name(). */
PlatformOptions platform_from_name(const std::string& name);

/** Stable preset name for profile serialization (by kind). */
const char* platform_preset_name(PlatformKind kind);

/**
 * The HIVEMIND_* environment overrides, all in one place.
 *
 * Every knob these variables touch is first a ScenarioConfig /
 * profile field; the env vars exist for A/B runs and CI sweeps that
 * cannot edit configs (see DESIGN.md "Configuration"). This namespace
 * is the only place in the repo that calls std::getenv — benches and
 * tests route through it, so a grep for getenv outside the options
 * layer should come back empty.
 */
namespace env {

/** HIVEMIND_LEGACY_ENGINE=1: force the legacy single-kernel harness
 *  regardless of ScenarioConfig::engine (the A/B escape hatch). */
bool legacy_engine();

/** HIVEMIND_GLOBAL_LOOKAHEAD=1: pin the classic global-lookahead
 *  epochs, overriding ScenarioConfig::adaptive_lookahead. */
bool global_lookahead();

/** HIVEMIND_SHARDS: an extra shard count for invariance sweeps. */
std::optional<int> shards();

/** HIVEMIND_MISSION_S: mission-window override, seconds, for the
 *  scenario-shards bench (>= 1 to apply). */
std::optional<long> mission_s();

/** HIVEMIND_SWEEP_THREADS: worker override for bench sweeps and the
 *  fleet driver (values < 1 clamp to 1). */
std::optional<unsigned> sweep_threads();

}  // namespace env

}  // namespace hivemind::platform

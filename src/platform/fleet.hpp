#pragma once

/**
 * @file
 * Fleet service mode: many independent swarm runs on one host.
 *
 * The paper's evaluation (and everything in bench/) runs one swarm at
 * a time. A serverless edge operator hosts *fleets*: many tenants,
 * each with their own scenario, deployment sizing, fault plan and
 * seed range, multiplexed onto one simulation host. This module is
 * that service mode:
 *
 *  - FleetProfile / FleetTenant: the declarative JSON description —
 *    N tenants, each a full scenario profile (platform/profile.hpp)
 *    plus deployment sizing, platform preset, replica count and seed
 *    base. Versioned, strict (unknown keys throw), exact round-trip.
 *  - MetricsPipeline: a bounded MPSC queue in front of a background
 *    writer thread that batches per-swarm records into a JSONL
 *    stream. Producers block when the queue is full (backpressure,
 *    never drops); close() drains everything, including records from
 *    swarms that died abnormally.
 *  - Fleet: the concurrent driver. Flattens tenants × replicas into
 *    a job list, runs each job through platform::run() on a worker
 *    pool, streams records through the pipeline, and returns every
 *    record in deterministic (tenant, replica) order.
 *
 * Determinism contract: each swarm run is an independent
 * deterministic simulation with its own seed (seed0 + replica), so
 * every per-swarm checksum is byte-identical to a solo run of the
 * same tenant config at that seed, at ANY --workers value. The fleet
 * only adds scheduling, never sharing — tenants touch no common
 * mutable state. tests/fleet_test.cpp and bench/fleet_capacity.cpp
 * both gate on this.
 */

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "platform/profile.hpp"
#include "platform/scenario.hpp"

namespace hivemind::platform {

/** One tenant: a scenario profile times `replicas` seeds. */
struct FleetTenant
{
    /** Tenant label (JSONL key; need not be unique, but should be). */
    std::string name = "tenant";
    /** Independent runs of this config, seeds seed0 .. seed0+n-1. */
    int replicas = 1;
    /** Seed of replica 0. */
    std::uint64_t seed0 = 1;
    /** Platform preset name (see platform_from_name()). */
    std::string platform = "hivemind";
    /** Deployment sizing (the rest of DeploymentConfig stays at its
     *  defaults — profiles describe experiments, not hardware). */
    std::size_t devices = 16;
    std::size_t servers = 12;
    int cores_per_server = 40;
    bool scale_infra = false;
    /** The full scenario profile. */
    ScenarioConfig scenario;

    bool operator==(const FleetTenant&) const = default;
};

/** A named set of tenants — the unit the fleet driver executes. */
struct FleetProfile
{
    std::string name = "fleet";
    std::vector<FleetTenant> tenants;

    /** Total swarm runs (sum of replicas). */
    std::size_t swarms() const;

    bool operator==(const FleetProfile&) const = default;
};

/** Serialize / parse fleet profiles (version 1, strict keys). */
std::string fleet_to_json(const FleetProfile& fleet);
FleetProfile fleet_from_json(const std::string& json);
util::Json fleet_json(const FleetProfile& fleet);
FleetProfile fleet_from_cursor(util::JsonCursor& in);

/** One swarm run's outcome, as streamed to the metrics JSONL. */
struct SwarmRecord
{
    std::string tenant;
    int replica = 0;
    std::uint64_t seed = 0;
    /** False when the run threw; `error` carries the what(). */
    bool ok = false;
    std::string error;
    RunResult result;
};

/** The JSONL line for one record (no trailing newline). */
util::Json swarm_record_json(const SwarmRecord& rec);

/**
 * Bounded MPSC queue + background JSONL writer (the gacspp COutput
 * idea: simulation threads never block on file I/O except through
 * explicit backpressure). push() blocks while the queue is at
 * capacity — records are never dropped. close() (or destruction)
 * drains the queue, flushes the stream and joins the writer; safe to
 * call twice. push() after close() throws std::logic_error.
 */
class MetricsPipeline
{
  public:
    explicit MetricsPipeline(std::ostream& out,
                             std::size_t capacity = 64);
    ~MetricsPipeline();

    MetricsPipeline(const MetricsPipeline&) = delete;
    MetricsPipeline& operator=(const MetricsPipeline&) = delete;

    /** Enqueue one record; blocks while the queue is full. */
    void push(SwarmRecord rec);

    /** Drain, flush, join. Idempotent. */
    void close();

    /** Records written to the stream (complete after close()). */
    std::uint64_t written() const;

    /** Deepest queue occupancy observed (backpressure telemetry). */
    std::size_t high_water() const;

  private:
    void writer_loop();

    std::ostream& out_;
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable can_push_;
    std::condition_variable can_pop_;
    std::deque<SwarmRecord> queue_;
    bool closed_ = false;
    std::uint64_t written_ = 0;
    std::size_t high_water_ = 0;
    std::thread writer_;
};

/** Knobs for one Fleet::run() call. */
struct FleetRunOptions
{
    /** Worker threads; <= 0 resolves HIVEMIND_SWEEP_THREADS, then
     *  hardware_concurrency (min 1). */
    int workers = 0;
    /** JSONL sink for streaming records (null = no streaming). */
    std::ostream* metrics = nullptr;
    /** MetricsPipeline queue bound when streaming. */
    std::size_t queue_capacity = 64;
};

/** What one Fleet::run() did. */
struct FleetResult
{
    /** Every swarm's record, in (tenant index, replica) order —
     *  independent of worker count and completion order. */
    std::vector<SwarmRecord> records;
    /** Records with ok == false. */
    std::size_t failed = 0;
    /** Worker threads actually used. */
    int workers = 0;
    /** Host wall-clock for the whole fleet, seconds. */
    double wall_s = 0.0;
    /** MetricsPipeline::high_water() (0 when not streaming). */
    std::size_t queue_high_water = 0;
};

/**
 * The concurrent multi-swarm driver. Construction validates the
 * profile (platform names resolve, replicas >= 1); run() executes
 * every tenant × replica job through platform::run() on a worker
 * pool. Each job is self-contained, so results are independent of
 * worker count; a job that throws becomes an ok == false record (the
 * fleet finishes, the pipeline still gets the record).
 */
class Fleet
{
  public:
    explicit Fleet(FleetProfile profile);

    const FleetProfile& profile() const { return profile_; }

    /** The DeploymentConfig a given tenant replica runs with. */
    static DeploymentConfig deployment_of(const FleetTenant& tenant,
                                          int replica);

    FleetResult run(const FleetRunOptions& options = {}) const;

  private:
    FleetProfile profile_;
};

}  // namespace hivemind::platform

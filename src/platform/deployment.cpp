#include "platform/deployment.hpp"

#include <algorithm>
#include <utility>

namespace hivemind::platform {

Deployment::Deployment(const DeploymentConfig& config,
                       const PlatformOptions& options)
    : config_(config), options_(options), rng_(config.seed)
{
    // --- Network ---
    net::TopologyConfig net = config_.net;
    net.devices = config_.devices;
    net.servers = config_.servers;
    net.cloud_rpc_offload = options_.net_accel;
    if (config_.scale_infra && config_.devices > 16) {
        double factor = static_cast<double>(config_.devices) / 16.0;
        net.infra_scale = factor;
        // The serverless cloud grows with offered load too; the
        // controller does NOT (that is the scalability bottleneck).
        config_.servers = static_cast<std::size_t>(
            static_cast<double>(config_.servers) * factor);
        net.servers = config_.servers;
    }
    network_ = std::make_unique<net::SwarmTopology>(simulator_, net, &rng_);

    // --- Cloud ---
    cluster_ = std::make_unique<cloud::Cluster>(
        config_.servers, config_.cores_per_server, config_.server_memory_mb);
    store_ = std::make_unique<cloud::DataStore>(simulator_, rng_,
                                                config_.store);

    cloud::FaasConfig faas = config_.faas;
    if (options_.remote_mem_accel)
        faas.sharing = cloud::SharingProtocol::RemoteMemory;
    if (options_.smart_scheduler) {
        // HiveMind deploys multiple shared-state schedulers when one
        // becomes the bottleneck (Sec. 4.3); replicas scale with the
        // swarm so fan-out never saturates the control plane.
        faas.controllers = std::max<int>(
            2, static_cast<int>(config_.devices / 8));
        // Function concurrency is an internal limit, not a public
        // cloud quota, under HiveMind's full-control deployment.
        faas.max_concurrency = 100000;
    }
    faas_ = std::make_unique<cloud::FaasRuntime>(simulator_, rng_, *cluster_,
                                                 *store_, faas);
    iaas_ = std::make_unique<cloud::IaasPool>(simulator_, rng_,
                                              config_.iaas);

    if (options_.smart_scheduler) {
        scheduler_ = std::make_unique<core::HiveMindScheduler>(
            simulator_, rng_, *faas_, config_.scheduler);
        scheduler_->install();
    }

    // --- Edge devices ---
    devices_.reserve(config_.devices);
    for (std::size_t i = 0; i < config_.devices; ++i) {
        devices_.push_back(std::make_unique<edge::Device>(
            simulator_, rng_, i, config_.device_spec));
    }
    radio_settled_.assign(config_.devices, 0);
}

void
Deployment::cloud_invoke(const cloud::InvokeRequest& request, int parallelism,
                         std::function<void(const CloudResult&)> done)
{
    if (options_.kind == PlatformKind::CentralizedIaas) {
        iaas_->submit(request.work_core_ms,
                      [done = std::move(done)](const cloud::IaasTrace& t) {
                          CloudResult r;
                          r.mgmt_s = t.queue_s();
                          r.exec_s = t.total_s() - t.queue_s();
                          r.done = t.done;
                          if (done)
                              done(r);
                      });
        return;
    }

    auto to_result = [done = std::move(done)](
                         const cloud::InvocationTrace& t) {
        CloudResult r;
        r.mgmt_s = t.mgmt_s() + t.instantiation_s();
        r.data_s = t.data_s();
        r.exec_s = t.exec_s();
        r.done = t.done;
        r.server = t.server;
        if (done)
            done(r);
    };

    if (scheduler_) {
        if (parallelism > 1)
            scheduler_->invoke_parallel(request, parallelism,
                                        std::move(to_result));
        else
            scheduler_->invoke(request, std::move(to_result));
    } else {
        if (parallelism > 1)
            faas_->invoke_parallel(request, parallelism,
                                   std::move(to_result));
        else
            faas_->invoke(request, std::move(to_result));
    }
}

void
Deployment::settle_radio_energy()
{
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        std::uint64_t total = network_->device_bytes(i);
        std::uint64_t delta = total - radio_settled_[i];
        radio_settled_[i] = total;
        devices_[i]->account_radio(delta);
    }
}

}  // namespace hivemind::platform

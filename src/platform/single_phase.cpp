#include "platform/single_phase.hpp"

#include <algorithm>
#include <memory>

namespace hivemind::platform {

namespace {

/** Mutable state shared by the run's callbacks. */
struct JobHarness
{
    Deployment* dep;
    const apps::AppSpec* app;
    const JobConfig* job;
    RunMetrics metrics;
    std::size_t next_server = 0;
    sim::Rng arrivals;

    JobHarness(Deployment& d, const apps::AppSpec& a, const JobConfig& j)
        : dep(&d), app(&a), job(&j), arrivals(d.rng().fork())
    {
    }

    std::size_t
    pick_server()
    {
        std::size_t s = next_server;
        next_server = (next_server + 1) % dep->config().servers;
        return s;
    }

    void
    record(double total, double network, double mgmt, double data,
           double exec)
    {
        metrics.task_latency_s.add(total);
        metrics.network_s.add(network);
        metrics.mgmt_s.add(mgmt);
        metrics.data_s.add(data);
        metrics.exec_s.add(exec);
        ++metrics.tasks_completed;
    }

    cloud::InvokeRequest
    cloud_request(double work_ms, std::uint64_t inter_in,
                  std::uint64_t inter_out) const
    {
        cloud::InvokeRequest req;
        req.app = app->id;
        req.work_core_ms = work_ms;
        req.memory_mb = app->memory_mb;
        req.input_bytes = inter_in;
        req.output_bytes = inter_out;
        return req;
    }

    void handle_task(std::size_t device);
    void run_centralized(std::size_t device);
    void run_distributed(std::size_t device);
    void run_hivemind(std::size_t device);
};

void
JobHarness::run_centralized(std::size_t device)
{
    sim::Time t0 = dep->simulator().now();
    std::size_t server = pick_server();
    int par = 1;
    if (dep->options().kind == PlatformKind::CentralizedFaas &&
        job->serverless_intra_parallelism) {
        par = app->parallelism;
    }
    dep->network().send_uplink(
        device, server, app->input_bytes,
        [this, device, server, t0, par](sim::Time t1) {
            // Dependent-function exchange: the task reads its frame
            // bundle and writes results through the sharing fabric.
            cloud::InvokeRequest req = cloud_request(
                app->work_core_ms, app->inter_bytes, app->inter_bytes);
            dep->cloud_invoke(req, par, [this, device, server, t0,
                                         t1](const CloudResult& r) {
                sim::Time t2 = r.done;
                dep->network().send_downlink(
                    server, device, app->output_bytes,
                    [this, t0, t1, t2, r](sim::Time t3) {
                        double network = sim::to_seconds(t1 - t0) +
                            sim::to_seconds(t3 - t2);
                        record(sim::to_seconds(t3 - t0), network, r.mgmt_s,
                               r.data_s, r.exec_s);
                    });
            });
        });
}

void
JobHarness::run_distributed(std::size_t device)
{
    sim::Time t0 = dep->simulator().now();
    edge::Device& dev = dep->device(device);
    double work = app->work_core_ms * app->edge_work_factor;
    dev.executor().submit(work, [this, device, t0](double exec_s) {
        sim::Time t1 = dep->simulator().now();
        std::size_t server = pick_server();
        dep->network().send_uplink(
            device, server, app->output_bytes,
            [this, t0, t1, exec_s](sim::Time t2) {
                double queue_s = sim::to_seconds(t1 - t0) - exec_s;
                if (queue_s < 0.0)
                    queue_s = 0.0;
                record(sim::to_seconds(t2 - t0), sim::to_seconds(t2 - t1),
                       queue_s, 0.0, exec_s);
            });
    });
}

void
JobHarness::run_hivemind(std::size_t device)
{
    if (app->edge_friendly) {
        // S3/S4/S7: hybrid placement keeps these on-board (Sec. 2.3).
        run_distributed(device);
        return;
    }
    // Hybrid split: an on-board pre-filter shrinks the sensor payload,
    // the heavy stage runs serverless with intra-task parallelism.
    sim::Time t0 = dep->simulator().now();
    edge::Device& dev = dep->device(device);
    double pre_work = app->work_core_ms * job->hybrid_prefilter_share;
    dev.executor().submit(pre_work, [this, device, t0](double pre_exec_s) {
        sim::Time t_pre = dep->simulator().now();
        std::size_t server = pick_server();
        std::uint64_t uplink_bytes = static_cast<std::uint64_t>(
            static_cast<double>(app->input_bytes) *
            job->hybrid_uplink_fraction);
        dep->network().send_uplink(
            device, server, uplink_bytes,
            [this, device, server, t0, t_pre,
             pre_exec_s](sim::Time t1) {
                double cloud_work =
                    app->work_core_ms * (1.0 - job->hybrid_prefilter_share);
                cloud::InvokeRequest req = cloud_request(
                    cloud_work, app->inter_bytes, app->inter_bytes);
                dep->cloud_invoke(
                    req, app->parallelism,
                    [this, device, server, t0, t_pre, t1, pre_exec_s](
                        const CloudResult& r) {
                        sim::Time t2 = r.done;
                        dep->network().send_downlink(
                            server, device, app->output_bytes,
                            [this, t0, t_pre, t1, t2, pre_exec_s,
                             r](sim::Time t3) {
                                double network =
                                    sim::to_seconds(t1 - t_pre) +
                                    sim::to_seconds(t3 - t2);
                                record(sim::to_seconds(t3 - t0), network,
                                       r.mgmt_s, r.data_s,
                                       pre_exec_s + r.exec_s);
                            });
                    });
            });
    });
}

void
JobHarness::handle_task(std::size_t device)
{
    switch (dep->options().kind) {
      case PlatformKind::CentralizedFaas:
      case PlatformKind::CentralizedIaas:
        run_centralized(device);
        break;
      case PlatformKind::DistributedEdge:
        run_distributed(device);
        break;
      case PlatformKind::HiveMind:
        run_hivemind(device);
        break;
    }
}

}  // namespace

namespace {

/** Install the arrival process(es) for one harness. */
void
install_arrivals(JobHarness& harness, Deployment& dep, const JobConfig& job,
                 const apps::AppSpec& app)
{
    sim::Simulator& simulator = dep.simulator();
    if (job.pattern) {
        // Aggregate open-loop arrivals assigned to random devices.
        sim::recurring(
            simulator, 0,
            [&harness, &simulator, &job, &dep](const sim::Recur& self) {
                if (simulator.now() >= job.duration)
                    return;
                double rate = job.pattern->rate_at(simulator.now());
                if (rate > 1e-9) {
                    std::size_t device =
                        harness.arrivals.pick(dep.device_count());
                    harness.handle_task(device);
                }
                double next_rate = std::max(rate, 0.2);
                self.again_in(sim::from_seconds(
                    harness.arrivals.exponential(1.0 / next_rate)));
            });
    } else {
        // Independent per-device Poisson arrivals.
        double rate = app.task_rate_hz * job.load_scale;
        for (std::size_t d = 0; d < dep.device_count(); ++d) {
            sim::recurring(
                simulator,
                sim::from_seconds(harness.arrivals.uniform(0.0, 1.0 / rate)),
                [&harness, &simulator, &job, d, rate](const sim::Recur& self) {
                    if (simulator.now() >= job.duration)
                        return;
                    harness.handle_task(d);
                    self.again_in(sim::from_seconds(
                        harness.arrivals.exponential(1.0 / rate)));
                });
        }
    }

}

/** Shared-deployment totals appended to a harness's metrics. */
void
collect_shared(JobHarness& harness, Deployment& dep, const JobConfig& job)
{
    for (std::size_t d = 0; d < dep.device_count(); ++d) {
        edge::Device& dev = dep.device(d);
        harness.metrics.battery_pct.add(dev.battery().consumed_percent());
        harness.metrics.tasks_shed += dev.executor().shed();
    }
    sim::Summary bw = dep.network().air_meter().rate_summary(job.duration);
    for (double r : bw.samples())
        harness.metrics.bandwidth_MBps.add(r / 1e6);
    harness.metrics.cold_starts = dep.faas().cold_starts();
    harness.metrics.warm_starts = dep.faas().warm_starts();
    harness.metrics.faults = dep.faas().faults();
    if (dep.scheduler())
        harness.metrics.respawns = dep.scheduler()->respawns();
    harness.metrics.cloud_rpc_cpu_s = dep.network().cloud_rpc_cpu_seconds();
    harness.metrics.recovery.frames_dropped = dep.network().frames_dropped();
    harness.metrics.recovery.wireless_retransmissions =
        dep.network().retransmissions();
}

/** Settle device energy at the end of a run. */
void
settle_energy(Deployment& dep, const JobConfig& job)
{
    sim::Simulator& simulator = dep.simulator();
    dep.settle_radio_energy();
    double active_s = sim::to_seconds(
        std::min(simulator.now(), job.duration + job.drain));
    for (std::size_t d = 0; d < dep.device_count(); ++d) {
        edge::Device& dev = dep.device(d);
        dev.account_compute(dev.executor().busy_seconds());
        dev.account_idle(active_s);
        if (job.include_motion_energy)
            dev.account_motion(active_s);
    }
}

}  // namespace

RunMetrics
run_single_phase(const apps::AppSpec& app, const PlatformOptions& options,
                 const DeploymentConfig& deployment_config,
                 const JobConfig& job)
{
    Deployment dep(deployment_config, options);
    JobHarness harness(dep, app, job);
    install_arrivals(harness, dep, job, app);
    dep.simulator().run_until(job.duration + job.drain);
    settle_energy(dep, job);
    collect_shared(harness, dep, job);
    return harness.metrics;
}

std::vector<RunMetrics>
run_multi_tenant(const std::vector<apps::AppSpec>& app_list,
                 const PlatformOptions& options,
                 const DeploymentConfig& deployment_config,
                 const JobConfig& job)
{
    Deployment dep(deployment_config, options);
    std::vector<std::unique_ptr<JobHarness>> harnesses;
    harnesses.reserve(app_list.size());
    for (const apps::AppSpec& app : app_list) {
        harnesses.push_back(std::make_unique<JobHarness>(dep, app, job));
        install_arrivals(*harnesses.back(), dep, job, app);
    }
    dep.simulator().run_until(job.duration + job.drain);
    settle_energy(dep, job);
    std::vector<RunMetrics> out;
    out.reserve(app_list.size());
    for (auto& h : harnesses) {
        collect_shared(*h, dep, job);
        out.push_back(h->metrics);
    }
    return out;
}

}  // namespace hivemind::platform

#pragma once

/**
 * @file
 * Paper scenarios on the sharded runtime.
 *
 * run_scenario_sharded() executes the drone scenarios (Stationary
 * Items, Moving People) as a distributed system on sim::SwarmRuntime:
 *
 *  - Each edge device is a shard-local actor (motion, sensing,
 *    on-board execution, offload decisions, battery) on shard
 *    `id % N`, with net::ShardLink uplinks for frames and control.
 *  - The swarm controller tier (load balancer, failure detector,
 *    learning coordinator, the ground-truth world) is pinned to
 *    shard 0 and reachable only through control-plane links.
 *  - The cloud tier (wired topology, FaaS runtime + DataStore, IaaS
 *    pool, scheduler) lives on its own shard (shard 1 when N > 1),
 *    with the data-plane radio links declared as runtime channels.
 *
 * All cross-actor interaction rides ShardLinks, so a run is
 * checksum-identical for any shard count (N = 1 included); the
 * invariance tests assert this with the result's FNV digest. The
 * engine is a message-passing re-implementation of the legacy
 * ScenarioHarness semantics — per-frame pipelines, retry/breaker
 * offload, heartbeat-driven repartitioning, continuous learning —
 * not an event-for-event replay of it, so compare sharded runs with
 * sharded runs and legacy runs with legacy runs.
 */

#include <cstdint>

#include "fault/oracle.hpp"
#include "fault/shard_chaos.hpp"
#include "platform/deployment.hpp"
#include "platform/metrics.hpp"
#include "platform/options.hpp"
#include "platform/scenario.hpp"

namespace hivemind::platform {

/** Outcome of one sharded scenario run. */
struct ShardedScenarioResult
{
    RunMetrics metrics;
    /** FNV digest of end state in device-id order (shard-agnostic). */
    std::uint64_t checksum = 0;
    std::uint64_t epochs = 0;     ///< Conservative-sync barrier rounds.
    std::uint64_t forwarded = 0;  ///< Cross-shard envelopes delivered.
    double wall_s = 0.0;          ///< Host wall-clock for the run.
    int shards = 1;
    fault::ShardChaosReport chaos;
    /** Everything the invariant oracles need about this run. */
    fault::RunAudit audit;
};

/** Whether the sharded engine models this scenario (drone kinds). */
bool scenario_shardable(const ScenarioConfig& scenario);

/**
 * Run @p scenario on @p runtime_shards shard kernels. Requires
 * scenario_shardable(); the checksum (and metrics) are invariant in
 * @p runtime_shards.
 */
ShardedScenarioResult
run_scenario_sharded(const ScenarioConfig& scenario,
                     const PlatformOptions& options,
                     const DeploymentConfig& deployment_config,
                     int runtime_shards);

}  // namespace hivemind::platform

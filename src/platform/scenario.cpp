#include "platform/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "apps/world.hpp"
#include "core/heartbeat.hpp"
#include "core/learning.hpp"
#include "core/load_balancer.hpp"
#include "fault/chaos.hpp"
#include "geo/maze.hpp"
#include "platform/fnv.hpp"
#include "platform/pipeline_spec.hpp"
#include "platform/sharded_scenario.hpp"

namespace hivemind::platform {

const char*
to_string(ScenarioKind k)
{
    switch (k) {
      case ScenarioKind::StationaryItems:
        return "Scenario A (Stationary Items)";
      case ScenarioKind::MovingPeople:
        return "Scenario B (Moving People)";
      case ScenarioKind::TreasureHunt:
        return "Treasure Hunt";
      case ScenarioKind::RoverMaze:
        return "Maze";
    }
    return "?";
}

namespace {

// The fleet must look fully dead for this many consecutive 1 Hz ticks
// before the mission aborts. A single all-dead reading can race a
// rejoin already scheduled a beat later (the fuzzer found this in the
// sharded engine; the legacy tick had the same instant-abort bug).
constexpr int kFleetDeadDwellTicks = 3;

/** Per-task stage shares handed back by the pipelines. */
struct StageRecord
{
    double total = 0.0;
    double network = 0.0;
    double mgmt = 0.0;
    double data = 0.0;
    double exec = 0.0;
    /** The offload never completed (partition / breaker / blackout). */
    bool dropped = false;
};

/** The chaos plan actually run: config plan + legacy injection shim. */
fault::FaultPlan
effective_plan(const ScenarioConfig& sc)
{
    fault::FaultPlan plan = sc.faults;
    if (sc.inject_failure_at > 0)
        plan.device_crash(sc.inject_failure_at, sc.inject_failure_device);
    return plan;
}

/** Whether the plan targets the swarm controller (needs the HA stack). */
bool
plan_has_controller_faults(const fault::FaultPlan& plan)
{
    for (const fault::FaultEvent& e : plan.events) {
        if (e.kind == fault::FaultKind::ControllerCrash ||
            e.kind == fault::FaultKind::ControllerPartition)
            return true;
    }
    return false;
}

/**
 * Shared state of one scenario run. The harness lives on the stack of
 * run_scenario(); all simulator callbacks reference it and only run
 * inside simulator.run_until().
 */
class ScenarioHarness
{
  public:
    ScenarioHarness(Deployment& dep, const ScenarioConfig& sc)
        : dep_(&dep),
          sc_(&sc),
          rng_(dep.rng().fork()),
          chaos_(dep.simulator(), dep.rng(), effective_plan(sc)),
          retrier_(dep.device_count(), sc.retry),
          balancer_(
              geo::Rect{0.0, 0.0, sc.field_size_m, sc.field_size_m},
              dep.device_count()),
          detector_(dep.simulator(), dep.device_count()),
          learning_(dep.device_count(), sc.detection, sc.retrain),
          pass_(dep.device_count(), 0),
          moving_until_(dep.device_count(), 0),
          compute_settled_(dep.device_count(), 0.0),
          done_at_(dep.device_count(), -1),
          rover_cur_leg_(dep.device_count(), 0),
          rover_gen_(dep.device_count(), 0),
          inflight_(dep.device_count(), 0)
    {
        pipeline_ = pipeline_for(sc.kind, sc.frame_bytes_override);

        chaos_.attach_devices(
            dep.device_count(),
            [this](std::size_t d, bool failed) {
                dep_->device(d).set_failed(failed);
                if (is_drone_scenario())
                    return;
                // A crash strands the rover mid-leg and goes stale on
                // every in-flight continuation; a rejoin re-drives the
                // interrupted leg (drones get re-routed by the
                // detector instead — rovers have no detector here).
                ++rover_gen_[d];
                if (!failed && !done_ && done_at_[d] < 0)
                    rover_leg(d, rover_cur_leg_[d]);
            },
            [this](std::size_t d) {
                return dep_->device(d).position_at(dep_->simulator().now());
            });
        chaos_.attach_network(dep.network());
        chaos_.attach_faas(dep.faas());
        chaos_.attach_datastore(dep.store());

        // Controller HA (Sec. 4.6): checkpointed hot-standby failover
        // plus degraded-mode edge autonomy. Only instantiated when the
        // run can actually lose its swarm controller, so every other
        // run replays bit-identically to the pre-HA code.
        if (hivemind() &&
            (sc.ha.enabled || plan_has_controller_faults(chaos_.plan()))) {
            core::HaConfig hc = sc.ha;
            hc.enabled = true;
            ha_ = std::make_unique<core::HaCluster>(dep.simulator(),
                                                    &dep.store(), hc);
            ha_->set_snapshot([this]() { return make_checkpoint(); });
            ha_->set_on_takeover(
                [this](const core::ControllerCheckpoint& cp) {
                    return reconcile_after_takeover(cp);
                });
            ha_->set_on_availability(
                [this](bool up) { availability_changed(up); });
            ha_->set_on_detected(
                [this]() { chaos_.note_controller_detected(); });
            ha_->set_on_restored([this](double checkpoint_age_s) {
                chaos_.note_controller_restored(checkpoint_age_s);
            });
            chaos_.attach_controller([this](const fault::FaultEvent& e) {
                if (e.kind == fault::FaultKind::ControllerCrash)
                    ha_->crash_active();
                else
                    ha_->partition(e.duration);
            });
        }
    }

    void run();

    RunMetrics take_metrics();

    /** Fill the oracle ledger; call after take_metrics(). */
    fault::RunAudit build_audit(const RunMetrics& m) const;

  private:
    bool is_drone_scenario() const
    {
        return sc_->kind == ScenarioKind::StationaryItems ||
            sc_->kind == ScenarioKind::MovingPeople;
    }

    bool hivemind() const
    {
        return dep_->options().kind == PlatformKind::HiveMind;
    }

    /** No swarm controller reachable (crash/partition window open). */
    bool controller_down() const { return ha_ && !ha_->available(); }

    // --- Controller HA (Sec. 4.6) ---
    core::ControllerCheckpoint make_checkpoint() const;
    core::ReconcileReport
    reconcile_after_takeover(const core::ControllerCheckpoint& cp);
    void availability_changed(bool up);

    // --- Common plumbing ---
    void record(const StageRecord& r);
    void finish(bool goal_met);
    void tick();

    /** Run the recognition (+dedup) pipeline on the platform. */
    void pipeline(std::size_t device,
                  std::function<void(const StageRecord&)> done);

    /**
     * Uplink with exponential-backoff retries and a per-device circuit
     * breaker. @p done receives the delivery time, or net::kDropped
     * once attempts are exhausted or the breaker is open.
     */
    void uplink_with_retry(std::size_t device, std::uint64_t bytes,
                           net::DeliveryCallback done, int attempt = 0);

    // --- Drone scenarios ---
    void setup_drones();
    void start_pass(std::size_t device);
    void frame_task(std::size_t device);
    void obstacle_task(std::size_t device);
    double goal_fraction() const;
    bool goal_met() const;

    // --- Rover scenarios ---
    void setup_rovers();
    void rover_leg(std::size_t device, std::size_t leg);
    void rover_sense(std::size_t device, std::size_t leg);

    Deployment* dep_;
    const ScenarioConfig* sc_;
    sim::Rng rng_;
    fault::ChaosEngine chaos_;
    fault::OffloadRetrier retrier_;
    core::SwarmLoadBalancer balancer_;
    core::FailureDetector detector_;
    core::LearningCoordinator learning_;
    std::unique_ptr<core::HaCluster> ha_;
    PipelineSpec pipeline_;
    RunMetrics metrics_;

    std::unique_ptr<apps::ItemField> items_;
    std::unique_ptr<apps::CrowdField> crowd_;
    std::vector<apps::TreasureHunt> courses_;
    std::vector<std::size_t> maze_steps_;

    std::vector<int> pass_;
    std::vector<sim::Time> moving_until_;
    std::vector<double> compute_settled_;
    std::vector<sim::Time> done_at_;  // Rover finish times (-1 = active).
    std::vector<std::size_t> rover_cur_leg_;  // Leg under way per rover.
    /**
     * Bumped on every chaos crash AND rejoin: in-flight drive
     * arrivals, sense retries and pipeline round trips carry the
     * generation they were issued under and go stale when it moves,
     * so a resumed leg never races its pre-crash continuations.
     */
    std::vector<std::uint64_t> rover_gen_;
    sim::Time last_retrain_ = 0;
    int dead_ticks_ = 0;  // Consecutive all-dead 1 Hz readings.
    bool done_ = false;
    sim::Time completion_ = 0;
    // Controller task-graph bookkeeping (checkpointed by the HA stack).
    std::vector<std::uint32_t> inflight_;
    std::uint64_t tasks_started_ = 0;
    std::uint64_t outage_completed_ = 0;
    // Frame-conservation ledger terms (fault::FrameLedger): every
    // started pipeline frame settles as completed, dropped or
    // in-flight, and every drained backlog as delivered, lost or still
    // in the air.
    std::uint64_t frames_dropped_ = 0;
    std::uint64_t drain_lost_ = 0;
    std::uint64_t drain_inflight_ = 0;
};

void
ScenarioHarness::record(const StageRecord& r)
{
    if (r.dropped)
        return;  // Abandoned offloads are counted where they drop.
    metrics_.task_latency_s.add(r.total);
    metrics_.network_s.add(r.network);
    metrics_.mgmt_s.add(r.mgmt);
    metrics_.data_s.add(r.data);
    metrics_.exec_s.add(r.exec);
    ++metrics_.tasks_completed;
    if (controller_down())
        ++outage_completed_;  // Goodput inside the outage window.
}

void
ScenarioHarness::uplink_with_retry(std::size_t device, std::uint64_t bytes,
                                   net::DeliveryCallback done, int attempt)
{
    sim::Simulator& simulator = dep_->simulator();
    if (retrier_.circuit_open(device, simulator.now())) {
        // Breaker open: fail fast instead of queueing radio traffic —
        // the device sits out its probation window (Sec. 4.6).
        ++metrics_.recovery.offloads_abandoned;
        simulator.schedule_in(
            0, [done = std::move(done)]() { done(net::kDropped); });
        return;
    }
    dep_->network().send_uplink(
        device, device % dep_->config().servers, bytes,
        [this, device, bytes, attempt,
         done = std::move(done)](sim::Time t) mutable {
            if (t >= 0) {
                retrier_.record_success(device);
                done(t);
                return;
            }
            sim::Time now = dep_->simulator().now();
            if (retrier_.record_failure(device, now))
                ++metrics_.recovery.circuit_open_events;
            if (attempt + 1 >= retrier_.config().max_attempts ||
                retrier_.circuit_open(device, now)) {
                ++metrics_.recovery.offloads_abandoned;
                done(net::kDropped);
                return;
            }
            ++metrics_.recovery.offload_retries;
            dep_->simulator().schedule_in(
                retrier_.backoff(attempt, rng_),
                [this, device, bytes, attempt,
                 done = std::move(done)]() mutable {
                    uplink_with_retry(device, bytes, std::move(done),
                                      attempt + 1);
                });
        });
}

void
ScenarioHarness::pipeline(std::size_t device,
                          std::function<void(const StageRecord&)> done)
{
    sim::Simulator& simulator = dep_->simulator();
    sim::Time t0 = simulator.now();
    PlatformKind kind = dep_->options().kind;

    if (controller_down()) {
        // The offload path routes through the (dead) controller: fail
        // fast so callers apply their degraded-mode fallbacks.
        simulator.schedule_in(0, [done = std::move(done)]() {
            StageRecord r;
            r.dropped = true;
            done(r);
        });
        return;
    }
    // Task-graph bookkeeping the HA checkpoint captures; the wrapper
    // settles the in-flight count on every completion path.
    ++tasks_started_;
    if (device < inflight_.size())
        ++inflight_[device];
    done = [this, device, inner = std::move(done)](const StageRecord& r) {
        if (device < inflight_.size() && inflight_[device] > 0)
            --inflight_[device];
        if (r.dropped)
            ++frames_dropped_;  // Settled: abandoned, not in-flight.
        inner(r);
    };

    if (kind == PlatformKind::DistributedEdge) {
        // Everything on-board; only the final result is uplinked.
        edge::Device& dev = dep_->device(device);
        double total_work =
            pipeline_.rec_work_ms + pipeline_.dedup_work_ms;
        dev.executor().submit(
            total_work, [this, device, t0,
                         done = std::move(done)](double exec_s) {
                sim::Time t1 = dep_->simulator().now();
                uplink_with_retry(
                    device, pipeline_.result_bytes,
                    [this, t0, t1, exec_s,
                     done = std::move(done)](sim::Time t2) {
                        StageRecord r;
                        if (t2 < 0) {
                            r.dropped = true;
                            done(r);
                            return;
                        }
                        r.total = sim::to_seconds(t2 - t0);
                        r.network = sim::to_seconds(t2 - t1);
                        r.exec = exec_s;
                        double q = sim::to_seconds(t1 - t0) - exec_s;
                        r.mgmt = q > 0.0 ? q : 0.0;
                        done(r);
                    });
            });
        return;
    }

    // Cloud-involving paths share the tail: recognition (+ dedup) in
    // the cloud, result downlink, stage accounting.
    auto cloud_tail = [this, device, t0](
                          sim::Time uplink_done, double edge_exec_s,
                          std::function<void(const StageRecord&)> cb) {
        std::size_t server = device % dep_->config().servers;
        cloud::InvokeRequest rec;
        rec.app = pipeline_.rec_app;
        rec.work_core_ms = pipeline_.rec_work_ms;
        rec.memory_mb = pipeline_.memory_mb;
        rec.input_bytes = pipeline_.inter_bytes;
        rec.output_bytes = pipeline_.inter_bytes;
        rec.recovery = sc_->recovery;
        int par = hivemind() ? pipeline_.parallelism : 1;
        dep_->cloud_invoke(rec, par, [this, device, server, t0, uplink_done,
                                      edge_exec_s, par,
                                      cb = std::move(cb)](
                                         const CloudResult& r1) {
            auto after_stages = [this, device, server, t0, uplink_done,
                                 edge_exec_s,
                                 cb = std::move(cb)](double mgmt, double data,
                                                     double exec,
                                                     sim::Time cloud_done) {
                dep_->network().send_downlink(
                    server, device, pipeline_.result_bytes,
                    [this, t0, uplink_done, edge_exec_s, mgmt, data, exec,
                     cloud_done, cb = std::move(cb)](sim::Time t3) {
                        StageRecord r;
                        if (t3 < 0) {
                            // Result stranded behind a partition: the
                            // work ran but never reached the device.
                            ++metrics_.recovery.offloads_abandoned;
                            r.dropped = true;
                            cb(r);
                            return;
                        }
                        r.total = sim::to_seconds(t3 - t0);
                        r.network = sim::to_seconds(uplink_done - t0) -
                            edge_exec_s + sim::to_seconds(t3 - cloud_done);
                        if (r.network < 0.0)
                            r.network = 0.0;
                        r.mgmt = mgmt;
                        r.data = data;
                        r.exec = exec + edge_exec_s;
                        cb(r);
                    });
            };
            if (pipeline_.dedup_work_ms <= 0.0) {
                after_stages(r1.mgmt_s, r1.data_s, r1.exec_s, r1.done);
                return;
            }
            // Dedup child: HiveMind co-locates it with its parent so
            // the hand-off is in-memory (Sec. 4.3).
            cloud::InvokeRequest dd;
            dd.app = pipeline_.dedup_app;
            dd.work_core_ms = pipeline_.dedup_work_ms;
            dd.memory_mb = pipeline_.memory_mb;
            dd.input_bytes = pipeline_.inter_bytes;
            dd.output_bytes = pipeline_.result_bytes;
            dd.recovery = sc_->recovery;
            if (dep_->options().smart_scheduler &&
                r1.server != cloud::kNoServer) {
                dd.preferred_server = r1.server;
                dd.colocate_with_parent = true;
            }
            dep_->cloud_invoke(
                dd, par,
                [r1, after_stages = std::move(after_stages)](
                    const CloudResult& r2) {
                    after_stages(r1.mgmt_s + r2.mgmt_s,
                                 r1.data_s + r2.data_s,
                                 r1.exec_s + r2.exec_s, r2.done);
                });
        });
    };

    if (hivemind()) {
        // Hybrid: the on-board pre-filter forwards candidate crops
        // plus a thin resolution-dependent context stream, so the
        // uplink grows only marginally with the raw camera rate
        // (Fig. 17a: 8 MB @ 32 fps does not saturate the links).
        edge::Device& dev = dep_->device(device);
        double pre_work = pipeline_.rec_work_ms * 0.10;
        dev.executor().submit(
            pre_work,
            [this, device, cloud_tail = std::move(cloud_tail),
             done = std::move(done)](double pre_exec_s) mutable {
                double raw = static_cast<double>(pipeline_.frame_bytes);
                double reduced = 4.0 * 1024.0 * 1024.0 + 0.02 * raw;
                std::uint64_t bytes = static_cast<std::uint64_t>(
                    std::min(raw, reduced));
                uplink_with_retry(
                    device, bytes,
                    [cloud_tail = std::move(cloud_tail), pre_exec_s,
                     done = std::move(done)](sim::Time t1) mutable {
                        if (t1 < 0) {
                            StageRecord r;
                            r.dropped = true;
                            done(r);
                            return;
                        }
                        cloud_tail(t1, pre_exec_s, std::move(done));
                    });
            });
        return;
    }

    // Centralized (FaaS or IaaS): full frame uplink.
    uplink_with_retry(
        device, pipeline_.frame_bytes,
        [cloud_tail = std::move(cloud_tail),
         done = std::move(done)](sim::Time t1) mutable {
            if (t1 < 0) {
                StageRecord r;
                r.dropped = true;
                done(r);
                return;
            }
            cloud_tail(t1, 0.0, std::move(done));
        });
}

// ---------------------------------------------------------------------
// Drone scenarios (A and B)
// ---------------------------------------------------------------------

void
ScenarioHarness::setup_drones()
{
    if (sc_->kind == ScenarioKind::StationaryItems) {
        items_ = std::make_unique<apps::ItemField>(
            geo::Rect{0.0, 0.0, sc_->field_size_m, sc_->field_size_m},
            sc_->targets, rng_);
    } else {
        crowd_ = std::make_unique<apps::CrowdField>(
            geo::Rect{0.0, 0.0, sc_->field_size_m, sc_->field_size_m},
            sc_->targets, 1.4, rng_);
    }

    if (hivemind()) {
        detector_.set_on_failure([this](std::size_t device) {
            chaos_.note_detected(device);
            // Fig. 10: split the failed device's region among its
            // neighbours and rebuild their routes.
            std::vector<std::size_t> changed =
                balancer_.handle_failure(device);
            for (std::size_t d : changed) {
                if (dep_->device(d).alive())
                    start_pass(d);
            }
            // Service restored by repartition; a transient crash keeps
            // its incident open inside the engine until the rejoin.
            chaos_.note_repaired(device);
        });
        detector_.set_on_recovery([this](std::size_t device) {
            // The device rejoined: carve it a region back out of the
            // widest survivor's strip and restart both sweeps.
            std::vector<std::size_t> changed =
                balancer_.handle_rejoin(device);
            for (std::size_t d : changed) {
                if (dep_->device(d).alive())
                    start_pass(d);
            }
            chaos_.note_repaired(device);
        });
        detector_.start();
    }

    for (std::size_t d = 0; d < dep_->device_count(); ++d) {
        start_pass(d);
        // Frame-driven recognition tasks.
        sim::recurring(
            dep_->simulator(), sim::from_seconds(rng_.uniform(0.0, 1.0)),
            [this, d](const sim::Recur& self) {
                if (done_)
                    return;
                edge::Device& dev = dep_->device(d);
                if (dev.alive() && !detector_.is_failed(d))
                    frame_task(d);
                self.again_in(sim::from_seconds(
                    rng_.exponential(1.0 / sc_->frame_task_rate_hz)));
            });

        // Obstacle avoidance always runs on-board (Sec. 2.1).
        sim::recurring(
            dep_->simulator(), sim::from_seconds(rng_.uniform(0.0, 0.5)),
            [this, d](const sim::Recur& self) {
                if (done_)
                    return;
                if (dep_->device(d).alive())
                    obstacle_task(d);
                self.again_in(sim::from_seconds(
                    rng_.exponential(1.0 / sc_->obstacle_rate_hz)));
            });
    }
}

void
ScenarioHarness::start_pass(std::size_t device)
{
    edge::Device& dev = dep_->device(device);
    std::vector<geo::Vec2> route =
        balancer_.route_for(device, dev.spec().footprint_w);
    if (route.empty())
        return;
    if (pass_[device] % 2 == 1)
        std::reverse(route.begin(), route.end());
    ++pass_[device];
    dev.set_route(std::move(route));
    moving_until_[device] = dev.route_complete_at();
}

void
ScenarioHarness::frame_task(std::size_t device)
{
    edge::Device& dev = dep_->device(device);
    if (controller_down()) {
        // Degraded mode: keep sensing, buffer the frame on-board and
        // drain it once a controller is reachable again (Sec. 4.6).
        if (dev.buffer_frame(pipeline_.frame_bytes))
            ++metrics_.recovery.frames_buffered_degraded;
        return;
    }
    geo::Vec2 pos = dev.position_at(dep_->simulator().now());
    std::vector<std::size_t> visible;
    if (items_) {
        visible = items_->items_in_view(pos, dev.spec().footprint_w,
                                        dev.spec().footprint_h);
    } else if (crowd_) {
        visible = crowd_->people_in_view(dep_->simulator().now(), pos,
                                         dev.spec().footprint_w,
                                         dev.spec().footprint_h);
    }
    pipeline(device, [this, device, visible](const StageRecord& r) {
        record(r);
        if (r.dropped)
            return;  // The frames never made it; no detections.
        const apps::DetectionModel& model = learning_.model(device);
        for (std::size_t target : visible) {
            if (rng_.chance(model.p_correct())) {
                if (items_)
                    items_->mark_found(target);
                else if (crowd_)
                    crowd_->mark_counted(target);
                learning_.record(device);
            }
        }
        learning_.record(device);  // Every frame yields feedback.
    });
}

void
ScenarioHarness::obstacle_task(std::size_t device)
{
    // S4-style work, always on-board, kept off the latency books —
    // it is part of flight control, not the application pipeline.
    dep_->device(device).executor().submit(18.0 * 0.55, nullptr);
}

// ---------------------------------------------------------------------
// Controller HA: checkpointing, takeover reconciliation, degraded mode
// ---------------------------------------------------------------------

core::ControllerCheckpoint
ScenarioHarness::make_checkpoint() const
{
    core::ControllerCheckpoint cp;
    std::size_t n = dep_->device_count();
    cp.device_failed.reserve(n);
    for (std::size_t d = 0; d < n; ++d)
        cp.device_failed.push_back(detector_.is_failed(d) ? 1 : 0);
    cp.partition = balancer_.snapshot();
    cp.inflight.assign(inflight_.begin(), inflight_.end());
    cp.tasks_started = tasks_started_;
    return cp;
}

core::ReconcileReport
ScenarioHarness::reconcile_after_takeover(const core::ControllerCheckpoint& cp)
{
    core::ReconcileReport rep;
    // 1. Replay: the standby's world is the checkpointed partition.
    if (!cp.partition.assignments.empty())
        balancer_.restore(cp.partition);
    // 2. Re-register every device and repartition the drift between
    //    checkpoint time and now (deaths/rejoins the dead primary
    //    never processed).
    std::vector<std::size_t> changed;
    for (std::size_t d = 0; d < dep_->device_count(); ++d) {
        ++rep.devices_reregistered;
        bool live = dep_->device(d).alive();
        detector_.reconcile(d, live);
        if (live && !balancer_.region_of(d)) {
            for (std::size_t c : balancer_.handle_rejoin(d))
                changed.push_back(c);
        } else if (!live && balancer_.region_of(d)) {
            // Found dead during re-registration: this is the detection
            // instant for crashes that happened while we were blind.
            chaos_.note_detected(d);
            for (std::size_t c : balancer_.handle_failure(d))
                changed.push_back(c);
            chaos_.note_repaired(d);
        }
    }
    rep.regions_repartitioned = changed.size();
    // 3. Redrive: offloads in flight at the checkpoint plus everything
    //    started since its watermark go through the epoch-redrive path.
    std::uint64_t inflight_total = 0;
    for (std::uint32_t c : cp.inflight)
        inflight_total += c;
    std::uint64_t delta = tasks_started_ >= cp.tasks_started
        ? tasks_started_ - cp.tasks_started
        : 0;
    rep.offloads_redriven =
        static_cast<std::size_t>(inflight_total + delta);
    metrics_.recovery.tasks_redriven_on_failover += rep.offloads_redriven;
    dep_->faas().poke();
    // Refreshed routes for devices whose regions moved.
    if (is_drone_scenario()) {
        for (std::size_t d : changed) {
            if (dep_->device(d).alive())
                start_pass(d);
        }
    }
    return rep;
}

void
ScenarioHarness::availability_changed(bool up)
{
    bool drone = hivemind() && is_drone_scenario();
    if (!up) {
        // The controller-side detector is blind while no controller
        // runs; reconciliation rebuilds its state on takeover.
        if (drone)
            detector_.stop();
        for (std::size_t d = 0; d < dep_->device_count(); ++d) {
            if (dep_->device(d).alive())
                dep_->device(d).set_degraded(true);
        }
        return;
    }
    if (drone)
        detector_.start();
    for (std::size_t d = 0; d < dep_->device_count(); ++d) {
        edge::Device& dev = dep_->device(d);
        dev.set_degraded(false);
        edge::Device::DrainedFrames backlog = dev.drain_buffered();
        if (backlog.frames == 0)
            continue;
        if (!dev.alive()) {
            // The buffer already gave the frames up; the device died
            // before the drain could start — book them as lost.
            drain_lost_ += backlog.frames;
            continue;
        }
        // Drain the buffered backlog through the pre-filtered uplink
        // (the on-board filter kept running while buffering).
        double raw = static_cast<double>(pipeline_.frame_bytes);
        double reduced =
            std::min(raw, 4.0 * 1024.0 * 1024.0 + 0.02 * raw);
        std::uint64_t bytes = static_cast<std::uint64_t>(
            reduced * static_cast<double>(backlog.frames));
        drain_inflight_ += backlog.frames;
        uplink_with_retry(
            d, bytes, [this, frames = backlog.frames](sim::Time t) {
                drain_inflight_ -= frames;
                if (t >= 0)
                    metrics_.recovery.buffered_frames_drained += frames;
                else
                    drain_lost_ += frames;
            });
    }
}

double
ScenarioHarness::goal_fraction() const
{
    if (items_) {
        return static_cast<double>(items_->found_count()) /
            static_cast<double>(items_->item_count());
    }
    if (crowd_) {
        return static_cast<double>(crowd_->counted_count()) /
            static_cast<double>(crowd_->population());
    }
    // Rover scenarios: fraction of rovers that finished their course.
    std::size_t finished = 0;
    for (sim::Time t : done_at_) {
        if (t >= 0)
            ++finished;
    }
    return done_at_.empty()
        ? 0.0
        : static_cast<double>(finished) /
            static_cast<double>(done_at_.size());
}

bool
ScenarioHarness::goal_met() const
{
    return goal_fraction() >= 1.0;
}

// ---------------------------------------------------------------------
// Rover scenarios
// ---------------------------------------------------------------------

void
ScenarioHarness::setup_rovers()
{
    std::size_t n = dep_->device_count();
    if (sc_->kind == ScenarioKind::TreasureHunt) {
        for (std::size_t d = 0; d < n; ++d) {
            auto region = balancer_.region_of(d);
            courses_.emplace_back(*region,
                                  static_cast<std::size_t>(sc_->course_legs),
                                  rng_);
        }
    } else {
        // Each rover gets its own random maze; steps from the
        // wall-follower trace (S6's algorithm).
        for (std::size_t d = 0; d < n; ++d) {
            geo::Maze maze(sc_->maze_side, sc_->maze_side, rng_);
            auto trace = geo::wall_follow(
                maze, sc_->maze_side - 1, sc_->maze_side - 1,
                static_cast<std::size_t>(sc_->maze_side) *
                    static_cast<std::size_t>(sc_->maze_side) * 8);
            maze_steps_.push_back(trace.size());
        }
    }
    for (std::size_t d = 0; d < n; ++d)
        rover_leg(d, 0);
}

void
ScenarioHarness::rover_leg(std::size_t device, std::size_t leg)
{
    if (done_)
        return;
    edge::Device& dev = dep_->device(device);
    if (!dev.alive())
        return;  // The chaos rejoin hook re-drives the leg (see ctor).
    rover_cur_leg_[device] = leg;

    std::size_t total_legs = sc_->kind == ScenarioKind::TreasureHunt
        ? courses_[device].panel_count()
        : maze_steps_[device];
    if (leg >= total_legs) {
        done_at_[device] = dep_->simulator().now();
        metrics_.job_latency_s.add(sim::to_seconds(done_at_[device]));
        return;
    }

    // Drive to the next panel / through the next cell.
    double dist;
    if (sc_->kind == ScenarioKind::TreasureHunt) {
        geo::Vec2 from = leg == 0 ? balancer_.region_of(device)->center()
                                  : courses_[device].panel(leg - 1);
        dist = from.distance_to(courses_[device].panel(leg));
    } else {
        dist = 1.0;  // One maze cell.
    }
    sim::Time drive = sim::from_seconds(dist / dev.spec().speed_mps);
    moving_until_[device] = dep_->simulator().now() + drive;
    const std::uint64_t gen = rover_gen_[device];
    dep_->simulator().schedule_in(drive, [this, device, leg, gen]() {
        if (done_ || gen != rover_gen_[device] ||
            !dep_->device(device).alive())
            return;
        rover_sense(device, leg);
    });
}

void
ScenarioHarness::rover_sense(std::size_t device, std::size_t leg)
{
    // Photograph the panel / sense the walls, then wait for the
    // processed instructions before moving on.
    const std::uint64_t gen = rover_gen_[device];
    pipeline(device, [this, device, leg, gen](const StageRecord& r) {
        record(r);
        if (done_ || gen != rover_gen_[device] ||
            !dep_->device(device).alive())
            return;
        if (r.dropped) {
            // The instructions never arrived (partition / open breaker
            // / controller outage). The rover is already parked at the
            // panel, so retry the sense after a beat — NOT the whole
            // leg: re-driving would refresh moving_until_ and book
            // motion energy for a rover standing still.
            dep_->simulator().schedule_in(
                sim::kSecond, [this, device, leg, gen]() {
                    if (done_ || gen != rover_gen_[device] ||
                        !dep_->device(device).alive())
                        return;
                    rover_sense(device, leg);
                });
            return;
        }
        learning_.record(device);
        rover_leg(device, leg + 1);
    });
}

// ---------------------------------------------------------------------
// Ticking, completion, energy
// ---------------------------------------------------------------------

void
ScenarioHarness::tick()
{
    if (done_)
        return;
    sim::Simulator& simulator = dep_->simulator();
    sim::Time now = simulator.now();

    dep_->settle_radio_energy();
    // (Legacy inject_failure_at crashes now arrive via the ChaosEngine —
    // see effective_plan().)
    for (std::size_t d = 0; d < dep_->device_count(); ++d) {
        edge::Device& dev = dep_->device(d);
        if (!dev.alive())
            continue;
        bool active = done_at_.empty() || done_at_[d] < 0;
        if (is_drone_scenario()) {
            // Drones hover (full motion power) for the whole mission.
            dev.account_motion(1.0);
        } else if (active && now <= moving_until_[d] + sim::kSecond) {
            dev.account_motion(1.0);
        }
        dev.account_idle(1.0);
        double busy = dev.executor().busy_seconds();
        dev.account_compute(busy - compute_settled_[d]);
        compute_settled_[d] = busy;

        if (dev.battery().depleted()) {
            dev.set_failed(true);  // Heartbeats stop; detector reacts.
        } else if (hivemind() && is_drone_scenario() && !controller_down()) {
            detector_.beat(d);  // Beats cannot reach a dead controller.
        }

        // Sweeping drones start a new pass until the goal is met.
        if (is_drone_scenario() && dev.alive() && dev.route_done(now)) {
            if (controller_down()) {
                // Degraded-mode autonomy (Sec. 4.6): no controller to
                // hand out a fresh route, so retrace the last one
                // locally instead of hovering in place.
                if (dev.degraded())
                    dev.resume_route_reversed();
            } else if (!detector_.is_failed(d) &&
                       pass_[d] < sc_->max_passes && balancer_.region_of(d)) {
                start_pass(d);
            }
        }
    }

    if (now - last_retrain_ >= sc_->retrain_interval) {
        learning_.retrain();
        last_retrain_ = now;
    }

    bool all_dead = true;
    for (std::size_t d = 0; d < dep_->device_count(); ++d) {
        if (dep_->device(d).alive())
            all_dead = false;
    }
    bool passes_exhausted = false;
    if (is_drone_scenario()) {
        passes_exhausted = true;
        for (std::size_t d = 0; d < dep_->device_count(); ++d) {
            if (dep_->device(d).alive() && pass_[d] < sc_->max_passes)
                passes_exhausted = false;
        }
    }

    if (goal_met()) {
        finish(true);
        return;
    }
    // An abort on the first all-dead reading races a rejoin already
    // scheduled a beat later; wait out a short dwell instead. All-dead
    // also makes passes_exhausted vacuously true, so that stop must
    // not sneak past the dwell either.
    dead_ticks_ = all_dead ? dead_ticks_ + 1 : 0;
    if (now >= sc_->time_cap || dead_ticks_ >= kFleetDeadDwellTicks ||
        (!all_dead && passes_exhausted && metrics_.tasks_completed > 0)) {
        finish(false);
        return;
    }
    simulator.schedule_in(sim::kSecond, [this]() { tick(); });
}

void
ScenarioHarness::finish(bool goal)
{
    done_ = true;
    completion_ = dep_->simulator().now();
    metrics_.completed = goal;
    metrics_.goal_fraction = goal_fraction();
    metrics_.completion_s = sim::to_seconds(completion_);
    detector_.stop();
    if (ha_)
        ha_->stop();
    chaos_.stop();
    dep_->simulator().stop();
}

void
ScenarioHarness::run()
{
    if (is_drone_scenario())
        setup_drones();
    else
        setup_rovers();
    if (ha_)
        ha_->start();
    chaos_.start();
    dep_->simulator().schedule_in(sim::kSecond, [this]() { tick(); });
    dep_->simulator().run_until(sc_->time_cap + 10 * sim::kSecond);
    if (!done_)
        finish(goal_met());
}

RunMetrics
ScenarioHarness::take_metrics()
{
    for (std::size_t d = 0; d < dep_->device_count(); ++d) {
        edge::Device& dev = dep_->device(d);
        metrics_.battery_pct.add(dev.battery().consumed_percent());
        metrics_.tasks_shed += dev.executor().shed();
        metrics_.radio_bytes_total += dep_->network().device_bytes(d);
    }
    sim::Summary bw = dep_->network().air_meter().rate_summary(completion_);
    for (double r : bw.samples())
        metrics_.bandwidth_MBps.add(r / 1e6);
    metrics_.cold_starts = dep_->faas().cold_starts();
    metrics_.warm_starts = dep_->faas().warm_starts();
    metrics_.faults = dep_->faas().faults();
    if (dep_->scheduler())
        metrics_.respawns = dep_->scheduler()->respawns();
    metrics_.cloud_rpc_cpu_s = dep_->network().cloud_rpc_cpu_seconds();
    if (ha_) {
        ha_->stop();  // Idempotent; closes any open outage window.
        metrics_.recovery.checkpoints_taken += ha_->checkpoints_taken();
        metrics_.recovery.checkpoint_bytes += ha_->checkpoint_bytes();
        metrics_.recovery.controller_outage_s += ha_->unavailable_seconds();
        metrics_.recovery.outage_tasks_completed += outage_completed_;
    }
    chaos_.stop();  // Idempotent; finalizes the counter pulls.
    metrics_.recovery.merge(chaos_.metrics());
    metrics_.detect_correct_pct = 100.0 * learning_.swarm_p_correct();
    metrics_.detect_fn_pct = 100.0 * learning_.swarm_p_false_negative();
    metrics_.detect_fp_pct = 100.0 * learning_.swarm_p_false_positive();
    return metrics_;
}

fault::RunAudit
ScenarioHarness::build_audit(const RunMetrics& m) const
{
    fault::RunAudit audit;
    audit.engine = "legacy";
    audit.shards = 1;
    audit.seed = dep_->config().seed;
    audit.devices = dep_->device_count();
    audit.servers = dep_->config().servers;
    audit.horizon = sc_->time_cap;
    audit.completion = completion_;
    // The kernel stops dead inside finish(): an event at the same
    // instant with a later sequence number never runs, and nothing
    // after it does either.
    audit.completion_margin = 0;
    audit.completed = m.completed;
    audit.ha_enabled = ha_ != nullptr;
    audit.ha_standbys = sc_->ha.standbys;
    audit.checkpoint_interval_s =
        sim::to_seconds(sc_->ha.checkpoint_interval);
    audit.breaker_cooldown_s = sim::to_seconds(sc_->retry.breaker_cooldown);
    audit.configured_loss = dep_->config().net.wireless_loss;
    audit.plan = effective_plan(*sc_);
    audit.recovery = m.recovery;
    audit.frames.generated = tasks_started_;
    audit.frames.delivered = m.tasks_completed;
    audit.frames.dropped = frames_dropped_;
    for (std::uint32_t c : inflight_)
        audit.frames.inflight_end += c;
    audit.frames.buffered = m.recovery.frames_buffered_degraded;
    audit.frames.drained = m.recovery.buffered_frames_drained;
    audit.frames.drain_lost = drain_lost_;
    audit.frames.drain_inflight_end = drain_inflight_;
    for (std::size_t d = 0; d < dep_->device_count(); ++d) {
        const edge::Device& dev = dep_->device(d);
        audit.frames.dropped_onboard += dev.frames_dropped_onboard();
        audit.frames.buffered_end += dev.buffered_frames();
        fault::DeviceEndState end;
        end.alive = dev.alive();
        end.battery_dead = dev.battery().depleted();
        end.breaker_open = retrier_.circuit_open(d, completion_);
        end.buffered = dev.buffered_frames();
        audit.device_end.push_back(end);
    }
    // The legacy harness has no cross-shard digest; hash the ledger so
    // the determinism oracle still compares same-seed reruns exactly.
    std::uint64_t cs = fnv::kBasis;
    fnv::mix(cs, audit.frames.generated);
    fnv::mix(cs, audit.frames.delivered);
    fnv::mix(cs, audit.frames.dropped);
    fnv::mix(cs, audit.frames.inflight_end);
    fnv::mix(cs, audit.frames.buffered);
    fnv::mix(cs, audit.frames.drained);
    fnv::mix(cs, audit.frames.drain_lost);
    fnv::mix(cs, audit.frames.drain_inflight_end);
    fnv::mix(cs, audit.frames.buffered_end);
    fnv::mix(cs, m.recovery.device_crashes);
    fnv::mix(cs, m.recovery.device_rejoins);
    fnv::mix(cs, m.recovery.controller_crashes);
    fnv::mix(cs, m.recovery.controller_failovers);
    fnv::mix(cs, m.recovery.wireless_retransmissions);
    fnv::mix(cs, m.recovery.offload_retries);
    fnv::mix(cs, m.recovery.offloads_abandoned);
    fnv::mix(cs, fnv::bits(m.task_latency_s.sum()));
    fnv::mix(cs, fnv::bits(m.goal_fraction));
    fnv::mix(cs, fnv::bits(sim::to_seconds(completion_)));
    for (const fault::DeviceEndState& e : audit.device_end) {
        fnv::mix(cs, e.alive ? 1 : 0);
        fnv::mix(cs, e.battery_dead ? 1 : 0);
        fnv::mix(cs, e.breaker_open ? 1 : 0);
        fnv::mix(cs, e.buffered);
    }
    audit.checksum = cs;
    return audit;
}

}  // namespace

const char*
to_string(EngineChoice e)
{
    switch (e) {
      case EngineChoice::Auto:
        return "auto";
      case EngineChoice::Legacy:
        return "legacy";
      case EngineChoice::Sharded:
        return "sharded";
    }
    return "?";
}

RunResult
run(const ScenarioConfig& scenario, const PlatformOptions& options,
    const DeploymentConfig& deployment_config)
{
    // The documented environment overrides fold in here — the facade
    // is the options layer's one hook into execution; the engines
    // themselves never consult the environment.
    ScenarioConfig sc = scenario;
    if (env::global_lookahead())
        sc.adaptive_lookahead = false;
    EngineChoice choice = sc.engine;
    if (env::legacy_engine())
        choice = EngineChoice::Legacy;
    // Auto is the sharded engine for every scenario kind (at shards=1
    // too); the legacy harness survives behind EngineChoice::Legacy /
    // HIVEMIND_LEGACY_ENGINE=1 as the parity baseline.
    if (choice == EngineChoice::Auto)
        choice = EngineChoice::Sharded;

    // Reject malformed chaos plans at the facade, before any engine
    // spins up a deployment for them. Horizon is deliberately left
    // unchecked: plans may legitimately outlast time_cap (events past
    // the stop simply never fire).
    fault::PlanBounds bounds;
    bounds.devices = deployment_config.devices;
    bounds.servers = deployment_config.servers;
    effective_plan(sc).validate_or_throw(bounds);

    RunResult out;
    if (choice == EngineChoice::Sharded) {
        if (!scenario_shardable(sc))
            throw std::invalid_argument(
                "engine=sharded requested for a scenario kind the sharded "
                "engine does not model");
        const int shards = std::max(sc.shards, 1);
        ShardedScenarioResult r =
            run_scenario_sharded(sc, options, deployment_config, shards);
        out.metrics = std::move(r.metrics);
        out.checksum = r.checksum;
        out.engine_used = EngineChoice::Sharded;
        out.shards_used = shards;
        out.wall_s = r.wall_s;
        out.epochs = r.epochs;
        return out;
    }
    const auto t0 = std::chrono::steady_clock::now();
    Deployment dep(deployment_config, options);
    ScenarioHarness harness(dep, sc);
    harness.run();
    out.metrics = harness.take_metrics();
    out.checksum = harness.build_audit(out.metrics).checksum;
    out.engine_used = EngineChoice::Legacy;
    out.shards_used = 1;
    out.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    return out;
}

RunMetrics
run_scenario(const ScenarioConfig& scenario, const PlatformOptions& options,
             const DeploymentConfig& deployment_config)
{
    return run(scenario, options, deployment_config).metrics;
}

AuditedRun
run_scenario_audited(const ScenarioConfig& scenario,
                     const PlatformOptions& options,
                     const DeploymentConfig& deployment_config)
{
    Deployment dep(deployment_config, options);
    ScenarioHarness harness(dep, scenario);
    harness.run();
    AuditedRun out;
    out.metrics = harness.take_metrics();
    out.audit = harness.build_audit(out.metrics);
    return out;
}

}  // namespace hivemind::platform

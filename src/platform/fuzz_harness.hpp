#pragma once

/**
 * @file
 * One fuzz case = one chaos run under oracle-friendly settings.
 *
 * run_fuzz_case() executes a FaultPlan on either engine (the legacy
 * single-kernel harness or the sharded runtime at any shard count)
 * against a fixed HiveMind deployment tuned for invariant checking:
 * the mission goal is unattainable and the pass budget unbounded, so
 * every run is expected to reach its horizon — which turns "the sim
 * stopped early" into an oracle violation instead of a legitimate
 * finish. The returned fault::RunAudit feeds fault::OracleSuite; the
 * soak driver (bench/fuzz_soak.cpp) and the fuzz tests both build on
 * this entry point.
 */

#include <cstdint>

#include "fault/fuzz.hpp"
#include "fault/oracle.hpp"
#include "fault/plan.hpp"
#include "platform/scenario.hpp"

namespace hivemind::platform {

/** Deployment + engine knobs for one fuzz case. The engine field is
 *  the same EngineChoice the scenario facade dispatches on (Auto
 *  resolves exactly like platform::run()). */
struct FuzzCaseOptions
{
    EngineChoice engine = EngineChoice::Sharded;
    int shards = 1;            ///< Sharded engine only.
    std::uint64_t seed = 42;   ///< Deployment seed (world + traffic).
    std::size_t devices = 6;
    std::size_t servers = 2;
    sim::Time horizon = 60 * sim::kSecond;
    /** Scenario kind under fuzz: drone sweeps or rover missions (the
     *  rover course is sized to outlast the horizon, preserving the
     *  expect_full_horizon contract). */
    ScenarioKind kind = ScenarioKind::StationaryItems;
};

/** The fuzzer configuration matching @p opt's deployment envelope. */
fault::FuzzConfig fuzz_config_for(const FuzzCaseOptions& opt);

/**
 * Run @p plan under @p opt and return the filled audit (the seed and
 * expect_full_horizon are stamped in). The plan is validated against
 * the full deployment bounds first — a malformed plan throws before
 * anything runs.
 */
fault::RunAudit run_fuzz_case(const fault::FaultPlan& plan,
                              const FuzzCaseOptions& opt);

}  // namespace hivemind::platform

#include "platform/metrics.hpp"

#include <iomanip>
#include <sstream>

namespace hivemind::platform {

void
RunMetrics::merge(const RunMetrics& other)
{
    task_latency_s.merge(other.task_latency_s);
    network_s.merge(other.network_s);
    mgmt_s.merge(other.mgmt_s);
    data_s.merge(other.data_s);
    exec_s.merge(other.exec_s);
    battery_pct.merge(other.battery_pct);
    job_latency_s.merge(other.job_latency_s);
    bandwidth_MBps.merge(other.bandwidth_MBps);
    completion_s += other.completion_s;  // Callers average over repeats.
    completed = completed && other.completed;
    goal_fraction =
        goal_fraction < other.goal_fraction ? goal_fraction
                                            : other.goal_fraction;
    tasks_completed += other.tasks_completed;
    tasks_shed += other.tasks_shed;
    cold_starts += other.cold_starts;
    warm_starts += other.warm_starts;
    faults += other.faults;
    respawns += other.respawns;
    cloud_rpc_cpu_s += other.cloud_rpc_cpu_s;
    radio_bytes_total += other.radio_bytes_total;
    detect_correct_pct += other.detect_correct_pct;
    detect_fn_pct += other.detect_fn_pct;
    detect_fp_pct += other.detect_fp_pct;
    recovery.merge(other.recovery);
}

std::string
format_cell(double value, int width, int precision)
{
    std::ostringstream os;
    os << std::setw(width) << std::fixed << std::setprecision(precision)
       << value;
    return os.str();
}

}  // namespace hivemind::platform

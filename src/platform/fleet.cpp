#include "platform/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace hivemind::platform {

namespace {

constexpr int kFleetVersion = 1;

util::Json
tenant_json(const FleetTenant& t)
{
    return util::Json::object()
        .kv("name", t.name)
        .kv("replicas", t.replicas)
        .kv("seed0", t.seed0)
        .kv("platform", t.platform)
        .kv("devices", static_cast<std::uint64_t>(t.devices))
        .kv("servers", static_cast<std::uint64_t>(t.servers))
        .kv("cores_per_server", t.cores_per_server)
        .kv("scale_infra", t.scale_infra)
        .kv("scenario", scenario_json(t.scenario));
}

FleetTenant
tenant_from_cursor(util::JsonCursor& in)
{
    FleetTenant t;
    util::parse_object(in, [&](util::JsonCursor& in,
                               const std::string& key) {
        if (key == "name")
            t.name = in.parse_string();
        else if (key == "replicas")
            t.replicas = static_cast<int>(in.parse_int());
        else if (key == "seed0")
            t.seed0 = static_cast<std::uint64_t>(in.parse_int());
        else if (key == "platform")
            t.platform = in.parse_string();
        else if (key == "devices")
            t.devices = static_cast<std::size_t>(in.parse_int());
        else if (key == "servers")
            t.servers = static_cast<std::size_t>(in.parse_int());
        else if (key == "cores_per_server")
            t.cores_per_server = static_cast<int>(in.parse_int());
        else if (key == "scale_infra")
            t.scale_infra = in.parse_bool();
        else if (key == "scenario")
            t.scenario = scenario_from_cursor(in);
        else
            in.fail("unknown tenant key \"" + key + "\"");
    });
    if (t.replicas < 1)
        in.fail("tenant \"" + t.name + "\" needs replicas >= 1");
    try {
        (void)platform_from_name(t.platform);
    } catch (const std::invalid_argument& e) {
        in.fail(e.what());
    }
    return t;
}

}  // namespace

std::size_t
FleetProfile::swarms() const
{
    std::size_t n = 0;
    for (const FleetTenant& t : tenants)
        n += static_cast<std::size_t>(t.replicas);
    return n;
}

util::Json
fleet_json(const FleetProfile& fleet)
{
    util::Json tenants = util::Json::array();
    for (const FleetTenant& t : fleet.tenants)
        tenants.push(tenant_json(t));
    return util::Json::object()
        .kv("version", kFleetVersion)
        .kv("name", fleet.name)
        .kv("tenants", tenants);
}

std::string
fleet_to_json(const FleetProfile& fleet)
{
    return fleet_json(fleet).str() + "\n";
}

FleetProfile
fleet_from_cursor(util::JsonCursor& in)
{
    FleetProfile fleet;
    bool saw_version = false;
    util::parse_object(in, [&](util::JsonCursor& in,
                               const std::string& key) {
        if (key == "version") {
            const std::int64_t v = in.parse_int();
            if (v != kFleetVersion)
                in.fail("unsupported fleet version " +
                        std::to_string(v));
            saw_version = true;
        } else if (key == "name") {
            fleet.name = in.parse_string();
        } else if (key == "tenants") {
            util::parse_array(in, [&](util::JsonCursor& in) {
                fleet.tenants.push_back(tenant_from_cursor(in));
            });
        } else {
            in.fail("unknown fleet key \"" + key + "\"");
        }
    });
    if (!saw_version)
        in.fail("fleet profile missing \"version\"");
    return fleet;
}

FleetProfile
fleet_from_json(const std::string& json)
{
    util::JsonCursor in(json, "fleet profile");
    FleetProfile fleet = fleet_from_cursor(in);
    if (!in.done())
        in.fail("trailing content after fleet object");
    return fleet;
}

util::Json
swarm_record_json(const SwarmRecord& rec)
{
    util::Json line = util::Json::object()
                          .kv("tenant", rec.tenant)
                          .kv("replica", rec.replica)
                          .kv("seed", rec.seed)
                          .kv("ok", rec.ok);
    if (!rec.ok)
        return line.kv("error", rec.error);
    const RunResult& r = rec.result;
    return line.kv("engine", to_string(r.engine_used))
        .kv("shards", r.shards_used)
        .kv("checksum", r.checksum)
        .kv("wall_s", r.wall_s)
        .kv("epochs", r.epochs)
        .kv("completion_s", r.metrics.completion_s)
        .kv("completed", r.metrics.completed)
        .kv("goal_fraction", r.metrics.goal_fraction)
        .kv("tasks_completed", r.metrics.tasks_completed)
        .kv("faults", r.metrics.faults)
        .kv("respawns", r.metrics.respawns)
        .kv("mttr_s", r.metrics.recovery.mttr_s.mean())
        .kv("radio_bytes", r.metrics.radio_bytes_total);
}

MetricsPipeline::MetricsPipeline(std::ostream& out, std::size_t capacity)
    : out_(out), capacity_(capacity == 0 ? 1 : capacity)
{
    writer_ = std::thread([this] { writer_loop(); });
}

MetricsPipeline::~MetricsPipeline()
{
    close();
}

void
MetricsPipeline::push(SwarmRecord rec)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        can_push_.wait(lock, [this] {
            return closed_ || queue_.size() < capacity_;
        });
        if (closed_)
            throw std::logic_error(
                "MetricsPipeline: push() after close()");
        queue_.push_back(std::move(rec));
        high_water_ = std::max(high_water_, queue_.size());
    }
    can_pop_.notify_one();
}

void
MetricsPipeline::close()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (closed_ && !writer_.joinable())
            return;
        closed_ = true;
    }
    can_pop_.notify_all();
    can_push_.notify_all();
    if (writer_.joinable())
        writer_.join();
    out_.flush();
}

std::uint64_t
MetricsPipeline::written() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return written_;
}

std::size_t
MetricsPipeline::high_water() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return high_water_;
}

void
MetricsPipeline::writer_loop()
{
    std::deque<SwarmRecord> batch;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            can_pop_.wait(lock, [this] {
                return closed_ || !queue_.empty();
            });
            if (queue_.empty() && closed_)
                return;
            // Take the whole backlog in one lock hold: one stream
            // write + flush per batch, not per record.
            batch.swap(queue_);
        }
        can_push_.notify_all();
        std::string chunk;
        for (const SwarmRecord& rec : batch)
            chunk += swarm_record_json(rec).str() + "\n";
        out_ << chunk;
        out_.flush();
        {
            std::unique_lock<std::mutex> lock(mu_);
            written_ += batch.size();
        }
        batch.clear();
    }
}

Fleet::Fleet(FleetProfile profile) : profile_(std::move(profile))
{
    for (const FleetTenant& t : profile_.tenants) {
        if (t.replicas < 1)
            throw std::invalid_argument("fleet tenant \"" + t.name +
                                        "\" needs replicas >= 1");
        (void)platform_from_name(t.platform);  // Throws on bad preset.
    }
}

DeploymentConfig
Fleet::deployment_of(const FleetTenant& tenant, int replica)
{
    DeploymentConfig dc;
    dc.devices = tenant.devices;
    dc.servers = tenant.servers;
    dc.cores_per_server = tenant.cores_per_server;
    dc.scale_infra = tenant.scale_infra;
    dc.seed = tenant.seed0 + static_cast<std::uint64_t>(replica);
    return dc;
}

FleetResult
Fleet::run(const FleetRunOptions& options) const
{
    struct Job
    {
        const FleetTenant* tenant = nullptr;
        int replica = 0;
    };
    std::vector<Job> jobs;
    jobs.reserve(profile_.swarms());
    for (const FleetTenant& t : profile_.tenants)
        for (int r = 0; r < t.replicas; ++r)
            jobs.push_back({&t, r});

    FleetResult result;
    result.records.resize(jobs.size());

    int workers = options.workers;
    if (workers <= 0) {
        if (auto env_workers = env::sweep_threads())
            workers = static_cast<int>(*env_workers);
        else
            workers = static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
    }
    workers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(workers),
                              std::max<std::size_t>(jobs.size(), 1)));
    result.workers = workers;

    std::unique_ptr<MetricsPipeline> pipeline;
    if (options.metrics)
        pipeline = std::make_unique<MetricsPipeline>(
            *options.metrics, options.queue_capacity);

    const auto wall0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> failed{0};
    auto work = [&] {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const Job& job = jobs[i];
            SwarmRecord rec;
            rec.tenant = job.tenant->name;
            rec.replica = job.replica;
            rec.seed =
                job.tenant->seed0 +
                static_cast<std::uint64_t>(job.replica);
            try {
                rec.result = platform::run(
                    job.tenant->scenario,
                    platform_from_name(job.tenant->platform),
                    deployment_of(*job.tenant, job.replica));
                rec.ok = true;
            } catch (const std::exception& e) {
                rec.ok = false;
                rec.error = e.what();
                failed.fetch_add(1, std::memory_order_relaxed);
            }
            // Stream first (the record is complete either way — an
            // abnormal swarm exit still reaches the JSONL), then park
            // the canonical copy at its deterministic slot.
            if (pipeline)
                pipeline->push(rec);
            result.records[i] = std::move(rec);
        }
    };

    {
        std::vector<std::jthread> pool;
        pool.reserve(static_cast<std::size_t>(workers) - 1);
        for (int w = 1; w < workers; ++w)
            pool.emplace_back(work);
        work();
    }
    const auto wall1 = std::chrono::steady_clock::now();
    result.wall_s =
        std::chrono::duration<double>(wall1 - wall0).count();
    result.failed = failed.load();
    if (pipeline) {
        pipeline->close();
        result.queue_high_water = pipeline->high_water();
    }
    return result;
}

}  // namespace hivemind::platform

#pragma once

/**
 * @file
 * Work/size constants of the scenario pipelines (from the task graphs
 * in Sec. 5.5). Shared by the legacy single-kernel harness and the
 * sharded scenario engine so the two execution paths always model the
 * same application, whatever runtime carries it.
 */

#include <cstdint>

#include "platform/scenario_kind.hpp"

namespace hivemind::platform {

/** Per-task stage work and payload sizes of one scenario pipeline. */
struct PipelineSpec
{
    double rec_work_ms = 220.0;        ///< Recognition stage.
    double dedup_work_ms = 0.0;        ///< Second stage (0 = none).
    /**
     * Sensor payload per recognition task: a one-second frame batch
     * (8 fps x 2 MB, Sec. 2.1). Centralized platforms ship all of it;
     * HiveMind's on-board pre-filter forwards ~30%.
     */
    std::uint64_t frame_bytes = 16u << 20;
    std::uint64_t inter_bytes = 128u << 10;
    std::uint64_t result_bytes = 16u << 10;
    int parallelism = 8;
    std::uint64_t memory_mb = 512;
    const char* rec_app = "scenarioRec";
    const char* dedup_app = "scenarioDedup";
};

/** Pipeline constants for @p kind, with @p frame_bytes_override > 0
 *  replacing the sensor payload (Fig. 17a resolution sweeps). */
inline PipelineSpec
pipeline_for(ScenarioKind kind, std::uint64_t frame_bytes_override = 0)
{
    PipelineSpec spec;
    if (kind == ScenarioKind::MovingPeople) {
        spec.rec_work_ms = 350.0;
        spec.dedup_work_ms = 420.0;
    } else if (kind == ScenarioKind::TreasureHunt) {
        // Image-to-text on a full panel photo, then instruction
        // parsing as a dependent stage (multi-phase, Sec. 5.5).
        spec.rec_work_ms = 1500.0;
        spec.dedup_work_ms = 300.0;
        spec.parallelism = 12;
        spec.frame_bytes = 2u << 20;
        spec.result_bytes = 1u << 10;
    } else if (kind == ScenarioKind::RoverMaze) {
        spec.rec_work_ms = 700.0;
        spec.parallelism = 2;
        spec.frame_bytes = 64u << 10;
        spec.result_bytes = 1u << 10;
    }
    if (frame_bytes_override > 0)
        spec.frame_bytes = frame_bytes_override;
    return spec;
}

}  // namespace hivemind::platform

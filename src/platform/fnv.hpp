#pragma once

/**
 * @file
 * FNV-1a digest helpers shared by the sharded runtime checksums.
 *
 * The invariance tests compare a run's end state across shard counts
 * by hashing per-device state in device-id order. Both the synthetic
 * sharded swarm and the sharded scenario engine build that digest the
 * same way, so the helpers live here instead of being duplicated.
 */

#include <cstdint>
#include <cstring>

namespace hivemind::platform::fnv {

constexpr std::uint64_t kBasis = 1469598103934665603ull;
constexpr std::uint64_t kPrime = 1099511628211ull;

/** Fold a 64-bit value into @p hash byte by byte (FNV-1a). */
inline void
mix(std::uint64_t& hash, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xff;
        hash *= kPrime;
    }
}

/** Raw bit pattern of a double, for hashing exact numeric state. */
inline std::uint64_t
bits(double value)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &value, sizeof(u));
    return u;
}

}  // namespace hivemind::platform::fnv

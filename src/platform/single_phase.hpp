#pragma once

/**
 * @file
 * Runner for the single-phase applications S1-S10.
 *
 * Reproduces the paper's methodology (Sec. 2.3): each job runs for a
 * fixed duration under an open-loop arrival process (per-device task
 * rate, or an aggregate LoadPattern for the elasticity experiments),
 * on one of the four platforms. Per-task stage latencies, battery,
 * and bandwidth are collected into RunMetrics.
 *
 * Platform task paths:
 *  - Centralized (FaaS/IaaS): sensor payload uplink -> cloud task ->
 *    result downlink.
 *  - Distributed: on-board execution -> small result uplink.
 *  - HiveMind: edge-friendly jobs run on-board; heavy jobs run hybrid
 *    (an on-board pre-filter stage reduces the data crossing the
 *    wireless boundary, the remaining work runs serverless with
 *    intra-task parallelism under the HiveMind scheduler).
 */

#include <vector>

#include "apps/appspec.hpp"
#include "apps/workload.hpp"
#include "platform/deployment.hpp"
#include "platform/metrics.hpp"
#include "platform/options.hpp"

namespace hivemind::platform {

/** Single-phase run parameters. */
struct JobConfig
{
    /** Generation window; tasks arriving before this are completed. */
    sim::Time duration = 120 * sim::kSecond;
    /** Extra time allowed for queued tasks to drain. */
    sim::Time drain = 120 * sim::kSecond;
    /** Multiplier on the app's per-device task rate. */
    double load_scale = 1.0;
    /** Aggregate arrival-rate override (elasticity experiments). */
    const apps::LoadPattern* pattern = nullptr;
    /** Let the centralized FaaS platform fan out within tasks too. */
    bool serverless_intra_parallelism = false;
    /** Count hover/drive energy in the battery numbers. */
    bool include_motion_energy = false;
    /** Fraction of work HiveMind's hybrid pre-filter runs on-board. */
    double hybrid_prefilter_share = 0.10;
    /** Fraction of sensor bytes still uplinked after pre-filtering. */
    double hybrid_uplink_fraction = 0.30;
};

/** Run one application on one platform; returns collected metrics. */
RunMetrics run_single_phase(const apps::AppSpec& app,
                            const PlatformOptions& options,
                            const DeploymentConfig& deployment_config,
                            const JobConfig& job);

/**
 * Run several applications concurrently on ONE deployment — the
 * multi-tenant mode the platform supports (Sec. 2.1: "the platform
 * supports multi-tenancy"; the paper evaluates one service at a time
 * to eliminate interference, which is exactly what this entry point
 * lets you measure).
 *
 * Battery, bandwidth, and runtime counters are shared-deployment
 * totals and reported on every entry; per-task latency summaries are
 * per application.
 *
 * @return one RunMetrics per entry of @p app_list, in order.
 */
std::vector<RunMetrics>
run_multi_tenant(const std::vector<apps::AppSpec>& app_list,
                 const PlatformOptions& options,
                 const DeploymentConfig& deployment_config,
                 const JobConfig& job);

}  // namespace hivemind::platform

#include "platform/fuzz_harness.hpp"

#include "platform/deployment.hpp"
#include "platform/options.hpp"
#include "platform/scenario.hpp"
#include "platform/sharded_scenario.hpp"

namespace hivemind::platform {

fault::FuzzConfig
fuzz_config_for(const FuzzCaseOptions& opt)
{
    fault::FuzzConfig cfg;
    cfg.devices = opt.devices;
    cfg.servers = opt.servers;
    cfg.horizon = opt.horizon;
    return cfg;
}

fault::RunAudit
run_fuzz_case(const fault::FaultPlan& plan, const FuzzCaseOptions& opt)
{
    fault::PlanBounds bounds;
    bounds.devices = opt.devices;
    bounds.servers = opt.servers;
    bounds.horizon = opt.horizon;
    plan.validate_or_throw(bounds);

    ScenarioConfig sc;
    sc.kind = ScenarioKind::StationaryItems;
    sc.field_size_m = 96.0;
    // Unattainable goal + unbounded pass budget: the only legitimate
    // stop is the horizon (or a fully dead fleet), so early finishes
    // surface as liveness violations instead of hiding as successes.
    sc.targets = 200;
    sc.max_passes = 1'000'000;
    sc.time_cap = opt.horizon;
    sc.faults = plan;

    DeploymentConfig dep;
    dep.devices = opt.devices;
    dep.servers = opt.servers;
    dep.seed = opt.seed;

    // HiveMind platform: the HA stack wires itself when the plan can
    // take the swarm controller down, matching the shipped scenarios.
    const PlatformOptions platform = PlatformOptions::hivemind();

    // The audit-returning twin of platform::run()'s dispatch: the
    // same EngineChoice semantics (Auto goes sharded when shards > 1
    // and the kind is shardable — always true here), but routed to
    // the audit-capable entry points the oracles need.
    const int shards = opt.shards < 1 ? 1 : opt.shards;
    const bool sharded =
        opt.engine == EngineChoice::Sharded ||
        (opt.engine == EngineChoice::Auto && shards > 1 &&
         scenario_shardable(sc));
    fault::RunAudit audit;
    if (sharded) {
        audit = run_scenario_sharded(sc, platform, dep, shards).audit;
    } else {
        sc.shards = 1;
        audit = run_scenario_audited(sc, platform, dep).audit;
    }
    audit.expect_full_horizon = true;
    return audit;
}

}  // namespace hivemind::platform

#include "platform/fuzz_harness.hpp"

#include "edge/device.hpp"
#include "platform/deployment.hpp"
#include "platform/options.hpp"
#include "platform/scenario.hpp"
#include "platform/sharded_scenario.hpp"

namespace hivemind::platform {

fault::FuzzConfig
fuzz_config_for(const FuzzCaseOptions& opt)
{
    fault::FuzzConfig cfg;
    cfg.devices = opt.devices;
    cfg.servers = opt.servers;
    cfg.horizon = opt.horizon;
    return cfg;
}

fault::RunAudit
run_fuzz_case(const fault::FaultPlan& plan, const FuzzCaseOptions& opt)
{
    fault::PlanBounds bounds;
    bounds.devices = opt.devices;
    bounds.servers = opt.servers;
    bounds.horizon = opt.horizon;
    plan.validate_or_throw(bounds);

    const bool rover = opt.kind == ScenarioKind::TreasureHunt ||
        opt.kind == ScenarioKind::RoverMaze;

    ScenarioConfig sc;
    sc.kind = opt.kind;
    sc.field_size_m = rover ? 48.0 : 96.0;
    // Unattainable goal + unbounded pass budget: the only legitimate
    // stop is the horizon (or a fully dead fleet), so early finishes
    // surface as liveness violations instead of hiding as successes.
    // For rover kinds the same contract comes from a course no 1 m/s
    // rover can drive inside the horizon.
    sc.targets = 200;
    sc.max_passes = 1'000'000;
    sc.course_legs = 64;
    sc.maze_side = 21;
    sc.time_cap = opt.horizon;
    sc.faults = plan;

    DeploymentConfig dep;
    dep.devices = opt.devices;
    dep.servers = opt.servers;
    dep.seed = opt.seed;
    if (rover)
        dep.device_spec = edge::DeviceSpec::rover();

    // HiveMind platform: the HA stack wires itself when the plan can
    // take the swarm controller down, matching the shipped scenarios.
    const PlatformOptions platform = PlatformOptions::hivemind();

    // The audit-returning twin of platform::run()'s dispatch: the
    // same EngineChoice semantics (Auto resolves to the sharded
    // engine for every kind since the rover port), but routed to the
    // audit-capable entry points the oracles need.
    const int shards = opt.shards < 1 ? 1 : opt.shards;
    const bool sharded = opt.engine != EngineChoice::Legacy;
    fault::RunAudit audit;
    if (sharded) {
        audit = run_scenario_sharded(sc, platform, dep, shards).audit;
    } else {
        sc.shards = 1;
        audit = run_scenario_audited(sc, platform, dep).audit;
    }
    audit.expect_full_horizon = true;
    return audit;
}

}  // namespace hivemind::platform

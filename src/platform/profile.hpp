#pragma once

/**
 * @file
 * Declarative scenario profiles: the JSON form of ScenarioConfig.
 *
 * A profile is the canonical way to configure a run — the same
 * discipline as fault reproducers (fault::plan_to_json): a versioned
 * object, strict unknown-key rejection, exact round-trip
 * (scenario_from_json(scenario_to_json(sc)) == sc). Fleet profiles
 * (platform/fleet.hpp) embed one scenario profile per tenant; the
 * fault plan nests in the existing reproducer format under "faults".
 *
 * Compatibility contract (see DESIGN.md "Fleet service mode"):
 * within schema version 1, every key is optional and defaults to the
 * ScenarioConfig default, so ADDING a key with a default is not a
 * version bump. Renaming, removing, retyping a key, or changing a
 * default's meaning IS — bump "version", teach the parser both
 * versions (or reject the old one loudly), and document the bump in
 * DESIGN.md. Unknown keys always throw: a typo'd knob must never
 * silently run the default experiment.
 *
 * Times serialize as integer nanoseconds (sim::Time's native unit);
 * doubles in the shortest form that round-trips bit-exactly
 * (util::format_double).
 */

#include <string>

#include "platform/scenario.hpp"
#include "util/json.hpp"

namespace hivemind::platform {

/** Stable profile identifiers (distinct from the display names). */
const char* scenario_kind_name(ScenarioKind k);
const char* retrain_mode_name(apps::RetrainMode m);
const char* recovery_name(cloud::FaultRecovery r);

/** Serialize @p sc as a self-contained versioned profile. */
std::string scenario_to_json(const ScenarioConfig& sc);

/**
 * Parse a profile produced by scenario_to_json() (whitespace and key
 * order free; unknown keys rejected; missing keys keep defaults).
 * Throws std::invalid_argument on malformed input.
 */
ScenarioConfig scenario_from_json(const std::string& json);

/** The profile as a util::Json value, for embedding (fleet tenants). */
util::Json scenario_json(const ScenarioConfig& sc);

/** Nested-object counterpart of scenario_from_json(). */
ScenarioConfig scenario_from_cursor(util::JsonCursor& in);

}  // namespace hivemind::platform

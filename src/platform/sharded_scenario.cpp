#include "platform/sharded_scenario.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "apps/world.hpp"
#include "core/ha.hpp"
#include "geo/maze.hpp"
#include "core/heartbeat.hpp"
#include "core/learning.hpp"
#include "core/load_balancer.hpp"
#include "core/scheduler.hpp"
#include "fault/retry.hpp"
#include "net/shard_link.hpp"
#include "net/topology.hpp"
#include "platform/fnv.hpp"
#include "platform/pipeline_spec.hpp"
#include "sim/swarm_runtime.hpp"

namespace hivemind::platform {

namespace {

using fnv::bits;
using fnv::mix;

constexpr std::uint64_t kCtrlMsgBytes = 64;
// Origin-id planes for the merge tiebreak. Device ids occupy [0, 2^20);
// each link family gets its own plane so the (when, origin) key never
// collides across channels.
constexpr std::uint64_t kDataUpOrigin = 0;
constexpr std::uint64_t kDataDownOrigin = 1u << 20;
constexpr std::uint64_t kCtrlUpOrigin = 2u << 20;
constexpr std::uint64_t kCtrlDownOrigin = 3u << 20;
// Controller <-> cloud checkpoint RPC plane (one link each way, not
// per-device, so the plane needs a single origin slot).
constexpr std::uint64_t kCkptUpOrigin = 4u << 20;
constexpr std::uint64_t kCkptDownOrigin = 5u << 20;
// Controller-to-cloud backhaul rate for checkpoint traffic. The
// controller sits cloud-side (Sec. 4.6), so this is a wired leg, not
// the device radio.
constexpr double kCkptLinkBps = 1e9;
// The heard-from roster must look fully dead for this many consecutive
// 1 Hz controller ticks before the mission aborts. Heartbeats lag
// reality by up to one beat period plus control-plane transfer, so a
// single all-dead reading can race a rejoin already on the wire.
constexpr int kFleetDeadDwellTicks = 3;

/** The chaos plan actually run: config plan + legacy injection shim. */
fault::FaultPlan
effective_plan(const ScenarioConfig& sc)
{
    fault::FaultPlan plan = sc.faults;
    if (sc.inject_failure_at > 0)
        plan.device_crash(sc.inject_failure_at, sc.inject_failure_device);
    return plan;
}

/** Whether the plan targets the swarm controller (needs the HA stack). */
bool
plan_has_controller_faults(const fault::FaultPlan& plan)
{
    for (const fault::FaultEvent& e : plan.events) {
        if (e.kind == fault::FaultKind::ControllerCrash ||
            e.kind == fault::FaultKind::ControllerPartition)
            return true;
    }
    return false;
}

/** Stage shares of one completed frame (mirrors the legacy math). */
struct StageShares
{
    double total = 0.0;
    double network = 0.0;
    double mgmt = 0.0;
    double data = 0.0;
    double exec = 0.0;
};

/**
 * One edge device actor. Everything here is owned by — and only ever
 * touched from — the device's owner shard, except during wiring and
 * the single-threaded post-run metric sweep.
 */
struct DeviceActor
{
    std::size_t id;
    sim::Simulator* sim;  ///< Owner shard kernel.
    sim::Rng rng;         ///< Device-local stream (jitter, loss, backoff).
    edge::Device dev;
    fault::OffloadRetrier retrier;  ///< Single-slot breaker (index 0).

    // Wireless state the chaos hooks flip on the owner shard. The
    // Gilbert-Elliott burst state lives on the uplink ShardLink, so it
    // stays local to the owner shard at any shard count.
    bool blocked = false;  ///< Hard partition (loss = 1).
    bool chaos_down = false;  ///< Held down by an injected crash.
    double configured_loss = 0.0;

    net::ShardLink* data_up = nullptr;
    net::ShardLink* ctrl_up = nullptr;

    // Per-frame state awaiting the cloud round trip.
    struct PendingFrame
    {
        sim::Time t0 = 0;         ///< Capture time.
        sim::Time t1_edge = 0;    ///< On-board stage done (edge kinds).
        double edge_exec_s = 0.0; ///< On-board execution share.
        geo::Vec2 pos;            ///< Capture position (for detection).
        std::uint64_t gen = 0;    ///< Rover leg generation at capture.
    };
    std::map<std::uint64_t, PendingFrame> pending;
    std::uint64_t next_frame = 0;

    // Local result partials, merged in id order after the run.
    sim::Summary task_latency, network_s, mgmt_s, data_s, exec_s;
    std::uint64_t frames = 0;
    std::uint64_t completions = 0;
    std::uint64_t wireless_drops = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t offload_retries = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t radio_bytes = 0;
    std::uint64_t radio_settled = 0;
    double compute_settled = 0.0;

    // Degraded-mode (controller outage) bookkeeping.
    std::uint64_t frames_buffered = 0;   ///< Buffered while degraded.
    std::uint64_t buffered_drained = 0;  ///< Drained after reconnect.
    std::uint64_t drain_lost = 0;      ///< Lost draining (air/death).
    std::uint64_t drain_inflight = 0;  ///< Drain chains still in the air.
    std::uint64_t outage_completions = 0;  ///< Results landed degraded.

    // Route protocol.
    bool awaiting_route = false;
    sim::Time route_requested_at = 0;

    // Rover leg state machine (rover kinds only). The course geometry
    // is flattened into per-leg drive distances at wiring time so the
    // actor never touches controller-owned world state mid-run.
    std::vector<double> legs;        ///< Drive distance per leg, meters.
    std::size_t rover_leg = 0;       ///< Current leg index.
    sim::Time moving_until = 0;      ///< Motion-energy gate (drive end).
    sim::Time job_done_at = -1;      ///< Course finished (-1 = active).
    double job_latency_s = 0.0;      ///< Finish time, seconds.
    /**
     * Bumped on every chaos crash AND rejoin: in-flight drive
     * arrivals, sense retries and cloud round trips carry the
     * generation they were issued under and go stale when it moves,
     * so a resumed leg never races its pre-crash continuations.
     */
    std::uint64_t rover_gen = 0;

    DeviceActor(sim::Simulator& shard, std::uint64_t seed, std::size_t d,
                const edge::DeviceSpec& spec, const fault::RetryConfig& retry)
        : id(d), sim(&shard), rng(seed), dev(shard, rng, d, spec),
          retrier(1, retry)
    {
    }

    double loss_now() const
    {
        if (blocked)
            return 1.0;
        const double burst = data_up->loss();
        return burst >= 0.0 ? burst : configured_loss;
    }
};

/**
 * The cloud tier: wired topology, cluster, FaaS + DataStore, IaaS
 * pool and (on HiveMind) the scheduler — all on the cloud shard.
 * Construction mirrors Deployment's wiring, including infra scaling.
 */
struct CloudTier
{
    sim::Simulator* sim;
    sim::Rng rng;
    DeploymentConfig cfg;  ///< Post scale_infra mutation.
    PlatformOptions opt;
    std::unique_ptr<net::SwarmTopology> topo;
    std::unique_ptr<cloud::Cluster> cluster;
    std::unique_ptr<cloud::DataStore> store;
    std::unique_ptr<cloud::FaasRuntime> faas;
    std::unique_ptr<cloud::IaasPool> iaas;
    std::unique_ptr<core::HiveMindScheduler> scheduler;
    sim::RateMeter air_meter{sim::kSecond};
    std::uint64_t corrupt_frames = 0;

    CloudTier(sim::Simulator& shard, const DeploymentConfig& config,
              const PlatformOptions& options)
        : sim(&shard), rng(config.seed ^ 0x5eedc0deull), cfg(config),
          opt(options)
    {
        net::TopologyConfig net = cfg.net;
        net.devices = cfg.devices;
        net.servers = cfg.servers;
        net.cloud_rpc_offload = opt.net_accel;
        if (cfg.scale_infra && cfg.devices > 16) {
            double factor = static_cast<double>(cfg.devices) / 16.0;
            net.infra_scale = factor;
            cfg.servers = static_cast<std::size_t>(
                static_cast<double>(cfg.servers) * factor);
            net.servers = cfg.servers;
        }
        // The radio segment is simulated device-side on the owner
        // shards; this topology only carries the wired legs, so it
        // needs no loss RNG.
        topo = std::make_unique<net::SwarmTopology>(shard, net, nullptr);

        cluster = std::make_unique<cloud::Cluster>(
            cfg.servers, cfg.cores_per_server, cfg.server_memory_mb);
        store = std::make_unique<cloud::DataStore>(shard, rng, cfg.store);
        cloud::FaasConfig faas_cfg = cfg.faas;
        if (opt.remote_mem_accel)
            faas_cfg.sharing = cloud::SharingProtocol::RemoteMemory;
        if (opt.smart_scheduler) {
            faas_cfg.controllers = std::max<int>(
                2, static_cast<int>(cfg.devices / 8));
            faas_cfg.max_concurrency = 100000;
        }
        faas = std::make_unique<cloud::FaasRuntime>(shard, rng, *cluster,
                                                    *store, faas_cfg);
        iaas = std::make_unique<cloud::IaasPool>(shard, rng, cfg.iaas);
        if (opt.smart_scheduler) {
            scheduler = std::make_unique<core::HiveMindScheduler>(
                shard, rng, *faas, cfg.scheduler);
            scheduler->install();
        }
    }

    /** Deployment::cloud_invoke, cloud-shard edition. */
    void invoke(const cloud::InvokeRequest& request, int parallelism,
                std::function<void(const CloudResult&)> done)
    {
        if (opt.kind == PlatformKind::CentralizedIaas) {
            iaas->submit(request.work_core_ms,
                         [done = std::move(done)](const cloud::IaasTrace& t) {
                             CloudResult r;
                             r.mgmt_s = t.queue_s();
                             r.exec_s = t.total_s() - t.queue_s();
                             r.done = t.done;
                             if (done)
                                 done(r);
                         });
            return;
        }
        auto to_result = [done = std::move(done)](
                             const cloud::InvocationTrace& t) {
            CloudResult r;
            r.mgmt_s = t.mgmt_s() + t.instantiation_s();
            r.data_s = t.data_s();
            r.exec_s = t.exec_s();
            r.done = t.done;
            r.server = t.server;
            if (done)
                done(r);
        };
        if (scheduler) {
            if (parallelism > 1)
                scheduler->invoke_parallel(request, parallelism,
                                           std::move(to_result));
            else
                scheduler->invoke(request, std::move(to_result));
        } else {
            if (parallelism > 1)
                faas->invoke_parallel(request, parallelism,
                                      std::move(to_result));
            else
                faas->invoke(request, std::move(to_result));
        }
    }
};

/** Controller tier state, pinned to shard 0. */
struct ControllerTier
{
    sim::Simulator* sim;
    sim::Rng rng;  ///< World construction + detection rolls.
    core::SwarmLoadBalancer balancer;
    core::FailureDetector detector;
    core::LearningCoordinator learning;
    std::unique_ptr<apps::ItemField> items;
    std::unique_ptr<apps::CrowdField> crowd;
    /** Rover kinds: true once, immutable after construction (safe to
     *  read from any shard). */
    bool rover = false;
    /** TreasureHunt: per-device panel chains (region-seeded). */
    std::vector<apps::TreasureHunt> courses;
    /** RoverMaze: per-device wall-follower trace lengths. */
    std::vector<std::size_t> maze_steps;
    /** Heard-from finished roster (heartbeats re-announce, so a note
     *  lost to a dead controller is recovered on the next beat). */
    std::vector<char> rover_done;
    std::vector<int> pass;
    std::vector<char> alive_known;
    /**
     * Controller-side view of per-device offload progress, refreshed
     * by the piggybacked heartbeat payload. This is what the HA
     * checkpoint snapshots: the controller can only checkpoint what
     * it has been told, never peek across shards.
     */
    std::vector<std::uint32_t> inflight_known;
    std::vector<std::uint64_t> started_known;
    bool down = false;  ///< Crash/partition window open.
    /**
     * Consecutive 1 Hz ticks the heard-from roster has looked fully
     * dead. The roster is heartbeat-derived and so runs ~1 s stale: a
     * device that just rejoined announces itself with its next beat.
     * Aborting the mission on the first all-dead reading loses that
     * race (the fuzzer found it: overlapping crash windows on a small
     * fleet, a rejoin one tick before the abort), so the abort waits
     * for the view to stay dead across a short dwell.
     */
    int dead_ticks = 0;
    bool done = false;
    bool goal = false;
    double final_goal_fraction = 0.0;
    sim::Time completion = 0;
    sim::Time last_retrain = 0;
    std::uint64_t reports = 0;
    std::uint64_t dropped_msgs = 0;  ///< Messages lost to a dead controller.
    std::uint64_t crashes = 0;
    std::uint64_t takeovers = 0;

    ControllerTier(sim::Simulator& shard, const ScenarioConfig& sc,
                   std::size_t devices, std::uint64_t seed)
        : sim(&shard), rng(seed),
          balancer(geo::Rect{0.0, 0.0, sc.field_size_m, sc.field_size_m},
                   devices),
          detector(shard, devices),
          learning(devices, sc.detection, sc.retrain),
          pass(devices, 0), alive_known(devices, 1),
          inflight_known(devices, 0), started_known(devices, 0)
    {
        if (sc.kind == ScenarioKind::StationaryItems) {
            items = std::make_unique<apps::ItemField>(
                geo::Rect{0.0, 0.0, sc.field_size_m, sc.field_size_m},
                sc.targets, rng);
        } else if (sc.kind == ScenarioKind::MovingPeople) {
            crowd = std::make_unique<apps::CrowdField>(
                geo::Rect{0.0, 0.0, sc.field_size_m, sc.field_size_m},
                sc.targets, 1.4, rng);
        } else {
            // Rover worlds, generated per device from the forked rng
            // in ascending id order exactly like the legacy path —
            // single-threaded construction, so shard-agnostic.
            rover = true;
            rover_done.assign(devices, 0);
            if (sc.kind == ScenarioKind::TreasureHunt) {
                for (std::size_t d = 0; d < devices; ++d) {
                    auto region = balancer.region_of(d);
                    courses.emplace_back(
                        *region, static_cast<std::size_t>(sc.course_legs),
                        rng);
                }
            } else {
                for (std::size_t d = 0; d < devices; ++d) {
                    geo::Maze maze(sc.maze_side, sc.maze_side, rng);
                    auto trace = geo::wall_follow(
                        maze, sc.maze_side - 1, sc.maze_side - 1,
                        static_cast<std::size_t>(sc.maze_side) *
                            static_cast<std::size_t>(sc.maze_side) * 8);
                    maze_steps.push_back(trace.size());
                }
            }
        }
    }

    double goal_fraction() const
    {
        if (items) {
            return static_cast<double>(items->found_count()) /
                static_cast<double>(items->item_count());
        }
        if (crowd) {
            return static_cast<double>(crowd->counted_count()) /
                static_cast<double>(crowd->population());
        }
        // Rover kinds: fraction of rovers known to have finished.
        std::size_t finished = 0;
        for (char f : rover_done) {
            if (f)
                ++finished;
        }
        return rover_done.empty()
            ? 0.0
            : static_cast<double>(finished) /
                static_cast<double>(rover_done.size());
    }

    std::uint64_t world_digest() const
    {
        if (items)
            return items->found_count();
        if (crowd)
            return crowd->counted_count();
        std::uint64_t finished = 0;
        for (char f : rover_done)
            finished += f ? 1u : 0u;
        return finished;
    }
};

/**
 * One sharded scenario run. Lives on the stack of
 * run_scenario_sharded(); shard kernels call back into it, each
 * callback touching only the state its shard owns.
 */
class ShardedScenarioEngine
{
  public:
    ShardedScenarioEngine(const ScenarioConfig& sc,
                          const PlatformOptions& opt,
                          const DeploymentConfig& dep, int shards)
        : sc_(sc), opt_(opt),
          pipe_(pipeline_for(sc.kind, sc.frame_bytes_override)),
          runtime_(shards),
          cloud_shard_(shards > 1 ? 1 : 0),
          cloud_(runtime_.shard(cloud_shard_), dep, opt),
          ctrl_(runtime_.shard(0), sc, dep.devices, dep.seed ^ 0x5ca1ab1eull)
    {
        runtime_.set_adaptive_lookahead(sc.adaptive_lookahead);
        wire_devices(dep);
        wire_rovers();
        wire_controller();
        wire_ha(dep);
        arm_chaos();
    }

    ShardedScenarioResult run();

  private:
    bool hivemind() const { return opt_.kind == PlatformKind::HiveMind; }

    // --- Device side (owner shards) ---
    void device_tick(DeviceActor& a);
    void frame_task(DeviceActor& a);
    void launch_frame(DeviceActor& a, std::uint64_t frame);
    void offload(DeviceActor& a, std::uint64_t frame, std::uint64_t bytes,
                 int attempt);
    void air_attempt(DeviceActor& a, std::uint64_t frame,
                     std::uint64_t bytes, int attempt, int tries_left);
    void air_failed(DeviceActor& a, std::uint64_t frame,
                    std::uint64_t bytes, int attempt);
    void on_result(DeviceActor& a, std::uint64_t frame,
                   const StageShares& cloud_shares, sim::Time t1,
                   sim::Time cloud_done, bool edge_ack);
    void drain_backlog(DeviceActor& a);
    void drain_attempt(DeviceActor& a, std::uint64_t bytes,
                       std::uint64_t frames, int tries_left);

    // --- Rover leg state machine (owner shards) ---
    void rover_begin_leg(DeviceActor& a);
    void rover_sense(DeviceActor& a);
    void rover_retry(DeviceActor& a);

    // --- Cloud side (cloud shard) ---
    void cloud_ingress(std::size_t device, std::uint64_t frame,
                       std::uint64_t bytes);
    void invoke_stages(std::size_t device, std::uint64_t frame,
                       std::size_t server, sim::Time t1);
    void send_result(std::size_t device, std::uint64_t frame,
                     const StageShares& shares, sim::Time t1,
                     sim::Time cloud_done, bool edge_ack);

    // --- Controller side (shard 0) ---
    void controller_tick();
    void on_beat(std::size_t device, std::uint32_t inflight,
                 std::uint64_t started, bool rover_finished);
    void on_report(std::size_t device, geo::Vec2 pos, sim::Time t0);
    void on_rover_progress(std::size_t device);
    void on_rover_done(std::size_t device);
    void on_route_request(std::size_t device);
    void send_route(std::size_t device);
    void on_device_failed(std::size_t device);
    void on_device_recovered(std::size_t device);
    void controller_takeover();
    void finish(bool goal);

    // --- Controller HA (shard 0, checkpoint RPCs to the cloud shard) ---
    core::ControllerCheckpoint make_checkpoint() const;
    core::ReconcileReport reconcile_after_takeover(
        const core::ControllerCheckpoint& cp);
    void availability_changed(bool up);

    void wire_devices(const DeploymentConfig& dep);
    void wire_rovers();
    void wire_controller();
    void wire_ha(const DeploymentConfig& dep);
    void arm_chaos();
    RunMetrics collect_metrics();
    fault::RunAudit build_audit(const RunMetrics& m) const;
    std::uint64_t checksum() const;

    ScenarioConfig sc_;
    PlatformOptions opt_;
    PipelineSpec pipe_;
    sim::SwarmRuntime runtime_;
    int cloud_shard_;
    CloudTier cloud_;
    ControllerTier ctrl_;
    std::vector<std::unique_ptr<DeviceActor>> devices_;
    /** Per-shard device rosters (ascending id) for the batched drive. */
    std::vector<std::vector<std::size_t>> tick_groups_;
    std::vector<net::ShardLink> data_up_, data_down_, ctrl_up_, ctrl_down_;
    fault::ShardChaosReport chaos_;
    std::uint64_t server_crashes_ = 0;
    std::uint64_t datastore_outages_ = 0;
    std::uint64_t partitions_ = 0;
    std::uint64_t device_crashes_ = 0;
    std::uint64_t device_rejoins_ = 0;
    std::uint64_t ctrl_partitions_ = 0;
    std::uint64_t link_bursts_fired_ = 0;  ///< Windows actually opened.

    // Controller HA: the cluster lives on shard 0, its checkpoints on
    // the cloud shard's DataStore, reached over a dedicated ShardLink
    // plane so checkpoint traffic is metered like everything else.
    std::unique_ptr<core::HaCluster> ha_;
    std::unique_ptr<net::ShardLink> ckpt_up_, ckpt_down_;
    std::unique_ptr<sim::Rng> ckpt_rng_;  ///< Shard-0 write-loss rolls.
    std::uint64_t ckpt_writes_lost_ = 0;
};

void
ShardedScenarioEngine::wire_devices(const DeploymentConfig& dep)
{
    const std::size_t n = dep.devices;
    const net::TopologyConfig& net = dep.net;
    devices_.reserve(n);
    data_up_.reserve(n);
    data_down_.reserve(n);
    ctrl_up_.reserve(n);
    ctrl_down_.reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
        const int owner = runtime_.owner_of(d);
        sim::Simulator& shard = runtime_.shard(owner);
        devices_.push_back(std::make_unique<DeviceActor>(
            shard, dep.seed ^ (0x9e3779b97f4a7c15ull * (d + 1)), d,
            dep.device_spec, sc_.retry));
        DeviceActor* a = devices_.back().get();
        a->configured_loss = net.wireless_loss;
        // Data plane to/from the cloud shard; control plane to/from
        // shard 0. All four share the radio's propagation delay, which
        // doubles as the declared channel lookahead.
        data_up_.emplace_back(runtime_, owner, cloud_shard_,
                              kDataUpOrigin + d, net.device_radio_bps,
                              net.wireless_prop);
        data_down_.emplace_back(runtime_, cloud_shard_, owner,
                                kDataDownOrigin + d, net.device_radio_bps,
                                net.wireless_prop);
        ctrl_up_.emplace_back(runtime_, owner, 0, kCtrlUpOrigin + d,
                              net.device_radio_bps, net.wireless_prop);
        ctrl_down_.emplace_back(runtime_, 0, owner, kCtrlDownOrigin + d,
                                net.device_radio_bps, net.wireless_prop);
    }
    for (std::size_t d = 0; d < n; ++d) {
        DeviceActor* a = devices_[d].get();
        a->data_up = &data_up_[d];
        a->ctrl_up = &ctrl_up_[d];
    }

    // 1 Hz housekeeping: energy accounting, heartbeat, route asks.
    // Batched mode collapses it to one wheel event per shard per tick
    // sweeping that shard's devices in ascending id — the same order
    // the per-device events fire in, so state transitions (and the
    // checksum) are identical, at 1/devices-per-shard the kernel
    // traffic. Wired before the Poisson processes below so same-time
    // ties resolve tick-first on every shard count.
    if (sc_.batched_ticks) {
        std::vector<std::vector<std::size_t>> by_shard(
            static_cast<std::size_t>(runtime_.shards()));
        for (std::size_t d = 0; d < n; ++d)
            by_shard[static_cast<std::size_t>(runtime_.owner_of(d))]
                .push_back(d);
        tick_groups_ = std::move(by_shard);
        for (int s = 0; s < runtime_.shards(); ++s) {
            const auto* grp = &tick_groups_[static_cast<std::size_t>(s)];
            if (grp->empty())
                continue;
            sim::recurring(runtime_.shard(s), sim::kSecond,
                           [this, grp](const sim::Recur& self) {
                               for (std::size_t d : *grp)
                                   device_tick(*devices_[d]);
                               self.again_in(sim::kSecond);
                           });
        }
    }

    for (std::size_t d = 0; d < n; ++d) {
        DeviceActor* a = devices_[d].get();
        sim::Simulator& shard = *a->sim;

        if (!sc_.batched_ticks) {
            sim::recurring(shard, sim::kSecond,
                           [this, a](const sim::Recur& self) {
                               device_tick(*a);
                               self.again_in(sim::kSecond);
                           });
        }

        // Rovers sense once per leg, driven by the leg state machine —
        // no Poisson frame clock, no on-board obstacle stream (those
        // model the drone flight stack, Sec. 2.1).
        if (ctrl_.rover)
            continue;

        // Poisson recognition frames while alive.
        sim::recurring(
            shard, sim::from_seconds(a->rng.uniform(0.0, 1.0)),
            [this, a](const sim::Recur& self) {
                if (a->dev.alive())
                    frame_task(*a);
                self.again_in(sim::from_seconds(
                    a->rng.exponential(1.0 / sc_.frame_task_rate_hz)));
            });

        // Obstacle avoidance always runs on-board (Sec. 2.1) and
        // never leaves the device: the submit has no completion
        // callback, so the chain is silent-classified and stays out
        // of the shard's adaptive send horizon (the executor upgrades
        // the in-flight completion if a send-capable task queues up
        // behind it).
        sim::recurring_silent(
            shard, sim::from_seconds(a->rng.uniform(0.0, 0.5)),
            [a, this](const sim::Recur& self) {
                if (a->dev.alive())
                    a->dev.executor().submit(18.0 * 0.55, nullptr);
                self.again_in(sim::from_seconds(
                    a->rng.exponential(1.0 / sc_.obstacle_rate_hz)));
            });
    }
}

void
ShardedScenarioEngine::wire_rovers()
{
    if (!ctrl_.rover)
        return;
    // Flatten the controller-generated course geometry into per-leg
    // drive distances here, while wiring is still single-threaded, so
    // the leg state machine on the owner shard never reads
    // controller-owned world state mid-run.
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        DeviceActor& a = *devices_[d];
        if (sc_.kind == ScenarioKind::TreasureHunt) {
            const apps::TreasureHunt& course = ctrl_.courses[d];
            geo::Vec2 from = ctrl_.balancer.region_of(d)->center();
            for (std::size_t leg = 0; leg < course.panel_count(); ++leg) {
                a.legs.push_back(from.distance_to(course.panel(leg)));
                from = course.panel(leg);
            }
        } else {
            a.legs.assign(ctrl_.maze_steps[d], 1.0);  // One cell per leg.
        }
        rover_begin_leg(a);
    }
}

void
ShardedScenarioEngine::wire_controller()
{
    ctrl_.detector.set_on_failure(
        [this](std::size_t d) { on_device_failed(d); });
    ctrl_.detector.set_on_recovery(
        [this](std::size_t d) { on_device_recovered(d); });
    ctrl_.detector.start();

    // Initial sweep routes ride the control downlinks before the run
    // starts, landing in deterministic merge order like any message.
    // Rovers carry their own course — no sweep routes to hand out.
    if (!ctrl_.rover) {
        for (std::size_t d = 0; d < devices_.size(); ++d)
            send_route(d);
    }

    sim::recurring(*ctrl_.sim, sim::kSecond,
                   [this](const sim::Recur& self) {
                       controller_tick();
                       if (!ctrl_.done)
                           self.again_in(sim::kSecond);
                   });
}

void
ShardedScenarioEngine::wire_ha(const DeploymentConfig& dep)
{
    // Mirror the legacy gate: only runs that can actually lose their
    // swarm controller pay for the HA stack, so every other run
    // replays checksum-identically to the pre-HA behavior.
    if (!hivemind() ||
        (!sc_.ha.enabled && !plan_has_controller_faults(effective_plan(sc_))))
        return;
    const net::TopologyConfig& net = dep.net;
    // The checkpoint plane shares the radio propagation so it never
    // tightens the declared lookahead below the existing channels.
    ckpt_up_ = std::make_unique<net::ShardLink>(
        runtime_, 0, cloud_shard_, kCkptUpOrigin, kCkptLinkBps,
        net.wireless_prop);
    ckpt_down_ = std::make_unique<net::ShardLink>(
        runtime_, cloud_shard_, 0, kCkptDownOrigin, kCkptLinkBps,
        net.wireless_prop);
    ckpt_rng_ = std::make_unique<sim::Rng>(dep.seed ^ 0xc4ec9017ull);

    core::HaConfig hc = sc_.ha;
    hc.enabled = true;
    ha_ = std::make_unique<core::HaCluster>(*ctrl_.sim, nullptr, hc);
    // Checkpoint writes ride the RPC plane to the cloud DataStore and
    // commit on shard 0 once the ack returns; a write lost on the
    // plane simply never becomes durable (the next interval retries).
    ha_->checkpoint_store().set_transport(
        [this](std::uint64_t bytes, std::function<void()> commit) {
            const double loss = ckpt_up_->loss();
            if (loss > 0.0 && ckpt_rng_->chance(loss)) {
                ++ckpt_writes_lost_;
                return;
            }
            ckpt_up_->transfer(
                bytes,
                sim::InlineFn([this, bytes,
                               commit = std::move(commit)]() mutable {
                    cloud_.store->access(
                        bytes, [this, commit = std::move(commit)]() mutable {
                            ckpt_down_->transfer(
                                kCtrlMsgBytes,
                                sim::InlineFn(std::move(commit)));
                        });
                }));
        },
        [this](std::uint64_t bytes, std::function<void()> done) {
            // Standby read: small request up, store fetch, payload back.
            ckpt_up_->transfer(
                kCtrlMsgBytes,
                sim::InlineFn([this, bytes,
                               done = std::move(done)]() mutable {
                    cloud_.store->access(
                        bytes, [this, bytes,
                                done = std::move(done)]() mutable {
                            ckpt_down_->transfer(
                                bytes, sim::InlineFn(std::move(done)));
                        });
                }));
        });
    ha_->set_snapshot([this] { return make_checkpoint(); });
    ha_->set_on_takeover([this](const core::ControllerCheckpoint& cp) {
        return reconcile_after_takeover(cp);
    });
    ha_->set_on_availability([this](bool up) { availability_changed(up); });
    ha_->set_on_restored([this](double checkpoint_age_s) {
        if (checkpoint_age_s >= 0.0)
            ++ctrl_.takeovers;  // Standby promoted; partitions return
                                // the same instance.
    });
    ha_->start();
}

void
ShardedScenarioEngine::arm_chaos()
{
    fault::ShardChaosHooks hooks;
    hooks.devices = devices_.size();
    hooks.burst_seed = cloud_.cfg.seed;
    hooks.controller_ha = ha_ != nullptr;
    hooks.crash_device = [this](std::size_t d) {
        DeviceActor& a = *devices_[d];
        // A device already held down is not a second incident — the
        // legacy ChaosEngine skips it, and the first scheduled rejoin
        // ends the incident. Mirroring that here keeps the crash and
        // rejoin ledgers identical across engines under overlapping
        // crash windows (e.g. Poisson churn on a small fleet).
        if (a.chaos_down)
            return;
        a.chaos_down = true;
        a.dev.set_failed(true);
        if (ctrl_.rover)
            ++a.rover_gen;  // Strand in-flight leg continuations.
        ++device_crashes_;
    };
    hooks.rejoin_device = [this](std::size_t d) {
        DeviceActor& a = *devices_[d];
        if (!a.chaos_down)
            return;
        a.chaos_down = false;
        a.dev.set_failed(false);
        ++device_rejoins_;  // Heartbeats resume; the detector rejoins it.
        if (ctrl_.rover) {
            // The crash interrupted the current leg mid-drive or
            // mid-offload; bump the generation again (a rejoin is a
            // fresh epoch too) and re-drive the leg from its start.
            ++a.rover_gen;
            if (a.job_done_at < 0)
                rover_begin_leg(a);
        }
    };
    hooks.set_device_loss = [this](std::size_t d, double loss) {
        data_up_[d].set_loss(loss);
    };
    hooks.note_link_burst = [this] { ++link_bursts_fired_; };
    hooks.partition_device = [this](std::size_t d, bool on) {
        devices_[d]->blocked = on;
        if (on)
            ++partitions_;
    };
    hooks.crash_server = [this](std::size_t s) {
        cloud_.faas->crash_server(s, 0);
        ++server_crashes_;
    };
    hooks.recover_server = [this](std::size_t s) {
        cloud_.faas->restore_server(s);
    };
    hooks.datastore_outage = [this](sim::Time duration) {
        cloud_.store->fail_until(cloud_.sim->now() + duration);
        ++datastore_outages_;
    };
    hooks.crash_controller = [this] {
        ++ctrl_.crashes;
        if (ha_) {
            // The real stack: missed heartbeats, election, checkpoint
            // replay. availability_changed() flips the down flag.
            ha_->crash_active();
        } else {
            ctrl_.down = true;
            ctrl_.detector.stop();
        }
    };
    hooks.recover_controller = [this] { controller_takeover(); };
    if (ha_) {
        hooks.partition_controller = [this](sim::Time duration) {
            ++ctrl_partitions_;
            ha_->partition(duration);
        };
    }
    chaos_ = fault::route_plan(
        runtime_, effective_plan(sc_),
        [this](std::size_t d) { return runtime_.owner_of(d); }, hooks,
        cloud_shard_);
}

// ---------------------------------------------------------------------
// Device side
// ---------------------------------------------------------------------

void
ShardedScenarioEngine::device_tick(DeviceActor& a)
{
    if (!a.dev.alive())
        return;
    if (ctrl_.rover) {
        // Rovers burn motion power only while a leg's drive is under
        // way (one grace second past arrival, mirroring the legacy
        // tick); a rover parked on a sense retry or a finished course
        // idles its drivetrain.
        if (a.job_done_at < 0 &&
            a.sim->now() <= a.moving_until + sim::kSecond)
            a.dev.account_motion(1.0);
    } else {
        // Drones hover (full motion power) for the whole mission.
        a.dev.account_motion(1.0);
    }
    a.dev.account_idle(1.0);
    double busy = a.dev.executor().busy_seconds();
    a.dev.account_compute(busy - a.compute_settled);
    a.compute_settled = busy;
    std::uint64_t delta = a.radio_bytes - a.radio_settled;
    a.radio_settled = a.radio_bytes;
    a.dev.account_radio(delta);
    if (a.dev.battery().depleted()) {
        a.dev.set_failed(true);  // Heartbeats stop; detector reacts.
        return;
    }
    const std::size_t d = a.id;
    // The heartbeat piggybacks the device's offload progress, which is
    // all the controller may checkpoint — it cannot peek across shards.
    const std::uint32_t inflight =
        static_cast<std::uint32_t>(a.pending.size());
    const std::uint64_t started = a.frames;
    // Rovers piggyback their finished flag on the beat: a completion
    // note lost to a dead controller is re-announced every second, so
    // the goal roster converges once a controller is back.
    const bool finished = ctrl_.rover && a.job_done_at >= 0;
    a.ctrl_up->transfer(kCtrlMsgBytes,
                        sim::InlineFn([this, d, inflight, started, finished] {
                            on_beat(d, inflight, started, finished);
                        }));
    if (ctrl_.rover)
        return;  // No sweep routes to retrace or request.
    sim::Time now = a.sim->now();
    if (a.dev.degraded()) {
        // Controller outage: retrace the last route on-board instead
        // of asking a dead controller for the next sweep (Sec. 4.6).
        if (a.dev.route_done(now))
            a.dev.resume_route_reversed();
        return;
    }
    if (a.dev.route_done(now) &&
        (!a.awaiting_route ||
         now - a.route_requested_at >= 3 * sim::kSecond)) {
        a.awaiting_route = true;
        a.route_requested_at = now;
        a.ctrl_up->transfer(
            kCtrlMsgBytes,
            sim::InlineFn([this, d] { on_route_request(d); }));
    }
}

void
ShardedScenarioEngine::frame_task(DeviceActor& a)
{
    if (a.dev.degraded()) {
        // Degraded mode: keep sensing, buffer the frame on-board and
        // drain it once a controller is reachable again (Sec. 4.6).
        if (a.dev.buffer_frame(pipe_.frame_bytes))
            ++a.frames_buffered;
        return;
    }
    const std::uint64_t frame = ++a.next_frame;
    ++a.frames;
    sim::Time t0 = a.sim->now();
    DeviceActor::PendingFrame p;
    p.t0 = t0;
    p.pos = a.dev.position_at(t0);
    a.pending.emplace(frame, p);
    launch_frame(a, frame);
}

/** Platform-kind dispatch for a just-captured frame (drone or rover). */
void
ShardedScenarioEngine::launch_frame(DeviceActor& a, std::uint64_t frame)
{
    if (opt_.kind == PlatformKind::DistributedEdge) {
        // Everything on-board; only the final result is uplinked.
        double total_work = pipe_.rec_work_ms + pipe_.dedup_work_ms;
        a.dev.executor().submit(
            total_work, [this, ap = &a, frame](double exec_s) {
                auto it = ap->pending.find(frame);
                if (it == ap->pending.end())
                    return;
                it->second.edge_exec_s = exec_s;
                it->second.t1_edge = ap->sim->now();
                offload(*ap, frame, pipe_.result_bytes, 0);
            });
        return;
    }
    if (hivemind()) {
        // On-board pre-filter, then the reduced candidate stream.
        double pre_work = pipe_.rec_work_ms * 0.10;
        a.dev.executor().submit(
            pre_work, [this, ap = &a, frame](double pre_exec_s) {
                auto it = ap->pending.find(frame);
                if (it == ap->pending.end())
                    return;
                it->second.edge_exec_s = pre_exec_s;
                double raw = static_cast<double>(pipe_.frame_bytes);
                double reduced = 4.0 * 1024.0 * 1024.0 + 0.02 * raw;
                offload(*ap, frame,
                        static_cast<std::uint64_t>(std::min(raw, reduced)),
                        0);
            });
        return;
    }
    // Centralized (FaaS or IaaS): full frame uplink.
    offload(a, frame, pipe_.frame_bytes, 0);
}

// ---------------------------------------------------------------------
// Rover leg state machine (owner shards)
// ---------------------------------------------------------------------

/**
 * Start (or resume) the current leg: drive to the next panel / cell,
 * then sense. A finished course announces itself over the control
 * plane and keeps re-announcing via the heartbeat flag.
 */
void
ShardedScenarioEngine::rover_begin_leg(DeviceActor& a)
{
    if (!a.dev.alive() || a.job_done_at >= 0)
        return;
    if (a.rover_leg >= a.legs.size()) {
        a.job_done_at = a.sim->now();
        a.job_latency_s = sim::to_seconds(a.job_done_at);
        const std::size_t d = a.id;
        a.ctrl_up->transfer(kCtrlMsgBytes,
                            sim::InlineFn([this, d] { on_rover_done(d); }));
        return;
    }
    const double dist = a.legs[a.rover_leg];
    const sim::Time drive =
        sim::from_seconds(dist / a.dev.spec().speed_mps);
    a.moving_until = a.sim->now() + drive;
    const std::uint64_t gen = a.rover_gen;
    a.sim->schedule_in(drive, [this, ap = &a, gen] {
        if (gen != ap->rover_gen)
            return;  // Crashed (and maybe rejoined) mid-drive.
        rover_sense(*ap);
    });
}

/**
 * Photograph the panel / sense the walls and push the frame through
 * the offload pipeline. The rover holds position until the processed
 * instructions come back (on_result advances the leg).
 */
void
ShardedScenarioEngine::rover_sense(DeviceActor& a)
{
    if (!a.dev.alive() || a.job_done_at >= 0)
        return;
    if (a.dev.degraded()) {
        // No controller to route instructions: park (motion accounting
        // stopped by the moving_until gate) and re-sense after a beat.
        rover_retry(a);
        return;
    }
    const std::uint64_t frame = ++a.next_frame;
    ++a.frames;
    sim::Time t0 = a.sim->now();
    DeviceActor::PendingFrame p;
    p.t0 = t0;
    p.pos = a.dev.position_at(t0);
    p.gen = a.rover_gen;
    a.pending.emplace(frame, p);
    launch_frame(a, frame);
}

/**
 * The instructions never arrived (open breaker, blackout, degraded
 * window): retry the sense — not the drive — after a 1 s dwell. The
 * rover is already parked at the panel, so no motion energy is booked
 * while it waits (moving_until stays in the past).
 */
void
ShardedScenarioEngine::rover_retry(DeviceActor& a)
{
    if (a.job_done_at >= 0)
        return;
    const std::uint64_t gen = a.rover_gen;
    a.sim->schedule_in(sim::kSecond, [this, ap = &a, gen] {
        if (gen != ap->rover_gen)
            return;
        rover_sense(*ap);
    });
}

void
ShardedScenarioEngine::offload(DeviceActor& a, std::uint64_t frame,
                               std::uint64_t bytes, int attempt)
{
    if (a.retrier.circuit_open(0, a.sim->now())) {
        // Breaker open: fail fast; the device sits out its probation
        // window instead of queueing radio traffic (Sec. 4.6).
        ++a.abandoned;
        a.pending.erase(frame);
        if (ctrl_.rover)
            rover_retry(a);  // The leg is not done; re-sense later.
        return;
    }
    a.radio_bytes += bytes;  // Radio energy per offload attempt.
    air_attempt(a, frame, bytes, attempt,
                cloud_.cfg.net.max_retransmits);
}

void
ShardedScenarioEngine::air_attempt(DeviceActor& a, std::uint64_t frame,
                                   std::uint64_t bytes, int attempt,
                                   int tries_left)
{
    const double loss = a.loss_now();
    const sim::Time timeout = cloud_.cfg.net.retransmit_timeout;
    if (loss >= 1.0) {
        // Radio blackout: nothing reaches the air; each retry burns a
        // retransmit timeout until the budget is gone.
        if (tries_left <= 0) {
            ++a.wireless_drops;
            air_failed(a, frame, bytes, attempt);
            return;
        }
        ++a.retransmits;
        a.sim->schedule_in(timeout, [this, ap = &a, frame, bytes, attempt,
                                     tries_left] {
            air_attempt(*ap, frame, bytes, attempt, tries_left - 1);
        });
        return;
    }
    const bool corrupt = loss > 0.0 && a.rng.chance(loss);
    CloudTier* cloud = &cloud_;
    const std::size_t d = a.id;
    if (corrupt) {
        // The transfer still occupies the serializer and the air — it
        // arrives as garbage, counted cloud-side, and is retried one
        // timeout after that arrival (the sender learns of the loss no
        // earlier). The final attempt drops like any other lossy one.
        sim::Time arrival = a.data_up->transfer(
            bytes, sim::InlineFn([cloud] { ++cloud->corrupt_frames; }));
        if (tries_left <= 0) {
            ++a.wireless_drops;
            air_failed(a, frame, bytes, attempt);
            return;
        }
        ++a.retransmits;
        a.sim->schedule_at(arrival + timeout,
                           [this, ap = &a, frame, bytes, attempt,
                            tries_left] {
                               air_attempt(*ap, frame, bytes, attempt,
                                           tries_left - 1);
                           });
        return;
    }
    a.retrier.record_success(0);
    a.data_up->transfer(bytes, sim::InlineFn([this, d, frame, bytes] {
                            cloud_ingress(d, frame, bytes);
                        }));
}

void
ShardedScenarioEngine::air_failed(DeviceActor& a, std::uint64_t frame,
                                  std::uint64_t bytes, int attempt)
{
    sim::Time now = a.sim->now();
    if (a.retrier.record_failure(0, now))
        ++a.breaker_opens;
    if (attempt + 1 >= a.retrier.config().max_attempts ||
        a.retrier.circuit_open(0, now)) {
        ++a.abandoned;
        a.pending.erase(frame);
        if (ctrl_.rover)
            rover_retry(a);  // The leg is not done; re-sense later.
        return;
    }
    ++a.offload_retries;
    a.sim->schedule_in(a.retrier.backoff(attempt, a.rng),
                       [this, ap = &a, frame, bytes, attempt] {
                           offload(*ap, frame, bytes, attempt + 1);
                       });
}

void
ShardedScenarioEngine::on_result(DeviceActor& a, std::uint64_t frame,
                                 const StageShares& cloud_shares,
                                 sim::Time t1, sim::Time cloud_done,
                                 bool edge_ack)
{
    auto it = a.pending.find(frame);
    if (it == a.pending.end())
        return;
    DeviceActor::PendingFrame p = it->second;
    a.pending.erase(it);

    StageShares r;
    if (edge_ack) {
        // DistributedEdge: t1 is the result's arrival at the cloud.
        a.radio_bytes += kCtrlMsgBytes;  // The ack burns radio too.
        r.total = sim::to_seconds(t1 - p.t0);
        r.network = sim::to_seconds(t1 - p.t1_edge);
        r.exec = p.edge_exec_s;
        double q = sim::to_seconds(p.t1_edge - p.t0) - p.edge_exec_s;
        r.mgmt = q > 0.0 ? q : 0.0;
    } else {
        sim::Time t3 = a.sim->now();
        a.radio_bytes += pipe_.result_bytes;  // Downlink radio energy.
        r.total = sim::to_seconds(t3 - p.t0);
        r.network = sim::to_seconds(t1 - p.t0) - p.edge_exec_s +
            sim::to_seconds(t3 - cloud_done);
        if (r.network < 0.0)
            r.network = 0.0;
        r.mgmt = cloud_shares.mgmt;
        r.data = cloud_shares.data;
        r.exec = cloud_shares.exec + p.edge_exec_s;
    }
    a.task_latency.add(r.total);
    a.network_s.add(r.network);
    a.mgmt_s.add(r.mgmt);
    a.data_s.add(r.data);
    a.exec_s.add(r.exec);
    ++a.completions;
    if (a.dev.degraded())
        ++a.outage_completions;  // Outage goodput: landed while dark.

    const std::size_t d = a.id;
    if (ctrl_.rover) {
        // Rover instructions processed: report leg progress upstream
        // and advance — unless the frame predates a crash/rejoin, in
        // which case the rejoin's re-drive owns the leg now.
        a.ctrl_up->transfer(kCtrlMsgBytes, sim::InlineFn([this, d] {
                                on_rover_progress(d);
                            }));
        if (p.gen == a.rover_gen && a.dev.alive() && a.job_done_at < 0) {
            ++a.rover_leg;
            rover_begin_leg(a);
        }
        return;
    }
    const geo::Vec2 pos = p.pos;
    const sim::Time t0 = p.t0;
    a.ctrl_up->transfer(kCtrlMsgBytes, sim::InlineFn([this, d, pos, t0] {
                            on_report(d, pos, t0);
                        }));
}

void
ShardedScenarioEngine::drain_backlog(DeviceActor& a)
{
    edge::Device::DrainedFrames backlog = a.dev.drain_buffered();
    if (backlog.frames == 0)
        return;
    if (!a.dev.alive()) {
        // The buffer already gave the frames up; the device died before
        // the drain could start, so the ledger books them as lost.
        a.drain_lost += backlog.frames;
        return;
    }
    // Drain the buffered backlog through the pre-filtered uplink (the
    // on-board filter kept running while buffering), with the same
    // retransmit budget as any other offload.
    double raw = static_cast<double>(pipe_.frame_bytes);
    double reduced = std::min(raw, 4.0 * 1024.0 * 1024.0 + 0.02 * raw);
    const std::uint64_t bytes = static_cast<std::uint64_t>(
        reduced * static_cast<double>(backlog.frames));
    a.radio_bytes += bytes;
    a.drain_inflight += backlog.frames;
    drain_attempt(a, bytes, backlog.frames,
                  cloud_.cfg.net.max_retransmits);
}

void
ShardedScenarioEngine::drain_attempt(DeviceActor& a, std::uint64_t bytes,
                                     std::uint64_t frames, int tries_left)
{
    const double loss = a.loss_now();
    const sim::Time timeout = cloud_.cfg.net.retransmit_timeout;
    if (loss > 0.0 && (loss >= 1.0 || a.rng.chance(loss))) {
        if (tries_left <= 0) {
            ++a.wireless_drops;  // Backlog lost on the air.
            a.drain_lost += frames;
            a.drain_inflight -= frames;
            return;
        }
        ++a.retransmits;
        a.sim->schedule_in(timeout,
                           [this, ap = &a, bytes, frames, tries_left] {
                               drain_attempt(*ap, bytes, frames,
                                             tries_left - 1);
                           });
        return;
    }
    // A non-corrupt transfer always arrives, so the drain is settled
    // here on the owner shard; the cloud side only meters the bytes.
    a.buffered_drained += frames;
    a.drain_inflight -= frames;
    a.data_up->transfer(bytes, sim::InlineFn([this, bytes] {
                            cloud_.air_meter.add(
                                cloud_.sim->now(),
                                static_cast<double>(bytes));
                        }));
}

// ---------------------------------------------------------------------
// Cloud side
// ---------------------------------------------------------------------

void
ShardedScenarioEngine::cloud_ingress(std::size_t device,
                                     std::uint64_t frame,
                                     std::uint64_t bytes)
{
    cloud_.air_meter.add(cloud_.sim->now(), static_cast<double>(bytes));
    const std::size_t server = device % cloud_.cfg.servers;
    if (opt_.kind == PlatformKind::DistributedEdge) {
        // The on-board result only needs ingesting; the ack carries
        // its cloud arrival time back for the latency books.
        cloud_.topo->send_uplink_wired(
            device, server, bytes, [this, device, frame](sim::Time t2) {
                send_result(device, frame, {}, t2, t2, true);
            });
        return;
    }
    cloud_.topo->send_uplink_wired(
        device, server, bytes, [this, device, frame, server](sim::Time t1) {
            invoke_stages(device, frame, server, t1);
        });
}

void
ShardedScenarioEngine::invoke_stages(std::size_t device,
                                     std::uint64_t frame,
                                     std::size_t server, sim::Time t1)
{
    cloud::InvokeRequest rec;
    rec.app = pipe_.rec_app;
    rec.work_core_ms = pipe_.rec_work_ms;
    rec.memory_mb = pipe_.memory_mb;
    rec.input_bytes = pipe_.inter_bytes;
    rec.output_bytes = pipe_.inter_bytes;
    rec.recovery = sc_.recovery;
    const int par = hivemind() ? pipe_.parallelism : 1;
    cloud_.invoke(rec, par, [this, device, frame, server, t1,
                             par](const CloudResult& r1) {
        if (pipe_.dedup_work_ms <= 0.0) {
            StageShares s;
            s.mgmt = r1.mgmt_s;
            s.data = r1.data_s;
            s.exec = r1.exec_s;
            send_result(device, frame, s, t1, r1.done, false);
            return;
        }
        // Dedup child: HiveMind co-locates it with its parent so the
        // hand-off is in-memory (Sec. 4.3).
        cloud::InvokeRequest dd;
        dd.app = pipe_.dedup_app;
        dd.work_core_ms = pipe_.dedup_work_ms;
        dd.memory_mb = pipe_.memory_mb;
        dd.input_bytes = pipe_.inter_bytes;
        dd.output_bytes = pipe_.result_bytes;
        dd.recovery = sc_.recovery;
        if (opt_.smart_scheduler && r1.server != cloud::kNoServer) {
            dd.preferred_server = r1.server;
            dd.colocate_with_parent = true;
        }
        cloud_.invoke(dd, par,
                      [this, device, frame, t1, r1](const CloudResult& r2) {
                          StageShares s;
                          s.mgmt = r1.mgmt_s + r2.mgmt_s;
                          s.data = r1.data_s + r2.data_s;
                          s.exec = r1.exec_s + r2.exec_s;
                          send_result(device, frame, s, t1, r2.done, false);
                      });
        (void)server;
    });
}

void
ShardedScenarioEngine::send_result(std::size_t device, std::uint64_t frame,
                                   const StageShares& shares, sim::Time t1,
                                   sim::Time cloud_done, bool edge_ack)
{
    const std::size_t server = device % cloud_.cfg.servers;
    const std::uint64_t bytes =
        edge_ack ? kCtrlMsgBytes : pipe_.result_bytes;
    cloud_.topo->send_downlink_wired(
        server, device,
        bytes, [this, device, frame, shares, t1, cloud_done, edge_ack,
                bytes](sim::Time) {
            // Every downlink burns air — the 64-byte DistributedEdge
            // ack included (it hits the device radio ledger too).
            cloud_.air_meter.add(cloud_.sim->now(),
                                 static_cast<double>(bytes));
            DeviceActor* a = devices_[device].get();
            data_down_[device].transfer(
                bytes, sim::InlineFn([this, a, frame, shares, t1, cloud_done,
                                      edge_ack] {
                    on_result(*a, frame, shares, t1, cloud_done, edge_ack);
                }));
        });
}

// ---------------------------------------------------------------------
// Controller side
// ---------------------------------------------------------------------

void
ShardedScenarioEngine::on_beat(std::size_t device, std::uint32_t inflight,
                               std::uint64_t started, bool rover_finished)
{
    if (ctrl_.down) {
        ++ctrl_.dropped_msgs;
        return;
    }
    ctrl_.alive_known[device] = 1;
    ctrl_.inflight_known[device] = inflight;
    ctrl_.started_known[device] = started;
    if (rover_finished && ctrl_.rover)
        ctrl_.rover_done[device] = 1;
    ctrl_.detector.beat(device);
}

void
ShardedScenarioEngine::on_rover_progress(std::size_t device)
{
    if (ctrl_.down) {
        ++ctrl_.dropped_msgs;
        return;
    }
    if (ctrl_.done)
        return;
    ++ctrl_.reports;
    ctrl_.learning.record(device);  // Each completed leg is feedback.
}

void
ShardedScenarioEngine::on_rover_done(std::size_t device)
{
    if (ctrl_.down) {
        // Lost to the outage; the heartbeat flag re-announces it.
        ++ctrl_.dropped_msgs;
        return;
    }
    ctrl_.rover_done[device] = 1;
}

void
ShardedScenarioEngine::on_report(std::size_t device, geo::Vec2 pos,
                                 sim::Time t0)
{
    if (ctrl_.down) {
        ++ctrl_.dropped_msgs;
        return;
    }
    if (ctrl_.done)
        return;
    ++ctrl_.reports;
    const edge::DeviceSpec& spec = devices_[device]->dev.spec();
    std::vector<std::size_t> visible;
    if (ctrl_.items) {
        visible = ctrl_.items->items_in_view(pos, spec.footprint_w,
                                             spec.footprint_h);
    } else {
        // Visibility is judged at capture time: the crowd is evaluated
        // where it stood when the frame was taken, not at report time
        // (matches the legacy harness).
        visible = ctrl_.crowd->people_in_view(t0, pos,
                                              spec.footprint_w,
                                              spec.footprint_h);
    }
    const apps::DetectionModel& model = ctrl_.learning.model(device);
    for (std::size_t target : visible) {
        if (ctrl_.rng.chance(model.p_correct())) {
            if (ctrl_.items)
                ctrl_.items->mark_found(target);
            else
                ctrl_.crowd->mark_counted(target);
            ctrl_.learning.record(device);
        }
    }
    ctrl_.learning.record(device);  // Every frame yields feedback.
}

void
ShardedScenarioEngine::on_route_request(std::size_t device)
{
    if (ctrl_.down) {
        ++ctrl_.dropped_msgs;
        return;
    }
    if (ctrl_.done)
        return;
    ctrl_.alive_known[device] = 1;
    if (ctrl_.detector.is_failed(device))
        return;
    if (ctrl_.pass[device] >= sc_.max_passes)
        return;
    if (!ctrl_.balancer.region_of(device))
        return;
    send_route(device);
}

void
ShardedScenarioEngine::send_route(std::size_t device)
{
    if (ctrl_.rover)
        return;  // Rovers carry their own course.
    const edge::DeviceSpec& spec = devices_[device]->dev.spec();
    std::vector<geo::Vec2> route =
        ctrl_.balancer.route_for(device, spec.footprint_w);
    if (route.empty())
        return;
    if (ctrl_.pass[device] % 2 == 1)
        std::reverse(route.begin(), route.end());
    ++ctrl_.pass[device];
    DeviceActor* a = devices_[device].get();
    const std::uint64_t bytes = kCtrlMsgBytes + 16ull * route.size();
    ctrl_down_[device].transfer(
        bytes, sim::InlineFn([a, route = std::move(route)]() mutable {
            if (!a->dev.alive())
                return;  // Dark devices miss their mail.
            a->dev.set_route(std::move(route));
            a->awaiting_route = false;
        }));
}

void
ShardedScenarioEngine::on_device_failed(std::size_t device)
{
    ctrl_.alive_known[device] = 0;
    if (!hivemind() || ctrl_.rover)
        return;  // Rovers own their regions; nothing to repartition.
    // Fig. 10: split the failed device's region among its neighbours
    // and hand the survivors fresh routes.
    for (std::size_t c : ctrl_.balancer.handle_failure(device)) {
        if (ctrl_.alive_known[c])
            send_route(c);
    }
}

void
ShardedScenarioEngine::on_device_recovered(std::size_t device)
{
    ctrl_.alive_known[device] = 1;
    if (!hivemind() || ctrl_.rover)
        return;  // The rejoin hook already re-drives the rover's leg.
    for (std::size_t c : ctrl_.balancer.handle_rejoin(device)) {
        if (ctrl_.alive_known[c])
            send_route(c);
    }
}

void
ShardedScenarioEngine::controller_takeover()
{
    if (!ctrl_.down)
        return;
    ctrl_.down = false;
    ++ctrl_.takeovers;
    // Reconcile the drift the dead controller never processed: rebuild
    // detector state from the last-known roster, repartition devices
    // whose liveness and region disagree, refresh affected routes.
    std::vector<std::size_t> changed;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        ctrl_.detector.reconcile(d, ctrl_.alive_known[d] != 0);
        if (!hivemind() || ctrl_.rover)
            continue;
        if (ctrl_.alive_known[d] && !ctrl_.balancer.region_of(d)) {
            for (std::size_t c : ctrl_.balancer.handle_rejoin(d))
                changed.push_back(c);
        } else if (!ctrl_.alive_known[d] && ctrl_.balancer.region_of(d)) {
            for (std::size_t c : ctrl_.balancer.handle_failure(d))
                changed.push_back(c);
        }
    }
    ctrl_.detector.start();
    for (std::size_t c : changed) {
        if (ctrl_.alive_known[c])
            send_route(c);
    }
}

// ---------------------------------------------------------------------
// Controller HA (checkpointed hot-standby failover, Sec. 4.6)
// ---------------------------------------------------------------------

core::ControllerCheckpoint
ShardedScenarioEngine::make_checkpoint() const
{
    core::ControllerCheckpoint cp;
    const std::size_t n = devices_.size();
    cp.device_failed.reserve(n);
    for (std::size_t d = 0; d < n; ++d)
        cp.device_failed.push_back(ctrl_.detector.is_failed(d) ? 1 : 0);
    cp.partition = ctrl_.balancer.snapshot();
    cp.inflight.assign(ctrl_.inflight_known.begin(),
                       ctrl_.inflight_known.end());
    cp.tasks_started = 0;
    for (std::uint64_t s : ctrl_.started_known)
        cp.tasks_started += s;
    return cp;
}

core::ReconcileReport
ShardedScenarioEngine::reconcile_after_takeover(
    const core::ControllerCheckpoint& cp)
{
    core::ReconcileReport rep;
    // 1. Replay: the standby's world is the checkpointed partition.
    if (!cp.partition.assignments.empty())
        ctrl_.balancer.restore(cp.partition);
    // 2. Re-register every device and repartition the drift between
    //    checkpoint time and now. Liveness is the controller's last
    //    heard-from roster — the new primary cannot peek across shards
    //    any more than the real one could peek across the air.
    std::vector<std::size_t> changed;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        ++rep.devices_reregistered;
        const bool live = ctrl_.alive_known[d] != 0;
        ctrl_.detector.reconcile(d, live);
        if (ctrl_.rover)
            continue;  // No region drift to repartition for rovers.
        if (live && !ctrl_.balancer.region_of(d)) {
            for (std::size_t c : ctrl_.balancer.handle_rejoin(d))
                changed.push_back(c);
        } else if (!live && ctrl_.balancer.region_of(d)) {
            for (std::size_t c : ctrl_.balancer.handle_failure(d))
                changed.push_back(c);
        }
    }
    rep.regions_repartitioned = changed.size();
    // 3. Redrive: offloads in flight at the checkpoint plus everything
    //    started since its watermark go through the epoch-redrive path.
    std::uint64_t inflight_total = 0;
    for (std::uint32_t c : cp.inflight)
        inflight_total += c;
    std::uint64_t started_now = 0;
    for (std::uint64_t s : ctrl_.started_known)
        started_now += s;
    const std::uint64_t delta = started_now >= cp.tasks_started
        ? started_now - cp.tasks_started
        : 0;
    rep.offloads_redriven = static_cast<std::size_t>(inflight_total + delta);
    // Kick the FaaS queues on the cloud shard (a small RPC, like the
    // redrive control traffic it models).
    ckpt_up_->transfer(kCtrlMsgBytes,
                       sim::InlineFn([this] { cloud_.faas->poke(); }));
    // Refreshed routes for devices whose regions moved.
    for (std::size_t d : changed) {
        if (ctrl_.alive_known[d])
            send_route(d);
    }
    return rep;
}

void
ShardedScenarioEngine::availability_changed(bool up)
{
    ctrl_.down = !up;
    if (!up) {
        // The controller-side detector is blind while no controller
        // runs; reconciliation rebuilds its state on takeover. Devices
        // learn of the outage one control-downlink hop later and drop
        // into degraded local autonomy.
        ctrl_.detector.stop();
        for (std::size_t d = 0; d < devices_.size(); ++d) {
            DeviceActor* a = devices_[d].get();
            ctrl_down_[d].transfer(kCtrlMsgBytes, sim::InlineFn([a] {
                                       if (a->dev.alive())
                                           a->dev.set_degraded(true);
                                   }));
        }
        return;
    }
    ctrl_.detector.start();
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        DeviceActor* a = devices_[d].get();
        ctrl_down_[d].transfer(kCtrlMsgBytes, sim::InlineFn([this, a] {
                                   a->dev.set_degraded(false);
                                   drain_backlog(*a);
                               }));
    }
}

void
ShardedScenarioEngine::controller_tick()
{
    if (ctrl_.done)
        return;
    sim::Time now = ctrl_.sim->now();
    if (!ctrl_.down) {
        if (now - ctrl_.last_retrain >= sc_.retrain_interval) {
            ctrl_.learning.retrain();
            ctrl_.last_retrain = now;
        }
        if (ctrl_.goal_fraction() >= 1.0) {
            finish(true);
            return;
        }
    }
    bool all_dead = true;
    bool passes_exhausted = true;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (ctrl_.alive_known[d]) {
            all_dead = false;
            if (ctrl_.pass[d] < sc_.max_passes)
                passes_exhausted = false;
        }
    }
    ctrl_.dead_ticks = all_dead ? ctrl_.dead_ticks + 1 : 0;
    // An all-dead roster makes passes_exhausted vacuously true; that
    // stop must also wait out the dwell, not sneak past it.
    if (now >= sc_.time_cap || ctrl_.dead_ticks >= kFleetDeadDwellTicks ||
        (!all_dead && passes_exhausted && ctrl_.reports > 0)) {
        finish(false);
    }
}

void
ShardedScenarioEngine::finish(bool goal)
{
    ctrl_.done = true;
    ctrl_.goal = goal;
    ctrl_.completion = ctrl_.sim->now();
    ctrl_.final_goal_fraction = ctrl_.goal_fraction();
    ctrl_.detector.stop();
    if (ha_)
        ha_->stop();
}

// ---------------------------------------------------------------------
// Run + results
// ---------------------------------------------------------------------

ShardedScenarioResult
ShardedScenarioEngine::run()
{
    const auto wall0 = std::chrono::steady_clock::now();
    // Run in exact 1-second slices and test the stop flag only at
    // slice boundaries. Under adaptive per-pair lookahead the epoch
    // sequence is NOT invariant in the shard count, so a between-epoch
    // stop predicate would cut different runs at different points; a
    // boundary-aligned stop is shard-agnostic because every shard
    // runs to the same simulated instant and the first boundary at
    // which `done` holds is a property of the simulation state alone.
    const sim::Time end = sc_.time_cap + 10 * sim::kSecond;
    sim::SwarmRuntime::Report report;
    for (sim::Time t = sim::kSecond;; t += sim::kSecond) {
        const sim::Time slice = t < end ? t : end;
        const sim::SwarmRuntime::Report r = runtime_.run_until(slice);
        report.epochs += r.epochs;
        report.executed += r.executed;
        report.forwarded += r.forwarded;
        report.horizon = r.horizon;
        if (ctrl_.done || slice == end || runtime_.pending() == 0)
            break;
    }
    const auto wall1 = std::chrono::steady_clock::now();
    if (!ctrl_.done)
        finish(ctrl_.goal_fraction() >= 1.0);

    ShardedScenarioResult result;
    result.metrics = collect_metrics();
    result.checksum = checksum();
    result.audit = build_audit(result.metrics);
    result.audit.checksum = result.checksum;
    result.epochs = report.epochs;
    result.forwarded = report.forwarded;
    result.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
    result.shards = runtime_.shards();
    result.chaos = chaos_;
    return result;
}

RunMetrics
ShardedScenarioEngine::collect_metrics()
{
    RunMetrics m;
    for (const auto& ap : devices_) {
        const DeviceActor& a = *ap;
        m.task_latency_s.merge(a.task_latency);
        m.network_s.merge(a.network_s);
        m.mgmt_s.merge(a.mgmt_s);
        m.data_s.merge(a.data_s);
        m.exec_s.merge(a.exec_s);
        m.battery_pct.add(a.dev.battery().consumed_percent());
        if (ctrl_.rover && a.job_done_at >= 0)
            m.job_latency_s.add(a.job_latency_s);
        m.tasks_shed += a.dev.executor().shed();
        m.radio_bytes_total += a.radio_bytes;
        m.tasks_completed += a.completions;
        m.recovery.offload_retries += a.offload_retries;
        m.recovery.offloads_abandoned += a.abandoned;
        m.recovery.circuit_open_events += a.breaker_opens;
        m.recovery.frames_dropped += a.wireless_drops;
        m.recovery.wireless_retransmissions += a.retransmits;
        m.recovery.frames_buffered_degraded += a.frames_buffered;
        m.recovery.buffered_frames_drained += a.buffered_drained;
        m.recovery.outage_tasks_completed += a.outage_completions;
    }
    sim::Summary bw = cloud_.air_meter.rate_summary(ctrl_.completion);
    for (double r : bw.samples())
        m.bandwidth_MBps.add(r / 1e6);
    m.cold_starts = cloud_.faas->cold_starts();
    m.warm_starts = cloud_.faas->warm_starts();
    m.faults = cloud_.faas->faults();
    if (cloud_.scheduler)
        m.respawns = cloud_.scheduler->respawns();
    m.cloud_rpc_cpu_s = cloud_.topo->cloud_rpc_cpu_seconds();
    m.completed = ctrl_.goal;
    m.goal_fraction = ctrl_.final_goal_fraction;
    m.completion_s = sim::to_seconds(ctrl_.completion);
    m.detect_correct_pct = 100.0 * ctrl_.learning.swarm_p_correct();
    m.detect_fn_pct = 100.0 * ctrl_.learning.swarm_p_false_negative();
    m.detect_fp_pct = 100.0 * ctrl_.learning.swarm_p_false_positive();
    m.recovery.device_crashes = device_crashes_;
    m.recovery.device_rejoins = device_rejoins_;
    m.recovery.server_crashes = server_crashes_;
    m.recovery.datastore_outages = datastore_outages_;
    m.recovery.partitions = partitions_;
    // Fire-time count (the legacy engine's semantics), not how many
    // windows the router accepted: a burst past the stop point never
    // opened.
    m.recovery.link_burst_windows = link_bursts_fired_;
    m.recovery.controller_crashes = ctrl_.crashes;
    m.recovery.controller_partitions = ctrl_partitions_;
    m.recovery.controller_failovers = ctrl_.takeovers;
    if (ha_) {
        m.recovery.controller_mttd_s = ha_->detect_s();
        m.recovery.controller_mttr_s = ha_->recover_s();
        m.recovery.checkpoint_age_s = ha_->checkpoint_age_s();
        m.recovery.checkpoints_taken = ha_->checkpoints_taken();
        m.recovery.checkpoint_bytes = ha_->checkpoint_bytes();
        m.recovery.tasks_redriven_on_failover = ha_->offloads_redriven();
        m.recovery.controller_outage_s = ha_->unavailable_seconds();
        m.recovery.controller_failovers = ha_->failovers();
    }
    return m;
}

fault::RunAudit
ShardedScenarioEngine::build_audit(const RunMetrics& m) const
{
    fault::RunAudit audit;
    audit.engine = "sharded";
    audit.shards = runtime_.shards();
    audit.seed = cloud_.cfg.seed;
    audit.devices = devices_.size();
    audit.servers = cloud_.cfg.servers;
    audit.horizon = sc_.time_cap;
    audit.completion = ctrl_.completion;
    // The stop predicate is sampled at epoch boundaries and the finish
    // lands on a 1 Hz controller tick, so events within one second of
    // the stop may or may not have fired.
    audit.completion_margin = sim::kSecond;
    audit.completed = ctrl_.goal;
    audit.ha_enabled = ha_ != nullptr;
    audit.ha_standbys = sc_.ha.standbys;
    audit.checkpoint_interval_s = sim::to_seconds(sc_.ha.checkpoint_interval);
    audit.breaker_cooldown_s = sim::to_seconds(sc_.retry.breaker_cooldown);
    audit.configured_loss = cloud_.cfg.net.wireless_loss;
    audit.plan = effective_plan(sc_);
    audit.recovery = m.recovery;
    for (const auto& ap : devices_) {
        const DeviceActor& a = *ap;
        audit.frames.generated += a.frames;
        audit.frames.delivered += a.completions;
        audit.frames.dropped += a.abandoned;
        audit.frames.inflight_end += a.pending.size();
        audit.frames.buffered += a.frames_buffered;
        audit.frames.dropped_onboard += a.dev.frames_dropped_onboard();
        audit.frames.drained += a.buffered_drained;
        audit.frames.drain_lost += a.drain_lost;
        audit.frames.drain_inflight_end += a.drain_inflight;
        audit.frames.buffered_end += a.dev.buffered_frames();
        fault::DeviceEndState end;
        end.alive = a.dev.alive();
        end.battery_dead = a.dev.battery().depleted();
        end.breaker_open = a.retrier.circuit_open(0, ctrl_.completion);
        end.buffered = a.dev.buffered_frames();
        audit.device_end.push_back(end);
    }
    return audit;
}

std::uint64_t
ShardedScenarioEngine::checksum() const
{
    // Device-id order, then controller and cloud digests: every key is
    // shard-agnostic, so this is the quantity the invariance tests
    // compare across shard counts.
    std::uint64_t cs = fnv::kBasis;
    for (const auto& ap : devices_) {
        const DeviceActor& a = *ap;
        mix(cs, a.frames);
        mix(cs, a.completions);
        mix(cs, a.wireless_drops);
        mix(cs, a.retransmits);
        mix(cs, a.offload_retries);
        mix(cs, a.abandoned);
        mix(cs, a.breaker_opens);
        mix(cs, a.radio_bytes);
        mix(cs, a.frames_buffered);
        mix(cs, a.buffered_drained);
        mix(cs, a.drain_lost);
        mix(cs, a.drain_inflight);
        mix(cs, a.outage_completions);
        mix(cs, a.dev.buffered_frames());
        mix(cs, a.dev.frames_dropped_onboard());
        mix(cs, a.dev.degraded() ? 1 : 0);
        mix(cs, a.dev.alive() ? 1 : 0);
        mix(cs, bits(a.dev.battery().consumed_percent()));
        mix(cs, bits(a.task_latency.sum()));
        mix(cs, bits(a.network_s.sum()));
        mix(cs, bits(a.exec_s.sum()));
        geo::Vec2 pos = a.dev.position_at(ctrl_.completion);
        mix(cs, bits(pos.x));
        mix(cs, bits(pos.y));
        mix(cs, static_cast<std::uint64_t>(
                    ctrl_.pass[a.id] >= 0 ? ctrl_.pass[a.id] : 0));
        if (ctrl_.rover) {
            mix(cs, static_cast<std::uint64_t>(a.rover_leg));
            mix(cs, a.job_done_at >= 0 ? 1u : 0u);
            mix(cs, bits(a.job_latency_s));
            mix(cs, a.rover_gen);
        }
    }
    mix(cs, ctrl_.reports);
    mix(cs, ctrl_.dropped_msgs);
    mix(cs, ctrl_.takeovers);
    mix(cs, ctrl_.crashes);
    mix(cs, ctrl_partitions_);
    mix(cs, link_bursts_fired_);
    if (ha_) {
        // Every HA quantity below is event-driven (no wall-time
        // reads), so it is safe under the invariance contract.
        mix(cs, ha_->failovers());
        mix(cs, ha_->checkpoints_taken());
        mix(cs, ha_->checkpoint_bytes());
        mix(cs, ha_->offloads_redriven());
        mix(cs, bits(ha_->detect_s().sum()));
        mix(cs, bits(ha_->recover_s().sum()));
        mix(cs, bits(ha_->checkpoint_age_s().sum()));
        mix(cs, ckpt_up_->bytes_total());
        mix(cs, ckpt_down_->bytes_total());
        mix(cs, ckpt_writes_lost_);
    }
    mix(cs, ctrl_.world_digest());
    mix(cs, bits(ctrl_.learning.swarm_p_correct()));
    mix(cs, ctrl_.detector.failed_count());
    mix(cs, cloud_.corrupt_frames);
    mix(cs, cloud_.faas->cold_starts());
    mix(cs, cloud_.faas->warm_starts());
    mix(cs, cloud_.faas->faults());
    mix(cs, bits(cloud_.topo->cloud_rpc_cpu_seconds()));
    mix(cs, bits(sim::to_seconds(ctrl_.completion)));
    return cs;
}

}  // namespace

bool
scenario_shardable(const ScenarioConfig& scenario)
{
    // All four paper scenario kinds run on the sharded engine; the
    // predicate survives as the dispatch seam (and for any future kind
    // that lands legacy-first).
    (void)scenario;
    return true;
}

ShardedScenarioResult
run_scenario_sharded(const ScenarioConfig& scenario,
                     const PlatformOptions& options,
                     const DeploymentConfig& deployment_config,
                     int runtime_shards)
{
    ShardedScenarioEngine engine(scenario, options, deployment_config,
                                 runtime_shards < 1 ? 1 : runtime_shards);
    return engine.run();
}

}  // namespace hivemind::platform

#pragma once

/**
 * @file
 * Deterministic random-number generation for the simulator.
 *
 * Every source of randomness in HiveMind flows through an Rng seeded
 * explicitly by the experiment harness, so that any run is exactly
 * reproducible. The distributions here (lognormal service times,
 * exponential arrivals, bounded pareto tails) are the standard
 * building blocks for the queueing-network models the paper's
 * simulator is based on (Sec. 5.6).
 */

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace hivemind::sim {

/** Seeded pseudo-random generator with convenience distributions. */
class Rng
{
  public:
    /** Construct with an explicit seed; identical seeds replay runs. */
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Exponential variate with the given mean (not rate). */
    double exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /** Normal variate. */
    double normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /**
     * Lognormal variate parameterized by its median and the sigma of
     * the underlying normal. Service times in serverless stacks are
     * well described by lognormals (heavy right tail).
     */
    double lognormal_median(double median, double sigma)
    {
        return std::lognormal_distribution<double>(std::log(median),
                                                   sigma)(engine_);
    }

    /**
     * Bounded Pareto variate on [lo, hi] with shape @p alpha; used for
     * the occasional extreme straggler.
     */
    double bounded_pareto(double lo, double hi, double alpha);

    /** Pick an index in [0, n) uniformly. */
    std::size_t pick(std::size_t n)
    {
        return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniform_int(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (stable given call order). */
    Rng fork() { return Rng(engine_()); }

    /** Access the raw engine (for std::shuffle-style use). */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace hivemind::sim

#include "sim/simulator.hpp"

#include <utility>

namespace hivemind::sim {

EventId
Simulator::schedule_at(Time when, std::function<void()> fn)
{
    if (when < now_)
        when = now_;
    EventId id = next_id_++;
    queue_.push(Entry{when, next_seq_++, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
}

bool
Simulator::cancel(EventId id)
{
    auto it = callbacks_.find(id);
    if (it == callbacks_.end())
        return false;
    callbacks_.erase(it);
    ++cancelled_count_;
    return true;
}

bool
Simulator::pop_live(Entry& out)
{
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        if (callbacks_.find(e.id) == callbacks_.end()) {
            // Cancelled event: drop its tombstone.
            --cancelled_count_;
            continue;
        }
        out = e;
        return true;
    }
    return false;
}

std::uint64_t
Simulator::run_until(Time until)
{
    stopped_ = false;
    std::uint64_t n = 0;
    Entry e;
    while (!stopped_ && pop_live(e)) {
        if (e.when > until) {
            // Requeue: caller may resume later.
            queue_.push(e);
            break;
        }
        now_ = e.when;
        auto it = callbacks_.find(e.id);
        auto fn = std::move(it->second);
        callbacks_.erase(it);
        if (fn)
            fn();
        ++executed_;
        ++n;
    }
    return n;
}

bool
Simulator::step()
{
    Entry e;
    if (!pop_live(e))
        return false;
    now_ = e.when;
    auto it = callbacks_.find(e.id);
    auto fn = std::move(it->second);
    callbacks_.erase(it);
    if (fn)
        fn();
    ++executed_;
    return true;
}

}  // namespace hivemind::sim

#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace hivemind::sim {

namespace {

/** Ascending (when, seq): the order events must execute in. */
struct EntryEarlier
{
    template <typename E>
    bool operator()(const E& a, const E& b) const
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }
};

}  // namespace

// ---------------------------------------------------------------------------
// Heap lane
// ---------------------------------------------------------------------------

const Simulator::Entry*
Simulator::heap_peek_slow()
{
    while (!heap_.empty()) {
        if (slot_live(heap_.front().id))
            return &heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
        heap_.pop_back();
        --heap_dead_;
    }
    return nullptr;
}

void
Simulator::heap_compact()
{
    std::erase_if(heap_,
                  [this](const Entry& e) { return !slot_live(e.id); });
    std::make_heap(heap_.begin(), heap_.end(), EntryLater{});
    heap_dead_ = 0;
}

// ---------------------------------------------------------------------------
// Wheel lane
// ---------------------------------------------------------------------------

namespace {

/** First set bit at index >= @p from in a 256-bit map, or -1. */
int
next_bit(const std::array<std::uint64_t, 4>& map, int from)
{
    if (from >= 256)
        return -1;
    int w = from >> 6;
    std::uint64_t word = map[static_cast<std::size_t>(w)] &
                         (~std::uint64_t{0} << (from & 63));
    while (true) {
        if (word)
            return (w << 6) + std::countr_zero(word);
        if (++w >= 4)
            return -1;
        word = map[static_cast<std::size_t>(w)];
    }
}

}  // namespace

void
Simulator::wheel_insert_slow(Entry e, std::uint64_t tick)
{
    ++wheel_count_;
    if (tick <= cur_tick_) {
        if (tick == cur_tick_) {
            // Out-of-order arrivals for the cursor's own tick
            // accumulate unsorted in its bucket; wheel_peek sorts and
            // merges them in one batch (bulk pre-scheduling would be
            // quadratic if each insert spliced the run directly). The
            // staging epoch tells wheel_peek a re-merge is due.
            ++stage_epoch_;
            levels_[0]
                .buckets[static_cast<std::size_t>(tick & kBucketMask)]
                .push_back(e);
            levels_[0].occupied[(tick & kBucketMask) >> 6] |=
                std::uint64_t{1} << (tick & 63);
            return;
        }
        // Cursor ran ahead of now_ hunting for the wheel head and
        // already passed this tick: splice into the sorted run. The
        // insertion point is always at or after ready_pos_ because
        // everything consumed so far had (when, seq) below any newly
        // scheduled event.
        ready_.insert(std::upper_bound(ready_.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               ready_pos_),
                                       ready_.end(), e, EntryEarlier{}),
                      e);
        return;
    }
    int level;
    std::uint64_t index;
    if ((tick >> kBucketBits) == (cur_tick_ >> kBucketBits)) {
        // Same level-0 lap (this includes tick == cur_tick_: such
        // entries accumulate unsorted in the cursor's own bucket and
        // are merged into the ready run by wheel_peek).
        level = 0;
        index = tick & kBucketMask;
    } else {
        level = 1;
        index = (tick >> kBucketBits) & kBucketMask;
    }
    levels_[static_cast<std::size_t>(level)]
        .buckets[static_cast<std::size_t>(index)]
        .push_back(e);
    levels_[static_cast<std::size_t>(level)].occupied[index >> 6] |=
        std::uint64_t{1} << (index & 63);
}

bool
Simulator::wheel_advance()
{
    // Precondition: the ready run is exhausted and the cursor's own
    // bucket is empty. Move the cursor to the next occupied level-0
    // bucket, cascading a level-1 bucket into level 0 whenever a lap
    // boundary is crossed. The cursor never passes an occupied
    // bucket, so bucket order equals time order.
    while (true) {
        if (ready_pos_ < ready_.size()) {
            // A cascade re-inserted lap-start entries and the in-order
            // ones took wheel_insert's append fast path straight into
            // the ready run (no bucket, no occupancy bit): they ARE
            // the staged head.
            return true;
        }
        Level& l0 = levels_[0];
        const int idx0 = static_cast<int>(cur_tick_ & kBucketMask);
        if (l0.occupied[static_cast<std::size_t>(idx0) >> 6] &
            (std::uint64_t{1} << (idx0 & 63))) {
            // A cascade refilled the cursor's own bucket (lap-start
            // tick): stay put, wheel_peek merges it.
            return true;
        }
        const int j = next_bit(l0.occupied, idx0 + 1);
        if (j >= 0) {
            cur_tick_ += static_cast<std::uint64_t>(j - idx0);
            // The cursor landed on an occupied bucket filled while it
            // was a future tick (no epoch bump at insert): mark the
            // staging epoch dirty so wheel_peek merges it.
            ++stage_epoch_;
            return true;  // wheel_peek merges bucket j at the cursor.
        }
        // Level-0 lap exhausted: cascade the next occupied level-1
        // bucket. Its span is exactly one level-0 lap, so every entry
        // re-inserts at level 0 (or into the ready run for the lap's
        // first tick).
        Level& l1 = levels_[1];
        const int idx1 =
            static_cast<int>((cur_tick_ >> kBucketBits) & kBucketMask);
        int k = next_bit(l1.occupied, idx1 + 1);
        std::uint64_t steps;
        if (k >= 0) {
            steps = static_cast<std::uint64_t>(k - idx1);
        } else {
            k = next_bit(l1.occupied, 0);
            if (k < 0)
                return false;  // Wheel genuinely empty.
            steps = static_cast<std::uint64_t>(k - idx1) + kBuckets;
        }
        cur_tick_ = ((cur_tick_ >> kBucketBits) + steps) << kBucketBits;
        std::vector<Entry> bucket =
            std::move(l1.buckets[static_cast<std::size_t>(k)]);
        l1.buckets[static_cast<std::size_t>(k)].clear();
        l1.occupied[static_cast<std::size_t>(k) >> 6] &=
            ~(std::uint64_t{1} << (k & 63));
        for (const Entry& e : bucket) {
            --wheel_count_;
            wheel_insert(e);
        }
    }
}

const Simulator::Entry*
Simulator::wheel_peek_slow()
{
    while (true) {
        // Merge entries that accumulated in the cursor's own bucket
        // (scheduled for the current tick, possibly while the ready
        // run was mid-consumption). Guarded by the staging epoch: when
        // nothing new arrived for the current tick since the last
        // merge, the sort + inplace_merge is skipped entirely.
        Level& l0 = levels_[0];
        const std::uint64_t idx0 = cur_tick_ & kBucketMask;
        if (stage_epoch_ != staged_epoch_ &&
            (l0.occupied[idx0 >> 6] & (std::uint64_t{1} << (idx0 & 63)))) {
            std::vector<Entry>& b =
                l0.buckets[static_cast<std::size_t>(idx0)];
            std::sort(b.begin(), b.end(), EntryEarlier{});
            ready_.erase(ready_.begin(),
                         ready_.begin() +
                             static_cast<std::ptrdiff_t>(ready_pos_));
            ready_pos_ = 0;
            const std::ptrdiff_t mid =
                static_cast<std::ptrdiff_t>(ready_.size());
            ready_.insert(ready_.end(), b.begin(), b.end());
            std::inplace_merge(ready_.begin(), ready_.begin() + mid,
                               ready_.end(), EntryEarlier{});
            b.clear();
            l0.occupied[idx0 >> 6] &= ~(std::uint64_t{1} << (idx0 & 63));
        }
        staged_epoch_ = stage_epoch_;  // Cursor bucket staged (or empty).
        while (ready_pos_ < ready_.size()) {
            const Entry& e = ready_[ready_pos_];
            if (slot_live(e.id))
                return &e;
            ++ready_pos_;  // Cancelled: drop the stale tombstone.
            --wheel_count_;
            --wheel_dead_;
        }
        ready_.clear();
        ready_pos_ = 0;
        if (wheel_count_ == 0 || !wheel_advance())
            return nullptr;
    }
}

void
Simulator::wheel_compact()
{
    auto stale = [this](const Entry& e) { return !slot_live(e.id); };
    ready_.erase(ready_.begin(),
                 ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_));
    ready_pos_ = 0;
    std::erase_if(ready_, stale);
    std::size_t count = ready_.size();
    for (Level& level : levels_) {
        for (std::size_t i = 0; i < static_cast<std::size_t>(kBuckets);
             ++i) {
            std::vector<Entry>& b = level.buckets[i];
            if (b.empty())
                continue;
            std::erase_if(b, stale);
            count += b.size();
            if (b.empty())
                level.occupied[i >> 6] &=
                    ~(std::uint64_t{1} << (i & 63));
        }
    }
    wheel_count_ = count;
    wheel_dead_ = 0;
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

bool
Simulator::cancel(EventId id)
{
    const std::uint32_t index = slot_of(id);
    if (index >= slots_.size() || !slot_live(id))
        return false;
    const bool in_heap = slots_[index].in_heap;
#ifdef HM_KERNEL_SHADOW
    std::erase_if(shadow_,
                  [id](const auto& t) { return std::get<2>(t) == id; });
#endif
    release_slot(index);
    if (in_heap) {
        ++heap_dead_;
        if (heap_dead_ * 2 > heap_.size())
            heap_compact();
    } else {
        ++wheel_dead_;
        if (wheel_dead_ * 2 > wheel_count_)
            wheel_compact();
    }
    return true;
}

std::uint64_t
Simulator::run_until(Time until)
{
    stopped_ = false;
    std::uint64_t n = 0;
    while (!stopped_ && execute_next(until))
        ++n;
    return n;
}

}  // namespace hivemind::sim

#pragma once

/**
 * @file
 * Small-buffer-optimized move-only callable for the event kernel.
 *
 * Every scheduled event carries a `void()` closure. `std::function`
 * copies, type-erases through a virtual-ish dispatch and — for
 * captures beyond its tiny internal buffer — heap-allocates. The DES
 * hot path schedules tens of millions of closures per second, so
 * InlineFn gives the kernel a dedicated callable that:
 *
 *  - stores captures up to kInlineBytes (32 B) inline, no allocation;
 *  - is move-only (events are consumed exactly once, copies are never
 *    needed), so captured state needs no copy constructor;
 *  - falls back to a single heap cell for oversized or
 *    throwing-move captures, preserving drop-in generality.
 *
 * 32 bytes exactly holds a `std::function` (32 B on libstdc++), so
 * every existing `schedule_*` call site converts implicitly, and the
 * kernel's per-event buffer moves stay at two cache-friendly 16-byte
 * pairs.
 */

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hivemind::sim {

/** Move-only `void()` callable with 32-byte inline capture storage. */
class InlineFn
{
  public:
    /** Captures up to this size (and max_align_t alignment) stay inline. */
    static constexpr std::size_t kInlineBytes = 32;

    InlineFn() noexcept = default;
    InlineFn(std::nullptr_t) noexcept {}

    /**
     * Wrap any `void()` callable. Null-testable callables (function
     * pointers, `std::function`) that are empty produce a null
     * InlineFn, preserving the kernel's "schedule nothing" tolerance.
     */
    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                          std::is_invocable_r_v<void, D&>>>
    InlineFn(F&& f)
    {
        construct_from(std::forward<F>(f));
    }

    /**
     * Destroy the current callable (if any) and store @p f in place.
     * Used by the event kernel to build the callable directly inside
     * a slab slot, skipping the temporary-InlineFn move a
     * construct-then-assign sequence would cost per event.
     */
    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                          std::is_invocable_r_v<void, D&>>>
    void assign(F&& f)
    {
        reset();
        construct_from(std::forward<F>(f));
    }

    InlineFn(InlineFn&& other) noexcept { move_from(other); }

    InlineFn& operator=(InlineFn&& other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    InlineFn(const InlineFn&) = delete;
    InlineFn& operator=(const InlineFn&) = delete;

    ~InlineFn() { reset(); }

    /** Invoke. Precondition: non-null. */
    void operator()() { invoke_(storage_); }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    /** Destroy the held callable (if any); becomes null. */
    void reset() noexcept
    {
        // Managed (heap or non-trivial) callables are the exception;
        // the kernel's hot path only ever destroys trivial or
        // already-moved-from instances.
        if (manage_) [[unlikely]]
            manage_(Op::Destroy, storage_, nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    /** True when @p F would be stored without heap allocation. */
    template <typename F>
    static constexpr bool stores_inline()
    {
        return fits_inline<std::decay_t<F>>;
    }

  private:
    enum class Op
    {
        MoveTo,
        Destroy
    };

    template <typename D>
    static constexpr bool fits_inline =
        sizeof(D) <= kInlineBytes &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    /** Heap-fallback cell: the buffer holds a single owning pointer. */
    static void*& ptr(void* storage)
    {
        return *static_cast<void**>(storage);
    }

    /** Store @p f. Precondition: *this is null. */
    template <typename F, typename D = std::decay_t<F>>
    void construct_from(F&& f)
    {
        if constexpr (std::is_constructible_v<bool, const D&>) {
            if (!static_cast<bool>(f))
                return;  // Empty std::function / null pointer: stay null.
        }
        if constexpr (fits_inline<D>) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            invoke_ = [](void* s) { (*std::launder(static_cast<D*>(s)))(); };
            // Trivially relocatable captures (plain data, reference /
            // pointer captures — the hot-path norm) keep manage_ null:
            // moving them is a raw buffer copy with no indirect call.
            if constexpr (!(std::is_trivially_copyable_v<D> &&
                            std::is_trivially_destructible_v<D>)) {
                manage_ = [](Op op, void* self, void* dst) {
                    D* obj = std::launder(static_cast<D*>(self));
                    if (op == Op::MoveTo)
                        ::new (dst) D(std::move(*obj));
                    obj->~D();
                };
            }
        } else {
            ptr(storage_) = new D(std::forward<F>(f));
            invoke_ = [](void* s) { (*static_cast<D*>(ptr(s)))(); };
            manage_ = [](Op op, void* self, void* dst) {
                if (op == Op::MoveTo)
                    ptr(dst) = ptr(self);
                else
                    delete static_cast<D*>(ptr(self));
            };
        }
    }

    void move_from(InlineFn& other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        if (manage_) [[unlikely]]
            manage_(Op::MoveTo, other.storage_, storage_);
        else if (invoke_)
            std::memcpy(storage_, other.storage_, kInlineBytes);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    void (*invoke_)(void*) = nullptr;
    void (*manage_)(Op, void*, void*) = nullptr;
};

}  // namespace hivemind::sim

#include "sim/swarm_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hivemind::sim {

SwarmRuntime::SwarmRuntime(int shards, const KernelConfig& config)
{
    assert(shards >= 1);
    sims_.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i)
        sims_.push_back(std::make_unique<Simulator>(config));
    mail_.resize(static_cast<std::size_t>(shards) *
                 static_cast<std::size_t>(shards));
    if (shards > 1) {
        start_ = std::make_unique<std::barrier<>>(shards);
        finish_ = std::make_unique<std::barrier<>>(shards);
        threads_.reserve(static_cast<std::size_t>(shards) - 1);
        for (int i = 1; i < shards; ++i)
            threads_.emplace_back([this, i] { worker(i); });
    }
}

SwarmRuntime::~SwarmRuntime()
{
    if (!threads_.empty()) {
        quit_ = true;
        start_->arrive_and_wait();  // Release workers into the quit check.
        threads_.clear();           // jthread joins.
    }
}

void
SwarmRuntime::worker(int i)
{
    for (;;) {
        start_->arrive_and_wait();
        if (quit_)
            return;
        sims_[static_cast<std::size_t>(i)]->run_until(window_);
        finish_->arrive_and_wait();
    }
}

void
SwarmRuntime::declare_channel(int src, int dst, Time min_latency)
{
    (void)src;
    (void)dst;
    assert(min_latency >= 1);
    lookahead_ = std::min(lookahead_, min_latency);
}

void
SwarmRuntime::post(int src, int dst, Time when, std::uint64_t origin,
                   InlineFn fn)
{
    Envelope e;
    e.when = when;
    e.origin = origin;
    e.fn = std::move(fn);
    mail_[static_cast<std::size_t>(src) * sims_.size() +
          static_cast<std::size_t>(dst)]
        .push_back(std::move(e));
}

std::uint64_t
SwarmRuntime::drain(Time window)
{
    const std::size_t n = sims_.size();
    std::uint64_t forwarded = 0;
    for (std::size_t dst = 0; dst < n; ++dst) {
        merge_.clear();
        for (std::size_t src = 0; src < n; ++src) {
            auto& box = mail_[src * n + dst];
            for (Envelope& e : box)
                merge_.push_back(std::move(e));
            box.clear();
        }
        if (merge_.empty())
            continue;
        // Stable by (when, origin): per-actor FIFO survives (an
        // actor's posts all sit in one mailbox, in post order), and
        // the key does not depend on which shard the actor lives on,
        // so the delivery order is invariant across shard counts.
        std::stable_sort(merge_.begin(), merge_.end(),
                         [](const Envelope& a, const Envelope& b) {
                             return a.when != b.when ? a.when < b.when
                                                     : a.origin < b.origin;
                         });
        Simulator& s = *sims_[dst];
        for (Envelope& e : merge_) {
            // Conservative-sync contract: the channel latency keeps
            // every delivery strictly beyond the window just run.
            assert(e.when > window);
            (void)window;
            s.schedule_at(e.when, std::move(e.fn));
            ++forwarded;
        }
    }
    return forwarded;
}

SwarmRuntime::Report
SwarmRuntime::run_until(Time until)
{
    return run_until(until, {});
}

SwarmRuntime::Report
SwarmRuntime::run_until(Time until, const std::function<bool()>& stop)
{
    Report report;
    std::uint64_t before = 0;
    for (const auto& s : sims_)
        before += s->executed();

    // Mail posted before the run (wiring-time registrations, initial
    // assignments) must become shard events before the first window
    // is computed, or the window could leap past their delivery times.
    report.forwarded += drain(-1);

    for (;;) {
        Time h = Simulator::kNever;
        for (const auto& s : sims_)
            h = std::min(h, s->next_time());
        if (h == Simulator::kNever || h > until)
            break;

        Time window = until;
        if (lookahead_ != Simulator::kNever) {
            const Time slack = lookahead_ - 1;
            window = (h > Simulator::kNever - slack) ? Simulator::kNever
                                                     : h + slack;
            window = std::min(window, until);
        }

        if (threads_.empty()) {
            sims_[0]->run_until(window);
        } else {
            window_ = window;
            start_->arrive_and_wait();
            sims_[0]->run_until(window);
            finish_->arrive_and_wait();
        }
        ++report.epochs;
        report.horizon = window;
        report.forwarded += drain(window);
        if (stop && stop())
            break;
    }

    std::uint64_t after = 0;
    for (const auto& s : sims_)
        after += s->executed();
    report.executed = after - before;
    return report;
}

std::size_t
SwarmRuntime::pending() const
{
    std::size_t n = 0;
    for (const auto& s : sims_)
        n += s->pending();
    for (const auto& box : mail_)
        n += box.size();
    return n;
}

}  // namespace hivemind::sim

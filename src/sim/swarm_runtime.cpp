#include "sim/swarm_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <utility>

namespace hivemind::sim {

SwarmRuntime::SwarmRuntime(int shards, const KernelConfig& config)
{
    assert(shards >= 1);
    const std::size_t n = static_cast<std::size_t>(shards);
    sims_.reserve(n);
    for (int i = 0; i < shards; ++i)
        sims_.push_back(std::make_unique<Simulator>(config));
    mail_.resize(n * n);
    staged_.resize(n);
    lat_.assign(n * n, Simulator::kNever);
    sends_.assign(n, Simulator::kNever);
    windows_.assign(n, 0);
    // Adaptive per-pair lookahead is the default; callers that want
    // the classic global-lookahead epochs say so explicitly. The
    // HIVEMIND_GLOBAL_LOOKAHEAD env override is resolved by the
    // platform options layer (platform::env), never down here.
    set_adaptive_lookahead(true);
    if (shards > 1) {
        start_ = std::make_unique<std::barrier<>>(shards);
        finish_ = std::make_unique<std::barrier<>>(shards);
        threads_.reserve(n - 1);
        for (int i = 1; i < shards; ++i)
            threads_.emplace_back([this, i] { worker(i); });
    }
}

SwarmRuntime::~SwarmRuntime()
{
    if (!threads_.empty()) {
        quit_ = true;
        start_->arrive_and_wait();  // Release workers into the quit check.
        threads_.clear();           // jthread joins.
    }
}

void
SwarmRuntime::worker(int i)
{
    for (;;) {
        start_->arrive_and_wait();
        if (quit_)
            return;
        sims_[static_cast<std::size_t>(i)]->run_until(
            windows_[static_cast<std::size_t>(i)]);
        finish_->arrive_and_wait();
    }
}

void
SwarmRuntime::set_adaptive_lookahead(bool on)
{
    adaptive_ = on;
    // A single shard has no cross-shard channel that could bound a
    // window (self-posts bypass the mailbox in adaptive mode), so the
    // send-horizon bookkeeping would only burn a heap push per event.
    const bool track = on && sims_.size() > 1;
    for (const auto& s : sims_)
        s->track_send_horizon(track);
}

void
SwarmRuntime::declare_channel(int src, int dst, Time min_latency)
{
    assert(min_latency >= 1);
    Time& cell = lat_[static_cast<std::size_t>(src) * sims_.size() +
                      static_cast<std::size_t>(dst)];
    cell = std::min(cell, min_latency);
    lookahead_ = std::min(lookahead_, min_latency);
}

void
SwarmRuntime::post(int src, int dst, Time when, std::uint64_t origin,
                   InlineFn fn)
{
    // A shard never needs conservative protection from itself: the
    // kernel already orders intra-shard causality, so in adaptive
    // mode a self-post goes straight into the owner kernel (we are on
    // its thread — src == dst). The origin-aware envelope seq makes
    // the same-time merge order identical to the staged path's
    // (when, origin) sort, so a message's execution slot never
    // depends on which route delivered it. Global-lookahead mode
    // keeps every post on the mailbox path (the pre-adaptive
    // behavior, byte for byte).
    if (adaptive_ && src == dst) {
        sims_[static_cast<std::size_t>(dst)]->schedule_envelope_at(
            when, origin, std::move(fn));
        return;
    }
    Envelope e;
    e.when = when;
    e.origin = origin;
    e.fn = std::move(fn);
    mail_[static_cast<std::size_t>(src) * sims_.size() +
          static_cast<std::size_t>(dst)]
        .push_back(std::move(e));
}

Time
SwarmRuntime::staged_min(std::size_t dst) const
{
    Time m = Simulator::kNever;
    for (const Envelope& e : staged_[dst])
        m = std::min(m, e.when);
    return m;
}

void
SwarmRuntime::compute_windows(Time until, Time h)
{
    const std::size_t n = sims_.size();
    if (!adaptive_) {
        Time window = until;
        if (lookahead_ != Simulator::kNever) {
            const Time slack = lookahead_ - 1;
            window = (h > Simulator::kNever - slack) ? Simulator::kNever
                                                     : h + slack;
            window = std::min(window, until);
        }
        std::fill(windows_.begin(), windows_.end(), window);
        return;
    }
    // Per-pair windows from each shard's *effective* send horizon.
    // The raw horizon s_i = min(next_send_time, staged_min) covers
    // sends already visible on shard i (a staged envelope is a future
    // send-capable event its destination kernel does not know about
    // yet). That alone is unsound: within one epoch shard i can react
    // to a message from shard j and reply, so i's effective horizon
    // must include sends *provoked* by every other shard's sends.
    // Closing the raw horizons under
    //     s_i <- min(s_i, s_j + L(j, i))
    // (the conservative-sync LBTS relaxation; a shortest-path fixpoint
    // over the channel graph, reached in < n sweeps since latencies
    // are positive) accounts for reaction chains of any depth. Then
    //     W_j = min(until, min over i of s_i + L(i, j) - 1).
    // s_i >= H and L >= 1 keep W_j >= H, so the shard holding the
    // global horizon always executes (progress). A destination with
    // no declared incoming channel is unconstrained.
    for (std::size_t i = 0; i < n; ++i)
        sends_[i] = std::min(sims_[i]->next_send_time(), staged_min(i));
    for (bool changed = true; changed;) {
        changed = false;
        for (std::size_t j = 0; j < n; ++j) {
            const Time s = sends_[j];
            if (s == Simulator::kNever)
                continue;
            for (std::size_t i = 0; i < n; ++i) {
                const Time lat = lat_[j * n + i];
                if (lat == Simulator::kNever ||
                    s > Simulator::kNever - lat)
                    continue;
                if (s + lat < sends_[i]) {
                    sends_[i] = s + lat;
                    changed = true;
                }
            }
        }
    }
    for (std::size_t j = 0; j < n; ++j) {
        Time w = until;
        for (std::size_t i = 0; i < n; ++i) {
            if (i == j)
                continue;  // Self-posts bypass the mailbox (post()).
            const Time lat = lat_[i * n + j];
            if (lat == Simulator::kNever)
                continue;
            const Time s = sends_[i];
            if (s == Simulator::kNever || s > Simulator::kNever - lat)
                continue;  // No bound from this source (saturates).
            w = std::min(w, s + lat - 1);
        }
        windows_[j] = w;
    }
}

void
SwarmRuntime::drain()
{
    const std::size_t n = sims_.size();
    for (std::size_t dst = 0; dst < n; ++dst) {
        std::size_t total = 0;
        for (std::size_t src = 0; src < n; ++src)
            total += mail_[src * n + dst].size();
        if (total == 0)
            continue;
        auto& staged = staged_[dst];
        staged.reserve(staged.size() + total);
        for (std::size_t src = 0; src < n; ++src) {
            auto& box = mail_[src * n + dst];
            for (Envelope& e : box) {
                // Conservative-sync contract: the channel latency
                // keeps every delivery strictly beyond the window the
                // destination just ran.
                assert(e.when > windows_[dst]);
                staged.push_back(std::move(e));
            }
            box.clear();
        }
    }
}

std::uint64_t
SwarmRuntime::release_staged()
{
    const std::size_t n = sims_.size();
    std::uint64_t released = 0;
    for (std::size_t dst = 0; dst < n; ++dst) {
        auto& staged = staged_[dst];
        if (staged.empty())
            continue;
        const Time window = windows_[dst];
        merge_.clear();
        merge_.reserve(staged.size());
        std::size_t keep = 0;
        bool sorted = true;
        for (Envelope& e : staged) {
            if (e.when > window) {
                staged[keep++] = std::move(e);
                continue;
            }
            if (sorted && !merge_.empty()) {
                const Envelope& prev = merge_.back();
                if (e.when < prev.when ||
                    (e.when == prev.when && e.origin < prev.origin))
                    sorted = false;
            }
            merge_.push_back(std::move(e));
        }
        staged.resize(keep);
        if (merge_.empty())
            continue;
        // Stable by (when, origin): per-actor FIFO survives (an
        // actor's posts are staged in post order), and the key does
        // not depend on which shard the actor lives on, so the
        // delivery order is invariant across shard counts. The common
        // case — envelopes already staged in key order — skips the
        // sort outright: a stable sort of a sorted range is the
        // identity. Note even a single contributing mailbox is NOT
        // automatically key-sorted (two actors can post at the same
        // time in descending origin order), which is why this is a
        // runtime check and not a mailbox-count check.
        if (!sorted)
            std::stable_sort(merge_.begin(), merge_.end(),
                             [](const Envelope& a, const Envelope& b) {
                                 return a.when != b.when
                                            ? a.when < b.when
                                            : a.origin < b.origin;
                             });
        Simulator& s = *sims_[dst];
        for (Envelope& e : merge_) {
            // A release behind the destination clock means a window
            // overshot an in-flight delivery — a causality violation
            // in compute_windows, never a legal state.
            assert(e.when >= s.now());
            s.schedule_envelope_at(e.when, e.origin, std::move(e.fn));
            ++released;
        }
    }
    return released;
}

SwarmRuntime::Report
SwarmRuntime::run_until(Time until)
{
    return run_until(until, {});
}

SwarmRuntime::Report
SwarmRuntime::run_until(Time until, const std::function<bool()>& stop)
{
    Report report;
    std::uint64_t before = 0;
    for (const auto& s : sims_)
        before += s->executed();

    // Mail posted before the run (wiring-time registrations, initial
    // assignments) joins the staging buffers up front; the horizon
    // below accounts for staged deliveries, so the first window can
    // never leap past them.
    std::fill(windows_.begin(), windows_.end(), Time{-1});
    drain();

    for (;;) {
        Time h = Simulator::kNever;
        for (std::size_t i = 0; i < sims_.size(); ++i) {
            h = std::min(h, sims_[i]->next_time());
            h = std::min(h, staged_min(i));
        }
        if (h == Simulator::kNever || h > until)
            break;

        compute_windows(until, h);
        report.forwarded += release_staged();

        if (threads_.empty()) {
            sims_[0]->run_until(windows_[0]);
        } else {
            start_->arrive_and_wait();
            sims_[0]->run_until(windows_[0]);
            finish_->arrive_and_wait();
        }
        ++report.epochs;
        report.horizon =
            *std::max_element(windows_.begin(), windows_.end());
        drain();
        if (stop && stop())
            break;
    }

    std::uint64_t after = 0;
    for (const auto& s : sims_)
        after += s->executed();
    report.executed = after - before;
    return report;
}

std::size_t
SwarmRuntime::pending() const
{
    std::size_t n = 0;
    for (const auto& s : sims_)
        n += s->pending();
    for (const auto& box : mail_)
        n += box.size();
    for (const auto& staged : staged_)
        n += staged.size();
    return n;
}

}  // namespace hivemind::sim

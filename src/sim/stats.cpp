#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hivemind::sim {

void
Summary::add(double x)
{
    samples_.push_back(x);
    sum_ += x;
    sum_sq_ += x * x;
    sorted_valid_ = false;
}

double
Summary::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

double
Summary::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    double n = static_cast<double>(samples_.size());
    double m = sum_ / n;
    double var = sum_sq_ / n - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Summary::ensure_sorted() const
{
    if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
}

double
Summary::min() const
{
    if (samples_.empty())
        return 0.0;
    ensure_sorted();
    return sorted_.front();
}

double
Summary::max() const
{
    if (samples_.empty())
        return 0.0;
    ensure_sorted();
    return sorted_.back();
}

double
Summary::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensure_sorted();
    if (p <= 0.0)
        return sorted_.front();
    if (p >= 100.0)
        return sorted_.back();
    double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void
Summary::merge(const Summary& other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    sorted_valid_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0)
{
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    std::size_t i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) {
        ++overflow_;
        return;
    }
    ++counts_[i];
}

std::vector<double>
TimeSeries::window_means(Time window, Time until) const
{
    std::size_t n = window > 0
        ? static_cast<std::size_t>((until + window - 1) / window)
        : 0;
    std::vector<double> sums(n, 0.0);
    std::vector<std::uint64_t> counts(n, 0);
    for (const Point& p : points_) {
        if (p.t < 0 || p.t >= until)
            continue;
        std::size_t i = static_cast<std::size_t>(p.t / window);
        sums[i] += p.value;
        ++counts[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (counts[i] > 0)
            sums[i] /= static_cast<double>(counts[i]);
    }
    return sums;
}

void
RateMeter::add(Time t, double amount)
{
    if (t < 0)
        return;
    std::size_t i = static_cast<std::size_t>(t / window_);
    if (i >= per_window_.size())
        per_window_.resize(i + 1, 0.0);
    per_window_[i] += amount;
    total_ += amount;
}

std::vector<double>
RateMeter::rates(Time until) const
{
    std::size_t n =
        static_cast<std::size_t>((until + window_ - 1) / window_);
    std::vector<double> out(n, 0.0);
    double wsec = to_seconds(window_);
    for (std::size_t i = 0; i < n && i < per_window_.size(); ++i)
        out[i] = per_window_[i] / wsec;
    return out;
}

Summary
RateMeter::rate_summary(Time until) const
{
    Summary s;
    for (double r : rates(until))
        s.add(r);
    return s;
}

}  // namespace hivemind::sim

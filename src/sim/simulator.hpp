#pragma once

/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The Simulator owns a time-ordered event queue. Components schedule
 * closures to run at future simulated times; the kernel pops them in
 * (time, insertion-order) order so that ties break deterministically.
 * This is the substrate every HiveMind model (network, cloud, edge
 * devices) is built on, mirroring the validated event-driven simulator
 * the paper uses for its scalability studies (Sec. 5.6).
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace hivemind::sim {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Discrete-event simulator with deterministic event ordering.
 *
 * Events scheduled for the same timestamp run in the order they were
 * scheduled. Cancellation is lazy: cancelled events stay in the queue
 * but are skipped when popped.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * Scheduling in the past is clamped to now(): the event runs at the
     * current time, after already-pending events for that time.
     *
     * @return an EventId usable with cancel().
     */
    EventId schedule_at(Time when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay after the current time. */
    EventId schedule_in(Time delay, std::function<void()> fn)
    {
        return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /**
     * Run until the queue drains or simulated time would exceed
     * @p until (inclusive). Events at exactly @p until still run.
     *
     * @return number of events executed.
     */
    std::uint64_t run_until(Time until);

    /** Run until the event queue is empty. */
    std::uint64_t run() { return run_until(kMaxTime); }

    /** Execute at most one pending event. @return false if none left. */
    bool step();

    /** Request that run()/run_until() return after the current event. */
    void stop() { stopped_ = true; }

    /** Number of events currently pending (including cancelled ones). */
    std::size_t pending() const { return queue_.size() - cancelled_count_; }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    static constexpr Time kMaxTime = INT64_MAX;

    struct Entry
    {
        Time when;
        std::uint64_t seq;
        EventId id;
    };

    struct EntryLater
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop the next live entry, skipping cancelled events. */
    bool pop_live(Entry& out);

    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;
    std::size_t cancelled_count_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
    // Callback storage is keyed by EventId; erased on execution/cancel.
    std::unordered_map<EventId, std::function<void()>> callbacks_;
};

/**
 * Wrap @p body as a self-rescheduling task.
 *
 * @p body receives a `self` callable; handing `self` back to
 * schedule_in()/schedule_at() re-arms the task for another round.
 * Pending events hold the only strong references to the underlying
 * state — the stored callable refers to itself weakly — so the chain
 * frees itself as soon as an invocation returns without rescheduling.
 * (The naive `make_shared<std::function>` self-capture idiom keeps a
 * strong cycle alive forever; LeakSanitizer flags it.)
 */
template <typename Body>
std::function<void()> recurring(Body body)
{
    struct State
    {
        std::function<void()> tick;
    };
    auto state = std::make_shared<State>();
    state->tick = [weak = std::weak_ptr<State>(state),
                   body = std::move(body)]() mutable {
        if (auto self = weak.lock())
            body(std::function<void()>([self]() { self->tick(); }));
    };
    return [state]() { state->tick(); };
}

}  // namespace hivemind::sim

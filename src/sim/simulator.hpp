#pragma once

/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The Simulator owns a time-ordered event set. Components schedule
 * closures to run at future simulated times; the kernel pops them in
 * (time, insertion-order) order so that ties break deterministically.
 * This is the substrate every HiveMind model (network, cloud, edge
 * devices) is built on, mirroring the validated event-driven simulator
 * the paper uses for its scalability studies (Sec. 5.6).
 *
 * Internals (see DESIGN.md "Simulation kernel"):
 *  - Callbacks live in a generation-tagged slot slab: a free-listed
 *    vector of slots holding a move-only InlineFn each. EventId packs
 *    {generation, slot index}, so cancel() and callback lookup are
 *    O(1) array operations — no hashing, no per-event heap allocation
 *    for small captures.
 *  - Near-future events ride a two-level hierarchical timer wheel
 *    (the fast lane for the short recurring timers that dominate
 *    swarm runs: heartbeats, link ticks, battery drain); far-future
 *    or irregular events fall back to a binary heap. The merge rule
 *    that preserves determinism: whichever lane, the next event
 *    executed is always the globally smallest (time, seq) pair, and
 *    seq is assigned once, at schedule time.
 *  - Cancellation is lazy in both lanes (stale generation tags are
 *    skipped on pop), but the heap compacts itself whenever cancelled
 *    entries outnumber live ones, so long-lived simulations cannot
 *    accumulate unbounded tombstones.
 */

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#ifdef HM_KERNEL_SHADOW
#include <cstdio>
#include <cstdlib>
#include <set>
#include <tuple>
#endif
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace hivemind::sim {

/**
 * Handle used to cancel a scheduled event.
 *
 * Packs {generation:32, slot:32}. Slots are recycled after an event
 * runs or is cancelled, but each recycle bumps the slot's generation,
 * so a stale handle can never cancel the slot's next tenant. 0 is
 * never a valid id (generations start at 1).
 */
using EventId = std::uint64_t;

/** Kernel tuning knobs (mainly for tests and benchmarks). */
struct KernelConfig
{
    /**
     * Route near-future events through the timer wheel. Disabling
     * forces every event onto the binary heap; execution order is
     * identical either way (the determinism tests assert this).
     */
    bool use_timer_wheel = true;
};

/**
 * Discrete-event simulator with deterministic event ordering.
 *
 * Events scheduled for the same timestamp run in the order they were
 * scheduled. Cancellation is lazy: cancelled events stay queued but
 * are skipped when popped (the heap lane additionally compacts when
 * cancelled entries outnumber live ones).
 */
class Simulator
{
  public:
    /** Sentinel returned by next_time() when no live event is pending. */
    static constexpr Time kNever = INT64_MAX;

    Simulator() = default;
    explicit Simulator(const KernelConfig& config) : config_(config) {}

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Timestamp of the earliest pending live event, or kNever.
     *
     * Non-const because peeking lazily drops cancelled tombstones and
     * stages wheel buckets. This is the primitive the sharded
     * SwarmRuntime uses to compute conservative lookahead windows.
     */
    Time next_time()
    {
        const Entry* w = config_.use_timer_wheel ? wheel_peek() : nullptr;
        const Entry* h = heap_peek();
        if (w && h)
            return entry_earlier(*w, *h) ? w->when : h->when;
        if (w)
            return w->when;
        if (h)
            return h->when;
        return kNever;
    }

    /// @name Send-horizon tracking (adaptive per-pair lookahead).
    ///
    /// When enabled, every scheduled event is classified as either
    /// *send-capable* (the default — it may emit a cross-shard message
    /// when it runs, or schedule other events that do) or *silent*
    /// (provably local: it touches only this shard's state and only
    /// schedules further silent events). next_send_time() then reports
    /// the earliest pending send-capable event, which lower-bounds the
    /// time of the next message this shard can originate — a much
    /// looser (larger) bound than next_time() when the queue is
    /// dominated by local noise (motion ticks, null-callback compute).
    /// The SwarmRuntime uses it to stretch conservative epoch windows.
    ///
    /// Soundness contract for callers marking events silent: a silent
    /// event must never transfer/post, and must only schedule events
    /// that are themselves silent. Any send chain must be rooted at a
    /// send-capable event whose scheduled time lower-bounds the send.
    /// @{

    /** Enable/disable send-horizon tracking (off by default). */
    void track_send_horizon(bool on)
    {
        track_sends_ = on;
        if (!on) {
            send_heap_.clear();
        }
    }

    /** Whether send-horizon tracking is active. */
    bool tracks_send_horizon() const { return track_sends_; }

    /**
     * Earliest pending send-capable event, or kNever. Always kNever
     * when tracking is disabled. Lazily drops entries whose event
     * already ran or was cancelled.
     */
    Time next_send_time()
    {
        if (!track_sends_)
            return kNever;
        while (!send_heap_.empty()) {
            const Entry& top = send_heap_.front();
            if (slot_live(top.id))
                return top.when;
            std::pop_heap(send_heap_.begin(), send_heap_.end(),
                          EntryLater{});
            send_heap_.pop_back();
        }
        return kNever;
    }

    /** Silent-classified schedule_at (InlineFn overload). */
    EventId schedule_silent_at(Time when, InlineFn fn)
    {
        scheduling_silent_ = true;
        const EventId id = schedule_at(when, std::move(fn));
        scheduling_silent_ = false;
        return id;
    }

    /** Silent-classified schedule_at (emplacing overload). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventId schedule_silent_at(Time when, F&& f)
    {
        scheduling_silent_ = true;
        const EventId id = schedule_at(when, std::forward<F>(f));
        scheduling_silent_ = false;
        return id;
    }

    /** Silent-classified schedule_in. */
    EventId schedule_silent_in(Time delay, InlineFn fn)
    {
        return schedule_silent_at(now_ + (delay < 0 ? 0 : delay),
                                  std::move(fn));
    }

    /** Silent-classified schedule_in (emplacing overload). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventId schedule_silent_in(Time delay, F&& f)
    {
        return schedule_silent_at(now_ + (delay < 0 ? 0 : delay),
                                  std::forward<F>(f));
    }

    /**
     * Upgrade a pending *silent* event to send-capable.
     *
     * Used when new information invalidates a silent classification —
     * e.g. the edge executor learns that a send-capable task queued
     * up behind the silent completion it already scheduled. @p when
     * must be the event's scheduled time. No-op when tracking is off,
     * the id is stale, or the event is already send-capable (upgrades
     * are sticky: an event never goes back to silent).
     */
    void mark_send(EventId id, Time when)
    {
        if (!track_sends_ || !slot_live(id))
            return;
        Slot& s = slots_[slot_of(id)];
        if (!s.silent)
            return;
        s.silent = false;
        send_push(Entry{when, send_seq_++, id});
    }

    /// @}

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * Scheduling in the past is clamped to now(): the event runs at the
     * current time, after already-pending events for that time.
     *
     * @return an EventId usable with cancel().
     *
     * Defined inline (with the rest of the schedule/execute hot path)
     * so the ping-pong pattern — schedule one event, run it, repeat —
     * compiles down to slab and vector operations in the caller's
     * loop with no cross-TU calls.
     */
    EventId schedule_at(Time when, InlineFn fn)
    {
        const bool to_heap = pick_lane(when);
        const EventId id = alloc_slot(std::move(fn), to_heap);
        commit_entry(when, id, to_heap);
        return id;
    }

    /**
     * Schedule any `void()` callable. This overload builds the
     * callable directly inside its slab slot — no InlineFn temporary,
     * no buffer move — and is what lambda call sites resolve to.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventId schedule_at(Time when, F&& f)
    {
        const bool to_heap = pick_lane(when);
        std::uint32_t index;
        Slot& s = grab_slot(index);
        s.fn.assign(std::forward<F>(f));
        const EventId id = finish_slot(s, index, to_heap);
        commit_entry(when, id, to_heap);
        return id;
    }

    /** Schedule @p fn to run @p delay after the current time. */
    EventId schedule_in(Time delay, InlineFn fn)
    {
        return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
    }

    /** Delay-relative variant of the emplacing overload above. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventId schedule_in(Time delay, F&& f)
    {
        return schedule_at(now_ + (delay < 0 ? 0 : delay),
                           std::forward<F>(f));
    }

    /**
     * Re-arm the currently executing callback to run again at @p when.
     *
     * Only valid from inside an event callback. The running closure is
     * relocated into a fresh slab slot (an inline buffer copy or a
     * heap-cell pointer steal — never a new allocation), so recurring
     * tasks re-arm with zero per-tick heap traffic. After the call the
     * callback's captures may have been moved from: for closures whose
     * captures are not trivially relocatable, rearm_at() must be the
     * last statement that touches them.
     *
     * @return the new EventId, or 0 when no callback is executing (or
     *         the running closure was already re-armed this tick).
     */
    EventId rearm_at(Time when)
    {
        if (!running_ || !*running_)
            return 0;
        const bool to_heap = pick_lane(when);
        const EventId id = alloc_slot(std::move(*running_), to_heap);
        // A re-armed event inherits the silence class of the running
        // one: a silent recurring chain stays silent tick after tick.
        scheduling_silent_ = running_silent_;
        commit_entry(when, id, to_heap);
        scheduling_silent_ = false;
        return id;
    }

    /** Delay-relative rearm_at(). */
    EventId rearm_in(Time delay)
    {
        return rearm_at(now_ + (delay < 0 ? 0 : delay));
    }

    /**
     * Schedule a message-envelope delivery.
     *
     * Identical to schedule_at except for the same-time tie-break,
     * which the SwarmRuntime needs because the moment an envelope
     * reaches the kernel depends on the shard count: cross-shard
     * envelopes arrive at epoch boundaries, same-shard ones the
     * instant the sender computes the arrival time. The entry's seq
     * is therefore composed as
     *
     *     [envelope class bit | origin | shared counter]
     *
     * so at equal times (a) every envelope runs after every locally
     * scheduled event (class bit), (b) envelopes order by the
     * sender's shard-agnostic @p origin regardless of schedule order
     * (matching the staging buffer's (when, origin) sort), and
     * (c) same-origin envelopes keep FIFO order (shared counter).
     * @p origin must fit kEnvelopeOriginBits; the counter has
     * 63 - kEnvelopeOriginBits bits before it would carry into the
     * origin field (~2.7e11 events — far past any run here).
     */
    EventId schedule_envelope_at(Time when, std::uint64_t origin,
                                 InlineFn fn)
    {
        assert(origin < (1ull << kEnvelopeOriginBits));
        seq_bias_ =
            kEnvelopeSeqClass | (origin << (63 - kEnvelopeOriginBits));
        const EventId id = schedule_at(when, std::move(fn));
        seq_bias_ = 0;
        return id;
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /**
     * Run until the queue drains or simulated time would exceed
     * @p until (inclusive). Events at exactly @p until still run.
     *
     * @return number of events executed.
     */
    std::uint64_t run_until(Time until);

    /** Run until the event queue is empty. */
    std::uint64_t run() { return run_until(kMaxTime); }

    /** Execute at most one pending event. @return false if none left. */
    bool step() { return execute_next(kMaxTime); }

    /** Request that run()/run_until() return after the current event. */
    void stop() { stopped_ = true; }

    /** Number of live (scheduled, not cancelled) pending events. */
    std::size_t pending() const { return live_; }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /// @name Introspection for tests and benchmarks.
    /// @{
    /** Entries currently in the heap lane (live + cancelled). */
    std::size_t heap_entries() const { return heap_.size(); }
    /** Entries currently in the wheel lane (live + cancelled). */
    std::size_t wheel_entries() const { return wheel_count_; }
    /** High-water mark of concurrently pending events (slab size). */
    std::size_t slab_slots() const { return slots_.size(); }
    /// @}

  private:
    static constexpr Time kMaxTime = INT64_MAX;

    // Timer-wheel geometry: level 0 buckets span 2^17 ns (~131 us);
    // level 1 buckets span one full level-0 lap (2^25 ns, ~33.5 ms),
    // for a total wheel horizon of 2^33 ns (~8.6 s) past the cursor.
    // Anything farther out (or scheduled while the wheel lane is
    // disabled) goes to the binary heap.
    static constexpr int kBucketBits = 8;
    static constexpr int kBuckets = 1 << kBucketBits;
    static constexpr int kGranularityBits = 17;
    static constexpr std::uint64_t kBucketMask = kBuckets - 1;

    struct Entry
    {
        Time when;
        std::uint64_t seq;
        EventId id;
    };

    /** Heap comparator: max-heap on "later", i.e. min (when, seq) top. */
    struct EntryLater
    {
        bool operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** One slab slot: the callback plus its reuse generation. */
    struct Slot
    {
        InlineFn fn;
        std::uint32_t gen = 1;
        std::uint32_t next_free = 0;
        bool live = false;
        bool in_heap = false;  ///< Lane tag for cancel bookkeeping.
        bool silent = false;   ///< Send-horizon class (see mark_send).
    };

    /** One wheel level: 256 unsorted buckets + occupancy bitmap. */
    struct Level
    {
        std::array<std::vector<Entry>, kBuckets> buckets;
        std::array<std::uint64_t, kBuckets / 64> occupied{};
    };

    static std::uint32_t slot_of(EventId id)
    {
        return static_cast<std::uint32_t>(id);
    }
    static std::uint32_t gen_of(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    bool slot_live(EventId id) const
    {
        const Slot& s = slots_[slot_of(id)];
        return s.live && s.gen == gen_of(id);
    }

    /** Ascending (when, seq): the order events must execute in. */
    static bool entry_earlier(const Entry& a, const Entry& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /**
     * Clamp @p when to now(), re-anchor an idle wheel at the present,
     * and pick the lane: false = timer wheel, true = binary heap
     * (beyond the wheel horizon, or the wheel lane is disabled).
     */
    bool pick_lane(Time& when)
    {
        if (when < now_)
            when = now_;
        if (!config_.use_timer_wheel)
            return true;
        if (wheel_count_ == 0) {
            // Wheel idle: re-anchor the horizon at the present so
            // near-future events keep taking the fast lane even after
            // a heap-only stretch advanced now_ past the cursor.
            ready_.clear();
            ready_pos_ = 0;
            staged_epoch_ = stage_epoch_;  // Empty wheel: nothing to stage.
            const std::uint64_t now_tick =
                static_cast<std::uint64_t>(now_) >> kGranularityBits;
            if (now_tick > cur_tick_)
                cur_tick_ = now_tick;
        }
        const std::uint64_t tick =
            static_cast<std::uint64_t>(when) >> kGranularityBits;
        return tick > cur_tick_ &&
               (tick >> kBucketBits) != (cur_tick_ >> kBucketBits) &&
               (tick >> kBucketBits) - (cur_tick_ >> kBucketBits) >=
                   static_cast<std::uint64_t>(kBuckets);
    }

    /** Pop a free slot (or grow the slab); callback not yet set. */
    Slot& grab_slot(std::uint32_t& index)
    {
        if (free_head_ != kNoFree) {
            index = free_head_;
            free_head_ = slots_[index].next_free;
        } else {
            index = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        return slots_[index];
    }

    /** Mark a grabbed slot live and produce its generation-tagged id. */
    EventId finish_slot(Slot& s, std::uint32_t index, bool in_heap)
    {
        s.live = true;
        s.in_heap = in_heap;
        ++live_;
        return (static_cast<EventId>(s.gen) << 32) | index;
    }

    EventId alloc_slot(InlineFn&& fn, bool in_heap)
    {
        std::uint32_t index;
        Slot& s = grab_slot(index);
        s.fn = std::move(fn);
        return finish_slot(s, index, in_heap);
    }

    /** Assign the event's (when, seq) and enqueue it on its lane. */
    void commit_entry(Time when, EventId id, bool to_heap)
    {
        Entry e{when, seq_bias_ | next_seq_++, id};
#ifdef HM_KERNEL_SHADOW
        shadow_.emplace(when, e.seq, id);
#endif
        slots_[slot_of(id)].silent = scheduling_silent_;
        if (track_sends_ && !scheduling_silent_)
            send_push(Entry{when, send_seq_++, id});
        if (to_heap)
            heap_push(e);
        else
            wheel_insert(e);
    }

    /**
     * Push onto the send-horizon heap. Stale entries (events that ran
     * or were cancelled) are only dropped lazily at the top, so the
     * heap is compacted whenever it can no longer be mostly live.
     * Entries carry their own seq counter so enabling tracking never
     * perturbs kernel event ordering.
     */
    void send_push(Entry e)
    {
        if (send_heap_.size() > 2 * live_ + 64) {
            std::size_t keep = 0;
            for (const Entry& s : send_heap_)
                if (slot_live(s.id))
                    send_heap_[keep++] = s;
            send_heap_.resize(keep);
            std::make_heap(send_heap_.begin(), send_heap_.end(),
                           EntryLater{});
        }
        send_heap_.push_back(e);
        std::push_heap(send_heap_.begin(), send_heap_.end(), EntryLater{});
    }

    void release_slot(std::uint32_t index)
    {
        Slot& s = slots_[index];
#ifdef HM_KERNEL_SHADOW
        const EventId rid = (static_cast<EventId>(s.gen) << 32) | index;
        for (const auto& t : shadow_) {
            if (std::get<2>(t) == rid) {
                std::fprintf(stderr,
                             "SHADOW BAD RELEASE: slot %u gen %u released "
                             "while shadow holds (when=%lld seq=%llu)\n",
                             index, s.gen, (long long)std::get<0>(t),
                             (unsigned long long)std::get<1>(t));
                std::abort();
            }
        }
#endif
        s.fn.reset();
        s.live = false;
        if (++s.gen == 0)
            s.gen = 1;  // Keep EventId 0 forever invalid across wraps.
        s.next_free = free_head_;
        free_head_ = index;
        --live_;
    }

    void heap_push(Entry e)
    {
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end(), EntryLater{});
    }

    void heap_compact();
    /** Out-of-line part of heap_peek: pop stale tops, find the head. */
    const Entry* heap_peek_slow();

    /** Live heap head, lazily dropping stale tops. nullptr if none. */
    const Entry* heap_peek()
    {
        if (heap_.empty())
            return nullptr;
        if (slot_live(heap_.front().id))
            return &heap_.front();
        return heap_peek_slow();
    }

    /** Out-of-line insert: bucket routing and mid-run splices. */
    void wheel_insert_slow(Entry e, std::uint64_t tick);

    void wheel_insert(Entry e)
    {
        const std::uint64_t tick =
            static_cast<std::uint64_t>(e.when) >> kGranularityBits;
        // Hot case: schedule-soon-run-soon chains arrive in
        // (when, seq) order and append to the sorted ready run.
        if (tick <= cur_tick_ &&
            (ready_.empty() || entry_earlier(ready_.back(), e))) {
            ++wheel_count_;
            ready_.push_back(e);
            return;
        }
        wheel_insert_slow(e, tick);
    }

    /** Stage the next occupied bucket into ready_; false if empty. */
    bool wheel_advance();
    /** Out-of-line wheel head: stage buckets, skip stale, advance. */
    const Entry* wheel_peek_slow();
    void wheel_compact();

    /** Live wheel head (sorted ready run), advancing as needed. */
    const Entry* wheel_peek()
    {
        // Fast path: the per-tick staging epoch says nothing new
        // arrived for the cursor's tick since the last merge (one
        // counter compare, no occupancy-bitmap probe) and the head of
        // the ready run is live.
        if (stage_epoch_ == staged_epoch_ && ready_pos_ < ready_.size()) {
            const Entry& e = ready_[ready_pos_];
            if (slot_live(e.id))
                return &e;
        }
        return wheel_peek_slow();
    }

    /** Execute one event if (peeked) min time <= until. */
    bool execute_next(Time until)
    {
        const Entry* w = config_.use_timer_wheel ? wheel_peek() : nullptr;
        const Entry* h = heap_peek();
        // Lane merge rule: always execute the globally smallest
        // (time, seq) pair; seq was assigned once at schedule time, so
        // cross-lane ties are impossible and order is deterministic.
        bool from_wheel;
        if (w && h)
            from_wheel = entry_earlier(*w, *h);
        else
            from_wheel = w != nullptr;
        const Entry* next = from_wheel ? w : h;
#ifdef HM_KERNEL_SHADOW
        if (!next && !shadow_.empty()) {
            const auto& s = *shadow_.begin();
            std::fprintf(stderr,
                         "SHADOW LOST: queue drained but %zu shadow "
                         "entries remain, first (when=%lld seq=%llu "
                         "id=%llx) cur_tick=%llu ready=%zu/%zu "
                         "wheel_count=%zu heap=%zu\n",
                         shadow_.size(), (long long)std::get<0>(s),
                         (unsigned long long)std::get<1>(s),
                         (unsigned long long)std::get<2>(s),
                         (unsigned long long)cur_tick_, ready_pos_,
                         ready_.size(), wheel_count_, heap_.size());
            for (std::size_t i = 0; i < ready_.size(); ++i) {
                std::fprintf(
                    stderr,
                    "  ready[%zu]: when=%lld seq=%llu id=%llx live=%d\n",
                    i, (long long)ready_[i].when,
                    (unsigned long long)ready_[i].seq,
                    (unsigned long long)ready_[i].id,
                    (int)slot_live(ready_[i].id));
            }
            std::fprintf(stderr, "  use_wheel=%d now=%lld\n",
                         (int)config_.use_timer_wheel, (long long)now_);
            std::abort();
        }
#endif
        if (!next || next->when > until)
            return false;
        const Entry e = *next;
#ifdef HM_KERNEL_SHADOW
        if (shadow_.empty() ||
            *shadow_.begin() != std::tuple(e.when, e.seq, e.id)) {
            std::fprintf(stderr,
                         "SHADOW MISMATCH: popped (when=%lld seq=%llu "
                         "id=%llx from_wheel=%d) expected (when=%lld "
                         "seq=%llu id=%llx) cur_tick=%llu ready=%zu/%zu "
                         "wheel_count=%zu heap=%zu\n",
                         (long long)e.when, (unsigned long long)e.seq,
                         (unsigned long long)e.id, (int)from_wheel,
                         shadow_.empty()
                             ? -1LL
                             : (long long)std::get<0>(*shadow_.begin()),
                         shadow_.empty() ? 0ULL
                                         : (unsigned long long)std::get<1>(
                                               *shadow_.begin()),
                         shadow_.empty() ? 0ULL
                                         : (unsigned long long)std::get<2>(
                                               *shadow_.begin()),
                         (unsigned long long)cur_tick_, ready_pos_,
                         ready_.size(), wheel_count_, heap_.size());
            std::abort();
        }
        shadow_.erase(shadow_.begin());
#endif
        if (from_wheel) {
            ++ready_pos_;
            --wheel_count_;
        } else {
            std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
            heap_.pop_back();
        }
        now_ = e.when;
        running_silent_ = slots_[slot_of(e.id)].silent;
        InlineFn fn = std::move(slots_[slot_of(e.id)].fn);
        release_slot(slot_of(e.id));
        if (fn) {
            running_ = &fn;
            fn();
            running_ = nullptr;
        }
        running_silent_ = false;
        ++executed_;
        return true;
    }

    /** Same-time tie class for envelope deliveries (see above). */
    static constexpr std::uint64_t kEnvelopeSeqClass = 1ull << 63;
    /** Origin field width inside an envelope seq (see above). */
    static constexpr int kEnvelopeOriginBits = 25;

    KernelConfig config_;
    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    /** OR-ed into the committed seq (schedule_envelope_at only). */
    std::uint64_t seq_bias_ = 0;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;

    // --- Slab ---
    std::vector<Slot> slots_;
    std::uint32_t free_head_ = kNoFree;
    std::size_t live_ = 0;
    static constexpr std::uint32_t kNoFree = 0xffffffffu;

    // --- Heap lane ---
    std::vector<Entry> heap_;
    std::size_t heap_dead_ = 0;

    // --- Wheel lane ---
    std::array<Level, 2> levels_;
    /** Level-0 tick (time >> kGranularityBits) the cursor sits on. */
    std::uint64_t cur_tick_ = 0;
    /** Sorted run of all wheel entries with tick <= cur_tick_. */
    std::vector<Entry> ready_;
    std::size_t ready_pos_ = 0;
    /** Entries in ready_ + buckets, including cancelled ones. */
    std::size_t wheel_count_ = 0;
    std::size_t wheel_dead_ = 0;
    /**
     * Per-tick staging epochs: stage_epoch_ bumps whenever entries
     * land in (or the cursor moves onto) an occupied cursor bucket;
     * staged_epoch_ records the value at the last ready-run merge.
     * Equal epochs mean wheel_peek can skip the bucket probe and the
     * re-sort entirely — nothing new arrived for the current tick.
     */
    std::uint64_t stage_epoch_ = 0;
    std::uint64_t staged_epoch_ = 0;

    /** Closure currently executing (for rearm_at), else nullptr. */
    InlineFn* running_ = nullptr;

    // --- Send-horizon tracking (see track_send_horizon) ---
    bool track_sends_ = false;
    /** Set across commit_entry by the schedule_silent_* wrappers. */
    bool scheduling_silent_ = false;
    /** Silence class of the executing event (rearm inheritance). */
    bool running_silent_ = false;
    /** Min-heap of pending send-capable events (lazy stale drop). */
    std::vector<Entry> send_heap_;
    std::uint64_t send_seq_ = 0;

#ifdef HM_KERNEL_SHADOW
  public:
    std::set<std::tuple<Time, std::uint64_t, EventId>> shadow_;
#endif
};

/**
 * Re-arm handle passed to recurring() bodies.
 *
 * Calling again_in()/again_at() relocates the running closure into a
 * fresh slab slot (Simulator::rearm_at), so a recurring task re-arms
 * with no per-tick heap allocation: small bodies stay inline in the
 * slot, oversized bodies keep reusing the single heap cell allocated
 * when the chain started. Not re-arming ends the chain — the closure
 * (and its captures) are destroyed when the invocation returns, which
 * is what frees the state the old shared_ptr-based recurring() leaked
 * behind strong self-cycles.
 *
 * Because re-arming moves the closure, again_*() must be the last
 * statement of the body that touches its captures.
 */
class Recur
{
  public:
    explicit Recur(Simulator& simulator) : simulator_(&simulator) {}

    /** Run this body again @p delay after now. */
    EventId again_in(Time delay) const { return simulator_->rearm_in(delay); }

    /** Run this body again at absolute time @p when. */
    EventId again_at(Time when) const { return simulator_->rearm_at(when); }

    /** The kernel this task runs on. */
    Simulator& sim() const { return *simulator_; }

    /** Current simulated time (shorthand for sim().now()). */
    Time now() const { return simulator_->now(); }

  private:
    Simulator* simulator_;
};

namespace detail {

/** The slab-resident wrapper recurring() schedules. */
template <typename Body>
struct RecurringTask
{
    Simulator* simulator;
    Body body;

    void operator()() { body(Recur{*simulator}); }
};

}  // namespace detail

/**
 * Schedule @p body as a self-rescheduling task, first run after
 * @p first_delay.
 *
 * @p body is `void(const Recur&)`; calling `self.again_in(dt)` (or
 * again_at) re-arms it for another round, returning without re-arming
 * ends the chain and frees the captures. The body lives directly in
 * the event-kernel slab slot and re-arms by relocation, so steady-state
 * ticking allocates nothing.
 *
 * @return the EventId of the first arming (cancellable like any event;
 *         later re-armings produce fresh ids returned by again_*()).
 */
template <typename Body>
EventId recurring(Simulator& simulator, Time first_delay, Body body)
{
    return simulator.schedule_in(
        first_delay,
        detail::RecurringTask<Body>{&simulator, std::move(body)});
}

/**
 * recurring() for *silent* bodies — ticks the send-horizon tracker
 * never has to fear (see Simulator::track_send_horizon). The silence
 * class survives every re-arm: again_in()/again_at() inherit it from
 * the running event. The body must uphold the silent contract: no
 * transfers/posts, and any event it schedules must itself be silent.
 */
template <typename Body>
EventId recurring_silent(Simulator& simulator, Time first_delay, Body body)
{
    return simulator.schedule_silent_in(
        first_delay,
        detail::RecurringTask<Body>{&simulator, std::move(body)});
}

}  // namespace hivemind::sim

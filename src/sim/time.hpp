#pragma once

/**
 * @file
 * Simulated-time representation for the HiveMind discrete-event kernel.
 *
 * Time is an integer count of nanoseconds since the start of the
 * simulation. Integer time keeps event ordering exact and runs
 * reproducibly across platforms; helpers convert to and from floating
 * point seconds for rate arithmetic.
 */

#include <cstdint>

namespace hivemind::sim {

/** Simulated time in nanoseconds since simulation start. */
using Time = std::int64_t;

/** One nanosecond. */
inline constexpr Time kNanosecond = 1;
/** One microsecond in nanoseconds. */
inline constexpr Time kMicrosecond = 1'000;
/** One millisecond in nanoseconds. */
inline constexpr Time kMillisecond = 1'000'000;
/** One second in nanoseconds. */
inline constexpr Time kSecond = 1'000'000'000;

/** Convert floating point seconds to simulated Time (rounding). */
constexpr Time from_seconds(double s)
{
    return static_cast<Time>(s * static_cast<double>(kSecond) + 0.5);
}

/** Convert floating point milliseconds to simulated Time. */
constexpr Time from_millis(double ms)
{
    return static_cast<Time>(ms * static_cast<double>(kMillisecond) + 0.5);
}

/** Convert floating point microseconds to simulated Time. */
constexpr Time from_micros(double us)
{
    return static_cast<Time>(us * static_cast<double>(kMicrosecond) + 0.5);
}

/** Convert simulated Time to floating point seconds. */
constexpr double to_seconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert simulated Time to floating point milliseconds. */
constexpr double to_millis(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/** Convert simulated Time to floating point microseconds. */
constexpr double to_micros(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

}  // namespace hivemind::sim

#pragma once

/**
 * @file
 * Statistics collection for experiments.
 *
 * Summary accumulates scalar samples and reports moments and exact
 * percentiles (it keeps all samples; experiment scales here are small
 * enough that exactness beats sketching). Histogram buckets samples for
 * PDF-style figures (violin plots in the paper). TimeSeries records
 * (time, value) pairs, and RateMeter converts discrete byte/event
 * arrivals into per-interval rates for bandwidth figures.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hivemind::sim {

/** Accumulator of scalar samples with exact percentile queries. */
class Summary
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples recorded. */
    std::size_t count() const { return samples_.size(); }

    /** Whether no samples were recorded. */
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population standard deviation; 0 when empty. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /**
     * Exact percentile via linear interpolation between order
     * statistics. @p p in [0, 100].
     */
    double percentile(double p) const;

    /** Median (p50). */
    double median() const { return percentile(50.0); }

    /** 99th percentile, the paper's tail-latency metric. */
    double p99() const { return percentile(99.0); }

    /** Merge another summary's samples into this one. */
    void merge(const Summary& other);

    /** All samples, unsorted, in insertion order. */
    const std::vector<double>& samples() const { return samples_; }

  private:
    void ensure_sorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
};

/** Fixed-width histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    /** Create @p bins equal-width buckets spanning [lo, hi). */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record a sample. */
    void add(double x);

    /** Count in bucket @p i (0..bins-1). */
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }

    /** Number of buckets. */
    std::size_t bins() const { return counts_.size(); }

    /** Lower edge of bucket @p i. */
    double bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

    /** Samples below lo / at-or-above hi. */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Total samples recorded including under/overflow. */
    std::uint64_t total() const { return total_; }

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Time-stamped scalar series (e.g., active tasks over time). */
class TimeSeries
{
  public:
    struct Point
    {
        Time t;
        double value;
    };

    /** Append a point; times should be non-decreasing. */
    void add(Time t, double value) { points_.push_back({t, value}); }

    /** All recorded points. */
    const std::vector<Point>& points() const { return points_; }

    /** Whether the series is empty. */
    bool empty() const { return points_.empty(); }

    /**
     * Resample as the mean value in consecutive windows of @p window
     * duration starting at t=0 (empty windows report 0).
     */
    std::vector<double> window_means(Time window, Time until) const;

  private:
    std::vector<Point> points_;
};

/**
 * Converts discrete arrivals (bytes, requests) into per-window rates.
 * Used for the bandwidth-utilization figures (3b, 14b, 17).
 */
class RateMeter
{
  public:
    /** @p window is the averaging interval. */
    explicit RateMeter(Time window) : window_(window) {}

    /** Record @p amount units arriving at time @p t. */
    void add(Time t, double amount);

    /**
     * Per-window rates in units/second for windows [0, until).
     * Windows with no arrivals report 0.
     */
    std::vector<double> rates(Time until) const;

    /** Summary over the per-window rates (mean/median/p99 bandwidth). */
    Summary rate_summary(Time until) const;

    /** Total amount recorded. */
    double total() const { return total_; }

  private:
    Time window_;
    std::vector<double> per_window_;
    double total_ = 0.0;
};

}  // namespace hivemind::sim

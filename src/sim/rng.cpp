#include "sim/rng.hpp"

#include <cmath>

namespace hivemind::sim {

double
Rng::bounded_pareto(double lo, double hi, double alpha)
{
    // Inverse-CDF sampling of the bounded Pareto distribution.
    double u = uniform(0.0, 1.0);
    double la = std::pow(lo, alpha);
    double ha = std::pow(hi, alpha);
    double x = -(u * ha - u * la - ha) / (ha * la);
    return std::pow(x, -1.0 / alpha);
}

}  // namespace hivemind::sim

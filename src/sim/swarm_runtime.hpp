#pragma once

/**
 * @file
 * Sharded simulation runtime: conservative parallel discrete-event
 * execution over N Simulator shards.
 *
 * The SwarmRuntime partitions a swarm across shard kernels and runs
 * them on separate threads using epoch-based conservative
 * synchronization (the classic null-message/lookahead discipline, in
 * barrier form):
 *
 *  - Every cross-shard interaction goes through a *channel* with a
 *    declared minimum latency L >= 1 tick. The global lookahead is
 *    the minimum over all declared channels.
 *  - Each epoch computes H = min over shards of next_time() and the
 *    window W = min(until, H + lookahead - 1). Every shard may run
 *    events with when <= W without any cross-shard information: a
 *    message sent at time t >= H arrives no earlier than t + L > W.
 *  - Shards run run_until(W) in parallel (shard 0 on the caller's
 *    thread, shards 1..N-1 on persistent worker threads bracketed by
 *    two std::barrier phases). Messages sent during the epoch land in
 *    per-(src,dst) mailboxes that only the source shard's thread
 *    writes; the coordinator drains them between epochs, so no locks
 *    are needed on the hot path.
 *  - At the barrier, each destination's envelopes are stable-sorted
 *    by (delivery time, origin actor) and scheduled in that order.
 *
 * Determinism across shard counts: the epoch sequence depends only on
 * the global event horizon and the declared lookahead — neither
 * changes with N — and the merge key (when, origin) is independent of
 * which shard an actor landed on. Provided actors interact *only*
 * through post() (including same-shard neighbours), a run is
 * byte-identical for any shard count, N=1 included.
 */

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hivemind::sim {

/** Coordinates N Simulator shards under conservative epoch sync. */
class SwarmRuntime
{
  public:
    /** One cross-shard message awaiting delivery. */
    struct Envelope
    {
        Time when = 0;              ///< Absolute delivery time.
        std::uint64_t origin = 0;   ///< Sending actor (merge tiebreak).
        InlineFn fn;                ///< Runs on the destination shard.
    };

    /** What one run_until() call did. */
    struct Report
    {
        std::uint64_t epochs = 0;     ///< Barrier rounds executed.
        std::uint64_t executed = 0;   ///< Events run across all shards.
        std::uint64_t forwarded = 0;  ///< Envelopes delivered.
        Time horizon = 0;             ///< Last window upper bound.
    };

    explicit SwarmRuntime(int shards, const KernelConfig& config = {});
    ~SwarmRuntime();

    SwarmRuntime(const SwarmRuntime&) = delete;
    SwarmRuntime& operator=(const SwarmRuntime&) = delete;

    int shards() const { return static_cast<int>(sims_.size()); }

    /** The shard kernels. Schedule shard-local work directly on them. */
    Simulator& shard(int i) { return *sims_[static_cast<std::size_t>(i)]; }

    /** Default round-robin owner for an actor id. */
    int owner_of(std::uint64_t actor) const
    {
        return static_cast<int>(actor % sims_.size());
    }

    /**
     * Declare a channel between two shards (src == dst allowed — and
     * required for shard-count invariance, so that the lookahead does
     * not depend on how actors happen to be partitioned). Every post
     * on the channel must add at least @p min_latency to the sending
     * shard's current time. Tightens the global lookahead.
     */
    void declare_channel(int src, int dst, Time min_latency);

    /** Minimum declared channel latency (kNever if none declared). */
    Time lookahead() const { return lookahead_; }

    /**
     * Send @p fn to run on shard @p dst at absolute time @p when.
     * Must be called from @p src's thread (shard 0 = the coordinator
     * thread) during an epoch or before run_until(). @p when must
     * respect the declared channel latency; the drain step enforces
     * that it lands strictly beyond the current window.
     */
    void post(int src, int dst, Time when, std::uint64_t origin,
              InlineFn fn);

    /**
     * Run every shard up to @p until (inclusive) in lookahead-bounded
     * epochs, delivering cross-shard envelopes at each barrier.
     * Returns once no shard holds an event at or before @p until.
     */
    Report run_until(Time until);

    /**
     * Like run_until(), but additionally evaluates @p stop on the
     * coordinator thread between epochs (after the drain) and returns
     * early once it yields true. Because the epoch window sequence
     * depends only on the global event horizon and the declared
     * lookahead, the epoch in which a deterministic simulation-time
     * condition is first observed is invariant across shard counts —
     * an early stop preserves byte-identical state at any N.
     */
    Report run_until(Time until, const std::function<bool()>& stop);

    /** Sum of pending events across shards (between epochs only). */
    std::size_t pending() const;

  private:
    void worker(int i);
    /** Deliver all mailboxes; returns envelopes forwarded. */
    std::uint64_t drain(Time window);

    std::vector<std::unique_ptr<Simulator>> sims_;
    /// mail_[src * N + dst]: written only by src's thread in-epoch.
    std::vector<std::vector<Envelope>> mail_;
    std::vector<Envelope> merge_;  ///< Drain scratch, one dst at a time.
    Time lookahead_ = Simulator::kNever;

    // Parallel machinery (absent for N == 1).
    std::vector<std::jthread> threads_;
    std::unique_ptr<std::barrier<>> start_;
    std::unique_ptr<std::barrier<>> finish_;
    Time window_ = 0;    ///< Set by coordinator before the start barrier.
    bool quit_ = false;  ///< Read by workers after the start barrier.
};

}  // namespace hivemind::sim

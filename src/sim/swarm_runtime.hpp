#pragma once

/**
 * @file
 * Sharded simulation runtime: conservative parallel discrete-event
 * execution over N Simulator shards.
 *
 * The SwarmRuntime partitions a swarm across shard kernels and runs
 * them on separate threads using epoch-based conservative
 * synchronization (the classic null-message/lookahead discipline, in
 * barrier form):
 *
 *  - Every cross-shard interaction goes through a *channel* with a
 *    declared minimum latency L >= 1 tick. The full per-(src,dst)
 *    latency matrix is kept; the global lookahead (min over channels)
 *    remains available as a fallback.
 *  - Adaptive per-pair windows (the default): each epoch samples
 *    every shard's *send horizon* s_i = next_send_time(), the time of
 *    its earliest pending send-capable event (silent-classified local
 *    noise is skipped — see Simulator::track_send_horizon), closes
 *    the horizons transitively under the channel graph (the LBTS
 *    relaxation s_i <- min(s_i, s_j + L(j,i)), so a shard's horizon
 *    also covers sends *provoked* by messages it has not received
 *    yet — e.g. a request from j at t can make i reply by
 *    t + L(j,i)), and gives each destination its own window
 *        W_j = min(until, min over i with L(i,j) declared of
 *                          s_i + L(i,j) - 1).
 *    Any message reaching j descends from some pending send-capable
 *    event; walking its reaction chain through the closed horizons
 *    shows it arrives after W_j, so it is staged before the first
 *    epoch whose window covers it. Since s_i >= H and L >= 1,
 *    W_j >= H — the shard holding the global horizon always
 *    progresses. Channels with src == dst participate like any other
 *    (self-sends hop through the mailbox, so they bound the sender's
 *    own window too).
 *  - Global-lookahead mode (set_adaptive_lookahead(false); the
 *    platform layer maps HIVEMIND_GLOBAL_LOOKAHEAD=1 onto it): every
 *    shard gets the classic
 *    W = min(until, H + lookahead - 1), H = min next_time().
 *  - Shards run run_until(W) in parallel (shard 0 on the caller's
 *    thread, shards 1..N-1 on persistent worker threads bracketed by
 *    two std::barrier phases). Messages sent during the epoch land in
 *    per-(src,dst) mailboxes that only the source shard's thread
 *    writes; the coordinator drains them between epochs, so no locks
 *    are needed on the hot path.
 *  - At the barrier, each destination's envelopes are stable-sorted
 *    by (delivery time, origin actor) and scheduled in that order.
 *
 * Determinism across shard counts: the epoch sequence depends only on
 * the global event horizon and the declared lookahead — neither
 * changes with N — and the merge key (when, origin) is independent of
 * which shard an actor landed on. Provided actors interact *only*
 * through post() (including same-shard neighbours), a run is
 * byte-identical for any shard count, N=1 included.
 */

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hivemind::sim {

/** Coordinates N Simulator shards under conservative epoch sync. */
class SwarmRuntime
{
  public:
    /** One cross-shard message awaiting delivery. */
    struct Envelope
    {
        Time when = 0;              ///< Absolute delivery time.
        std::uint64_t origin = 0;   ///< Sending actor (merge tiebreak).
        InlineFn fn;                ///< Runs on the destination shard.
    };

    /** What one run_until() call did. */
    struct Report
    {
        std::uint64_t epochs = 0;     ///< Barrier rounds executed.
        std::uint64_t executed = 0;   ///< Events run across all shards.
        std::uint64_t forwarded = 0;  ///< Envelopes delivered.
        Time horizon = 0;             ///< Last window upper bound.
    };

    explicit SwarmRuntime(int shards, const KernelConfig& config = {});
    ~SwarmRuntime();

    SwarmRuntime(const SwarmRuntime&) = delete;
    SwarmRuntime& operator=(const SwarmRuntime&) = delete;

    int shards() const { return static_cast<int>(sims_.size()); }

    /** The shard kernels. Schedule shard-local work directly on them. */
    Simulator& shard(int i) { return *sims_[static_cast<std::size_t>(i)]; }

    /** Default round-robin owner for an actor id. */
    int owner_of(std::uint64_t actor) const
    {
        return static_cast<int>(actor % sims_.size());
    }

    /**
     * Declare a channel between two shards (src == dst allowed — and
     * required for shard-count invariance, so that the lookahead does
     * not depend on how actors happen to be partitioned). Every post
     * on the channel must add at least @p min_latency to the sending
     * shard's current time. Tightens the global lookahead.
     */
    void declare_channel(int src, int dst, Time min_latency);

    /** Minimum declared channel latency (kNever if none declared). */
    Time lookahead() const { return lookahead_; }

    /** Declared (src, dst) channel latency; kNever if undeclared. */
    Time channel_latency(int src, int dst) const
    {
        return lat_[static_cast<std::size_t>(src) * sims_.size() +
                    static_cast<std::size_t>(dst)];
    }

    /**
     * Toggle adaptive per-pair windows (on by default; the platform
     * options layer maps HIVEMIND_GLOBAL_LOOKAHEAD=1 onto this
     * switch). Also arms / disarms send-horizon tracking on every
     * shard kernel. Call before run_until().
     */
    void set_adaptive_lookahead(bool on);

    /** Whether adaptive per-pair windows are active. */
    bool adaptive_lookahead() const { return adaptive_; }

    /**
     * The window shard @p dst ran to in the most recent epoch
     * (introspection for window-math tests).
     */
    Time window_of(int dst) const
    {
        return windows_[static_cast<std::size_t>(dst)];
    }

    /**
     * Send @p fn to run on shard @p dst at absolute time @p when.
     * Must be called from @p src's thread (shard 0 = the coordinator
     * thread) during an epoch or before run_until(). @p when must
     * respect the declared channel latency; the drain step enforces
     * that it lands strictly beyond the current window.
     */
    void post(int src, int dst, Time when, std::uint64_t origin,
              InlineFn fn);

    /**
     * Run every shard up to @p until (inclusive) in lookahead-bounded
     * epochs, delivering cross-shard envelopes at each barrier.
     * Returns once no shard holds an event at or before @p until.
     */
    Report run_until(Time until);

    /**
     * Like run_until(), but additionally evaluates @p stop on the
     * coordinator thread between epochs (after the drain) and returns
     * early once it yields true. With adaptive lookahead OFF the
     * epoch window sequence depends only on the global event horizon
     * and the declared lookahead, so the epoch in which a
     * deterministic simulation-time condition is first observed is
     * invariant across shard counts and an early stop preserves
     * byte-identical state at any N. With adaptive windows the epoch
     * sequence is N-dependent; callers that need shard-count-
     * invariant early stops should instead call run_until(t) in
     * fixed simulated-time slices and test the condition at slice
     * boundaries (see ShardedScenarioEngine::run).
     */
    Report run_until(Time until, const std::function<bool()>& stop);

    /** Sum of pending events across shards (between epochs only). */
    std::size_t pending() const;

  private:
    void worker(int i);
    /** Compute this epoch's per-shard windows into windows_. */
    void compute_windows(Time until, Time h);
    /** Move all mailboxes into the per-dst staging buffers. */
    void drain();
    /**
     * Schedule staged envelopes with when <= the dst's window, in
     * (when, origin) order; returns envelopes released.
     *
     * Staging + sorted release is what keeps tie-breaking invariant
     * across shard counts under adaptive windows: the epoch at which
     * a send executes (and hence at which its envelope *arrives*)
     * depends on N, but every envelope for a given (dst, when) is
     * provably staged before the first epoch whose window reaches
     * that time — while the send is pending, s_src <= send time keeps
     * W_dst < when. Releasing them together, sorted, at that epoch
     * (with the kernel's envelope seq class for local-vs-envelope
     * ties) makes same-time execution order independent of arrival
     * timing.
     */
    std::uint64_t release_staged();
    /** Earliest staged delivery time for @p dst, or kNever. */
    Time staged_min(std::size_t dst) const;

    std::vector<std::unique_ptr<Simulator>> sims_;
    /// mail_[src * N + dst]: written only by src's thread in-epoch.
    std::vector<std::vector<Envelope>> mail_;
    /// staged_[dst]: envelopes awaiting a window that covers them.
    std::vector<std::vector<Envelope>> staged_;
    std::vector<Envelope> merge_;  ///< Release scratch, one dst at a time.
    Time lookahead_ = Simulator::kNever;
    /// lat_[src * N + dst]: declared channel latency (kNever = none).
    std::vector<Time> lat_;
    bool adaptive_ = true;
    std::vector<Time> sends_;  ///< Per-epoch send-horizon scratch.

    // Parallel machinery (absent for N == 1).
    std::vector<std::jthread> threads_;
    std::unique_ptr<std::barrier<>> start_;
    std::unique_ptr<std::barrier<>> finish_;
    /// Per-shard epoch windows; written by the coordinator before the
    /// start barrier, read by workers after it.
    std::vector<Time> windows_;
    bool quit_ = false;  ///< Read by workers after the start barrier.
};

}  // namespace hivemind::sim

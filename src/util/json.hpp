#pragma once

/**
 * @file
 * The one JSON layer of the repo.
 *
 * Every machine-readable artifact — BENCH_*.json bench baselines,
 * fuzz reproducers (fault::plan_to_json), scenario/fleet profiles and
 * the fleet driver's streaming JSONL records — is emitted by
 * util::Json and parsed by util::JsonCursor, so escaping and number
 * formatting are identical everywhere by construction:
 *
 *  - Strings escape `"`, `\`, and all control characters (common
 *    ones as \n, \r, \t, the rest as \u00XX).
 *  - Doubles print as the shortest decimal that strtod() parses back
 *    to the same bits (%.15g .. %.17g), so serialize -> parse is the
 *    identity on finite values.
 *  - Integers print exactly (no double round-trip).
 *
 * JsonCursor is a strict recursive-descent micro-parser for that
 * dialect: objects, arrays, strings (standard escapes incl. \uXXXX
 * for the BMP), numbers, booleans and null. It is cursor-style on
 * purpose — schema layers (fault plans, scenario profiles, fleet
 * profiles) walk it key by key and reject unknown keys loudly, which
 * a DOM-style loader makes too easy to forget.
 */

#include <cstdint>
#include <string>
#include <string_view>

namespace hivemind::util {

/** Shortest decimal string that round-trips @p v through strtod(). */
std::string format_double(double v);

/** JSON string escaping (quotes included in the result). */
std::string quote(std::string_view s);

/**
 * Incremental JSON builder. Json::object()/Json::array() start a
 * value; kv()/push() append; str() renders. Values nest by passing a
 * finished Json to kv()/push().
 */
class Json
{
  public:
    static Json object() { return Json(true); }
    static Json array() { return Json(false); }

    Json& kv(const std::string& key, double v)
    {
        return raw_kv(key, format_double(v));
    }
    Json& kv(const std::string& key, std::uint64_t v)
    {
        return raw_kv(key, std::to_string(v));
    }
    Json& kv(const std::string& key, std::int64_t v)
    {
        return raw_kv(key, std::to_string(v));
    }
    Json& kv(const std::string& key, int v)
    {
        return raw_kv(key, std::to_string(v));
    }
    Json& kv(const std::string& key, unsigned v)
    {
        return raw_kv(key, std::to_string(v));
    }
    Json& kv(const std::string& key, bool v)
    {
        return raw_kv(key, v ? "true" : "false");
    }
    Json& kv(const std::string& key, const std::string& v)
    {
        return raw_kv(key, quote(v));
    }
    Json& kv(const std::string& key, const char* v)
    {
        return raw_kv(key, quote(v));
    }
    Json& kv(const std::string& key, const Json& v)
    {
        return raw_kv(key, v.str());
    }

    Json& push(double v) { return raw_push(format_double(v)); }
    Json& push(std::uint64_t v) { return raw_push(std::to_string(v)); }
    Json& push(std::int64_t v) { return raw_push(std::to_string(v)); }
    Json& push(int v) { return raw_push(std::to_string(v)); }
    Json& push(const std::string& v) { return raw_push(quote(v)); }
    Json& push(const char* v) { return raw_push(quote(v)); }
    Json& push(const Json& v) { return raw_push(v.str()); }

    std::string str() const
    {
        return (object_ ? "{" : "[") + body_ + (object_ ? "}" : "]");
    }

  private:
    explicit Json(bool object) : object_(object) {}

    Json& raw_kv(const std::string& key, const std::string& value)
    {
        if (!body_.empty())
            body_ += ',';
        body_ += quote(key) + ":" + value;
        return *this;
    }

    Json& raw_push(const std::string& value)
    {
        if (!body_.empty())
            body_ += ',';
        body_ += value;
        return *this;
    }

    bool object_;
    std::string body_;
};

/**
 * Strict cursor over a JSON text. All errors throw
 * std::invalid_argument prefixed with @p what_for (e.g. "plan JSON").
 * The cursor never allocates a DOM; callers drive it:
 *
 *   JsonCursor in(text, "profile JSON");
 *   in.expect('{');
 *   while (!in.at('}')) { ... in.parse_string() ... }
 */
class JsonCursor
{
  public:
    explicit JsonCursor(std::string_view text,
                        std::string what_for = "JSON");

    /** True and advance when the next non-space char is @p c. */
    bool consume(char c);
    /** consume(c) or fail. */
    void expect(char c);
    /** Peek: next non-space char is @p c (no advance). */
    bool at(char c);
    /** All input consumed (trailing whitespace allowed). */
    bool done();

    /** Quoted string with standard escapes (incl. BMP \uXXXX). */
    std::string parse_string();
    /** Any JSON number, as double. */
    double parse_number();
    /** Number that must be integral and fit std::int64_t. */
    std::int64_t parse_int();
    bool parse_bool();

    /** Skip one complete value of any type (for tolerant readers). */
    void skip_value();

    [[noreturn]] void fail(const std::string& what) const;

  private:
    void skip_ws();

    std::string what_for_;
    const char* p_;
    const char* end_;
};

/**
 * Walk the members of one JSON object: calls
 * `member(cursor, key)` once per key with the cursor parked right
 * after the ':'; the callback must consume exactly the value.
 * Handles the '{' '}' and commas. Usage:
 *
 *   parse_object(in, [&](JsonCursor& in, const std::string& key) {
 *       if (key == "seed") seed = in.parse_int();
 *       else in.fail("unknown key \"" + key + "\"");
 *   });
 */
template <typename Fn>
void
parse_object(JsonCursor& in, Fn&& member)
{
    in.expect('{');
    bool first = true;
    while (!in.at('}')) {
        if (!first)
            in.expect(',');
        first = false;
        const std::string key = in.parse_string();
        in.expect(':');
        member(in, key);
    }
    in.expect('}');
}

/** Walk the elements of one JSON array; `element(cursor)` per item. */
template <typename Fn>
void
parse_array(JsonCursor& in, Fn&& element)
{
    in.expect('[');
    bool first = true;
    while (!in.at(']')) {
        if (!first)
            in.expect(',');
        first = false;
        element(in);
    }
    in.expect(']');
}

}  // namespace hivemind::util

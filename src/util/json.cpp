#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hivemind::util {

std::string
format_double(double v)
{
    // Shortest %.<p>g that strtod() reads back to the same bits; 17
    // significant digits always round-trip IEEE doubles, so the loop
    // terminates.
    char buf[64];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
quote(std::string_view s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

JsonCursor::JsonCursor(std::string_view text, std::string what_for)
    : what_for_(std::move(what_for)),
      p_(text.data()),
      end_(text.data() + text.size())
{
}

void
JsonCursor::skip_ws()
{
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_)))
        ++p_;
}

bool
JsonCursor::consume(char c)
{
    skip_ws();
    if (p_ < end_ && *p_ == c) {
        ++p_;
        return true;
    }
    return false;
}

void
JsonCursor::expect(char c)
{
    if (!consume(c))
        fail(std::string("expected '") + c + "'");
}

bool
JsonCursor::at(char c)
{
    skip_ws();
    return p_ < end_ && *p_ == c;
}

bool
JsonCursor::done()
{
    skip_ws();
    return p_ == end_;
}

std::string
JsonCursor::parse_string()
{
    expect('"');
    std::string out;
    while (p_ < end_ && *p_ != '"') {
        char c = *p_++;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (p_ >= end_)
            fail("unterminated escape sequence");
        const char esc = *p_++;
        switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
            if (end_ - p_ < 4)
                fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
                const char h = *p_++;
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= static_cast<unsigned>(h - 'A' + 10);
                else
                    fail("bad hex digit in \\u escape");
            }
            // UTF-8 encode the BMP; surrogate pairs are not a thing
            // any writer in this repo produces.
            if (code >= 0xd800 && code <= 0xdfff)
                fail("surrogate \\u escapes are not supported");
            if (code < 0x80) {
                out += static_cast<char>(code);
            } else if (code < 0x800) {
                out += static_cast<char>(0xc0 | (code >> 6));
                out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
                out += static_cast<char>(0xe0 | (code >> 12));
                out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
        }
        default:
            fail("unknown escape sequence");
        }
    }
    expect('"');
    return out;
}

double
JsonCursor::parse_number()
{
    skip_ws();
    char* after = nullptr;
    const double v = std::strtod(p_, &after);
    if (after == p_)
        fail("expected a number");
    p_ = after;
    return v;
}

std::int64_t
JsonCursor::parse_int()
{
    const double v = parse_number();
    const std::int64_t i = static_cast<std::int64_t>(v);
    if (static_cast<double>(i) != v)
        fail("expected an integer");
    return i;
}

bool
JsonCursor::parse_bool()
{
    skip_ws();
    if (end_ - p_ >= 4 && std::string_view(p_, 4) == "true") {
        p_ += 4;
        return true;
    }
    if (end_ - p_ >= 5 && std::string_view(p_, 5) == "false") {
        p_ += 5;
        return false;
    }
    fail("expected true/false");
}

void
JsonCursor::skip_value()
{
    skip_ws();
    if (p_ >= end_)
        fail("expected a value");
    if (*p_ == '"') {
        parse_string();
        return;
    }
    if (*p_ == '{') {
        parse_object(*this, [](JsonCursor& in, const std::string&) {
            in.skip_value();
        });
        return;
    }
    if (*p_ == '[') {
        parse_array(*this, [](JsonCursor& in) { in.skip_value(); });
        return;
    }
    if (*p_ == 't' || *p_ == 'f') {
        parse_bool();
        return;
    }
    if (end_ - p_ >= 4 && std::string_view(p_, 4) == "null") {
        p_ += 4;
        return;
    }
    parse_number();
}

void
JsonCursor::fail(const std::string& what) const
{
    throw std::invalid_argument("malformed " + what_for_ + ": " + what);
}

}  // namespace hivemind::util

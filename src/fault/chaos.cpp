#include "fault/chaos.hpp"

#include <algorithm>
#include <utility>

namespace hivemind::fault {

ChaosEngine::ChaosEngine(sim::Simulator& simulator, sim::Rng& rng,
                         FaultPlan plan)
    : simulator_(&simulator), rng_(rng.fork()), plan_(std::move(plan))
{
}

void
ChaosEngine::attach_devices(std::size_t count,
                            std::function<void(std::size_t, bool)> set_failed,
                            std::function<geo::Vec2(std::size_t)> position)
{
    device_count_ = count;
    set_failed_ = std::move(set_failed);
    position_ = std::move(position);
    down_.assign(count, 0);
}

void
ChaosEngine::attach_network(net::SwarmTopology& network)
{
    network_ = &network;
}

void
ChaosEngine::attach_faas(cloud::FaasRuntime& faas)
{
    faas_ = &faas;
}

void
ChaosEngine::attach_datastore(cloud::DataStore& store)
{
    store_ = &store;
}

void
ChaosEngine::attach_controller(std::function<void(const FaultEvent&)> handler)
{
    controller_handler_ = std::move(handler);
}

void
ChaosEngine::start()
{
    // Malformed plans fail loudly before anything is scheduled: an
    // out-of-range target or zero-width window would otherwise inject
    // a silently-meaningless event. Server/horizon bounds are only
    // known to the scenario layer, which validates them separately.
    PlanBounds bounds;
    bounds.devices = device_count_;
    plan_.validate_or_throw(bounds);
    running_ = true;
    for (const FaultEvent& e : plan_.events) {
        simulator_->schedule_at(e.at, [this, e]() {
            if (running_)
                fire(e);
        });
    }
}

void
ChaosEngine::stop()
{
    running_ = false;
    if (finalized_)
        return;
    finalized_ = true;
    if (network_ != nullptr) {
        metrics_.frames_dropped = network_->frames_dropped();
        metrics_.wireless_retransmissions = network_->retransmissions();
    }
    if (faas_ != nullptr) {
        metrics_.killed_invocations = faas_->killed_invocations();
        metrics_.work_lost_core_ms = faas_->work_lost_core_ms();
        metrics_.reexecuted_core_ms = faas_->reexecuted_core_ms();
    }
    if (store_ != nullptr)
        metrics_.datastore_outages = store_->outages();
}

bool
ChaosEngine::device_down(std::size_t device) const
{
    return device < down_.size() && down_[device] != 0;
}

void
ChaosEngine::note_detected(std::size_t device)
{
    auto it = crash_at_.find(device);
    if (it == crash_at_.end())
        return;  // Not our fault (battery death etc.).
    metrics_.mttd_s.add(sim::to_seconds(simulator_->now() - it->second.at));
}

void
ChaosEngine::note_repaired(std::size_t device)
{
    auto it = crash_at_.find(device);
    if (it == crash_at_.end())
        return;
    // A transient crash stays an open incident until the device itself
    // rejoins; the interim repartition only patches around it.
    if (it->second.transient && device_down(device))
        return;
    metrics_.mttr_s.add(sim::to_seconds(simulator_->now() - it->second.at));
    crash_at_.erase(it);
}

void
ChaosEngine::note_controller_detected()
{
    if (controller_crash_at_ < 0 || controller_detected_)
        return;
    controller_detected_ = true;
    metrics_.controller_mttd_s.add(
        sim::to_seconds(simulator_->now() - controller_crash_at_));
}

void
ChaosEngine::note_controller_restored(double checkpoint_age_s)
{
    if (controller_crash_at_ < 0)
        return;
    metrics_.controller_mttr_s.add(
        sim::to_seconds(simulator_->now() - controller_crash_at_));
    if (checkpoint_age_s >= 0.0) {
        metrics_.checkpoint_age_s.add(checkpoint_age_s);
        // A restore with a real checkpoint age is a standby takeover;
        // a partition heals with the same instance (age < 0).
        ++metrics_.controller_failovers;
    }
    controller_crash_at_ = -1;
    controller_detected_ = false;
}

void
ChaosEngine::fire(const FaultEvent& e)
{
    switch (e.kind) {
    case FaultKind::DeviceCrash:
        crash_device(e.target, e.duration);
        break;
    case FaultKind::SpatialBurst:
        fire_spatial_burst(e);
        break;
    case FaultKind::LinkBurst:
        fire_link_burst(e);
        break;
    case FaultKind::Partition:
        if (network_ != nullptr && e.target < device_count_) {
            ++metrics_.partitions;
            network_->set_device_blocked(e.target, true);
            if (e.duration > 0) {
                std::size_t device = e.target;
                simulator_->schedule_in(e.duration, [this, device]() {
                    network_->set_device_blocked(device, false);
                });
            }
        }
        break;
    case FaultKind::ServerCrash:
        if (faas_ != nullptr) {
            ++metrics_.server_crashes;
            faas_->crash_server(e.target, e.duration);
            // Cluster-side detection is immediate (worker monitors);
            // repair lands when the server rejoins placement.
            if (e.duration > 0)
                metrics_.mttr_s.add(sim::to_seconds(e.duration));
        }
        break;
    case FaultKind::DatastoreOutage:
        if (store_ != nullptr && e.duration > 0)
            store_->fail_until(simulator_->now() + e.duration);
        break;
    case FaultKind::ControllerFailover:
        if (faas_ != nullptr) {
            ++metrics_.controller_failovers;
            faas_->fail_controller(e.takeover ? e.duration : 0);
        }
        break;
    case FaultKind::ControllerCrash:
        ++metrics_.controller_crashes;
        if (controller_crash_at_ < 0) {
            controller_crash_at_ = simulator_->now();
            controller_detected_ = false;
        }
        if (controller_handler_)
            controller_handler_(e);
        break;
    case FaultKind::ControllerPartition:
        ++metrics_.controller_partitions;
        if (controller_handler_)
            controller_handler_(e);
        break;
    }
}

void
ChaosEngine::crash_device(std::size_t device, sim::Time rejoin_after)
{
    if (device >= device_count_ || device_down(device))
        return;
    down_[device] = 1;
    crash_at_[device] = {simulator_->now(), rejoin_after > 0};
    ++metrics_.device_crashes;
    if (set_failed_)
        set_failed_(device, true);
    if (rejoin_after > 0) {
        simulator_->schedule_in(rejoin_after, [this, device]() {
            if (running_)
                rejoin_device(device);
        });
    }
}

void
ChaosEngine::rejoin_device(std::size_t device)
{
    if (!device_down(device))
        return;
    down_[device] = 0;
    ++metrics_.device_rejoins;
    if (set_failed_)
        set_failed_(device, false);
}

void
ChaosEngine::fire_spatial_burst(const FaultEvent& e)
{
    if (!position_)
        return;
    geo::Vec2 center{e.center_x, e.center_y};
    // Victims sorted by (distance, id): deterministic, and burst_count
    // trims to the devices nearest the epicentre.
    std::vector<std::pair<double, std::size_t>> in_radius;
    for (std::size_t d = 0; d < device_count_; ++d) {
        if (device_down(d))
            continue;
        double dist = position_(d).distance_to(center);
        if (dist <= e.radius_m)
            in_radius.emplace_back(dist, d);
    }
    std::sort(in_radius.begin(), in_radius.end());
    std::size_t limit = e.burst_count > 0
        ? std::min(e.burst_count, in_radius.size())
        : in_radius.size();
    for (std::size_t i = 0; i < limit; ++i)
        crash_device(in_radius[i].second, e.duration);
}

void
ChaosEngine::fire_link_burst(const FaultEvent& e)
{
    if (network_ == nullptr || e.duration <= 0)
        return;
    ++metrics_.link_burst_windows;
    sim::Time window_end = simulator_->now() + e.duration;
    // The window opens in the good state; transitions follow the
    // two-state Gilbert-Elliott chain until the window closes.
    network_->set_loss_override(e.loss_good);
    ge_transition(e, window_end, /*to_bad=*/true);
    simulator_->schedule_at(window_end, [this]() {
        if (running_ && network_ != nullptr)
            network_->set_loss_override(-1.0);
    });
}

void
ChaosEngine::ge_transition(FaultEvent e, sim::Time window_end, bool to_bad)
{
    sim::Time dwell = static_cast<sim::Time>(rng_.exponential(
        static_cast<double>(to_bad ? e.mean_good : e.mean_bad)));
    sim::Time when = simulator_->now() + std::max<sim::Time>(dwell, 1);
    if (when >= window_end)
        return;  // The window closes before the next transition.
    simulator_->schedule_at(when, [this, e, window_end, to_bad]() {
        if (!running_ || network_ == nullptr ||
            simulator_->now() >= window_end)
            return;
        network_->set_loss_override(to_bad ? e.loss_bad : e.loss_good);
        ge_transition(e, window_end, !to_bad);
    });
}

}  // namespace hivemind::fault

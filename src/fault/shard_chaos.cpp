#include "fault/shard_chaos.hpp"

namespace hivemind::fault {

ShardChaosReport
route_plan(sim::SwarmRuntime& runtime, const FaultPlan& plan,
           const std::function<int(std::size_t)>& owner,
           const ShardChaosHooks& hooks, int cloud_shard)
{
    ShardChaosReport report;
    for (const FaultEvent& e : plan.events) {
        switch (e.kind) {
        case FaultKind::DeviceCrash: {
            const std::size_t device = e.target;
            sim::Simulator& shard = runtime.shard(owner(device));
            if (hooks.crash_device)
                shard.schedule_at(e.at, [fn = hooks.crash_device, device] {
                    fn(device);
                });
            if (e.duration > 0 && hooks.rejoin_device)
                shard.schedule_at(e.at + e.duration,
                                  [fn = hooks.rejoin_device, device] {
                                      fn(device);
                                  });
            ++report.routed;
            break;
        }
        case FaultKind::LinkBurst: {
            if (!hooks.set_device_loss || hooks.devices == 0 ||
                e.duration <= 0) {
                ++report.unsupported;
                break;
            }
            // Open the bad-state loss window on every device's owner
            // shard; close it by restoring the configured loss. The
            // per-device schedule keeps the loss state local to the
            // owner, so runs stay shard-count invariant.
            for (std::size_t d = 0; d < hooks.devices; ++d) {
                sim::Simulator& shard = runtime.shard(owner(d));
                shard.schedule_at(
                    e.at, [fn = hooks.set_device_loss, d,
                           loss = e.loss_bad] { fn(d, loss); });
                shard.schedule_at(e.at + e.duration,
                                  [fn = hooks.set_device_loss, d] {
                                      fn(d, -1.0);
                                  });
            }
            ++report.routed;
            break;
        }
        case FaultKind::Partition: {
            if (!hooks.partition_device || e.duration <= 0) {
                ++report.unsupported;
                break;
            }
            const std::size_t device = e.target;
            sim::Simulator& shard = runtime.shard(owner(device));
            shard.schedule_at(e.at, [fn = hooks.partition_device, device] {
                fn(device, true);
            });
            shard.schedule_at(e.at + e.duration,
                              [fn = hooks.partition_device, device] {
                                  fn(device, false);
                              });
            ++report.routed;
            break;
        }
        case FaultKind::ServerCrash: {
            if (!hooks.crash_server) {
                ++report.unsupported;
                break;
            }
            const std::size_t server = e.target;
            sim::Simulator& shard = runtime.shard(cloud_shard);
            shard.schedule_at(e.at, [fn = hooks.crash_server, server] {
                fn(server);
            });
            if (e.duration > 0 && hooks.recover_server)
                shard.schedule_at(e.at + e.duration,
                                  [fn = hooks.recover_server, server] {
                                      fn(server);
                                  });
            ++report.routed;
            break;
        }
        case FaultKind::DatastoreOutage: {
            if (!hooks.datastore_outage || e.duration <= 0) {
                ++report.unsupported;
                break;
            }
            sim::Simulator& shard = runtime.shard(cloud_shard);
            shard.schedule_at(e.at, [fn = hooks.datastore_outage,
                                     until = e.duration] { fn(until); });
            ++report.routed;
            break;
        }
        case FaultKind::ControllerPartition: {
            if (!hooks.crash_controller || e.duration <= 0) {
                ++report.unsupported;
                break;
            }
            // Same instance goes dark and comes back; no takeover.
            sim::Simulator& shard0 = runtime.shard(0);
            shard0.schedule_at(e.at, [fn = hooks.crash_controller] { fn(); });
            if (hooks.recover_controller)
                shard0.schedule_at(e.at + e.duration,
                                   [fn = hooks.recover_controller] {
                                       fn();
                                   });
            ++report.routed;
            break;
        }
        case FaultKind::ControllerCrash:
        case FaultKind::ControllerFailover: {
            sim::Simulator& shard0 = runtime.shard(0);
            if (hooks.crash_controller)
                shard0.schedule_at(e.at, [fn = hooks.crash_controller] {
                    fn();
                });
            if (e.takeover && hooks.recover_controller) {
                const sim::Time back =
                    e.at + (e.duration > 0
                                ? e.duration
                                : 800 * sim::kMillisecond);
                shard0.schedule_at(back,
                                   [fn = hooks.recover_controller] {
                                       fn();
                                   });
            }
            ++report.routed;
            break;
        }
        default:
            ++report.unsupported;
            break;
        }
    }
    return report;
}

}  // namespace hivemind::fault

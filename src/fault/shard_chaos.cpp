#include "fault/shard_chaos.hpp"

#include <algorithm>

#include "sim/rng.hpp"

namespace hivemind::fault {

namespace {

/**
 * Fork a per-device burst Rng. Mixing the device id with a splitmix
 * constant and the event time keeps chains independent across devices
 * and across LinkBurst events while staying a pure function of
 * (seed, device, event) — the precondition for shard invariance.
 */
sim::Rng
burst_rng(std::uint64_t seed, std::size_t device, sim::Time at)
{
    const std::uint64_t mix =
        0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(device) + 1);
    return sim::Rng(seed ^ mix ^ static_cast<std::uint64_t>(at));
}

/**
 * Precompute one device's Gilbert-Elliott transition schedule for a
 * LinkBurst window and post it on the owner shard. Mirrors
 * ChaosEngine::fire_link_burst / ge_transition: open in the good
 * state, alternate exponential dwells (min one tick), restore the
 * configured loss when the window closes.
 */
void
schedule_ge_chain(sim::Simulator& shard, const FaultEvent& e,
                  std::size_t device, std::uint64_t seed,
                  const std::function<void(std::size_t, double)>& set_loss)
{
    shard.schedule_at(e.at, [fn = set_loss, device, loss = e.loss_good] {
        fn(device, loss);
    });
    const sim::Time window_end = e.at + e.duration;
    sim::Rng rng = burst_rng(seed, device, e.at);
    sim::Time t = e.at;
    bool to_bad = true;
    while (true) {
        const sim::Time dwell = std::max<sim::Time>(
            static_cast<sim::Time>(rng.exponential(
                static_cast<double>(to_bad ? e.mean_good : e.mean_bad))),
            1);
        t += dwell;
        if (t >= window_end)
            break;
        const double loss = to_bad ? e.loss_bad : e.loss_good;
        shard.schedule_at(t, [fn = set_loss, device, loss] {
            fn(device, loss);
        });
        to_bad = !to_bad;
    }
    shard.schedule_at(window_end, [fn = set_loss, device] {
        fn(device, -1.0);
    });
}

}  // namespace

ShardChaosReport
route_plan(sim::SwarmRuntime& runtime, const FaultPlan& plan,
           const std::function<int(std::size_t)>& owner,
           const ShardChaosHooks& hooks, int cloud_shard)
{
    // Fail loudly on malformed plans before anything lands on a shard
    // kernel. Device targets are checked when the hooks declare the
    // fleet size; the horizon/server bounds live at the scenario layer.
    PlanBounds bounds;
    bounds.devices = hooks.devices;
    plan.validate_or_throw(bounds);
    // The legacy engine skips a crash on a device an earlier crash
    // still holds down — and never schedules that crash's rejoin. The
    // skip is fully determined by the plan, so replay it statically
    // and route only the effective crash/rejoin pairs; a stray rejoin
    // would otherwise revive a later incident early on one engine.
    const std::vector<bool> crash_fires = effective_device_crashes(plan);
    ShardChaosReport report;
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        const FaultEvent& e = plan.events[i];
        switch (e.kind) {
        case FaultKind::DeviceCrash: {
            const std::size_t device = e.target;
            sim::Simulator& shard = runtime.shard(owner(device));
            if (crash_fires[i] && hooks.crash_device)
                shard.schedule_at(e.at, [fn = hooks.crash_device, device] {
                    fn(device);
                });
            if (crash_fires[i] && e.duration > 0 && hooks.rejoin_device)
                shard.schedule_at(e.at + e.duration,
                                  [fn = hooks.rejoin_device, device] {
                                      fn(device);
                                  });
            ++report.routed;
            break;
        }
        case FaultKind::LinkBurst: {
            if (!hooks.set_device_loss || hooks.devices == 0 ||
                e.duration <= 0) {
                ++report.unsupported;
                break;
            }
            // Precompute every device's Gilbert-Elliott dwell chain
            // and post it on the device's owner shard. The chain is a
            // pure function of (burst_seed, device, event), so the
            // loss trajectory each uplink sees is identical at any
            // shard count.
            for (std::size_t d = 0; d < hooks.devices; ++d) {
                schedule_ge_chain(runtime.shard(owner(d)), e, d,
                                  hooks.burst_seed,
                                  hooks.set_device_loss);
            }
            if (hooks.note_link_burst)
                runtime.shard(0).schedule_at(
                    e.at, [fn = hooks.note_link_burst] { fn(); });
            ++report.link_bursts;
            ++report.routed;
            break;
        }
        case FaultKind::Partition: {
            if (!hooks.partition_device || e.duration <= 0) {
                ++report.unsupported;
                break;
            }
            const std::size_t device = e.target;
            sim::Simulator& shard = runtime.shard(owner(device));
            shard.schedule_at(e.at, [fn = hooks.partition_device, device] {
                fn(device, true);
            });
            shard.schedule_at(e.at + e.duration,
                              [fn = hooks.partition_device, device] {
                                  fn(device, false);
                              });
            ++report.routed;
            break;
        }
        case FaultKind::ServerCrash: {
            if (!hooks.crash_server) {
                ++report.unsupported;
                break;
            }
            const std::size_t server = e.target;
            sim::Simulator& shard = runtime.shard(cloud_shard);
            shard.schedule_at(e.at, [fn = hooks.crash_server, server] {
                fn(server);
            });
            if (e.duration > 0 && hooks.recover_server)
                shard.schedule_at(e.at + e.duration,
                                  [fn = hooks.recover_server, server] {
                                      fn(server);
                                  });
            ++report.routed;
            break;
        }
        case FaultKind::DatastoreOutage: {
            if (!hooks.datastore_outage || e.duration <= 0) {
                ++report.unsupported;
                break;
            }
            sim::Simulator& shard = runtime.shard(cloud_shard);
            shard.schedule_at(e.at, [fn = hooks.datastore_outage,
                                     until = e.duration] { fn(until); });
            ++report.routed;
            break;
        }
        case FaultKind::ControllerPartition: {
            if (e.duration <= 0) {
                ++report.unsupported;
                break;
            }
            sim::Simulator& shard0 = runtime.shard(0);
            if (hooks.partition_controller) {
                // HA path: the cluster models the same instance going
                // dark and returning (no takeover, no election).
                shard0.schedule_at(e.at, [fn = hooks.partition_controller,
                                          d = e.duration] { fn(d); });
                ++report.routed;
                break;
            }
            if (!hooks.crash_controller) {
                ++report.unsupported;
                break;
            }
            // Legacy path: same instance goes dark and comes back.
            shard0.schedule_at(e.at, [fn = hooks.crash_controller] { fn(); });
            if (hooks.recover_controller)
                shard0.schedule_at(e.at + e.duration,
                                   [fn = hooks.recover_controller] {
                                       fn();
                                   });
            ++report.routed;
            break;
        }
        case FaultKind::ControllerCrash:
        case FaultKind::ControllerFailover: {
            sim::Simulator& shard0 = runtime.shard(0);
            if (hooks.crash_controller)
                shard0.schedule_at(e.at, [fn = hooks.crash_controller] {
                    fn();
                });
            // With the HA stack active, detection/election/replay own
            // the recovery; scheduling the legacy fixed-delay recover
            // here would race the real failover.
            if (!hooks.controller_ha && e.takeover &&
                hooks.recover_controller) {
                const sim::Time back =
                    e.at + (e.duration > 0
                                ? e.duration
                                : 800 * sim::kMillisecond);
                shard0.schedule_at(back,
                                   [fn = hooks.recover_controller] {
                                       fn();
                                   });
            }
            ++report.routed;
            break;
        }
        default:
            ++report.unsupported;
            break;
        }
    }
    return report;
}

}  // namespace hivemind::fault

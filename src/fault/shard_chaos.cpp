#include "fault/shard_chaos.hpp"

namespace hivemind::fault {

ShardChaosReport
route_plan(sim::SwarmRuntime& runtime, const FaultPlan& plan,
           const std::function<int(std::size_t)>& owner,
           const ShardChaosHooks& hooks)
{
    ShardChaosReport report;
    for (const FaultEvent& e : plan.events) {
        switch (e.kind) {
        case FaultKind::DeviceCrash: {
            const std::size_t device = e.target;
            sim::Simulator& shard = runtime.shard(owner(device));
            if (hooks.crash_device)
                shard.schedule_at(e.at, [fn = hooks.crash_device, device] {
                    fn(device);
                });
            if (e.duration > 0 && hooks.rejoin_device)
                shard.schedule_at(e.at + e.duration,
                                  [fn = hooks.rejoin_device, device] {
                                      fn(device);
                                  });
            ++report.routed;
            break;
        }
        case FaultKind::ControllerCrash:
        case FaultKind::ControllerFailover: {
            sim::Simulator& shard0 = runtime.shard(0);
            if (hooks.crash_controller)
                shard0.schedule_at(e.at, [fn = hooks.crash_controller] {
                    fn();
                });
            if (e.takeover && hooks.recover_controller) {
                const sim::Time back =
                    e.at + (e.duration > 0
                                ? e.duration
                                : 800 * sim::kMillisecond);
                shard0.schedule_at(back,
                                   [fn = hooks.recover_controller] {
                                       fn();
                                   });
            }
            ++report.routed;
            break;
        }
        default:
            ++report.unsupported;
            break;
        }
    }
    return report;
}

}  // namespace hivemind::fault

#include "fault/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "sim/rng.hpp"

namespace hivemind::fault {

namespace {

/** Decorrelate the user seed from other consumers of the same value. */
constexpr std::uint64_t kFuzzSalt = 0xc6a4a7935bd1e995ull;

sim::Time
random_time(sim::Rng& rng, sim::Time lo, sim::Time hi)
{
    // Sub-second jitter on purpose: whole-second injection times
    // collide with the 1 Hz control ticks and hide ordering bugs.
    return rng.uniform_int(lo, hi - 1);
}

}  // namespace

PlanBounds
PlanFuzzer::bounds() const
{
    PlanBounds b;
    b.devices = cfg_.devices;
    b.servers = cfg_.servers;
    b.horizon = cfg_.horizon;
    return b;
}

FaultPlan
PlanFuzzer::generate(std::uint64_t seed) const
{
    sim::Rng rng(seed ^ kFuzzSalt);
    FaultPlan plan;
    // Leave the first two seconds quiet (the fleet boots and emits its
    // first frames) and keep injections clear of the horizon.
    const sim::Time lo = 2 * sim::kSecond;
    const sim::Time hi = std::max(cfg_.horizon - sim::kSecond, lo + 1);

    std::vector<FaultKind> pool;
    auto weight = [&](FaultKind k, int w) {
        for (int i = 0; i < w; ++i)
            pool.push_back(k);
    };
    weight(FaultKind::DeviceCrash, 4);
    weight(FaultKind::LinkBurst, 2);
    weight(FaultKind::Partition, 2);
    if (cfg_.servers > 0)
        weight(FaultKind::ServerCrash, 2);
    weight(FaultKind::DatastoreOutage, 1);
    if (cfg_.allow_spatial)
        weight(FaultKind::SpatialBurst, 1);
    if (cfg_.allow_controller) {
        weight(FaultKind::ControllerCrash, 2);
        weight(FaultKind::ControllerPartition, 1);
        weight(FaultKind::ControllerFailover, 1);
    }

    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(cfg_.min_events),
        static_cast<std::int64_t>(cfg_.max_events)));
    bool permanent_used = false;
    for (std::size_t i = 0; i < n; ++i) {
        const FaultKind kind = pool[rng.pick(pool.size())];
        const sim::Time at = random_time(rng, lo, hi);
        switch (kind) {
        case FaultKind::DeviceCrash: {
            const std::size_t device = rng.pick(cfg_.devices);
            sim::Time rejoin =
                rng.uniform_int(2 * sim::kSecond, 12 * sim::kSecond);
            if (cfg_.allow_permanent && !permanent_used && rng.chance(0.15)) {
                rejoin = 0;
                permanent_used = true;
            }
            plan.device_crash(at, device, rejoin);
            break;
        }
        case FaultKind::SpatialBurst:
            plan.spatial_burst(at, rng.uniform(0.0, cfg_.field_size_m),
                               rng.uniform(0.0, cfg_.field_size_m),
                               rng.uniform(10.0, cfg_.field_size_m / 2.0),
                               1 + rng.pick(3),
                               rng.uniform_int(2 * sim::kSecond,
                                               10 * sim::kSecond));
            break;
        case FaultKind::LinkBurst:
            plan.link_burst(at,
                            rng.uniform_int(2 * sim::kSecond,
                                            12 * sim::kSecond),
                            rng.uniform(0.5, 0.98),
                            rng.uniform_int(sim::kSecond, 3 * sim::kSecond),
                            rng.uniform_int(200 * sim::kMillisecond,
                                            sim::kSecond));
            break;
        case FaultKind::Partition:
            plan.partition(at,
                           rng.uniform_int(sim::kSecond, 8 * sim::kSecond),
                           rng.pick(cfg_.devices));
            break;
        case FaultKind::ServerCrash:
            plan.server_crash(at, rng.pick(cfg_.servers),
                              rng.uniform_int(2 * sim::kSecond,
                                              8 * sim::kSecond));
            break;
        case FaultKind::DatastoreOutage:
            plan.datastore_outage(at,
                                  rng.uniform_int(sim::kSecond,
                                                  6 * sim::kSecond));
            break;
        case FaultKind::ControllerFailover:
            plan.controller_failover(at, true);
            break;
        case FaultKind::ControllerCrash:
            plan.controller_crash(at);
            break;
        case FaultKind::ControllerPartition:
            plan.controller_partition(at,
                                      rng.uniform_int(sim::kSecond,
                                                      5 * sim::kSecond));
            break;
        }
    }

    // Adversarial shapes hand-written plans rarely contain. Each is a
    // coin flip so soaks cover both the plain and the nasty regimes.
    auto pattern_at = [&](sim::Time headroom) {
        return random_time(rng, lo, std::max(hi - headroom, lo + 2));
    };
    // The shapes need ~15 s of runway before the horizon; skip them on
    // short missions rather than emit out-of-bounds events.
    const bool patterns_fit = cfg_.horizon >= 30 * sim::kSecond;
    if (patterns_fit && rng.chance(0.35)) {
        // Two Gilbert-Elliott windows overlapping mid-flight.
        const sim::Time at = pattern_at(10 * sim::kSecond);
        const sim::Time dur =
            rng.uniform_int(4 * sim::kSecond, 10 * sim::kSecond);
        plan.link_burst(at, dur, 0.9);
        plan.link_burst(at + dur / 2,
                        rng.uniform_int(3 * sim::kSecond, 8 * sim::kSecond),
                        rng.uniform(0.6, 0.95));
    }
    if (patterns_fit && cfg_.allow_controller && rng.chance(0.35)) {
        // Back-to-back controller crashes: the second lands while the
        // standby pool is one election down.
        const sim::Time at = pattern_at(12 * sim::kSecond);
        plan.controller_crash(at);
        plan.controller_crash(at +
                              rng.uniform_int(3 * sim::kSecond,
                                              10 * sim::kSecond));
    }
    if (patterns_fit && rng.chance(0.35)) {
        // A crash landing inside another crash's down window: the
        // second incident must be skipped, and its rejoin must not
        // revive the first one early.
        const std::size_t device = rng.pick(cfg_.devices);
        const sim::Time at = pattern_at(14 * sim::kSecond);
        const sim::Time down =
            rng.uniform_int(6 * sim::kSecond, 12 * sim::kSecond);
        plan.device_crash(at, device, down);
        plan.device_crash(at + down / 2, device,
                          rng.uniform_int(sim::kSecond, 4 * sim::kSecond));
    }

    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                     });
    // Valid-by-construction is the contract; catch drift loudly.
    std::vector<std::string> problems = plan.validate(bounds());
    if (!problems.empty())
        throw std::logic_error("PlanFuzzer generated an invalid plan: " +
                               problems.front());
    return plan;
}

// ---------------------------------------------------------------------------
// ddmin shrinking

namespace {

FaultPlan
without_range(const FaultPlan& plan, std::size_t begin, std::size_t end)
{
    FaultPlan out;
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        if (i < begin || i >= end)
            out.events.push_back(plan.events[i]);
    }
    return out;
}

/** Candidate simplifications of one surviving event, best first. */
std::vector<FaultEvent>
simplified(const FaultEvent& e)
{
    std::vector<FaultEvent> out;
    const sim::Time at_floor = (e.at / sim::kSecond) * sim::kSecond;
    if (at_floor != e.at && at_floor > 0) {
        FaultEvent c = e;
        c.at = at_floor;
        out.push_back(c);
    }
    if (e.duration > 2 * sim::kSecond) {
        FaultEvent c = e;
        c.duration = e.duration / 2;
        out.push_back(c);
    }
    return out;
}

}  // namespace

ShrinkResult
shrink_plan(const FaultPlan& plan, const PlanPredicate& still_failing,
            std::size_t max_evaluations)
{
    ShrinkResult result;
    result.plan = plan;
    auto evaluate = [&](const FaultPlan& candidate) {
        ++result.evaluations;
        return still_failing(candidate);
    };
    if (result.evaluations >= max_evaluations || !evaluate(plan))
        return result;  // Not a failure to begin with: nothing to shrink.

    // Phase 1: classic ddmin on the event list. Try dropping each of
    // `chunks` contiguous chunks; on success restart at coarse
    // granularity, otherwise refine until single events survive.
    std::size_t chunks = 2;
    while (result.plan.events.size() > 1 &&
           result.evaluations < max_evaluations) {
        const std::size_t size = result.plan.events.size();
        chunks = std::min(chunks, size);
        const std::size_t chunk = (size + chunks - 1) / chunks;
        bool reduced = false;
        for (std::size_t begin = 0;
             begin < size && result.evaluations < max_evaluations;
             begin += chunk) {
            FaultPlan candidate = without_range(
                result.plan, begin, std::min(begin + chunk, size));
            if (candidate.events.empty())
                continue;
            if (evaluate(candidate)) {
                result.plan = std::move(candidate);
                chunks = std::max<std::size_t>(chunks - 1, 2);
                reduced = true;
                break;
            }
        }
        if (reduced)
            continue;
        if (chunks >= size)
            break;  // Every single-event drop passes: 1-minimal.
        chunks = std::min(chunks * 2, size);
    }
    // An empty-budget exit above leaves minimality unknown; a clean
    // exit means no single event can go.
    result.minimal = result.evaluations < max_evaluations;

    // Phase 2: simplify the survivors in place while the failure
    // persists — whole-second times and shorter windows read better in
    // a regression test.
    for (std::size_t i = 0;
         i < result.plan.events.size() && result.evaluations < max_evaluations;
         ++i) {
        bool changed = true;
        while (changed && result.evaluations < max_evaluations) {
            changed = false;
            for (const FaultEvent& candidate_event :
                 simplified(result.plan.events[i])) {
                FaultPlan candidate = result.plan;
                candidate.events[i] = candidate_event;
                if (!candidate.validate().empty())
                    continue;
                if (evaluate(candidate)) {
                    result.plan = std::move(candidate);
                    changed = true;
                    break;
                }
                if (result.evaluations >= max_evaluations)
                    break;
            }
        }
    }
    return result;
}

// ---------------------------------------------------------------------------
// JSON reproducers (on the shared util::Json writer / cursor — the
// same escaping and number formatting as bench JSON and fleet JSONL).

namespace {

FaultKind
kind_from_name(util::JsonCursor& in, const std::string& name)
{
    for (FaultKind k :
         {FaultKind::DeviceCrash, FaultKind::SpatialBurst,
          FaultKind::LinkBurst, FaultKind::Partition, FaultKind::ServerCrash,
          FaultKind::DatastoreOutage, FaultKind::ControllerFailover,
          FaultKind::ControllerCrash, FaultKind::ControllerPartition}) {
        if (name == kind_name(k))
            return k;
    }
    in.fail("unknown fault kind \"" + name + "\"");
}

FaultEvent
parse_event(util::JsonCursor& in)
{
    FaultEvent e;
    util::parse_object(in, [&](util::JsonCursor& c, const std::string& key) {
        if (key == "kind")
            e.kind = kind_from_name(c, c.parse_string());
        else if (key == "at")
            e.at = static_cast<sim::Time>(c.parse_number());
        else if (key == "duration")
            e.duration = static_cast<sim::Time>(c.parse_number());
        else if (key == "target")
            e.target = static_cast<std::size_t>(c.parse_number());
        else if (key == "center_x")
            e.center_x = c.parse_number();
        else if (key == "center_y")
            e.center_y = c.parse_number();
        else if (key == "radius_m")
            e.radius_m = c.parse_number();
        else if (key == "burst_count")
            e.burst_count = static_cast<std::size_t>(c.parse_number());
        else if (key == "loss_good")
            e.loss_good = c.parse_number();
        else if (key == "loss_bad")
            e.loss_bad = c.parse_number();
        else if (key == "mean_good")
            e.mean_good = static_cast<sim::Time>(c.parse_number());
        else if (key == "mean_bad")
            e.mean_bad = static_cast<sim::Time>(c.parse_number());
        else if (key == "takeover")
            e.takeover = c.parse_bool();
        else
            c.fail("unknown event field \"" + key + "\"");
    });
    return e;
}

}  // namespace

util::Json
plan_json(const FaultPlan& plan)
{
    util::Json events = util::Json::array();
    for (const FaultEvent& e : plan.events) {
        events.push(util::Json::object()
                        .kv("kind", kind_name(e.kind))
                        .kv("at", static_cast<std::int64_t>(e.at))
                        .kv("duration", static_cast<std::int64_t>(e.duration))
                        .kv("target", static_cast<std::uint64_t>(e.target))
                        .kv("center_x", e.center_x)
                        .kv("center_y", e.center_y)
                        .kv("radius_m", e.radius_m)
                        .kv("burst_count",
                            static_cast<std::uint64_t>(e.burst_count))
                        .kv("loss_good", e.loss_good)
                        .kv("loss_bad", e.loss_bad)
                        .kv("mean_good",
                            static_cast<std::int64_t>(e.mean_good))
                        .kv("mean_bad", static_cast<std::int64_t>(e.mean_bad))
                        .kv("takeover", e.takeover));
    }
    return util::Json::object().kv("version", 1).kv("events", events);
}

std::string
plan_to_json(const FaultPlan& plan)
{
    return plan_json(plan).str() + "\n";
}

FaultPlan
plan_from_cursor(util::JsonCursor& in)
{
    FaultPlan plan;
    bool saw_version = false;
    bool saw_events = false;
    util::parse_object(in, [&](util::JsonCursor& c, const std::string& key) {
        if (key == "version") {
            saw_version = true;
            if (c.parse_number() != 1.0)
                c.fail("unsupported reproducer version");
        } else if (key == "events") {
            saw_events = true;
            util::parse_array(c, [&](util::JsonCursor& e) {
                plan.events.push_back(parse_event(e));
            });
        } else {
            c.fail("unknown top-level field \"" + key + "\"");
        }
    });
    if (!saw_version || !saw_events)
        in.fail("reproducer is missing \"version\" or \"events\"");
    return plan;
}

FaultPlan
plan_from_json(const std::string& json)
{
    util::JsonCursor in(json, "plan JSON");
    FaultPlan plan = plan_from_cursor(in);
    if (!in.done())
        in.fail("trailing content after the plan object");
    return plan;
}

// ---------------------------------------------------------------------------
// Builder snippets

namespace {

std::string
time_literal(sim::Time t)
{
    if (t == 0)
        return "0";
    if (t % sim::kSecond == 0)
        return std::to_string(t / sim::kSecond) + " * sim::kSecond";
    if (t % sim::kMillisecond == 0)
        return std::to_string(t / sim::kMillisecond) + " * sim::kMillisecond";
    return std::to_string(t);
}

}  // namespace

std::string
plan_to_builder_snippet(const FaultPlan& plan)
{
    std::string out = "fault::FaultPlan plan;\n";
    for (const FaultEvent& e : plan.events) {
        switch (e.kind) {
        case FaultKind::DeviceCrash:
            out += "plan.device_crash(" + time_literal(e.at) + ", " +
                std::to_string(e.target) + ", " + time_literal(e.duration) +
                ");\n";
            break;
        case FaultKind::SpatialBurst:
            out += "plan.spatial_burst(" + time_literal(e.at) + ", " +
                util::format_double(e.center_x) + ", " + util::format_double(e.center_y) +
                ", " + util::format_double(e.radius_m) + ", " +
                std::to_string(e.burst_count) + ", " +
                time_literal(e.duration) + ");\n";
            break;
        case FaultKind::LinkBurst:
            out += "plan.link_burst(" + time_literal(e.at) + ", " +
                time_literal(e.duration) + ", " + util::format_double(e.loss_bad) +
                ", " + time_literal(e.mean_good) + ", " +
                time_literal(e.mean_bad) + ");\n";
            break;
        case FaultKind::Partition:
            out += "plan.partition(" + time_literal(e.at) + ", " +
                time_literal(e.duration) + ", " + std::to_string(e.target) +
                ");\n";
            break;
        case FaultKind::ServerCrash:
            out += "plan.server_crash(" + time_literal(e.at) + ", " +
                std::to_string(e.target) + ", " + time_literal(e.duration) +
                ");\n";
            break;
        case FaultKind::DatastoreOutage:
            out += "plan.datastore_outage(" + time_literal(e.at) + ", " +
                time_literal(e.duration) + ");\n";
            break;
        case FaultKind::ControllerFailover:
            out += "plan.controller_failover(" + time_literal(e.at) +
                std::string(e.takeover ? ", true" : ", false") + ");\n";
            break;
        case FaultKind::ControllerCrash:
            out += "plan.controller_crash(" + time_literal(e.at) + ");\n";
            break;
        case FaultKind::ControllerPartition:
            out += "plan.controller_partition(" + time_literal(e.at) + ", " +
                time_literal(e.duration) + ");\n";
            break;
        }
    }
    return out;
}

}  // namespace hivemind::fault

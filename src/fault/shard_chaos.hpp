#pragma once

/**
 * @file
 * Fault-plan routing for the sharded runtime.
 *
 * Chaos injection must happen on the shard that owns the faulted
 * component, or the injection itself would race the shard's event
 * loop. route_plan() walks a FaultPlan and schedules each supported
 * event on the owning shard's kernel *before* the run starts, so the
 * injections participate in the deterministic (time, seq) order like
 * any other event:
 *
 *  - DeviceCrash (and its rejoin) fire on the device's owner shard.
 *  - LinkBurst runs the same two-state Gilbert-Elliott chain as the
 *    legacy ChaosEngine, but per device: each device's dwell-time
 *    sequence is drawn from its own Rng forked deterministically from
 *    `burst_seed` and the event time, and the whole transition
 *    schedule is precomputed before the run starts. Burst state is
 *    therefore local to the device's owner shard (its uplink
 *    ShardLink), and the chain is identical at any shard count.
 *    Partition blacks out one device's radio the same way.
 *  - ServerCrash / DatastoreOutage fire on the cloud shard, where the
 *    FaaS cluster and DataStore live in a sharded scenario.
 *  - ControllerCrash / ControllerFailover / ControllerPartition fire
 *    on shard 0, where the SwarmController lives. When the scenario
 *    runs the HA stack (`controller_ha`), recovery is driven by the
 *    HA election/replay machinery itself and route_plan() only
 *    schedules the crash; without HA it keeps the legacy fixed
 *    800 ms drop-and-reconcile recovery.
 *
 * Kinds with no sharded counterpart (SpatialBurst needs global device
 * positions at injection time) are counted, not dropped silently.
 */

#include <cstddef>
#include <functional>

#include "fault/plan.hpp"
#include "sim/swarm_runtime.hpp"

namespace hivemind::fault {

/** Callbacks a sharded scenario exposes to the router. */
struct ShardChaosHooks
{
    /** Take device @p d dark; runs on the owner shard. */
    std::function<void(std::size_t)> crash_device;
    /** Bring device @p d back; runs on the owner shard. */
    std::function<void(std::size_t)> rejoin_device;
    /** Controller crash; runs on shard 0. */
    std::function<void()> crash_controller;
    /** Standby takeover; runs on shard 0. */
    std::function<void()> recover_controller;
    /**
     * Wireless loss override for device @p d (negative restores the
     * configured loss); runs on the owner shard (LinkBurst windows).
     */
    std::function<void(std::size_t, double)> set_device_loss;
    /** Radio blackout on/off for device @p d; runs on the owner shard. */
    std::function<void(std::size_t, bool)> partition_device;
    /** Cloud server crash/recovery; runs on the cloud shard. */
    std::function<void(std::size_t)> crash_server;
    std::function<void(std::size_t)> recover_server;
    /** Datastore outage for a duration; runs on the cloud shard. */
    std::function<void(sim::Time)> datastore_outage;
    /**
     * Controller partition for a duration; runs on shard 0. When set,
     * ControllerPartition events route here (the HA stack models the
     * same instance going dark and returning); otherwise they fall
     * back to the crash/recover pair.
     */
    std::function<void(sim::Time)> partition_controller;
    /**
     * A LinkBurst window opened; runs on shard 0 at the window's
     * injection time. Lets the scenario count burst windows when they
     * actually fire — the same moment the legacy ChaosEngine counts
     * them — rather than at routing time, so a run that finishes
     * before a window opens reports the same ledger on both engines.
     */
    std::function<void()> note_link_burst;
    /** Device ids the LinkBurst loss window must cover. */
    std::size_t devices = 0;
    /**
     * Seed for the per-device Gilbert-Elliott dwell chains. Fold the
     * deployment seed in so different seeds see different bursts.
     */
    std::uint64_t burst_seed = 0;
    /**
     * True when the scenario runs the controller HA stack: recovery
     * from ControllerCrash/ControllerFailover is then owned by the HA
     * election machinery and route_plan() must not schedule the
     * legacy fixed-delay recover_controller.
     */
    bool controller_ha = false;
};

/** What route_plan() scheduled. */
struct ShardChaosReport
{
    std::size_t routed = 0;       ///< Events scheduled on a shard.
    std::size_t unsupported = 0;  ///< Kinds with no sharded model.
    std::size_t link_bursts = 0;  ///< LinkBurst windows scheduled.
};

/**
 * Schedule @p plan's events onto the owning shards. @p owner maps a
 * device id to its shard; @p cloud_shard owns the FaaS cluster and
 * DataStore. Call before SwarmRuntime::run_until().
 */
ShardChaosReport route_plan(sim::SwarmRuntime& runtime,
                            const FaultPlan& plan,
                            const std::function<int(std::size_t)>& owner,
                            const ShardChaosHooks& hooks,
                            int cloud_shard = 0);

}  // namespace hivemind::fault

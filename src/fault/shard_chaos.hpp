#pragma once

/**
 * @file
 * Fault-plan routing for the sharded runtime.
 *
 * Chaos injection must happen on the shard that owns the faulted
 * component, or the injection itself would race the shard's event
 * loop. route_plan() walks a FaultPlan and schedules each supported
 * event on the owning shard's kernel *before* the run starts, so the
 * injections participate in the deterministic (time, seq) order like
 * any other event:
 *
 *  - DeviceCrash (and its rejoin) fire on the device's owner shard.
 *  - ControllerCrash / ControllerFailover fire on shard 0, where the
 *    SwarmController lives. The controller usually arms its own
 *    crash from Config::crash_at; the plan path exists so chaos
 *    schedules written against FaultPlan keep working.
 *
 * Kinds that need the flow-level network or cloud models (link
 * bursts, server crashes, datastore outages) have no sharded
 * counterpart yet and are counted, not dropped silently.
 */

#include <cstddef>
#include <functional>

#include "fault/plan.hpp"
#include "sim/swarm_runtime.hpp"

namespace hivemind::fault {

/** Callbacks a sharded scenario exposes to the router. */
struct ShardChaosHooks
{
    /** Take device @p d dark; runs on the owner shard. */
    std::function<void(std::size_t)> crash_device;
    /** Bring device @p d back; runs on the owner shard. */
    std::function<void(std::size_t)> rejoin_device;
    /** Controller crash; runs on shard 0. */
    std::function<void()> crash_controller;
    /** Standby takeover; runs on shard 0. */
    std::function<void()> recover_controller;
};

/** What route_plan() scheduled. */
struct ShardChaosReport
{
    std::size_t routed = 0;       ///< Events scheduled on a shard.
    std::size_t unsupported = 0;  ///< Kinds with no sharded model.
};

/**
 * Schedule @p plan's events onto the owning shards. @p owner maps a
 * device id to its shard. Call before SwarmRuntime::run_until().
 */
ShardChaosReport route_plan(sim::SwarmRuntime& runtime,
                            const FaultPlan& plan,
                            const std::function<int(std::size_t)>& owner,
                            const ShardChaosHooks& hooks);

}  // namespace hivemind::fault

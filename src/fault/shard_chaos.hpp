#pragma once

/**
 * @file
 * Fault-plan routing for the sharded runtime.
 *
 * Chaos injection must happen on the shard that owns the faulted
 * component, or the injection itself would race the shard's event
 * loop. route_plan() walks a FaultPlan and schedules each supported
 * event on the owning shard's kernel *before* the run starts, so the
 * injections participate in the deterministic (time, seq) order like
 * any other event:
 *
 *  - DeviceCrash (and its rejoin) fire on the device's owner shard.
 *  - LinkBurst opens/closes a per-device wireless-loss window on every
 *    owner shard; Partition blacks out one device's radio the same
 *    way. Loss state is per-device on its owner shard, so the sharded
 *    loss model stays deterministic at any shard count (the legacy
 *    Gilbert-Elliott dwell-time chain shares one RNG and is replaced
 *    by a static bad-state loss over the window).
 *  - ServerCrash / DatastoreOutage fire on the cloud shard, where the
 *    FaaS cluster and DataStore live in a sharded scenario.
 *  - ControllerCrash / ControllerFailover / ControllerPartition fire
 *    on shard 0, where the SwarmController lives. The controller
 *    usually arms its own crash from Config::crash_at; the plan path
 *    exists so chaos schedules written against FaultPlan keep working.
 *
 * Kinds with no sharded counterpart (SpatialBurst needs global device
 * positions at injection time) are counted, not dropped silently.
 */

#include <cstddef>
#include <functional>

#include "fault/plan.hpp"
#include "sim/swarm_runtime.hpp"

namespace hivemind::fault {

/** Callbacks a sharded scenario exposes to the router. */
struct ShardChaosHooks
{
    /** Take device @p d dark; runs on the owner shard. */
    std::function<void(std::size_t)> crash_device;
    /** Bring device @p d back; runs on the owner shard. */
    std::function<void(std::size_t)> rejoin_device;
    /** Controller crash; runs on shard 0. */
    std::function<void()> crash_controller;
    /** Standby takeover; runs on shard 0. */
    std::function<void()> recover_controller;
    /**
     * Wireless loss override for device @p d (negative restores the
     * configured loss); runs on the owner shard (LinkBurst windows).
     */
    std::function<void(std::size_t, double)> set_device_loss;
    /** Radio blackout on/off for device @p d; runs on the owner shard. */
    std::function<void(std::size_t, bool)> partition_device;
    /** Cloud server crash/recovery; runs on the cloud shard. */
    std::function<void(std::size_t)> crash_server;
    std::function<void(std::size_t)> recover_server;
    /** Datastore outage for a duration; runs on the cloud shard. */
    std::function<void(sim::Time)> datastore_outage;
    /** Device ids the LinkBurst loss window must cover. */
    std::size_t devices = 0;
};

/** What route_plan() scheduled. */
struct ShardChaosReport
{
    std::size_t routed = 0;       ///< Events scheduled on a shard.
    std::size_t unsupported = 0;  ///< Kinds with no sharded model.
};

/**
 * Schedule @p plan's events onto the owning shards. @p owner maps a
 * device id to its shard; @p cloud_shard owns the FaaS cluster and
 * DataStore. Call before SwarmRuntime::run_until().
 */
ShardChaosReport route_plan(sim::SwarmRuntime& runtime,
                            const FaultPlan& plan,
                            const std::function<int(std::size_t)>& owner,
                            const ShardChaosHooks& hooks,
                            int cloud_shard = 0);

}  // namespace hivemind::fault

#include "fault/plan.hpp"

#include "sim/rng.hpp"

namespace hivemind::fault {

FaultPlan&
FaultPlan::device_crash(sim::Time at, std::size_t device,
                        sim::Time rejoin_after)
{
    FaultEvent e;
    e.kind = FaultKind::DeviceCrash;
    e.at = at;
    e.duration = rejoin_after;
    e.target = device;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::spatial_burst(sim::Time at, double x, double y, double radius_m,
                         std::size_t count, sim::Time rejoin_after)
{
    FaultEvent e;
    e.kind = FaultKind::SpatialBurst;
    e.at = at;
    e.duration = rejoin_after;
    e.center_x = x;
    e.center_y = y;
    e.radius_m = radius_m;
    e.burst_count = count;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::link_burst(sim::Time at, sim::Time duration, double loss_bad,
                      sim::Time mean_good, sim::Time mean_bad)
{
    FaultEvent e;
    e.kind = FaultKind::LinkBurst;
    e.at = at;
    e.duration = duration;
    e.loss_bad = loss_bad;
    e.mean_good = mean_good;
    e.mean_bad = mean_bad;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::partition(sim::Time at, sim::Time duration, std::size_t device)
{
    FaultEvent e;
    e.kind = FaultKind::Partition;
    e.at = at;
    e.duration = duration;
    e.target = device;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::server_crash(sim::Time at, std::size_t server, sim::Time down_for)
{
    FaultEvent e;
    e.kind = FaultKind::ServerCrash;
    e.at = at;
    e.duration = down_for;
    e.target = server;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::datastore_outage(sim::Time at, sim::Time duration)
{
    FaultEvent e;
    e.kind = FaultKind::DatastoreOutage;
    e.at = at;
    e.duration = duration;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::controller_failover(sim::Time at, bool takeover)
{
    FaultEvent e;
    e.kind = FaultKind::ControllerFailover;
    e.at = at;
    e.takeover = takeover;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::controller_crash(sim::Time at)
{
    FaultEvent e;
    e.kind = FaultKind::ControllerCrash;
    e.at = at;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::controller_partition(sim::Time at, sim::Time duration)
{
    FaultEvent e;
    e.kind = FaultKind::ControllerPartition;
    e.at = at;
    e.duration = duration;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::merge(const FaultPlan& other)
{
    events.insert(events.end(), other.events.begin(), other.events.end());
    return *this;
}

FaultPlan
FaultPlan::poisson_device_churn(std::uint64_t seed, std::size_t devices,
                                sim::Time horizon,
                                sim::Time mean_interarrival,
                                sim::Time rejoin_after)
{
    FaultPlan plan;
    if (devices == 0 || horizon <= 0 || mean_interarrival <= 0)
        return plan;
    sim::Rng rng(seed);
    sim::Time t = 0;
    while (true) {
        t += static_cast<sim::Time>(
            rng.exponential(static_cast<double>(mean_interarrival)));
        if (t >= horizon)
            break;
        std::size_t victim =
            static_cast<std::size_t>(rng.uniform_int(0, devices - 1));
        plan.device_crash(t, victim, rejoin_after);
    }
    return plan;
}

}  // namespace hivemind::fault

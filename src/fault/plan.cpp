#include "fault/plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/rng.hpp"

namespace hivemind::fault {

const char*
kind_name(FaultKind kind)
{
    switch (kind) {
        case FaultKind::DeviceCrash: return "DeviceCrash";
        case FaultKind::SpatialBurst: return "SpatialBurst";
        case FaultKind::LinkBurst: return "LinkBurst";
        case FaultKind::Partition: return "Partition";
        case FaultKind::ServerCrash: return "ServerCrash";
        case FaultKind::DatastoreOutage: return "DatastoreOutage";
        case FaultKind::ControllerFailover: return "ControllerFailover";
        case FaultKind::ControllerCrash: return "ControllerCrash";
        case FaultKind::ControllerPartition: return "ControllerPartition";
    }
    return "Unknown";
}

FaultPlan&
FaultPlan::device_crash(sim::Time at, std::size_t device,
                        sim::Time rejoin_after)
{
    FaultEvent e;
    e.kind = FaultKind::DeviceCrash;
    e.at = at;
    e.duration = rejoin_after;
    e.target = device;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::spatial_burst(sim::Time at, double x, double y, double radius_m,
                         std::size_t count, sim::Time rejoin_after)
{
    FaultEvent e;
    e.kind = FaultKind::SpatialBurst;
    e.at = at;
    e.duration = rejoin_after;
    e.center_x = x;
    e.center_y = y;
    e.radius_m = radius_m;
    e.burst_count = count;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::link_burst(sim::Time at, sim::Time duration, double loss_bad,
                      sim::Time mean_good, sim::Time mean_bad)
{
    FaultEvent e;
    e.kind = FaultKind::LinkBurst;
    e.at = at;
    e.duration = duration;
    e.loss_bad = loss_bad;
    e.mean_good = mean_good;
    e.mean_bad = mean_bad;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::partition(sim::Time at, sim::Time duration, std::size_t device)
{
    FaultEvent e;
    e.kind = FaultKind::Partition;
    e.at = at;
    e.duration = duration;
    e.target = device;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::server_crash(sim::Time at, std::size_t server, sim::Time down_for)
{
    FaultEvent e;
    e.kind = FaultKind::ServerCrash;
    e.at = at;
    e.duration = down_for;
    e.target = server;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::datastore_outage(sim::Time at, sim::Time duration)
{
    FaultEvent e;
    e.kind = FaultKind::DatastoreOutage;
    e.at = at;
    e.duration = duration;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::controller_failover(sim::Time at, bool takeover)
{
    FaultEvent e;
    e.kind = FaultKind::ControllerFailover;
    e.at = at;
    e.takeover = takeover;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::controller_crash(sim::Time at)
{
    FaultEvent e;
    e.kind = FaultKind::ControllerCrash;
    e.at = at;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::controller_partition(sim::Time at, sim::Time duration)
{
    FaultEvent e;
    e.kind = FaultKind::ControllerPartition;
    e.at = at;
    e.duration = duration;
    events.push_back(e);
    return *this;
}

FaultPlan&
FaultPlan::merge(const FaultPlan& other)
{
    events.insert(events.end(), other.events.begin(), other.events.end());
    return *this;
}

std::vector<std::string>
FaultPlan::validate(const PlanBounds& bounds) const
{
    std::vector<std::string> problems;
    auto flag = [&](std::size_t i, const FaultEvent& e, const std::string& what) {
        problems.push_back("event #" + std::to_string(i) + " (" +
                           kind_name(e.kind) + "): " + what);
    };
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FaultEvent& e = events[i];
        if (e.at < 0)
            flag(i, e, "negative injection time");
        if (bounds.horizon > 0 && e.at >= bounds.horizon)
            flag(i, e, "injection at " + std::to_string(e.at) +
                           " is past the horizon " +
                           std::to_string(bounds.horizon));
        if (e.duration < 0)
            flag(i, e, "negative duration");
        const bool device_target = e.kind == FaultKind::DeviceCrash ||
                                   e.kind == FaultKind::Partition;
        if (device_target && bounds.devices > 0 && e.target >= bounds.devices)
            flag(i, e, "device target " + std::to_string(e.target) +
                           " out of range (devices=" +
                           std::to_string(bounds.devices) + ")");
        if (e.kind == FaultKind::ServerCrash && bounds.servers > 0 &&
            e.target >= bounds.servers)
            flag(i, e, "server target " + std::to_string(e.target) +
                           " out of range (servers=" +
                           std::to_string(bounds.servers) + ")");
        const bool window_kind = e.kind == FaultKind::LinkBurst ||
                                 e.kind == FaultKind::Partition ||
                                 e.kind == FaultKind::DatastoreOutage ||
                                 e.kind == FaultKind::ControllerPartition;
        if (window_kind && e.duration == 0)
            flag(i, e, "degenerate zero-width window");
        if (e.kind == FaultKind::SpatialBurst && e.radius_m < 0.0)
            flag(i, e, "negative burst radius");
        if (e.kind == FaultKind::LinkBurst) {
            if (e.loss_good < 0.0 || e.loss_good > 1.0 || e.loss_bad < 0.0 ||
                e.loss_bad > 1.0)
                flag(i, e, "loss probability outside [0, 1]");
            if (e.mean_good <= 0 || e.mean_bad <= 0)
                flag(i, e, "non-positive Gilbert-Elliott dwell time");
        }
    }
    return problems;
}

void
FaultPlan::validate_or_throw(const PlanBounds& bounds) const
{
    std::vector<std::string> problems = validate(bounds);
    if (problems.empty())
        return;
    std::string joined = "invalid FaultPlan: ";
    for (std::size_t i = 0; i < problems.size(); ++i) {
        if (i > 0)
            joined += "; ";
        joined += problems[i];
    }
    throw std::invalid_argument(joined);
}

std::vector<bool>
effective_device_crashes(const FaultPlan& plan)
{
    std::vector<bool> effective(plan.events.size(), false);
    // Timeline entries: crashes at their injection time, rejoins (for
    // transient crashes) at injection + duration. The kernel assigns
    // rejoins their sequence number at crash-fire time, so at equal
    // timestamps a plan event always precedes a rejoin — sort key
    // (time, rejoin-flag, plan index) reproduces that order.
    struct Entry
    {
        sim::Time at;
        bool rejoin;
        std::size_t index;  ///< Plan event the entry belongs to.
    };
    std::vector<Entry> timeline;
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        const FaultEvent& e = plan.events[i];
        if (e.kind != FaultKind::DeviceCrash)
            continue;
        timeline.push_back({e.at, false, i});
        if (e.duration > 0)
            timeline.push_back({e.at + e.duration, true, i});
    }
    std::sort(timeline.begin(), timeline.end(),
              [](const Entry& a, const Entry& b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.rejoin != b.rejoin)
                      return !a.rejoin;
                  return a.index < b.index;
              });
    std::vector<std::size_t> down_targets;
    auto is_down = [&](std::size_t target) {
        return std::find(down_targets.begin(), down_targets.end(), target) !=
            down_targets.end();
    };
    for (const Entry& entry : timeline) {
        const std::size_t target = plan.events[entry.index].target;
        if (entry.rejoin) {
            // A rejoin only exists if its own crash fired, and then the
            // device is necessarily still down (no other crash can open
            // while this incident holds it).
            if (!effective[entry.index])
                continue;
            down_targets.erase(std::remove(down_targets.begin(),
                                           down_targets.end(), target),
                               down_targets.end());
            continue;
        }
        if (is_down(target))
            continue;  // Already held down: not a second incident.
        effective[entry.index] = true;
        down_targets.push_back(target);
    }
    return effective;
}

FaultPlan
FaultPlan::poisson_device_churn(std::uint64_t seed, std::size_t devices,
                                sim::Time horizon,
                                sim::Time mean_interarrival,
                                sim::Time rejoin_after)
{
    FaultPlan plan;
    if (devices == 0 || horizon <= 0 || mean_interarrival <= 0)
        return plan;
    sim::Rng rng(seed);
    sim::Time t = 0;
    while (true) {
        t += static_cast<sim::Time>(
            rng.exponential(static_cast<double>(mean_interarrival)));
        if (t >= horizon)
            break;
        std::size_t victim =
            static_cast<std::size_t>(rng.uniform_int(0, devices - 1));
        plan.device_crash(t, victim, rejoin_after);
    }
    return plan;
}

}  // namespace hivemind::fault

#pragma once

/**
 * @file
 * Deterministic chaos fuzzing: random fault plans, delta-debugging
 * shrinker and portable JSON reproducers (Secs. 4.6-4.7).
 *
 * PlanFuzzer turns a uint64 seed into a valid-by-construction
 * FaultPlan: every FaultKind the engines model, targets inside the
 * deployment, injection times inside the horizon, plus deliberately
 * nasty shapes hand-written plans rarely contain — overlapping
 * Gilbert-Elliott bursts, back-to-back controller crashes, a crash
 * landing on a device an earlier crash still holds down. The same
 * seed always yields the same plan, so a soak failure is a seed, not
 * a core dump.
 *
 * When an OracleSuite flags a run, shrink_plan() minimizes the plan
 * with ddmin (drop event subsets while the predicate still fails,
 * then simplify the survivors' times/durations) and the JSON helpers
 * serialize the minimal plan into a reproducer that plan_from_json()
 * reloads bit-identically. plan_to_builder_snippet() renders the same
 * plan as C++ builder calls ready to paste into a regression test.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "fault/plan.hpp"
#include "sim/time.hpp"
#include "util/json.hpp"

namespace hivemind::fault {

/** Deployment envelope the fuzzer generates plans against. */
struct FuzzConfig
{
    std::size_t devices = 6;
    std::size_t servers = 2;
    sim::Time horizon = 60 * sim::kSecond;
    double field_size_m = 96.0;  ///< SpatialBurst epicentre range.
    std::size_t min_events = 3;
    std::size_t max_events = 10;
    /** Generate SpatialBurst events (no sharded model; the oracles
     *  loosen device checks when one is present). */
    bool allow_spatial = true;
    /** Generate controller faults (crash/partition/failover). */
    bool allow_controller = true;
    /** Allow permanent device crashes (duration 0, never rejoins);
     *  at most one per plan so the fleet never fully dies. */
    bool allow_permanent = true;
};

/**
 * Seed -> FaultPlan generator. Plans are sorted by injection time,
 * pass FaultPlan::validate() against the config's bounds by
 * construction, and are a pure function of (config, seed).
 */
class PlanFuzzer
{
  public:
    explicit PlanFuzzer(FuzzConfig config = {}) : cfg_(config) {}

    /** Generate the plan for @p seed (same seed, same plan). */
    FaultPlan generate(std::uint64_t seed) const;

    /** Bounds matching the config, for validate() calls. */
    PlanBounds bounds() const;

    const FuzzConfig& config() const { return cfg_; }

  private:
    FuzzConfig cfg_;
};

/**
 * Returns true when a plan still reproduces the failure under
 * investigation. Typically wraps "run both engines, audit, violations
 * non-empty".
 */
using PlanPredicate = std::function<bool(const FaultPlan&)>;

/** Outcome of shrink_plan(). */
struct ShrinkResult
{
    FaultPlan plan;               ///< Smallest still-failing plan found.
    std::size_t evaluations = 0;  ///< Predicate calls spent.
    /** 1-minimality reached (removing any single event passes); false
     *  when the evaluation budget ran out first or the input never
     *  failed. */
    bool minimal = false;
};

/**
 * Delta-debugging (ddmin) over the plan's events: repeatedly drop
 * subsets while @p still_failing holds, at shrinking granularity,
 * until no single event can be removed; then simplify the survivors
 * (round injection times to whole seconds, halve long durations) as
 * long as the failure persists. Deterministic: same plan + same
 * predicate behaviour, same result.
 */
ShrinkResult shrink_plan(const FaultPlan& plan,
                         const PlanPredicate& still_failing,
                         std::size_t max_evaluations = 400);

/** Serialize a plan as a self-contained JSON reproducer. */
std::string plan_to_json(const FaultPlan& plan);

/**
 * Parse a reproducer produced by plan_to_json() (tolerant of
 * whitespace and field order; unknown fields rejected). Throws
 * std::invalid_argument on malformed input. Round-trips exactly:
 * plan_from_json(plan_to_json(p)) == p.
 */
FaultPlan plan_from_json(const std::string& json);

/**
 * The plan as a util::Json object value ({"version":1,"events":[...]},
 * same schema as plan_to_json) for embedding inside larger documents
 * — scenario profiles nest their chaos plan this way.
 */
util::Json plan_json(const FaultPlan& plan);

/**
 * Parse one plan object at the cursor (the nested counterpart of
 * plan_from_json; same strict unknown-key rejection). Leaves the
 * cursor right after the closing '}'.
 */
FaultPlan plan_from_cursor(util::JsonCursor& in);

/** Render the plan as FaultPlan builder calls for a regression test. */
std::string plan_to_builder_snippet(const FaultPlan& plan);

}  // namespace hivemind::fault

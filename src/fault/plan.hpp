#pragma once

/**
 * @file
 * Declarative fault plans for chaos experiments (Secs. 4.6-4.7).
 *
 * A FaultPlan is an ordered list of typed fault events with absolute
 * injection times: device crashes (optionally transient, with a
 * scheduled rejoin), correlated spatial bursts (k devices in a radius
 * fail together), Gilbert-Elliott bursty packet-loss windows, hard
 * wireless partitions, cloud server crashes, datastore outage windows
 * and controller failovers. Plans are plain data — the ChaosEngine
 * (fault/chaos.hpp) interprets them against a live deployment — so a
 * plan can be built once and replayed bit-identically across seeds,
 * platforms and recovery policies.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hivemind::fault {

/** The fault classes the ChaosEngine knows how to inject. */
enum class FaultKind
{
    /** One device stops heartbeating (rejoins after `duration` if > 0). */
    DeviceCrash,
    /** Correlated burst: k devices inside a radius crash together. */
    SpatialBurst,
    /** Gilbert-Elliott bursty-loss window on the wireless links. */
    LinkBurst,
    /** Hard partition: one device's radio is blacked out for `duration`. */
    Partition,
    /** Cloud server crash: kills in-flight invocations, down `duration`. */
    ServerCrash,
    /** Datastore outage: all accesses stall until the window closes. */
    DatastoreOutage,
    /** Scheduled front-end controller failover (hot standby takes over). */
    ControllerFailover,
    /** Crash the primary swarm controller; the HA standby must elect
     *  itself, replay the latest checkpoint and reconcile (Sec. 4.6). */
    ControllerCrash,
    /** The swarm controller is unreachable for `duration` (network
     *  partition); no failover — the same instance comes back. */
    ControllerPartition,
};

/** One scheduled fault. Unused fields are ignored per kind. */
struct FaultEvent
{
    FaultKind kind = FaultKind::DeviceCrash;
    /** Absolute injection time. */
    sim::Time at = 0;
    /** Fault window / time-to-rejoin; 0 means permanent. */
    sim::Time duration = 0;
    /** Device or server index (DeviceCrash, Partition, ServerCrash). */
    std::size_t target = 0;
    /** SpatialBurst epicentre and radius. */
    double center_x = 0.0;
    double center_y = 0.0;
    double radius_m = 0.0;
    /** SpatialBurst: crash at most this many devices (0 = all in radius). */
    std::size_t burst_count = 0;
    /** LinkBurst Gilbert-Elliott parameters: per-state loss and mean
     *  state dwell times. */
    double loss_good = 0.0;
    double loss_bad = 0.9;
    sim::Time mean_good = 2 * sim::kSecond;
    sim::Time mean_bad = 500 * sim::kMillisecond;
    /** ControllerFailover: whether the hot standby takes over. */
    bool takeover = true;

    bool operator==(const FaultEvent&) const = default;
};

/** Short stable name for a fault kind ("DeviceCrash", ...). */
const char* kind_name(FaultKind kind);

/**
 * Deployment limits a plan is validated against. A zero field means
 * "unknown, skip that check", so partial validation works at layers
 * that only know part of the deployment (e.g. route_plan() may know
 * the device count but not the horizon).
 */
struct PlanBounds
{
    /** Device ids must be < devices (0 = don't check). */
    std::size_t devices = 0;
    /** Server ids must be < servers (0 = don't check). */
    std::size_t servers = 0;
    /** Injection times must be < horizon (0 = don't check). */
    sim::Time horizon = 0;
};

/** A full chaos schedule. Builder methods append and return *this. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Crash `device` at `at`; rejoin after `rejoin_after` (0 = never). */
    FaultPlan& device_crash(sim::Time at, std::size_t device,
                            sim::Time rejoin_after = 0);

    /** Crash up to `count` devices within `radius_m` of (x, y) at `at`.
     *  `count` == 0 crashes every device in the radius. */
    FaultPlan& spatial_burst(sim::Time at, double x, double y,
                             double radius_m, std::size_t count = 0,
                             sim::Time rejoin_after = 0);

    /** Gilbert-Elliott bursty-loss window over [at, at + duration). */
    FaultPlan& link_burst(sim::Time at, sim::Time duration,
                          double loss_bad = 0.9,
                          sim::Time mean_good = 2 * sim::kSecond,
                          sim::Time mean_bad = 500 * sim::kMillisecond);

    /** Black out `device`'s radio over [at, at + duration). */
    FaultPlan& partition(sim::Time at, sim::Time duration,
                         std::size_t device);

    /** Crash cloud server `server` at `at`; back after `down_for`. */
    FaultPlan& server_crash(sim::Time at, std::size_t server,
                            sim::Time down_for = 5 * sim::kSecond);

    /** Stall every datastore access over [at, at + duration). */
    FaultPlan& datastore_outage(sim::Time at, sim::Time duration);

    /** Fail the active front-end controller at `at`. */
    FaultPlan& controller_failover(sim::Time at, bool takeover = true);

    /** Crash the primary swarm controller at `at` (HA failover path). */
    FaultPlan& controller_crash(sim::Time at);

    /** Make the swarm controller unreachable over [at, at + duration). */
    FaultPlan& controller_partition(sim::Time at, sim::Time duration);

    /** Append another plan's events. */
    FaultPlan& merge(const FaultPlan& other);

    /**
     * Seeded Poisson device churn: crash/rejoin cycles with
     * exponentially distributed inter-arrival times (`mean_interarrival`)
     * over [0, horizon), victims drawn uniformly. Deterministic for a
     * given seed, so churn plans replay bit-identically.
     */
    static FaultPlan poisson_device_churn(std::uint64_t seed,
                                          std::size_t devices,
                                          sim::Time horizon,
                                          sim::Time mean_interarrival,
                                          sim::Time rejoin_after);

    bool operator==(const FaultPlan&) const = default;

    /**
     * Structural validation: every problem found, one message each,
     * empty when the plan is well-formed. Rejects negative times,
     * out-of-range device/server targets (when @p bounds knows the
     * counts), events at or past the horizon (when known), degenerate
     * zero-width windows (LinkBurst, Partition, DatastoreOutage,
     * ControllerPartition), loss probabilities outside [0, 1],
     * non-positive Gilbert-Elliott dwell times and negative burst
     * radii. DeviceCrash/SpatialBurst/ServerCrash keep duration == 0
     * as the documented "permanent" encoding.
     */
    std::vector<std::string> validate(const PlanBounds& bounds = {}) const;

    /** validate() and throw std::invalid_argument on any finding. */
    void validate_or_throw(const PlanBounds& bounds = {}) const;
};

/**
 * Replay the engines' skip-if-down rule over the plan's DeviceCrash
 * events: a crash targeting a device that is already held down by an
 * earlier, still-open crash window is not a second incident — it
 * neither fires nor schedules a rejoin. Returns one flag per plan
 * event; true marks a DeviceCrash that actually takes its device down
 * (every other kind is false). Ties are resolved crash-before-rejoin,
 * then plan order — the legacy kernel's (time, seq) order. Both the
 * legacy ChaosEngine and route_plan() follow this rule, which is what
 * keeps the crash/rejoin ledgers identical across engines; SpatialBurst
 * victims are dynamic and are not modelled here.
 */
std::vector<bool> effective_device_crashes(const FaultPlan& plan);

}  // namespace hivemind::fault

#pragma once

/**
 * @file
 * Declarative fault plans for chaos experiments (Secs. 4.6-4.7).
 *
 * A FaultPlan is an ordered list of typed fault events with absolute
 * injection times: device crashes (optionally transient, with a
 * scheduled rejoin), correlated spatial bursts (k devices in a radius
 * fail together), Gilbert-Elliott bursty packet-loss windows, hard
 * wireless partitions, cloud server crashes, datastore outage windows
 * and controller failovers. Plans are plain data — the ChaosEngine
 * (fault/chaos.hpp) interprets them against a live deployment — so a
 * plan can be built once and replayed bit-identically across seeds,
 * platforms and recovery policies.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace hivemind::fault {

/** The fault classes the ChaosEngine knows how to inject. */
enum class FaultKind
{
    /** One device stops heartbeating (rejoins after `duration` if > 0). */
    DeviceCrash,
    /** Correlated burst: k devices inside a radius crash together. */
    SpatialBurst,
    /** Gilbert-Elliott bursty-loss window on the wireless links. */
    LinkBurst,
    /** Hard partition: one device's radio is blacked out for `duration`. */
    Partition,
    /** Cloud server crash: kills in-flight invocations, down `duration`. */
    ServerCrash,
    /** Datastore outage: all accesses stall until the window closes. */
    DatastoreOutage,
    /** Scheduled front-end controller failover (hot standby takes over). */
    ControllerFailover,
    /** Crash the primary swarm controller; the HA standby must elect
     *  itself, replay the latest checkpoint and reconcile (Sec. 4.6). */
    ControllerCrash,
    /** The swarm controller is unreachable for `duration` (network
     *  partition); no failover — the same instance comes back. */
    ControllerPartition,
};

/** One scheduled fault. Unused fields are ignored per kind. */
struct FaultEvent
{
    FaultKind kind = FaultKind::DeviceCrash;
    /** Absolute injection time. */
    sim::Time at = 0;
    /** Fault window / time-to-rejoin; 0 means permanent. */
    sim::Time duration = 0;
    /** Device or server index (DeviceCrash, Partition, ServerCrash). */
    std::size_t target = 0;
    /** SpatialBurst epicentre and radius. */
    double center_x = 0.0;
    double center_y = 0.0;
    double radius_m = 0.0;
    /** SpatialBurst: crash at most this many devices (0 = all in radius). */
    std::size_t burst_count = 0;
    /** LinkBurst Gilbert-Elliott parameters: per-state loss and mean
     *  state dwell times. */
    double loss_good = 0.0;
    double loss_bad = 0.9;
    sim::Time mean_good = 2 * sim::kSecond;
    sim::Time mean_bad = 500 * sim::kMillisecond;
    /** ControllerFailover: whether the hot standby takes over. */
    bool takeover = true;
};

/** A full chaos schedule. Builder methods append and return *this. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Crash `device` at `at`; rejoin after `rejoin_after` (0 = never). */
    FaultPlan& device_crash(sim::Time at, std::size_t device,
                            sim::Time rejoin_after = 0);

    /** Crash up to `count` devices within `radius_m` of (x, y) at `at`.
     *  `count` == 0 crashes every device in the radius. */
    FaultPlan& spatial_burst(sim::Time at, double x, double y,
                             double radius_m, std::size_t count = 0,
                             sim::Time rejoin_after = 0);

    /** Gilbert-Elliott bursty-loss window over [at, at + duration). */
    FaultPlan& link_burst(sim::Time at, sim::Time duration,
                          double loss_bad = 0.9,
                          sim::Time mean_good = 2 * sim::kSecond,
                          sim::Time mean_bad = 500 * sim::kMillisecond);

    /** Black out `device`'s radio over [at, at + duration). */
    FaultPlan& partition(sim::Time at, sim::Time duration,
                         std::size_t device);

    /** Crash cloud server `server` at `at`; back after `down_for`. */
    FaultPlan& server_crash(sim::Time at, std::size_t server,
                            sim::Time down_for = 5 * sim::kSecond);

    /** Stall every datastore access over [at, at + duration). */
    FaultPlan& datastore_outage(sim::Time at, sim::Time duration);

    /** Fail the active front-end controller at `at`. */
    FaultPlan& controller_failover(sim::Time at, bool takeover = true);

    /** Crash the primary swarm controller at `at` (HA failover path). */
    FaultPlan& controller_crash(sim::Time at);

    /** Make the swarm controller unreachable over [at, at + duration). */
    FaultPlan& controller_partition(sim::Time at, sim::Time duration);

    /** Append another plan's events. */
    FaultPlan& merge(const FaultPlan& other);

    /**
     * Seeded Poisson device churn: crash/rejoin cycles with
     * exponentially distributed inter-arrival times (`mean_interarrival`)
     * over [0, horizon), victims drawn uniformly. Deterministic for a
     * given seed, so churn plans replay bit-identically.
     */
    static FaultPlan poisson_device_churn(std::uint64_t seed,
                                          std::size_t devices,
                                          sim::Time horizon,
                                          sim::Time mean_interarrival,
                                          sim::Time rejoin_after);
};

}  // namespace hivemind::fault

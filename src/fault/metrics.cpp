#include "fault/metrics.hpp"

namespace hivemind::fault {

void
RecoveryMetrics::merge(const RecoveryMetrics& other)
{
    mttd_s.merge(other.mttd_s);
    mttr_s.merge(other.mttr_s);
    work_lost_core_ms += other.work_lost_core_ms;
    reexecuted_core_ms += other.reexecuted_core_ms;
    frames_dropped += other.frames_dropped;
    wireless_retransmissions += other.wireless_retransmissions;
    offloads_abandoned += other.offloads_abandoned;
    offload_retries += other.offload_retries;
    circuit_open_events += other.circuit_open_events;
    device_crashes += other.device_crashes;
    device_rejoins += other.device_rejoins;
    server_crashes += other.server_crashes;
    killed_invocations += other.killed_invocations;
    datastore_outages += other.datastore_outages;
    controller_failovers += other.controller_failovers;
    link_burst_windows += other.link_burst_windows;
    partitions += other.partitions;
    controller_mttd_s.merge(other.controller_mttd_s);
    controller_mttr_s.merge(other.controller_mttr_s);
    checkpoint_age_s.merge(other.checkpoint_age_s);
    controller_crashes += other.controller_crashes;
    controller_partitions += other.controller_partitions;
    checkpoints_taken += other.checkpoints_taken;
    checkpoint_bytes += other.checkpoint_bytes;
    tasks_redriven_on_failover += other.tasks_redriven_on_failover;
    frames_buffered_degraded += other.frames_buffered_degraded;
    buffered_frames_drained += other.buffered_frames_drained;
    controller_outage_s += other.controller_outage_s;
    outage_tasks_completed += other.outage_tasks_completed;
}

}  // namespace hivemind::fault

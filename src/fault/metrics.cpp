#include "fault/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace hivemind::fault {

void
RecoveryMetrics::merge(const RecoveryMetrics& other)
{
    mttd_s.merge(other.mttd_s);
    mttr_s.merge(other.mttr_s);
    work_lost_core_ms += other.work_lost_core_ms;
    reexecuted_core_ms += other.reexecuted_core_ms;
    frames_dropped += other.frames_dropped;
    wireless_retransmissions += other.wireless_retransmissions;
    offloads_abandoned += other.offloads_abandoned;
    offload_retries += other.offload_retries;
    circuit_open_events += other.circuit_open_events;
    device_crashes += other.device_crashes;
    device_rejoins += other.device_rejoins;
    server_crashes += other.server_crashes;
    killed_invocations += other.killed_invocations;
    datastore_outages += other.datastore_outages;
    controller_failovers += other.controller_failovers;
    link_burst_windows += other.link_burst_windows;
    partitions += other.partitions;
    controller_mttd_s.merge(other.controller_mttd_s);
    controller_mttr_s.merge(other.controller_mttr_s);
    checkpoint_age_s.merge(other.checkpoint_age_s);
    controller_crashes += other.controller_crashes;
    controller_partitions += other.controller_partitions;
    checkpoints_taken += other.checkpoints_taken;
    checkpoint_bytes += other.checkpoint_bytes;
    tasks_redriven_on_failover += other.tasks_redriven_on_failover;
    frames_buffered_degraded += other.frames_buffered_degraded;
    buffered_frames_drained += other.buffered_frames_drained;
    controller_outage_s += other.controller_outage_s;
    outage_tasks_completed += other.outage_tasks_completed;
}

namespace {

std::string
fmt(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
fmt(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
fmt(const sim::Summary& s)
{
    std::string out = "count=" + std::to_string(s.count());
    if (!s.empty())
        out += " mean=" + fmt(s.mean()) + " min=" + fmt(s.min()) +
               " max=" + fmt(s.max());
    return out;
}

bool
same(double a, double b)
{
    return a == b;
}

bool
same(std::uint64_t a, std::uint64_t b)
{
    return a == b;
}

bool
same(const sim::Summary& a, const sim::Summary& b)
{
    return a.samples() == b.samples();
}

}  // namespace

std::vector<MetricsDelta>
metrics_diff(const RecoveryMetrics& a, const RecoveryMetrics& b)
{
    std::vector<MetricsDelta> out;
#define HM_METRICS_FIELD(f)                        \
    do {                                           \
        if (!same(a.f, b.f))                       \
            out.push_back({#f, fmt(a.f), fmt(b.f)}); \
    } while (0)
    HM_METRICS_FIELD(mttd_s);
    HM_METRICS_FIELD(mttr_s);
    HM_METRICS_FIELD(work_lost_core_ms);
    HM_METRICS_FIELD(reexecuted_core_ms);
    HM_METRICS_FIELD(frames_dropped);
    HM_METRICS_FIELD(wireless_retransmissions);
    HM_METRICS_FIELD(offloads_abandoned);
    HM_METRICS_FIELD(offload_retries);
    HM_METRICS_FIELD(circuit_open_events);
    HM_METRICS_FIELD(device_crashes);
    HM_METRICS_FIELD(device_rejoins);
    HM_METRICS_FIELD(server_crashes);
    HM_METRICS_FIELD(killed_invocations);
    HM_METRICS_FIELD(datastore_outages);
    HM_METRICS_FIELD(controller_failovers);
    HM_METRICS_FIELD(link_burst_windows);
    HM_METRICS_FIELD(partitions);
    HM_METRICS_FIELD(controller_mttd_s);
    HM_METRICS_FIELD(controller_mttr_s);
    HM_METRICS_FIELD(checkpoint_age_s);
    HM_METRICS_FIELD(controller_crashes);
    HM_METRICS_FIELD(controller_partitions);
    HM_METRICS_FIELD(checkpoints_taken);
    HM_METRICS_FIELD(checkpoint_bytes);
    HM_METRICS_FIELD(tasks_redriven_on_failover);
    HM_METRICS_FIELD(frames_buffered_degraded);
    HM_METRICS_FIELD(buffered_frames_drained);
    HM_METRICS_FIELD(controller_outage_s);
    HM_METRICS_FIELD(outage_tasks_completed);
#undef HM_METRICS_FIELD
    return out;
}

std::vector<MetricsDelta>
metrics_diff(const RecoveryMetrics& a, const RecoveryMetrics& b,
             const std::vector<std::string>& fields)
{
    std::vector<MetricsDelta> all = metrics_diff(a, b);
    std::vector<MetricsDelta> out;
    for (MetricsDelta& d : all) {
        if (std::find(fields.begin(), fields.end(), d.field) != fields.end())
            out.push_back(std::move(d));
    }
    return out;
}

std::string
metrics_diff_string(const std::vector<MetricsDelta>& deltas)
{
    std::string out;
    for (const MetricsDelta& d : deltas) {
        out += "  " + d.field + ": " + d.lhs + " != " + d.rhs + "\n";
    }
    return out;
}

std::string
metrics_diff_string(const RecoveryMetrics& a, const RecoveryMetrics& b)
{
    return metrics_diff_string(metrics_diff(a, b));
}

bool
operator==(const RecoveryMetrics& a, const RecoveryMetrics& b)
{
    return metrics_diff(a, b).empty();
}

}  // namespace hivemind::fault

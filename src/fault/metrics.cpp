#include "fault/metrics.hpp"

namespace hivemind::fault {

void
RecoveryMetrics::merge(const RecoveryMetrics& other)
{
    mttd_s.merge(other.mttd_s);
    mttr_s.merge(other.mttr_s);
    work_lost_core_ms += other.work_lost_core_ms;
    reexecuted_core_ms += other.reexecuted_core_ms;
    frames_dropped += other.frames_dropped;
    offloads_abandoned += other.offloads_abandoned;
    offload_retries += other.offload_retries;
    circuit_open_events += other.circuit_open_events;
    device_crashes += other.device_crashes;
    device_rejoins += other.device_rejoins;
    server_crashes += other.server_crashes;
    killed_invocations += other.killed_invocations;
    datastore_outages += other.datastore_outages;
    controller_failovers += other.controller_failovers;
    link_burst_windows += other.link_burst_windows;
    partitions += other.partitions;
}

}  // namespace hivemind::fault

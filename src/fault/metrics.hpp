#pragma once

/**
 * @file
 * Recovery accounting for chaos experiments (Secs. 4.6-4.7).
 *
 * RecoveryMetrics is the ledger every fault-injection run fills in:
 * how fast failures were detected (MTTD), how fast service was
 * restored (MTTR), how much work was thrown away and re-executed, and
 * how many frames the wireless layer dropped during partitions. The
 * block is embedded in platform::RunMetrics so every scenario run
 * reports it alongside the latency/energy figures.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace hivemind::fault {

/** Ledger of one run's failures and recoveries. */
struct RecoveryMetrics
{
    /** Mean-time-to-detect samples: fault injection -> detection, s. */
    sim::Summary mttd_s;
    /** Mean-time-to-repair samples: fault injection -> service restored, s. */
    sim::Summary mttr_s;
    /** Function progress discarded by faults/crashes, core-ms. */
    double work_lost_core_ms = 0.0;
    /** Previously executed work re-driven after recovery, core-ms. */
    double reexecuted_core_ms = 0.0;
    /** Wireless frames dropped (retry budget exhausted in a partition). */
    std::uint64_t frames_dropped = 0;
    /** Wireless link-layer retransmissions performed. */
    std::uint64_t wireless_retransmissions = 0;
    /** Pipeline offloads abandoned after the app-level retry budget. */
    std::uint64_t offloads_abandoned = 0;
    /** App-level offload retry attempts (backoff + jitter). */
    std::uint64_t offload_retries = 0;
    /** Times a per-device circuit breaker opened (probation, Sec. 4.6). */
    std::uint64_t circuit_open_events = 0;
    /** Counters per fault class. */
    std::uint64_t device_crashes = 0;
    std::uint64_t device_rejoins = 0;
    std::uint64_t server_crashes = 0;
    /** In-flight invocations killed by server crashes. */
    std::uint64_t killed_invocations = 0;
    std::uint64_t datastore_outages = 0;
    /** Injected failover events plus completed HA standby takeovers. */
    std::uint64_t controller_failovers = 0;
    std::uint64_t link_burst_windows = 0;
    std::uint64_t partitions = 0;

    // --- Swarm-controller high availability (Sec. 4.6-4.7) ---
    /** Controller fault injection -> standby election, seconds. */
    sim::Summary controller_mttd_s;
    /** Controller fault injection -> takeover complete, seconds. */
    sim::Summary controller_mttr_s;
    /** Age of the replayed checkpoint at failover (lost-work bound), s. */
    sim::Summary checkpoint_age_s;
    /** Primary swarm-controller crashes injected. */
    std::uint64_t controller_crashes = 0;
    /** Swarm-controller partition windows injected. */
    std::uint64_t controller_partitions = 0;
    /** Controller state checkpoints persisted to the datastore. */
    std::uint64_t checkpoints_taken = 0;
    /** Bytes of checkpoint state written. */
    std::uint64_t checkpoint_bytes = 0;
    /** Offloads redriven by the standby after replaying a checkpoint. */
    std::uint64_t tasks_redriven_on_failover = 0;
    /** Sensor frames buffered on-board while no controller was up. */
    std::uint64_t frames_buffered_degraded = 0;
    /** Buffered frames successfully drained after reconnect. */
    std::uint64_t buffered_frames_drained = 0;
    /** Total seconds with no controller reachable. */
    double controller_outage_s = 0.0;
    /** Tasks that still completed during controller outages (goodput). */
    std::uint64_t outage_tasks_completed = 0;

    /** Fold another ledger into this one (summaries append). */
    void merge(const RecoveryMetrics& other);
};

/** One field where two ledgers disagree, values pre-formatted. */
struct MetricsDelta
{
    std::string field;
    std::string lhs;
    std::string rhs;
};

/**
 * Field-by-field comparison of two ledgers. Scalars compare exactly;
 * summaries compare by their full sample sequences (insertion order),
 * so two ledgers are equal iff they recorded the same history. Empty
 * result means equal.
 */
std::vector<MetricsDelta> metrics_diff(const RecoveryMetrics& a,
                                       const RecoveryMetrics& b);

/**
 * metrics_diff() restricted to the named fields — the cross-engine
 * parity checks compare only the fields both engines model
 * identically. Unknown names are ignored.
 */
std::vector<MetricsDelta> metrics_diff(const RecoveryMetrics& a,
                                       const RecoveryMetrics& b,
                                       const std::vector<std::string>& fields);

/** Human-readable one-line-per-field diff ("" when equal). */
std::string metrics_diff_string(const RecoveryMetrics& a,
                                const RecoveryMetrics& b);
std::string metrics_diff_string(const std::vector<MetricsDelta>& deltas);

/** Exact equality: metrics_diff(a, b).empty(). */
bool operator==(const RecoveryMetrics& a, const RecoveryMetrics& b);

}  // namespace hivemind::fault

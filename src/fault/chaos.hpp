#pragma once

/**
 * @file
 * ChaosEngine: deterministic fault injection across every layer.
 *
 * The engine interprets a FaultPlan (fault/plan.hpp) against a live
 * deployment: it schedules each event on the simulator and drives the
 * attached components — device failure flags, the wireless topology's
 * loss override and per-device blackouts, the FaaS runtime's server
 * crashes and controller failovers, and datastore outage windows. All
 * randomness (Gilbert-Elliott state dwell times, spatial-burst victim
 * ordering ties) flows through a forked sim::Rng, so identical seeds
 * and identical plans replay bit-identically — the property the
 * determinism acceptance test pins down.
 *
 * Detection/repair timing is reported back by the harness through
 * note_detected()/note_repaired(); the engine matches those against
 * its own injection times to produce MTTD/MTTR samples, and ignores
 * devices it did not crash (e.g. battery deaths).
 */

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "cloud/datastore.hpp"
#include "cloud/faas.hpp"
#include "fault/metrics.hpp"
#include "fault/plan.hpp"
#include "geo/vec2.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hivemind::fault {

/** Executes a FaultPlan against attached components. */
class ChaosEngine
{
  public:
    /** @param rng parent stream; the engine forks its own child. */
    ChaosEngine(sim::Simulator& simulator, sim::Rng& rng, FaultPlan plan);

    /**
     * Attach the device fleet. @p set_failed flips a device's failed
     * flag (crash/rejoin); @p position reports a device's current
     * location for spatial bursts (may be empty — bursts then match
     * nothing).
     */
    void attach_devices(std::size_t count,
                        std::function<void(std::size_t, bool)> set_failed,
                        std::function<geo::Vec2(std::size_t)> position = {});

    /** Attach the wireless topology (link bursts, partitions). */
    void attach_network(net::SwarmTopology& network);

    /** Attach the FaaS runtime (server crashes, controller failovers). */
    void attach_faas(cloud::FaasRuntime& faas);

    /** Attach the datastore (outage windows). */
    void attach_datastore(cloud::DataStore& store);

    /**
     * Attach the swarm-controller HA layer. ControllerCrash and
     * ControllerPartition events are handed to @p handler (the platform
     * wires it to core::HaCluster — the fault layer stays independent
     * of hm_core). Without a handler those events only count.
     */
    void attach_controller(std::function<void(const FaultEvent&)> handler);

    /** Schedule every plan event on the simulator. */
    void start();

    /**
     * Stop injecting (pending events become no-ops) and pull the
     * attached components' counters into the metrics block. Idempotent.
     */
    void stop();

    /** Whether the engine currently holds this device down. */
    bool device_down(std::size_t device) const;

    /** The harness detected a failure (MTTD sample if we injected it). */
    void note_detected(std::size_t device);

    /**
     * The harness restored service for the device — its region was
     * re-absorbed (permanent crash) or handed back (rejoin). Records
     * the MTTR sample. For a transient crash the repartition after
     * detection does NOT close the incident; only the rejoin does.
     */
    void note_repaired(std::size_t device);

    /**
     * The standby elected itself after a controller crash we injected:
     * records the controller MTTD sample (injection -> election).
     */
    void note_controller_detected();

    /**
     * Controller service is restored (takeover complete or partition
     * healed). For a crash incident this records MTTR and the
     * checkpoint-age-at-failover sample; @p checkpoint_age_s < 0 means
     * no checkpoint was replayed (partition heal).
     */
    void note_controller_restored(double checkpoint_age_s);

    /** The accumulated ledger (complete after stop()). */
    const RecoveryMetrics& metrics() const { return metrics_; }
    RecoveryMetrics& metrics() { return metrics_; }

    const FaultPlan& plan() const { return plan_; }

  private:
    struct CrashRecord
    {
        sim::Time at = 0;
        bool transient = false;
    };

    void fire(const FaultEvent& e);
    void crash_device(std::size_t device, sim::Time rejoin_after);
    void rejoin_device(std::size_t device);
    void fire_spatial_burst(const FaultEvent& e);
    void fire_link_burst(const FaultEvent& e);
    /** One Gilbert-Elliott state transition inside a burst window. */
    void ge_transition(FaultEvent e, sim::Time window_end, bool to_bad);

    sim::Simulator* simulator_;
    sim::Rng rng_;
    FaultPlan plan_;
    RecoveryMetrics metrics_;

    std::size_t device_count_ = 0;
    std::function<void(std::size_t, bool)> set_failed_;
    std::function<geo::Vec2(std::size_t)> position_;
    net::SwarmTopology* network_ = nullptr;
    cloud::FaasRuntime* faas_ = nullptr;
    cloud::DataStore* store_ = nullptr;
    std::function<void(const FaultEvent&)> controller_handler_;
    /** Open swarm-controller crash incident (-1 = none). */
    sim::Time controller_crash_at_ = -1;
    bool controller_detected_ = false;

    std::vector<char> down_;
    /** Open incidents: device -> injection record (ordered map for
     *  deterministic iteration). */
    std::map<std::size_t, CrashRecord> crash_at_;
    bool running_ = false;
    bool finalized_ = false;
};

}  // namespace hivemind::fault

#include "fault/oracle.hpp"

#include <algorithm>
#include <cstdio>

namespace hivemind::fault {

namespace {

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
dbl(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Inclusive expected-count interval for one fault counter. */
struct CountRange
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool contains(std::uint64_t v) const { return v >= lo && v <= hi; }
    std::string to_string() const
    {
        if (lo == hi)
            return u64(lo);
        return "[" + u64(lo) + ", " + u64(hi) + "]";
    }
};

/**
 * What the plan should have injected by the time the run stopped.
 * Events at `completion` or inside the margin may or may not have
 * fired (stop-predicate granularity), so every counter is a range:
 * lo counts events strictly before completion, hi counts events up to
 * completion + margin.
 */
struct Expectation
{
    CountRange device_crashes;
    CountRange device_rejoins;
    CountRange partitions;
    CountRange server_crashes;
    CountRange datastore_outages;
    CountRange link_bursts;
    CountRange controller_crashes;     ///< ControllerCrash events only.
    CountRange controller_failovers;   ///< ControllerFailover events only.
    CountRange controller_partitions;  ///< ControllerPartition events only.
    bool has_spatial = false;          ///< Victims are dynamic: loosen.
    /** Σ durations of fired DatastoreOutage + ControllerPartition
     *  windows — every stall the checkpoint cadence can blame. */
    double stall_window_s = 0.0;
    /** End of the last wireless disturbance that may have fired. */
    sim::Time last_wireless_end = 0;
    /** Earliest injection time in the plan (or horizon if empty). */
    sim::Time first_event_at = 0;
    /** Per-device end state: 0 = up, 1 = down, -1 = boundary-ambiguous. */
    std::vector<int> device_down;
};

Expectation
interpret_plan(const RunAudit& run)
{
    const FaultPlan& plan = run.plan;
    const sim::Time c = run.completion;
    const sim::Time hi_cut = c + run.completion_margin;
    auto count = [&](CountRange& r, sim::Time at) {
        if (at < c)
            ++r.lo;
        if (at <= hi_cut)
            ++r.hi;
    };

    Expectation x;
    x.first_event_at = run.horizon;
    const std::vector<bool> crash_fires = effective_device_crashes(plan);
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        const FaultEvent& e = plan.events[i];
        x.first_event_at = std::min(x.first_event_at, e.at);
        switch (e.kind) {
        case FaultKind::DeviceCrash:
            if (crash_fires[i]) {
                count(x.device_crashes, e.at);
                if (e.duration > 0)
                    count(x.device_rejoins, e.at + e.duration);
            }
            break;
        case FaultKind::SpatialBurst:
            x.has_spatial = true;
            break;
        case FaultKind::LinkBurst:
            count(x.link_bursts, e.at);
            if (e.at <= hi_cut)
                x.last_wireless_end =
                    std::max(x.last_wireless_end, e.at + e.duration);
            break;
        case FaultKind::Partition:
            count(x.partitions, e.at);
            if (e.at <= hi_cut)
                x.last_wireless_end =
                    std::max(x.last_wireless_end, e.at + e.duration);
            break;
        case FaultKind::ServerCrash:
            count(x.server_crashes, e.at);
            break;
        case FaultKind::DatastoreOutage:
            count(x.datastore_outages, e.at);
            if (e.at <= hi_cut)
                x.stall_window_s += sim::to_seconds(e.duration);
            break;
        case FaultKind::ControllerFailover:
            count(x.controller_failovers, e.at);
            break;
        case FaultKind::ControllerCrash:
            count(x.controller_crashes, e.at);
            break;
        case FaultKind::ControllerPartition:
            count(x.controller_partitions, e.at);
            if (e.at <= hi_cut)
                x.stall_window_s += sim::to_seconds(e.duration);
            break;
        }
    }

    // Per-device end state: walk each device's effective incidents
    // under the two extreme boundary readings. Down in the maximally-up
    // reading (crashes only if certain, rejoins if at all possible) and
    // in the maximally-down reading means down for sure; agreement the
    // other way round means up for sure; anything else is ambiguous.
    x.device_down.assign(run.devices, 0);
    auto down_under = [&](std::size_t device, sim::Time crash_cut,
                          sim::Time rejoin_cut) {
        bool down = false;
        for (std::size_t i = 0; i < plan.events.size(); ++i) {
            const FaultEvent& e = plan.events[i];
            if (e.kind != FaultKind::DeviceCrash || e.target != device ||
                !crash_fires[i])
                continue;
            if (e.at > crash_cut)
                continue;
            down = e.duration == 0 || e.at + e.duration > rejoin_cut;
        }
        return down;
    };
    for (std::size_t d = 0; d < run.devices; ++d) {
        const bool up_read = down_under(d, c - 1, hi_cut);
        const bool down_read = down_under(d, hi_cut, c - 1);
        x.device_down[d] = up_read == down_read ? (up_read ? 1 : 0) : -1;
    }
    return x;
}

void
check_count(std::vector<Violation>& out, const char* oracle,
            const char* counter, std::uint64_t measured,
            const CountRange& expected)
{
    if (expected.contains(measured))
        return;
    out.push_back({oracle, std::string(counter) + " = " + u64(measured) +
                              ", plan interpretation expects " +
                              expected.to_string()});
}

}  // namespace

std::string
violations_to_string(const std::vector<Violation>& violations)
{
    std::string s;
    for (const Violation& v : violations)
        s += "[" + v.oracle + "] " + v.detail + "\n";
    return s;
}

std::vector<Violation>
OracleSuite::audit(const RunAudit& run) const
{
    std::vector<Violation> out = check_frame_conservation(run);
    std::vector<Violation> ledger = check_ledger_sanity(run);
    out.insert(out.end(), ledger.begin(), ledger.end());
    std::vector<Violation> live = check_liveness(run);
    out.insert(out.end(), live.begin(), live.end());
    return out;
}

std::vector<Violation>
OracleSuite::check_frame_conservation(const RunAudit& run) const
{
    std::vector<Violation> out;
    const FrameLedger& f = run.frames;
    const std::uint64_t accounted =
        f.delivered + f.dropped + f.inflight_end;
    if (f.generated != accounted) {
        out.push_back(
            {"frame-conservation",
             "generated " + u64(f.generated) + " != delivered " +
                 u64(f.delivered) + " + dropped " + u64(f.dropped) +
                 " + in-flight " + u64(f.inflight_end) + " (= " +
                 u64(accounted) + ")"});
    }
    const std::uint64_t buffer_accounted =
        f.drained + f.drain_lost + f.drain_inflight_end + f.buffered_end;
    if (f.buffered != buffer_accounted) {
        out.push_back(
            {"frame-conservation",
             "buffered " + u64(f.buffered) + " != drained " +
                 u64(f.drained) + " + drain-lost " + u64(f.drain_lost) +
                 " + drain-in-flight " + u64(f.drain_inflight_end) +
                 " + still-buffered " + u64(f.buffered_end) + " (= " +
                 u64(buffer_accounted) + ")"});
    }
    std::uint64_t device_buffered = 0;
    for (const DeviceEndState& d : run.device_end)
        device_buffered += d.buffered;
    if (device_buffered != f.buffered_end) {
        out.push_back({"frame-conservation",
                       "per-device buffered frames sum to " +
                           u64(device_buffered) +
                           " but the ledger holds buffered_end = " +
                           u64(f.buffered_end)});
    }
    if (f.buffered != run.recovery.frames_buffered_degraded) {
        out.push_back({"frame-conservation",
                       "ledger buffered " + u64(f.buffered) +
                           " != recovery frames_buffered_degraded " +
                           u64(run.recovery.frames_buffered_degraded)});
    }
    if (f.drained != run.recovery.buffered_frames_drained) {
        out.push_back({"frame-conservation",
                       "ledger drained " + u64(f.drained) +
                           " != recovery buffered_frames_drained " +
                           u64(run.recovery.buffered_frames_drained)});
    }
    return out;
}

std::vector<Violation>
OracleSuite::check_ledger_sanity(const RunAudit& run) const
{
    std::vector<Violation> out;
    const RecoveryMetrics& r = run.recovery;
    const Expectation x = interpret_plan(run);
    const char* oracle = "ledger-sanity";
    const bool legacy = run.engine == "legacy";

    // --- Injected-fault counters vs the plan interpretation ---
    if (!x.has_spatial) {
        check_count(out, oracle, "device_crashes", r.device_crashes,
                    x.device_crashes);
        check_count(out, oracle, "device_rejoins", r.device_rejoins,
                    x.device_rejoins);
    } else if (r.device_crashes < x.device_crashes.lo) {
        // Burst victims are dynamic, so only the floor is knowable.
        out.push_back({oracle, "device_crashes = " + u64(r.device_crashes) +
                                   " below the spatial-burst floor " +
                                   u64(x.device_crashes.lo)});
    }
    check_count(out, oracle, "partitions", r.partitions, x.partitions);
    check_count(out, oracle, "server_crashes", r.server_crashes,
                x.server_crashes);
    check_count(out, oracle, "link_burst_windows", r.link_burst_windows,
                x.link_bursts);
    if (legacy) {
        // The legacy engine reads DataStore::outages(), which counts
        // stalled accesses, not windows: only the zero case is exact.
        if (x.datastore_outages.hi == 0 && r.datastore_outages != 0) {
            out.push_back({oracle,
                           "datastore_outages = " + u64(r.datastore_outages) +
                               " with no DatastoreOutage in the plan"});
        }
    } else {
        check_count(out, oracle, "datastore_outages", r.datastore_outages,
                    x.datastore_outages);
    }

    // --- Controller ledger ---
    if (legacy) {
        check_count(out, oracle, "controller_crashes", r.controller_crashes,
                    x.controller_crashes);
        check_count(out, oracle, "controller_partitions",
                    r.controller_partitions, x.controller_partitions);
        // Legacy failovers = fired ControllerFailover events (front-end
        // FaaS) + standby takeovers (one checkpoint-age sample each).
        const std::uint64_t takeovers =
            static_cast<std::uint64_t>(r.checkpoint_age_s.count());
        if (r.controller_failovers < takeovers) {
            out.push_back({oracle,
                           "controller_failovers = " +
                               u64(r.controller_failovers) +
                               " below the takeover count " +
                               u64(takeovers)});
        } else {
            check_count(out, oracle,
                        "controller_failovers - takeovers",
                        r.controller_failovers - takeovers,
                        x.controller_failovers);
        }
    } else if (run.ha_enabled) {
        // Sharded: ControllerFailover rides the same crash hook.
        CountRange crashes;
        crashes.lo = x.controller_crashes.lo + x.controller_failovers.lo;
        crashes.hi = x.controller_crashes.hi + x.controller_failovers.hi;
        check_count(out, oracle, "controller_crashes", r.controller_crashes,
                    crashes);
        check_count(out, oracle, "controller_partitions",
                    r.controller_partitions, x.controller_partitions);
        if (r.controller_failovers !=
            static_cast<std::uint64_t>(r.checkpoint_age_s.count())) {
            out.push_back({oracle,
                           "controller_failovers = " +
                               u64(r.controller_failovers) +
                               " != completed takeovers " +
                               u64(r.checkpoint_age_s.count()) +
                               " (one checkpoint-age sample each)"});
        }
    } else {
        // Sharded without HA: partitions fall back to the crash/recover
        // pair and takeovers are the fixed-delay recoveries.
        const std::uint64_t crash_cap = x.controller_crashes.hi +
            x.controller_failovers.hi + x.controller_partitions.hi;
        if (r.controller_crashes > crash_cap) {
            out.push_back({oracle, "controller_crashes = " +
                                       u64(r.controller_crashes) +
                                       " above the plan's ceiling " +
                                       u64(crash_cap)});
        }
        if (r.controller_failovers > crash_cap) {
            out.push_back({oracle, "controller_failovers = " +
                                       u64(r.controller_failovers) +
                                       " above the plan's ceiling " +
                                       u64(crash_cap)});
        }
    }

    // --- Recovery summaries ---
    auto non_negative = [&](const char* name, const sim::Summary& s) {
        for (double v : s.samples()) {
            if (v < -cfg_.eps_s) {
                out.push_back({oracle, std::string(name) +
                                           " holds a negative sample " +
                                           dbl(v)});
                return;
            }
        }
    };
    non_negative("mttd_s", r.mttd_s);
    non_negative("mttr_s", r.mttr_s);
    non_negative("controller_mttd_s", r.controller_mttd_s);
    non_negative("controller_mttr_s", r.controller_mttr_s);
    non_negative("checkpoint_age_s", r.checkpoint_age_s);

    // Device repairs close incidents the plan (or a legacy ServerCrash
    // sample) opened; more repairs than incidents means double books.
    const std::uint64_t repair_cap = r.device_crashes + r.server_crashes;
    if (r.mttr_s.count() > repair_cap) {
        out.push_back({oracle, "device mttr_s carries " +
                                   u64(r.mttr_s.count()) +
                                   " samples for only " + u64(repair_cap) +
                                   " repairable incidents"});
    }

    if (run.ha_enabled) {
        if (r.controller_mttr_s.count() != r.checkpoint_age_s.count()) {
            out.push_back({oracle,
                           "controller takeovers disagree: " +
                               u64(r.controller_mttr_s.count()) +
                               " recovery samples vs " +
                               u64(r.checkpoint_age_s.count()) +
                               " checkpoint-age samples"});
        }
        if (r.controller_mttd_s.count() < r.controller_mttr_s.count()) {
            out.push_back({oracle,
                           "more controller recoveries (" +
                               u64(r.controller_mttr_s.count()) +
                               ") than detections (" +
                               u64(r.controller_mttd_s.count()) + ")"});
        }
        const std::vector<double>& mttd = r.controller_mttd_s.samples();
        const std::vector<double>& mttr = r.controller_mttr_s.samples();
        for (std::size_t i = 0; i < std::min(mttd.size(), mttr.size());
             ++i) {
            if (mttr[i] + cfg_.eps_s < mttd[i]) {
                out.push_back({oracle,
                               "takeover " + std::to_string(i) +
                                   ": MTTR " + dbl(mttr[i]) +
                                   "s below its own MTTD " + dbl(mttd[i]) +
                                   "s"});
            }
        }
        // A replayed checkpoint can be stale by at most one interval
        // plus every stall the plan could have caused (datastore
        // outages, controller partitions, the outage itself).
        const double age_bound = run.checkpoint_interval_s +
            x.stall_window_s +
            (r.controller_mttr_s.empty() ? 0.0 : r.controller_mttr_s.max()) +
            cfg_.checkpoint_slack_s;
        for (double age : r.checkpoint_age_s.samples()) {
            if (age > age_bound) {
                out.push_back({oracle,
                               "checkpoint age " + dbl(age) +
                                   "s exceeds the staleness bound " +
                                   dbl(age_bound) + "s"});
            }
        }
        if (r.checkpoint_bytes == 0 && r.checkpoints_taken > 0) {
            out.push_back({oracle,
                           u64(r.checkpoints_taken) +
                               " checkpoints taken but zero bytes written"});
        }
        const double completion_s = sim::to_seconds(run.completion);
        if (r.controller_outage_s < 0.0 ||
            r.controller_outage_s > completion_s + cfg_.eps_s) {
            out.push_back({oracle,
                           "controller_outage_s " +
                               dbl(r.controller_outage_s) +
                               " outside [0, completion " +
                               dbl(completion_s) + "]"});
        }
    } else {
        if (r.controller_mttd_s.count() != 0 ||
            r.controller_mttr_s.count() != 0 ||
            r.checkpoint_age_s.count() != 0) {
            out.push_back({oracle,
                           "controller recovery samples recorded without "
                           "the HA stack wired"});
        }
    }
    return out;
}

std::vector<Violation>
OracleSuite::check_liveness(const RunAudit& run) const
{
    std::vector<Violation> out;
    const Expectation x = interpret_plan(run);
    const char* oracle = "liveness";

    if (run.completion <= 0) {
        out.push_back({oracle, "run never advanced (completion = " +
                                   std::to_string(run.completion) + ")"});
        return out;
    }
    if (run.completion > run.horizon + run.completion_margin) {
        out.push_back({oracle,
                       "run overran its horizon: completion " +
                           std::to_string(run.completion) + " > cap " +
                           std::to_string(run.horizon)});
    }
    if (run.device_end.size() != run.devices) {
        out.push_back({oracle,
                       "device end-state roster holds " +
                           u64(run.device_end.size()) + " entries for " +
                           u64(run.devices) + " devices"});
        return out;
    }

    // The mission must reach its horizon unless it finished or the
    // swarm died: stopping early with expected-alive devices and no
    // goal means the run loop stalled or gave up.
    bool any_expected_alive = false;
    for (std::size_t d = 0; d < run.devices; ++d) {
        if (x.device_down[d] == 0 && !run.device_end[d].battery_dead)
            any_expected_alive = true;
    }
    if (!run.completed && !x.has_spatial && any_expected_alive &&
        run.expect_full_horizon &&
        run.completion + run.completion_margin < run.horizon) {
        out.push_back({oracle,
                       "run stopped at " + std::to_string(run.completion) +
                           " before the horizon " +
                           std::to_string(run.horizon) +
                           " with live devices and no goal"});
    }

    // Transient crashes rejoin; untouched devices end alive (battery
    // death excuses); permanent crashes stay down.
    if (!x.has_spatial) {
        for (std::size_t d = 0; d < run.devices; ++d) {
            const DeviceEndState& e = run.device_end[d];
            if (x.device_down[d] == 1 && e.alive) {
                out.push_back({oracle,
                               "device " + u64(d) +
                                   " ends alive but the plan holds it "
                                   "crashed"});
            }
            if (x.device_down[d] == 0 && !e.alive && !e.battery_dead) {
                out.push_back({oracle,
                               "device " + u64(d) +
                                   " ends dead with a healthy battery and "
                                   "no crash holding it down"});
            }
        }
    }

    // Breakers are wireless-only: long after the last LinkBurst /
    // Partition window closed (and with no baseline loss), every
    // circuit must have cooled shut again.
    if (run.configured_loss <= 0.0) {
        const double quiet_s =
            sim::to_seconds(run.completion - x.last_wireless_end);
        if (quiet_s > run.breaker_cooldown_s + cfg_.breaker_slack_s) {
            for (std::size_t d = 0; d < run.devices; ++d) {
                if (run.device_end[d].breaker_open) {
                    out.push_back({oracle,
                                   "device " + u64(d) +
                                       "'s circuit breaker is still open " +
                                       dbl(quiet_s) +
                                       "s after the last wireless "
                                       "disturbance"});
                }
            }
        }
    }

    // Degraded-mode buffering exists only while a swarm controller can
    // actually be lost.
    const bool controller_loss_possible = x.controller_crashes.hi > 0 ||
        x.controller_partitions.hi > 0 ||
        (run.engine != "legacy" && x.controller_failovers.hi > 0);
    if (!controller_loss_possible &&
        (run.frames.buffered != 0 || run.frames.buffered_end != 0 ||
         run.recovery.outage_tasks_completed != 0)) {
        out.push_back({oracle,
                       "degraded-mode buffering ran (" +
                           u64(run.frames.buffered) + " buffered, " +
                           u64(run.recovery.outage_tasks_completed) +
                           " outage completions) with no controller fault "
                           "in the plan"});
    }

    // A healthy fleet produces frames before the first fault lands.
    if (run.devices > 0 && run.frames.generated == 0 &&
        run.completion >= 2 * sim::kSecond &&
        x.first_event_at >= 2 * sim::kSecond) {
        out.push_back({oracle, "no frames generated by a fleet of " +
                                   u64(run.devices) + " devices"});
    }
    return out;
}

std::vector<Violation>
OracleSuite::check_determinism(const RunAudit& a, const RunAudit& b) const
{
    std::vector<Violation> out;
    const char* oracle = "determinism";
    auto differ = [&](const char* field, const std::string& va,
                      const std::string& vb) {
        out.push_back({oracle, std::string(field) + ": " + va + " != " + vb});
    };
    if (a.engine != b.engine)
        differ("engine", a.engine, b.engine);
    if (a.seed != b.seed)
        differ("seed", u64(a.seed), u64(b.seed));
    if (a.checksum != b.checksum)
        differ("checksum", u64(a.checksum), u64(b.checksum));
    if (a.completion != b.completion)
        differ("completion", std::to_string(a.completion),
               std::to_string(b.completion));
    if (a.completed != b.completed)
        differ("completed", a.completed ? "true" : "false",
               b.completed ? "true" : "false");
    if (!(a.frames == b.frames)) {
        differ("frame ledger",
               "generated/delivered/dropped = " + u64(a.frames.generated) +
                   "/" + u64(a.frames.delivered) + "/" +
                   u64(a.frames.dropped),
               u64(b.frames.generated) + "/" + u64(b.frames.delivered) +
                   "/" + u64(b.frames.dropped));
    }
    if (!(a.recovery == b.recovery)) {
        out.push_back({oracle, "recovery metrics differ:\n" +
                                   metrics_diff_string(a.recovery,
                                                       b.recovery)});
    }
    if (!(a.device_end == b.device_end))
        out.push_back({oracle, "per-device end states differ"});
    return out;
}

std::vector<Violation>
OracleSuite::check_shard_invariance(const std::vector<RunAudit>& runs) const
{
    std::vector<Violation> out;
    if (runs.size() < 2)
        return out;
    for (std::size_t i = 1; i < runs.size(); ++i) {
        std::vector<Violation> diff = check_determinism(runs[0], runs[i]);
        for (Violation& v : diff) {
            v.oracle = "shard-invariance";
            v.detail = "shards " + std::to_string(runs[0].shards) + " vs " +
                std::to_string(runs[i].shards) + ": " + v.detail;
            out.push_back(std::move(v));
        }
    }
    return out;
}

std::vector<Violation>
OracleSuite::check_cross_engine(const RunAudit& legacy,
                                const RunAudit& sharded) const
{
    std::vector<Violation> out;
    const char* oracle = "cross-engine";
    if (!(legacy.plan == sharded.plan)) {
        out.push_back({oracle, "the two runs executed different plans"});
        return out;
    }
    // Spatial bursts have no sharded model, and ControllerFailover
    // routes to different machinery per engine — the injected-fault
    // ledgers legitimately diverge, so there is nothing to pin.
    bool has_spatial = false;
    bool has_failover = false;
    sim::Time last_effect = 0;
    for (const FaultEvent& e : legacy.plan.events) {
        has_spatial |= e.kind == FaultKind::SpatialBurst;
        has_failover |= e.kind == FaultKind::ControllerFailover;
        last_effect = std::max(last_effect, e.at + e.duration);
    }
    if (has_spatial)
        return out;
    // Counters only agree when both runs outlived every event (and
    // every rejoin/window end) by more than the boundary margin.
    const sim::Time safe = last_effect + sim::kSecond;
    if (legacy.completion <= safe ||
        sharded.completion + sharded.completion_margin <= safe)
        return out;

    std::vector<std::string> fields = cross_engine_parity_fields();
    if (has_failover) {
        fields.erase(std::remove_if(fields.begin(), fields.end(),
                                    [](const std::string& f) {
                                        return f.rfind("controller_", 0) == 0;
                                    }),
                     fields.end());
    }
    std::vector<MetricsDelta> diff =
        metrics_diff(legacy.recovery, sharded.recovery, fields);
    for (const MetricsDelta& d : diff) {
        out.push_back({oracle, d.field + ": legacy " + d.lhs +
                                   " vs sharded " + d.rhs});
    }
    return out;
}

const std::vector<std::string>&
OracleSuite::cross_engine_parity_fields()
{
    // Fields both engines count at the same instant, per the same rule
    // (and route_plan's effective-crash filter makes the crash/rejoin
    // ledgers exact). Loss-dependent counters (retransmissions, drops)
    // and timing-dependent summaries are compared statistically by the
    // parity tests, not pinned here.
    static const std::vector<std::string> fields = {
        "device_crashes",     "device_rejoins",
        "server_crashes",     "partitions",
        "link_burst_windows", "controller_crashes",
        "controller_partitions",
    };
    return fields;
}

}  // namespace hivemind::fault

#pragma once

/**
 * @file
 * Edge-to-cloud offload retry policy (Sec. 4.6).
 *
 * Wireless offloads that fail outright (hard partitions, exhausted
 * link-layer retransmits) are retried from the application layer with
 * exponential backoff plus jitter and a capped attempt budget. A
 * per-device circuit breaker trips after consecutive failures and
 * fails offloads fast for a cooldown window — the same probation idea
 * the scheduler applies to misbehaving servers, applied to a device's
 * own uplink.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace hivemind::fault {

/** Tuning for the offload retry loop and circuit breaker. */
struct RetryConfig
{
    /** Total offload attempts per frame (first try + retries). */
    int max_attempts = 4;
    /** Backoff before retry k is base * multiplier^k, jittered. */
    sim::Time base_backoff = 100 * sim::kMillisecond;
    double multiplier = 2.0;
    /** Uniform jitter fraction applied to each backoff (+/- jitter). */
    double jitter = 0.25;
    /** Consecutive failures that trip the per-device breaker. */
    int breaker_threshold = 3;
    /** How long a tripped breaker fails offloads fast. */
    sim::Time breaker_cooldown = 5 * sim::kSecond;

    bool operator==(const RetryConfig&) const = default;
};

/** Per-device retry/circuit-breaker state for a fleet. */
class OffloadRetrier
{
  public:
    OffloadRetrier(std::size_t devices, RetryConfig config = {});

    const RetryConfig& config() const { return config_; }

    /** Whether `device`'s breaker is open (still cooling down) at `now`. */
    bool circuit_open(std::size_t device, sim::Time now) const;

    /** Record a successful offload: closes the breaker's failure run. */
    void record_success(std::size_t device);

    /**
     * Record a failed offload attempt at `now`. Returns true when this
     * failure trips the breaker open. Failures recorded while the
     * breaker is already open are swallowed — they never count toward
     * another trip.
     */
    bool record_failure(std::size_t device, sim::Time now);

    /** Jittered exponential backoff before retry `attempt` (0-based). */
    sim::Time backoff(int attempt, sim::Rng& rng) const;

    /** Total times any breaker tripped open. */
    std::uint64_t breaker_trips() const { return breaker_trips_; }

  private:
    struct DeviceState
    {
        int consecutive_failures = 0;
        sim::Time open_until = 0;
    };

    RetryConfig config_;
    std::vector<DeviceState> state_;
    std::uint64_t breaker_trips_ = 0;
};

}  // namespace hivemind::fault

#pragma once

/**
 * @file
 * Swarm-wide invariant oracles for chaos runs (Secs. 4.6-4.7).
 *
 * A finished run — legacy ScenarioHarness or sharded engine — fills a
 * RunAudit: the plan it executed, the frame-accounting ledger, the
 * recovery metrics, each device's end state and the run checksum. The
 * OracleSuite then audits the audit: machine-checked properties that
 * must hold for ANY fault schedule, which is what lets a fuzzer
 * explore plans nobody hand-wrote. The catalogue:
 *
 *  - frame conservation: generated == delivered + dropped + in-flight,
 *    and the degraded-mode buffer books balance (buffered == drained +
 *    lost-on-air + drain-in-flight + still-buffered);
 *  - recovery-ledger sanity: injected-fault counters match an
 *    interpretation of the plan, MTTR >= MTTD pairwise, failover
 *    count matches completed takeovers, checkpoint age bounded by the
 *    interval plus every stall the plan could have caused;
 *  - liveness: transient crashes rejoin, devices the plan left alone
 *    end alive, no circuit breaker is still open long after the last
 *    wireless disturbance, the sim reaches its horizon;
 *  - cross-run: same seed byte-identical, checksum equal at any shard
 *    count, legacy-vs-sharded ledger parity on the same plan.
 *
 * Counters for events injected close to the moment the run stopped
 * are checked as ranges: an event at the completion boundary may or
 * may not have fired depending on kernel tie-breaks, so the expected
 * count is [fired-before, fired-before + boundary events]. RunAudit::
 * completion_margin widens the boundary for the sharded engine, where
 * the stop predicate is only evaluated at epoch boundaries.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/metrics.hpp"
#include "fault/plan.hpp"
#include "sim/time.hpp"

namespace hivemind::fault {

/** Frame- and message-accounting terms, measured independently. */
struct FrameLedger
{
    // Offload pipeline (normal mode).
    std::uint64_t generated = 0;     ///< Frames entering the pipeline.
    std::uint64_t delivered = 0;     ///< Results landed back on-device.
    std::uint64_t dropped = 0;       ///< Abandoned (retry budget/breaker).
    std::uint64_t inflight_end = 0;  ///< Still pending at completion.

    // Degraded-mode buffering (controller outages).
    std::uint64_t buffered = 0;            ///< Accepted into the buffer.
    std::uint64_t dropped_onboard = 0;     ///< Buffer-overflow drops.
    std::uint64_t drained = 0;             ///< Drained successfully.
    std::uint64_t drain_lost = 0;          ///< Lost draining (air/death).
    std::uint64_t drain_inflight_end = 0;  ///< Drain still in the air.
    std::uint64_t buffered_end = 0;        ///< Still buffered at the end.

    bool operator==(const FrameLedger&) const = default;
};

/** One device's state when the run stopped. */
struct DeviceEndState
{
    bool alive = false;
    bool battery_dead = false;
    bool breaker_open = false;      ///< Circuit still open at completion.
    std::uint64_t buffered = 0;     ///< Frames still in the buffer.

    bool operator==(const DeviceEndState&) const = default;
};

/** Everything the oracles need to know about one finished run. */
struct RunAudit
{
    std::string engine;  ///< "legacy" or "sharded".
    int shards = 1;
    std::uint64_t seed = 0;
    std::size_t devices = 0;
    std::size_t servers = 0;
    sim::Time horizon = 0;     ///< Configured time cap.
    sim::Time completion = 0;  ///< Sim time the run stopped at.
    /**
     * Events injected in (completion, completion + margin] may or may
     * not have fired (stop-predicate granularity); the count oracles
     * treat them as optional. 0 for the legacy engine (the kernel
     * stops dead), one epoch window for the sharded engine.
     */
    sim::Time completion_margin = 0;
    bool completed = false;        ///< Mission goal reached.
    /** The harness promises the run ends only at the horizon (fuzz
     *  configs make the goal unattainable); lets the liveness oracle
     *  flag early stops instead of excusing them as goal finishes. */
    bool expect_full_horizon = false;
    bool ha_enabled = false;       ///< HA stack was wired.
    std::size_t ha_standbys = 0;   ///< Failover budget (0 = unknown).
    double checkpoint_interval_s = 0.0;
    double breaker_cooldown_s = 0.0;
    double configured_loss = 0.0;  ///< Baseline wireless loss.
    std::uint64_t checksum = 0;

    FaultPlan plan;
    FrameLedger frames;
    RecoveryMetrics recovery;
    std::vector<DeviceEndState> device_end;
};

/** One broken invariant. */
struct Violation
{
    std::string oracle;  ///< Which invariant family tripped.
    std::string detail;  ///< Human-readable account with the numbers.
};

/** Render a violation list, one per line ("" when clean). */
std::string violations_to_string(const std::vector<Violation>& violations);

/** Slack knobs; defaults are sound for every shipped scenario. */
struct OracleConfig
{
    /** Absolute tolerance on second-valued comparisons. */
    double eps_s = 1e-9;
    /** Transport/serialization allowance on the checkpoint-age bound. */
    double checkpoint_slack_s = 5.0;
    /** Backoff allowance before an idle breaker must have closed. */
    double breaker_slack_s = 15.0;
};

/**
 * The invariant catalogue. Stateless; every method returns the
 * violations it found (empty = clean).
 */
class OracleSuite
{
  public:
    explicit OracleSuite(OracleConfig config = {}) : cfg_(config) {}

    /** Every single-run invariant: conservation, ledger, liveness. */
    std::vector<Violation> audit(const RunAudit& run) const;

    std::vector<Violation> check_frame_conservation(const RunAudit& run) const;
    std::vector<Violation> check_ledger_sanity(const RunAudit& run) const;
    std::vector<Violation> check_liveness(const RunAudit& run) const;

    /** Same seed, same config: the two runs must be identical. */
    std::vector<Violation> check_determinism(const RunAudit& a,
                                             const RunAudit& b) const;

    /** Same seed across shard counts: identical up to `shards`. */
    std::vector<Violation> check_shard_invariance(
        const std::vector<RunAudit>& runs) const;

    /**
     * Legacy vs sharded on the same plan + seed: the injected-fault
     * ledger fields both engines model identically must agree (the
     * field list is cross_engine_parity_fields()).
     */
    std::vector<Violation> check_cross_engine(const RunAudit& legacy,
                                              const RunAudit& sharded) const;

    /** RecoveryMetrics fields pinned equal across the two engines. */
    static const std::vector<std::string>& cross_engine_parity_fields();

  private:
    OracleConfig cfg_;
};

}  // namespace hivemind::fault

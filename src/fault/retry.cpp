#include "fault/retry.hpp"

#include <algorithm>
#include <cmath>

namespace hivemind::fault {

OffloadRetrier::OffloadRetrier(std::size_t devices, RetryConfig config)
    : config_(config), state_(devices)
{
}

bool
OffloadRetrier::circuit_open(std::size_t device, sim::Time now) const
{
    if (device >= state_.size())
        return false;
    return now < state_[device].open_until;
}

void
OffloadRetrier::record_success(std::size_t device)
{
    if (device >= state_.size())
        return;
    state_[device].consecutive_failures = 0;
}

bool
OffloadRetrier::record_failure(std::size_t device, sim::Time now)
{
    if (device >= state_.size())
        return false;
    DeviceState& st = state_[device];
    if (now < st.open_until)
        return false;  // Already open: the probation window absorbs
                       // failures of in-flight sends, they must not
                       // accumulate toward a second trip.
    ++st.consecutive_failures;
    if (st.consecutive_failures < config_.breaker_threshold)
        return false;
    // Trip: fail fast for the cooldown, then allow a fresh probe run.
    st.consecutive_failures = 0;
    st.open_until = now + config_.breaker_cooldown;
    ++breaker_trips_;
    return true;
}

sim::Time
OffloadRetrier::backoff(int attempt, sim::Rng& rng) const
{
    double scale = std::pow(config_.multiplier, std::max(attempt, 0));
    double base = static_cast<double>(config_.base_backoff) * scale;
    double jittered =
        base * rng.uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
    return std::max<sim::Time>(1, static_cast<sim::Time>(jittered));
}

}  // namespace hivemind::fault

#pragma once

/**
 * @file
 * Load patterns for open-loop experiments.
 *
 * Fig. 5b drives face recognition with a fluctuating load: "First only
 * one drone sends images at low rate, and progressively more drones
 * transfer images of higher frames-per-second to the cloud.
 * Eventually, the load decreases down to a single drone." A
 * LoadPattern is a piecewise-linear task-arrival rate over time that
 * the experiment harness samples to generate arrivals.
 */

#include <vector>

#include "sim/time.hpp"

namespace hivemind::apps {

/** Piecewise-linear arrival rate (tasks/second) over simulated time. */
class LoadPattern
{
  public:
    /** Append a breakpoint; times must be non-decreasing. */
    void add(sim::Time t, double rate_hz);

    /** Rate at time @p t (linear interpolation, clamped at ends). */
    double rate_at(sim::Time t) const;

    /** Peak rate across all breakpoints. */
    double peak() const;

    /** Time-averaged rate over [0, until]. */
    double average(sim::Time until) const;

    /** Flat rate. */
    static LoadPattern constant(double rate_hz);

    /**
     * The Fig. 5b shape: ramp from a single low-rate device up to the
     * full swarm at high frame rates, hold, then ramp back down.
     *
     * @param low_hz single-device low rate
     * @param high_hz full-swarm peak rate
     * @param duration total pattern length
     */
    static LoadPattern fluctuating(double low_hz, double high_hz,
                                   sim::Time duration);

  private:
    struct Point
    {
        sim::Time t;
        double rate;
    };
    std::vector<Point> points_;
};

}  // namespace hivemind::apps

#include "apps/workload.hpp"

namespace hivemind::apps {

void
LoadPattern::add(sim::Time t, double rate_hz)
{
    points_.push_back({t, rate_hz});
}

double
LoadPattern::rate_at(sim::Time t) const
{
    if (points_.empty())
        return 0.0;
    if (t <= points_.front().t)
        return points_.front().rate;
    if (t >= points_.back().t)
        return points_.back().rate;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (t <= points_[i].t) {
            const Point& a = points_[i - 1];
            const Point& b = points_[i];
            if (b.t == a.t)
                return b.rate;
            double frac = static_cast<double>(t - a.t) /
                static_cast<double>(b.t - a.t);
            return a.rate + (b.rate - a.rate) * frac;
        }
    }
    return points_.back().rate;
}

double
LoadPattern::peak() const
{
    double p = 0.0;
    for (const Point& pt : points_) {
        if (pt.rate > p)
            p = pt.rate;
    }
    return p;
}

double
LoadPattern::average(sim::Time until) const
{
    if (until <= 0)
        return 0.0;
    // Trapezoidal integration over 1 s steps.
    double sum = 0.0;
    sim::Time step = sim::kSecond;
    sim::Time t = 0;
    std::size_t n = 0;
    while (t <= until) {
        sum += rate_at(t);
        ++n;
        t += step;
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

LoadPattern
LoadPattern::constant(double rate_hz)
{
    LoadPattern p;
    p.add(0, rate_hz);
    return p;
}

LoadPattern
LoadPattern::fluctuating(double low_hz, double high_hz, sim::Time duration)
{
    LoadPattern p;
    p.add(0, low_hz);
    p.add(duration / 5, low_hz);
    p.add(2 * duration / 5, high_hz);
    p.add(3 * duration / 5, high_hz);
    p.add(4 * duration / 5, low_hz);
    p.add(duration, low_hz);
    return p;
}

}  // namespace hivemind::apps

#include "apps/detection.hpp"

#include <cmath>

namespace hivemind::apps {

const char*
to_string(RetrainMode m)
{
    switch (m) {
      case RetrainMode::None:
        return "None";
      case RetrainMode::Self:
        return "Self";
      case RetrainMode::Swarm:
        return "Swarm";
    }
    return "?";
}

void
DetectionModel::observe(RetrainMode mode, std::uint64_t own,
                        std::uint64_t swarm_total)
{
    switch (mode) {
      case RetrainMode::None:
        return;
      case RetrainMode::Self:
        samples_ += static_cast<double>(own);
        return;
      case RetrainMode::Swarm:
        samples_ += static_cast<double>(swarm_total);
        return;
    }
}

double
DetectionModel::p_correct() const
{
    double gap = config_.max_correct - config_.base_correct;
    return config_.max_correct -
        gap * std::exp(-samples_ / config_.tau_samples);
}

double
DetectionModel::p_false_negative() const
{
    return (1.0 - p_correct()) * config_.fn_share;
}

double
DetectionModel::p_false_positive() const
{
    return (1.0 - p_correct()) * (1.0 - config_.fn_share);
}

}  // namespace hivemind::apps

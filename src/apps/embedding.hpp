#pragma once

/**
 * @file
 * Face-embedding deduplication — the algorithmic core of S5 and the
 * Scenario B pipeline.
 *
 * The paper deduplicates people with FaceNet, "which uses a CNN to
 * learn a mapping between faces and a compact Euclidean space, where
 * distances correspond to an indication of face similarity"
 * (Sec. 2.1). We implement the Euclidean-space half: sightings carry
 * embedding vectors (a noisy sample around each person's identity
 * vector), and the deduplicator clusters them with a distance
 * threshold — greedy centroid matching, the standard online approach.
 * The property tests measure precision/recall against ground truth as
 * the noise-to-separation ratio varies.
 */

#include <array>
#include <cstddef>
#include <vector>

#include "sim/rng.hpp"

namespace hivemind::apps {

/** Embedding dimensionality (FaceNet uses 128; 16 keeps tests fast). */
inline constexpr std::size_t kEmbeddingDim = 16;

/** A point in the face-similarity space. */
using Embedding = std::array<double, kEmbeddingDim>;

/** Euclidean distance between two embeddings. */
double embedding_distance(const Embedding& a, const Embedding& b);

/**
 * Ground-truth identity generator: @p people identity vectors drawn
 * uniformly from [0, 1]^d, guaranteed pairwise distance of at least
 * @p min_separation (rejection sampling).
 */
std::vector<Embedding> make_identities(std::size_t people,
                                       double min_separation,
                                       sim::Rng& rng);

/** Sample a noisy sighting of identity @p id (Gaussian, sigma/dim). */
Embedding observe(const Embedding& id, double noise_sigma, sim::Rng& rng);

/**
 * Online deduplicator: greedy nearest-centroid clustering with a
 * distance threshold. Each submitted sighting either joins the
 * nearest existing cluster (within the threshold) or founds a new
 * one; centroids are running means.
 */
class Deduplicator
{
  public:
    /** @param threshold join distance (the FaceNet "same person" cut). */
    explicit Deduplicator(double threshold) : threshold_(threshold) {}

    /**
     * Submit one sighting.
     * @return the cluster id it was assigned to.
     */
    std::size_t submit(const Embedding& sighting);

    /** Unique people seen so far, per the clustering. */
    std::size_t unique_count() const { return centroids_.size(); }

    /** Sightings submitted. */
    std::size_t sightings() const { return assignments_.size(); }

    /** Cluster assignment of sighting @p i (submission order). */
    std::size_t assignment(std::size_t i) const { return assignments_[i]; }

    /**
     * Pairwise precision/recall against ground-truth labels (one per
     * submitted sighting, in order): precision = fraction of
     * same-cluster pairs that are truly the same person; recall =
     * fraction of true same-person pairs placed in one cluster.
     */
    struct PairScore
    {
        double precision = 1.0;
        double recall = 1.0;
    };
    PairScore score(const std::vector<std::size_t>& truth) const;

  private:
    double threshold_;
    std::vector<Embedding> centroids_;
    std::vector<std::size_t> sizes_;
    std::vector<std::size_t> assignments_;
};

}  // namespace hivemind::apps

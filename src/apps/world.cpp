#include "apps/world.hpp"

namespace hivemind::apps {

namespace {

bool
in_footprint(const geo::Vec2& p, const geo::Vec2& center, double w, double h)
{
    return p.x >= center.x - w / 2.0 && p.x <= center.x + w / 2.0 &&
        p.y >= center.y - h / 2.0 && p.y <= center.y + h / 2.0;
}

}  // namespace

ItemField::ItemField(const geo::Rect& field, std::size_t items,
                     sim::Rng& rng)
    : field_(field), found_(items, false)
{
    items_.reserve(items);
    for (std::size_t i = 0; i < items; ++i) {
        items_.push_back({rng.uniform(field.x0, field.x1),
                          rng.uniform(field.y0, field.y1)});
    }
}

std::vector<std::size_t>
ItemField::items_in_view(const geo::Vec2& center, double w, double h) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < items_.size(); ++i) {
        if (in_footprint(items_[i], center, w, h))
            out.push_back(i);
    }
    return out;
}

std::size_t
ItemField::found_count() const
{
    std::size_t n = 0;
    for (bool f : found_) {
        if (f)
            ++n;
    }
    return n;
}

CrowdField::CrowdField(const geo::Rect& field, std::size_t people,
                       double walk_speed_mps, sim::Rng& rng)
    : field_(field), counted_(people, false)
{
    walkers_.reserve(people);
    for (std::size_t i = 0; i < people; ++i) {
        walkers_.emplace_back(field, walk_speed_mps, /*pause_s=*/5.0, rng);
    }
}

std::vector<std::size_t>
CrowdField::people_in_view(sim::Time t, const geo::Vec2& center, double w,
                           double h)
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < walkers_.size(); ++i) {
        if (in_footprint(walkers_[i].position_at(t), center, w, h))
            out.push_back(i);
    }
    return out;
}

std::size_t
CrowdField::counted_count() const
{
    std::size_t n = 0;
    for (bool c : counted_) {
        if (c)
            ++n;
    }
    return n;
}

TreasureHunt::TreasureHunt(const geo::Rect& area, std::size_t panels,
                           sim::Rng& rng)
{
    panels_.reserve(panels);
    for (std::size_t i = 0; i < panels; ++i) {
        panels_.push_back({rng.uniform(area.x0, area.x1),
                           rng.uniform(area.y0, area.y1)});
    }
}

double
TreasureHunt::course_length(const geo::Vec2& start) const
{
    double len = 0.0;
    geo::Vec2 pos = start;
    for (const geo::Vec2& p : panels_) {
        len += pos.distance_to(p);
        pos = p;
    }
    return len;
}

}  // namespace hivemind::apps

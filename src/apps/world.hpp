#pragma once

/**
 * @file
 * Scenario worlds: the physical ground truth the swarm senses.
 *
 * Scenario A (Sec. 2.1): 15 tennis balls placed in a baseball field;
 * the swarm must locate all of them. Scenario B: 25 people moving
 * within the field; the swarm must count unique people, so the same
 * person photographed by two drones must be deduplicated. The rover
 * port (Sec. 5.5) adds a Treasure Hunt (chain of instruction panels)
 * and a Maze world.
 */

#include <cstddef>
#include <vector>

#include "geo/motion.hpp"
#include "geo/vec2.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace hivemind::apps {

/** Static items (tennis balls) scattered in a field — Scenario A. */
class ItemField
{
  public:
    /** Place @p items uniformly at random inside @p field. */
    ItemField(const geo::Rect& field, std::size_t items, sim::Rng& rng);

    const geo::Rect& field() const { return field_; }
    std::size_t item_count() const { return items_.size(); }
    const std::vector<geo::Vec2>& items() const { return items_; }

    /**
     * Indices of items inside a camera footprint of @p w x @p h
     * meters centered at @p center.
     */
    std::vector<std::size_t> items_in_view(const geo::Vec2& center,
                                           double w, double h) const;

    /** Record that an item was located. */
    void mark_found(std::size_t item) { found_[item] = true; }
    bool found(std::size_t item) const { return found_[item]; }
    std::size_t found_count() const;
    bool all_found() const { return found_count() == items_.size(); }

  private:
    geo::Rect field_;
    std::vector<geo::Vec2> items_;
    std::vector<bool> found_;
};

/** Moving people in a field — Scenario B. */
class CrowdField
{
  public:
    /**
     * @param field the area people roam
     * @param people population size (unknown to the system)
     * @param walk_speed_mps pedestrian speed
     */
    CrowdField(const geo::Rect& field, std::size_t people,
               double walk_speed_mps, sim::Rng& rng);

    const geo::Rect& field() const { return field_; }
    std::size_t population() const { return walkers_.size(); }

    /**
     * Person ids visible in a footprint at time @p t. Time must be
     * non-decreasing across calls (walkers advance lazily).
     */
    std::vector<std::size_t> people_in_view(sim::Time t,
                                            const geo::Vec2& center,
                                            double w, double h);

    /** Record that a person was counted (post-deduplication). */
    void mark_counted(std::size_t person) { counted_[person] = true; }
    std::size_t counted_count() const;

  private:
    geo::Rect field_;
    std::vector<geo::RandomWaypointWalker> walkers_;
    std::vector<bool> counted_;
};

/**
 * Treasure-hunt course for the rover swarm (Sec. 5.5): a chain of
 * instruction panels; reading panel i (image-to-text) reveals the
 * location of panel i+1, ending at a final target.
 */
class TreasureHunt
{
  public:
    /** Lay out @p panels panels randomly in @p area. */
    TreasureHunt(const geo::Rect& area, std::size_t panels, sim::Rng& rng);

    std::size_t panel_count() const { return panels_.size(); }
    const geo::Vec2& panel(std::size_t i) const { return panels_[i]; }
    const geo::Vec2& final_target() const { return panels_.back(); }

    /** Total leg-by-leg course length from @p start, meters. */
    double course_length(const geo::Vec2& start) const;

  private:
    std::vector<geo::Vec2> panels_;
};

}  // namespace hivemind::apps

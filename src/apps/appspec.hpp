#pragma once

/**
 * @file
 * The paper's benchmark suite: applications S1-S10 (Sec. 2.1).
 *
 * Each application is described by the parameters that drive its
 * behaviour in the models: per-task reference-core work, task arrival
 * rate per device, uplink/downlink payload sizes, intermediate data
 * shared between dependent functions, exploitable intra-task
 * parallelism, and container memory footprint. Work and data sizes
 * are calibrated so the relative behaviours of Figs. 4-6 reproduce:
 * S1/S2/S5/S9/S10 are compute-heavy and parallel (big serverless
 * wins), S3/S7 are light (cloud ~ edge), S4 is latency-critical and
 * favours the edge, S6 has a low task rate, and S7's tasks are so
 * short that instantiation dominates.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace hivemind::apps {

/** Static description of one benchmark application. */
struct AppSpec
{
    std::string id;     ///< "S1".."S10".
    std::string name;   ///< Human-readable name.
    /** Reference-cloud-core milliseconds of work per task. */
    double work_core_ms = 100.0;
    /** Tasks generated per device per second. */
    double task_rate_hz = 1.0;
    /** Sensor payload uploaded per task (bytes). */
    std::uint64_t input_bytes = 1u << 20;
    /** Result returned to the device (bytes). */
    std::uint64_t output_bytes = 8u << 10;
    /** Intermediate data between dependent functions (bytes). */
    std::uint64_t inter_bytes = 64u << 10;
    /** Intra-task fan-out the job can exploit (Sec. 3.2). */
    int parallelism = 1;
    /** Container memory footprint (MB). */
    std::uint64_t memory_mb = 256;
    /**
     * Multiplier on edge execution beyond the CPU speed factor; below
     * 1 models work avoided by running in place (S4 skips the
     * round-trip re-planning the cloud would do).
     */
    double edge_work_factor = 1.0;
    /** Whether the job is a sensible on-board candidate (S3/S4/S7). */
    bool edge_friendly = false;
};

/** All ten single-phase applications, in order S1..S10. */
const std::vector<AppSpec>& all_apps();

/** Look up an application by its "S#" id; throws on unknown id. */
const AppSpec& app_by_id(const std::string& id);

}  // namespace hivemind::apps

#include "apps/appspec.hpp"

#include <stdexcept>

namespace hivemind::apps {

namespace {

std::vector<AppSpec>
make_apps()
{
    std::vector<AppSpec> v;

    AppSpec s1;
    s1.id = "S1";
    s1.name = "Face Recognition";
    s1.work_core_ms = 350.0;
    s1.task_rate_hz = 0.5;
    s1.input_bytes = 8u << 20;  // One-second keyframe batch.
    s1.output_bytes = 20u << 10;
    s1.inter_bytes = 512u << 10;
    s1.parallelism = 8;
    s1.memory_mb = 512;
    v.push_back(s1);

    AppSpec s2;
    s2.id = "S2";
    s2.name = "Tree Recognition";
    s2.work_core_ms = 300.0;
    s2.task_rate_hz = 0.5;
    s2.input_bytes = 8u << 20;
    s2.output_bytes = 16u << 10;
    s2.inter_bytes = 384u << 10;
    s2.parallelism = 8;
    s2.memory_mb = 512;
    v.push_back(s2);

    AppSpec s3;
    s3.id = "S3";
    s3.name = "Drone Detection";
    s3.work_core_ms = 25.0;
    s3.task_rate_hz = 1.0;
    s3.input_bytes = 512u << 10;
    s3.output_bytes = 4u << 10;
    s3.inter_bytes = 16u << 10;
    s3.parallelism = 2;
    s3.memory_mb = 128;
    s3.edge_friendly = true;
    v.push_back(s3);

    AppSpec s4;
    s4.id = "S4";
    s4.name = "Obstacle Avoidance";
    s4.work_core_ms = 18.0;
    s4.task_rate_hz = 2.0;
    s4.input_bytes = 512u << 10;
    s4.output_bytes = 2u << 10;
    s4.inter_bytes = 8u << 10;
    s4.parallelism = 1;
    s4.memory_mb = 128;
    // Running in place avoids the re-planning round trip; effective
    // edge work is lower than a naive port (Sec. 2.3).
    s4.edge_work_factor = 0.55;
    s4.edge_friendly = true;
    v.push_back(s4);

    AppSpec s5;
    s5.id = "S5";
    s5.name = "People Deduplication";
    s5.work_core_ms = 420.0;
    s5.task_rate_hz = 0.5;
    s5.input_bytes = 3u << 19;  // 1.5 MB face-crop batch.
    s5.output_bytes = 8u << 10;
    s5.inter_bytes = 256u << 10;
    s5.parallelism = 8;
    s5.memory_mb = 512;
    v.push_back(s5);

    AppSpec s6;
    s6.id = "S6";
    s6.name = "Maze Traversal";
    s6.work_core_ms = 700.0;
    s6.task_rate_hz = 0.2;  // Drones move slowly inside the maze.
    s6.input_bytes = 5u << 19;  // 2.5 MB corridor imagery per step.
    s6.output_bytes = 2u << 10;
    s6.inter_bytes = 16u << 10;
    s6.parallelism = 2;
    s6.memory_mb = 256;
    v.push_back(s6);

    AppSpec s7;
    s7.id = "S7";
    s7.name = "Weather Analytics";
    s7.work_core_ms = 8.0;
    s7.task_rate_hz = 0.5;
    s7.input_bytes = 256u << 10;  // Aggregated sensor batch.
    s7.output_bytes = 1u << 10;
    s7.inter_bytes = 4u << 10;
    s7.parallelism = 1;
    s7.memory_mb = 128;
    s7.edge_friendly = true;
    v.push_back(s7);

    AppSpec s8;
    s8.id = "S8";
    s8.name = "Soil Analytics";
    s8.work_core_ms = 120.0;
    s8.task_rate_hz = 0.5;
    s8.input_bytes = 2u << 20;
    s8.output_bytes = 4u << 10;
    s8.inter_bytes = 64u << 10;
    s8.parallelism = 4;
    s8.memory_mb = 256;
    v.push_back(s8);

    AppSpec s9;
    s9.id = "S9";
    s9.name = "Text Recognition";
    s9.work_core_ms = 500.0;
    s9.task_rate_hz = 0.25;
    s9.input_bytes = 8u << 20;
    s9.output_bytes = 8u << 10;
    s9.inter_bytes = 512u << 10;
    s9.parallelism = 12;
    s9.memory_mb = 512;
    v.push_back(s9);

    AppSpec s10;
    s10.id = "S10";
    s10.name = "SLAM";
    s10.work_core_ms = 600.0;
    s10.task_rate_hz = 0.5;
    s10.input_bytes = 6u << 20;  // Image + sensor bundle batch.
    s10.output_bytes = 64u << 10;
    s10.inter_bytes = 1u << 20;
    s10.parallelism = 12;
    s10.memory_mb = 1024;
    v.push_back(s10);

    return v;
}

}  // namespace

const std::vector<AppSpec>&
all_apps()
{
    static const std::vector<AppSpec> apps = make_apps();
    return apps;
}

const AppSpec&
app_by_id(const std::string& id)
{
    for (const AppSpec& a : all_apps()) {
        if (a.id == id)
            return a;
    }
    throw std::invalid_argument("unknown application id: " + id);
}

}  // namespace hivemind::apps

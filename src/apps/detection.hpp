#pragma once

/**
 * @file
 * Detection accuracy and continuous-learning model (Fig. 15).
 *
 * Recognition models (item detection in Scenario A, face recognition
 * plus FaceNet deduplication in Scenario B) start from a pre-trained
 * accuracy and improve as they are retrained on feedback samples. The
 * retraining mode determines the sample stream (Sec. 4.6):
 *  - None:  no retraining; accuracy stays at the base level.
 *  - Self:  each device retrains only on its own decisions.
 *  - Swarm: the centralized backend pools every device's decisions
 *           and retrains all devices jointly — an N-fold larger
 *           sample stream, so accuracy converges N times faster.
 *
 * Accuracy follows a saturating learning curve
 *   correct(n) = max - (max - base) * exp(-n / tau)
 * with the residual error split between false negatives and false
 * positives.
 */

#include <cstdint>

namespace hivemind::apps {

/** Which feedback stream retrains the models (Sec. 4.6). */
enum class RetrainMode
{
    None,
    Self,
    Swarm,
};

/** Human-readable mode name. */
const char* to_string(RetrainMode m);

/** Tunable accuracy parameters of one recognition model. */
struct DetectionConfig
{
    /** Accuracy of the pre-trained model. */
    double base_correct = 0.80;
    /** Asymptotic accuracy with unlimited retraining data. */
    double max_correct = 0.995;
    /** Samples to ~63% of the remaining improvement. */
    double tau_samples = 150.0;
    /** Fraction of residual error that is a false negative (miss). */
    double fn_share = 0.62;

    bool operator==(const DetectionConfig&) const = default;
};

/** Learning-curve accuracy model for one device's detector. */
class DetectionModel
{
  public:
    explicit DetectionModel(const DetectionConfig& config)
        : config_(config)
    {
    }

    /**
     * Record retraining feedback: @p own samples from this device and
     * @p swarm_total from the whole swarm; which stream is used
     * depends on @p mode.
     */
    void observe(RetrainMode mode, std::uint64_t own,
                 std::uint64_t swarm_total);

    /** Probability a present object is correctly detected. */
    double p_correct() const;

    /** Probability a present object is missed. */
    double p_false_negative() const;

    /**
     * Expected false positives per true detection opportunity (ghost
     * detections caused by the residual error).
     */
    double p_false_positive() const;

    /** Effective training samples absorbed so far. */
    double samples() const { return samples_; }

  private:
    DetectionConfig config_;
    double samples_ = 0.0;
};

}  // namespace hivemind::apps

#include "apps/embedding.hpp"

#include <cmath>
#include <limits>

namespace hivemind::apps {

double
embedding_distance(const Embedding& a, const Embedding& b)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < kEmbeddingDim; ++i) {
        double d = a[i] - b[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

std::vector<Embedding>
make_identities(std::size_t people, double min_separation, sim::Rng& rng)
{
    std::vector<Embedding> out;
    out.reserve(people);
    int guard = 0;
    while (out.size() < people && guard < 100000) {
        ++guard;
        Embedding candidate;
        for (double& x : candidate)
            x = rng.uniform(0.0, 1.0);
        bool ok = true;
        for (const Embedding& e : out) {
            if (embedding_distance(e, candidate) < min_separation) {
                ok = false;
                break;
            }
        }
        if (ok)
            out.push_back(candidate);
    }
    return out;
}

Embedding
observe(const Embedding& id, double noise_sigma, sim::Rng& rng)
{
    Embedding out;
    for (std::size_t i = 0; i < kEmbeddingDim; ++i)
        out[i] = id[i] + rng.normal(0.0, noise_sigma);
    return out;
}

std::size_t
Deduplicator::submit(const Embedding& sighting)
{
    std::size_t best = centroids_.size();
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < centroids_.size(); ++i) {
        double d = embedding_distance(centroids_[i], sighting);
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    if (best == centroids_.size() || best_d > threshold_) {
        centroids_.push_back(sighting);
        sizes_.push_back(1);
        assignments_.push_back(centroids_.size() - 1);
        return centroids_.size() - 1;
    }
    // Running-mean centroid update.
    double n = static_cast<double>(sizes_[best]);
    for (std::size_t i = 0; i < kEmbeddingDim; ++i) {
        centroids_[best][i] =
            (centroids_[best][i] * n + sighting[i]) / (n + 1.0);
    }
    ++sizes_[best];
    assignments_.push_back(best);
    return best;
}

Deduplicator::PairScore
Deduplicator::score(const std::vector<std::size_t>& truth) const
{
    PairScore out;
    std::size_t n = assignments_.size();
    if (n < 2 || truth.size() != n)
        return out;
    std::uint64_t same_cluster = 0;
    std::uint64_t same_cluster_correct = 0;
    std::uint64_t same_truth = 0;
    std::uint64_t same_truth_found = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            bool clustered = assignments_[i] == assignments_[j];
            bool same = truth[i] == truth[j];
            if (clustered) {
                ++same_cluster;
                if (same)
                    ++same_cluster_correct;
            }
            if (same) {
                ++same_truth;
                if (clustered)
                    ++same_truth_found;
            }
        }
    }
    if (same_cluster > 0) {
        out.precision = static_cast<double>(same_cluster_correct) /
            static_cast<double>(same_cluster);
    }
    if (same_truth > 0) {
        out.recall = static_cast<double>(same_truth_found) /
            static_cast<double>(same_truth);
    }
    return out;
}

}  // namespace hivemind::apps

#pragma once

/**
 * @file
 * Monitoring / tracing sink (Secs. 4.2, 4.7).
 *
 * HiveMind ships "a monitoring system that collects tracing
 * information from the cloud and edge resources" with negligible
 * overhead. This registry collects named latency summaries and
 * counters; experiment harnesses read it to print per-stage
 * breakdowns (Figs. 3a, 6b, 12).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace hivemind::core {

/** Named metric sink shared by the controller and the harnesses. */
class MetricRegistry
{
  public:
    /** Record a latency-like sample (seconds) under @p name. */
    void
    observe(const std::string& name, double value)
    {
        summaries_[name].add(value);
    }

    /** Increment a counter. */
    void
    count(const std::string& name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Summary under @p name (empty summary when unknown). */
    const sim::Summary&
    summary(const std::string& name) const
    {
        static const sim::Summary empty;
        auto it = summaries_.find(name);
        return it == summaries_.end() ? empty : it->second;
    }

    /** Counter value (0 when unknown). */
    std::uint64_t
    counter(const std::string& name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Names of all summaries, sorted. */
    std::vector<std::string>
    summary_names() const
    {
        std::vector<std::string> out;
        out.reserve(summaries_.size());
        for (const auto& [k, v] : summaries_) {
            (void)v;
            out.push_back(k);
        }
        return out;
    }

    /** Reset all metrics. */
    void
    clear()
    {
        summaries_.clear();
        counters_.clear();
    }

  private:
    std::map<std::string, sim::Summary> summaries_;
    std::map<std::string, std::uint64_t> counters_;
};

}  // namespace hivemind::core

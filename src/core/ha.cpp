#include "core/ha.hpp"

#include <algorithm>

namespace hivemind::core {

std::uint64_t
ControllerCheckpoint::size_bytes() const
{
    // Header + per-region entry (owner id + four doubles) + registry
    // flag per device + in-flight counter per device + watermark.
    return 64 + 40 * static_cast<std::uint64_t>(partition.assignments.size()) +
        static_cast<std::uint64_t>(device_failed.size()) +
        8 * static_cast<std::uint64_t>(inflight.size()) + 16;
}

CheckpointStore::CheckpointStore(sim::Simulator& simulator,
                                 cloud::DataStore* store)
    : simulator_(&simulator), store_(store)
{
}

void
CheckpointStore::persist(ControllerCheckpoint cp)
{
    std::uint64_t bytes = cp.size_bytes();
    auto commit = [this, cp = std::move(cp), bytes]() {
        // A slow write must not clobber a newer durable checkpoint.
        if (durable_ && durable_->seq > cp.seq)
            return;
        durable_ = cp;
        ++persisted_;
        bytes_written_ += bytes;
    };
    if (write_transport_)
        write_transport_(bytes, std::move(commit));
    else if (store_ != nullptr)
        store_->access(bytes, std::move(commit));
    else
        simulator_->schedule_in(0, std::move(commit));
}

void
CheckpointStore::read_latest(std::function<void()> done)
{
    if (read_transport_)
        read_transport_(durable_ ? durable_->size_bytes() : 64,
                        std::move(done));
    else if (store_ != nullptr && durable_)
        store_->access(durable_->size_bytes(), std::move(done));
    else
        simulator_->schedule_in(0, std::move(done));
}

HaCluster::HaCluster(sim::Simulator& simulator, cloud::DataStore* store,
                     const HaConfig& config)
    : simulator_(&simulator), config_(config), store_(simulator, store)
{
}

void
HaCluster::start()
{
    running_ = true;
    available_ = true;
    last_beat_ = simulator_->now();
    // Bootstrap checkpoint so a crash before the first interval still
    // has (early, stale) state to replay.
    checkpoint_tick();
    sim::recurring(*simulator_, config_.primary_beat_interval,
                   [this](const sim::Recur& self) {
                       if (!running_)
                           return;
                       watchdog_tick();
                       self.again_in(config_.primary_beat_interval);
                   });
    sim::recurring(*simulator_, config_.checkpoint_interval,
                   [this](const sim::Recur& self) {
                       if (!running_)
                           return;
                       checkpoint_tick();
                       self.again_in(config_.checkpoint_interval);
                   });
}

void
HaCluster::stop()
{
    running_ = false;
    if (!available_) {
        // Close the open outage window without firing callbacks — the
        // scenario is tearing down.
        unavailable_s_ +=
            sim::to_seconds(simulator_->now() - down_since_);
        available_ = true;
    }
}

double
HaCluster::unavailable_seconds() const
{
    double open = available_
        ? 0.0
        : sim::to_seconds(simulator_->now() - down_since_);
    return unavailable_s_ + open;
}

void
HaCluster::crash_active()
{
    if (!running_ || crashed_)
        return;
    crashed_ = true;
    electing_ = false;
    crash_at_ = simulator_->now();
    set_available(false);
}

void
HaCluster::partition(sim::Time duration)
{
    if (!running_ || duration <= 0)
        return;
    sim::Time until = simulator_->now() + duration;
    partitioned_until_ = std::max(partitioned_until_, until);
    if (!crashed_)
        set_available(false);
    simulator_->schedule_at(until, [this]() {
        if (!running_ || crashed_ || available_ ||
            simulator_->now() < partitioned_until_)
            return;
        set_available(true);
        if (on_restored_)
            on_restored_(-1.0);  // Same instance; nothing replayed.
    });
}

void
HaCluster::watchdog_tick()
{
    sim::Time now = simulator_->now();
    if (!crashed_) {
        // The primary's heartbeat reaches the (cloud-side) standbys
        // even while an edge-facing partition is open.
        last_beat_ = now;
        return;
    }
    if (!electing_ && now - last_beat_ > config_.election_timeout) {
        // Missed-deadline election: a standby promotes itself.
        electing_ = true;
        detect_s_.add(sim::to_seconds(now - crash_at_));
        if (on_detected_)
            on_detected_();
        begin_takeover();
    }
}

void
HaCluster::checkpoint_tick()
{
    if (!running_ || crashed_ || !snapshot_)
        return;
    ControllerCheckpoint cp = snapshot_();
    cp.taken_at = simulator_->now();
    cp.seq = ++seq_;
    if (on_checkpoint_)
        on_checkpoint_(cp.seq, cp.size_bytes());
    store_.persist(std::move(cp));
}

void
HaCluster::begin_takeover()
{
    if (standbys_remaining() <= 0)
        return;  // Nobody left to promote: the outage stays open.
    store_.read_latest([this]() {
        if (!running_ || !crashed_)
            return;
        const ControllerCheckpoint cp =
            store_.latest() ? *store_.latest() : ControllerCheckpoint{};
        sim::Time age = std::max<sim::Time>(0, crash_at_ - cp.taken_at);
        // Deserialize the checkpoint, then replay the event delta that
        // post-dates it — the lost-work term that grows with age.
        sim::Time replay = sim::from_seconds(
            static_cast<double>(cp.size_bytes()) / config_.replay_Bps);
        replay += static_cast<sim::Time>(
            config_.drift_replay_frac * static_cast<double>(age));
        simulator_->schedule_in(replay, [this, cp, age]() {
            if (!running_ || !crashed_)
                return;
            ReconcileReport rep =
                on_takeover_ ? on_takeover_(cp) : ReconcileReport{};
            offloads_redriven_ += rep.offloads_redriven;
            sim::Time reconcile = config_.reconcile_per_device *
                    static_cast<sim::Time>(rep.devices_reregistered) +
                config_.redrive_per_offload *
                    static_cast<sim::Time>(rep.offloads_redriven);
            simulator_->schedule_in(reconcile, [this, age]() {
                if (!running_ || !crashed_)
                    return;
                crashed_ = false;
                electing_ = false;
                ++failovers_;
                last_beat_ = simulator_->now();
                recover_s_.add(
                    sim::to_seconds(simulator_->now() - crash_at_));
                double age_s = sim::to_seconds(age);
                checkpoint_age_s_.add(age_s);
                // An overlapping partition window keeps the (new)
                // controller unreachable; its heal event flips us up.
                if (simulator_->now() >= partitioned_until_)
                    set_available(true);
                if (on_restored_)
                    on_restored_(age_s);
                // The new primary checkpoints immediately so a second
                // crash does not replay pre-failover state.
                checkpoint_tick();
            });
        });
    });
}

void
HaCluster::set_available(bool up)
{
    if (up == available_)
        return;
    available_ = up;
    sim::Time now = simulator_->now();
    if (!up) {
        down_since_ = now;
    } else {
        unavailable_s_ += sim::to_seconds(now - down_since_);
    }
    if (on_availability_)
        on_availability_(up);
}

}  // namespace hivemind::core

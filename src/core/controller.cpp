#include "core/controller.hpp"

namespace hivemind::core {

HiveMindController::HiveMindController(sim::Simulator& simulator,
                                       const geo::Rect& field,
                                       std::size_t devices,
                                       const ControllerConfig& config)
    : simulator_(&simulator),
      config_(config),
      balancer_(field, devices),
      detector_(simulator, devices, config.heartbeat_interval,
                config.heartbeat_timeout),
      learning_(devices, config.detection, config.retrain_mode)
{
    detector_.set_on_failure([this](std::size_t device) {
        metrics_.count("device_failures");
        trace_.add(simulator_->now(), TraceEvent::DeviceFailure,
                   static_cast<std::int64_t>(device));
        std::vector<std::size_t> changed = balancer_.handle_failure(device);
        for (std::size_t d : changed) {
            trace_.add(simulator_->now(), TraceEvent::Repartition,
                       static_cast<std::int64_t>(d), "inherited region");
        }
        if (on_reassign_ && !changed.empty())
            on_reassign_(changed);
    });
}

void
HiveMindController::start()
{
    running_ = true;
    detector_.start();
    retrain_tick();
}

void
HiveMindController::stop()
{
    running_ = false;
    detector_.stop();
}

void
HiveMindController::retrain_tick()
{
    if (!running_)
        return;
    learning_.retrain();
    trace_.add(simulator_->now(), TraceEvent::RetrainRound, -1,
               apps::to_string(learning_.mode()),
               learning_.swarm_p_correct());
    simulator_->schedule_in(config_.retrain_interval,
                            [this]() { retrain_tick(); });
}

}  // namespace hivemind::core

#include "core/controller.hpp"

namespace hivemind::core {

HiveMindController::HiveMindController(sim::Simulator& simulator,
                                       const geo::Rect& field,
                                       std::size_t devices,
                                       const ControllerConfig& config)
    : simulator_(&simulator),
      config_(config),
      balancer_(field, devices),
      detector_(simulator, devices, config.heartbeat_interval,
                config.heartbeat_timeout),
      learning_(devices, config.detection, config.retrain_mode)
{
    detector_.set_on_failure([this](std::size_t device) {
        metrics_.count("device_failures");
        trace_.add(simulator_->now(), TraceEvent::DeviceFailure,
                   static_cast<std::int64_t>(device));
        std::vector<std::size_t> changed = balancer_.handle_failure(device);
        for (std::size_t d : changed) {
            trace_.add(simulator_->now(), TraceEvent::Repartition,
                       static_cast<std::int64_t>(d), "inherited region");
        }
        if (on_reassign_ && !changed.empty())
            on_reassign_(changed);
    });
}

void
HiveMindController::enable_ha(cloud::DataStore* store)
{
    ha_ = std::make_unique<HaCluster>(*simulator_, store, config_.ha);
    ha_->set_snapshot([this]() {
        ControllerCheckpoint cp;
        std::size_t n = learning_.device_count();
        cp.device_failed.reserve(n);
        for (std::size_t d = 0; d < n; ++d)
            cp.device_failed.push_back(detector_.is_failed(d) ? 1 : 0);
        cp.partition = balancer_.snapshot();
        cp.inflight.assign(n, 0);
        return cp;
    });
    ha_->set_on_checkpoint([this](std::uint64_t seq, std::uint64_t bytes) {
        trace_.add(simulator_->now(), TraceEvent::Checkpoint,
                   static_cast<std::int64_t>(seq), "controller state",
                   static_cast<double>(bytes));
    });
    ha_->set_on_detected([this]() {
        trace_.add(simulator_->now(), TraceEvent::FailoverElection, -1,
                   "standby promoted");
        metrics_.count("controller_elections");
    });
    ha_->set_on_takeover([this](const ControllerCheckpoint& cp) {
        ReconcileReport rep;
        if (!cp.partition.assignments.empty())
            balancer_.restore(cp.partition);
        // Re-register every device against the detector's live view
        // and repartition the drift between checkpoint and now.
        std::size_t n = learning_.device_count();
        std::vector<std::size_t> changed;
        for (std::size_t d = 0; d < n; ++d) {
            ++rep.devices_reregistered;
            bool live = !detector_.is_failed(d);
            if (live && !balancer_.region_of(d)) {
                for (std::size_t c : balancer_.handle_rejoin(d))
                    changed.push_back(c);
            } else if (!live && balancer_.region_of(d)) {
                for (std::size_t c : balancer_.handle_failure(d))
                    changed.push_back(c);
            }
        }
        rep.regions_repartitioned = changed.size();
        if (on_reassign_ && !changed.empty())
            on_reassign_(changed);
        return rep;
    });
    ha_->set_on_restored([this](double checkpoint_age_s) {
        trace_.add(simulator_->now(), TraceEvent::FailoverComplete, -1,
                   "takeover complete", checkpoint_age_s);
        metrics_.count("controller_failovers");
    });
}

void
HiveMindController::start()
{
    running_ = true;
    detector_.start();
    if (ha_)
        ha_->start();
    retrain_tick();
}

void
HiveMindController::stop()
{
    running_ = false;
    detector_.stop();
    if (ha_)
        ha_->stop();
}

void
HiveMindController::retrain_tick()
{
    if (!running_)
        return;
    learning_.retrain();
    trace_.add(simulator_->now(), TraceEvent::RetrainRound, -1,
               apps::to_string(learning_.mode()),
               learning_.swarm_p_correct());
    simulator_->schedule_in(config_.retrain_interval,
                            [this]() { retrain_tick(); });
}

}  // namespace hivemind::core

#pragma once

/**
 * @file
 * Swarm controller for the sharded runtime, pinned to shard 0.
 *
 * Under the SwarmRuntime the controller is an ordinary actor living
 * on shard 0's kernel: every uplink message (register, heartbeat,
 * recognition frame) arrives through the runtime's mailbox path in
 * deterministic (time, origin) order, and every downlink message
 * (frame acks, strip assignments, re-register pings) leaves through a
 * per-device sender the scenario wires to a shard-0 -> owner-shard
 * ShardLink. That keeps one invariant simple: the controller never
 * touches device state directly, so partitioning the swarm across
 * shards cannot change what it observes.
 *
 * It reuses the heartbeat FailureDetector and a strip repartitioning
 * rule (live devices split the target strip evenly, in id order), and
 * models hot-standby failover: between crash_at and takeover the
 * controller drops everything on the floor; on takeover it pings
 * every device to re-register and reconciles liveness from the
 * responses, Sec. 4.6 style.
 *
 * A running FNV-1a digest over every handled event doubles as the
 * byte-identity witness for the shard-invariance tests.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/heartbeat.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hivemind::core {

/** Controller -> device message (serialized over a downlink). */
struct DownMsg
{
    enum class Kind : std::uint8_t
    {
        FrameAck,    ///< Recognition frame processed.
        Assign,      ///< New strip assignment [lo, hi).
        ReRegister,  ///< Standby took over; re-register now.
    };
    Kind kind = Kind::FrameAck;
    int lo = 0;               ///< Assign: strip start.
    int hi = 0;               ///< Assign: strip end (exclusive).
    std::uint64_t frame = 0;  ///< FrameAck: echoed frame id.
};

/** Shard-0 swarm controller: liveness, strips, frame acks, failover. */
class SwarmController
{
  public:
    struct Config
    {
        std::size_t devices = 0;
        int strip_width = 1024;  ///< Total strip divided among live devices.
        sim::Time beat_interval = sim::kSecond;
        sim::Time timeout = 3 * sim::kSecond;
        sim::Time crash_at = 0;  ///< 0 = no controller crash.
        sim::Time takeover = 800 * sim::kMillisecond;
    };

    struct Stats
    {
        std::uint64_t registers = 0;
        std::uint64_t beats = 0;
        std::uint64_t frames = 0;
        std::uint64_t dropped = 0;  ///< Messages lost while down.
        std::uint64_t repartitions = 0;
        std::uint64_t failures = 0;
        std::uint64_t recoveries = 0;
    };

    /** @p send delivers a DownMsg toward @p device's shard. */
    using Downlink = std::function<void(std::size_t device, DownMsg)>;

    SwarmController(sim::Simulator& shard0, const Config& config,
                    Downlink send);

    /** Arm heartbeat sweeping and the optional crash/takeover pair. */
    void start();

    /** Stop sweeping so the shard-0 kernel can drain. */
    void stop();

    /// @name Uplink handlers — invoked on shard 0 at delivery time.
    /// @{
    void on_register(std::size_t device);
    void on_beat(std::size_t device);
    void on_frame(std::size_t device, std::uint64_t frame);
    /// @}

    /// @name Failover hooks for plan-driven chaos (shard 0 only).
    /// @{
    /** Primary dies: drop traffic, stop sweeping. */
    void crash_now();
    /** Standby takes over: resume and ping devices to re-register. */
    void takeover_now();
    /// @}

    const Stats& stats() const { return stats_; }
    const FailureDetector& detector() const { return detector_; }
    bool down() const { return down_; }

    /** Order-sensitive digest of every event handled (FNV-1a). */
    std::uint64_t digest() const { return digest_; }

  private:
    void mix(std::uint64_t a, std::uint64_t b);
    void repartition();

    sim::Simulator* simulator_;
    Config config_;
    Downlink send_;
    FailureDetector detector_;
    Stats stats_;
    bool down_ = false;
    std::uint64_t digest_ = 1469598103934665603ull;  // FNV offset basis.
};

}  // namespace hivemind::core

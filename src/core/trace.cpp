#include "core/trace.hpp"

#include <sstream>

namespace hivemind::core {

const char*
to_string(TraceEvent e)
{
    switch (e) {
      case TraceEvent::TaskSubmit:
        return "task_submit";
      case TraceEvent::TaskStart:
        return "task_start";
      case TraceEvent::TaskComplete:
        return "task_complete";
      case TraceEvent::TaskFault:
        return "task_fault";
      case TraceEvent::ColdStart:
        return "cold_start";
      case TraceEvent::WarmStart:
        return "warm_start";
      case TraceEvent::DeviceFailure:
        return "device_failure";
      case TraceEvent::Repartition:
        return "repartition";
      case TraceEvent::StragglerRespawn:
        return "straggler_respawn";
      case TraceEvent::ControllerFailover:
        return "controller_failover";
      case TraceEvent::RetrainRound:
        return "retrain_round";
      case TraceEvent::Checkpoint:
        return "checkpoint";
      case TraceEvent::FailoverElection:
        return "failover_election";
      case TraceEvent::FailoverComplete:
        return "failover_complete";
      case TraceEvent::Custom:
        return "custom";
    }
    return "?";
}

void
TraceLog::add(sim::Time when, TraceEvent event, std::int64_t subject,
              std::string label, double value)
{
    records_.push_back(
        TraceRecord{when, event, subject, std::move(label), value});
}

std::size_t
TraceLog::count(TraceEvent event) const
{
    std::size_t n = 0;
    for (const TraceRecord& r : records_) {
        if (r.event == event)
            ++n;
    }
    return n;
}

std::vector<TraceRecord>
TraceLog::filter(TraceEvent event) const
{
    std::vector<TraceRecord> out;
    for (const TraceRecord& r : records_) {
        if (r.event == event)
            out.push_back(r);
    }
    return out;
}

namespace {

/** RFC 4180 quoting for CSV fields. */
std::string
csv_quote(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

/** Minimal JSON string escaping. */
std::string
json_escape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

}  // namespace

std::string
TraceLog::to_csv() const
{
    std::ostringstream os;
    os << "time_s,event,subject,label,value\n";
    for (const TraceRecord& r : records_) {
        os << sim::to_seconds(r.when) << ',' << to_string(r.event) << ','
           << r.subject << ',' << csv_quote(r.label) << ',' << r.value
           << '\n';
    }
    return os.str();
}

std::string
TraceLog::to_jsonl() const
{
    std::ostringstream os;
    for (const TraceRecord& r : records_) {
        os << "{\"time_s\":" << sim::to_seconds(r.when) << ",\"event\":\""
           << to_string(r.event) << "\",\"subject\":" << r.subject
           << ",\"label\":\"" << json_escape(r.label)
           << "\",\"value\":" << r.value << "}\n";
    }
    return os.str();
}

}  // namespace hivemind::core

#include "core/heartbeat.hpp"

namespace hivemind::core {

FailureDetector::FailureDetector(sim::Simulator& simulator,
                                 std::size_t devices,
                                 sim::Time beat_interval, sim::Time timeout)
    : simulator_(&simulator),
      beat_interval_(beat_interval),
      timeout_(timeout),
      last_beat_(devices, 0),
      failed_(devices, false),
      failed_at_(devices, 0)
{
}

void
FailureDetector::start()
{
    running_ = true;
    // Devices are assumed alive at start (a standby restart follows up
    // with reconcile() to re-mark the ones that are actually down).
    for (auto& t : last_beat_)
        t = simulator_->now();
    sweep(++epoch_);
}

void
FailureDetector::beat(std::size_t device)
{
    if (device >= last_beat_.size())
        return;
    sim::Time now = simulator_->now();
    if (failed_[device]) {
        // The device is back: clear the mark and report the rejoin.
        failed_[device] = false;
        recovery_latencies_.push_back(
            sim::to_seconds(now - failed_at_[device]));
        last_beat_[device] = now;
        if (on_recovery_)
            on_recovery_(device);
        return;
    }
    last_beat_[device] = now;
}

void
FailureDetector::reconcile(std::size_t device, bool alive)
{
    if (device >= last_beat_.size())
        return;
    sim::Time now = simulator_->now();
    if (alive) {
        failed_[device] = false;
        last_beat_[device] = now;
    } else if (!failed_[device]) {
        failed_[device] = true;
        failed_at_[device] = last_beat_[device];
    }
}

void
FailureDetector::sweep(std::uint64_t epoch)
{
    if (!running_ || epoch != epoch_)
        return;
    sim::Time now = simulator_->now();
    for (std::size_t d = 0; d < last_beat_.size(); ++d) {
        if (failed_[d])
            continue;
        if (now - last_beat_[d] > timeout_) {
            failed_[d] = true;
            failed_at_[d] = last_beat_[d];
            detection_latencies_.push_back(
                sim::to_seconds(now - last_beat_[d]));
            if (on_failure_)
                on_failure_(d);
        }
    }
    simulator_->schedule_in(beat_interval_, [this, epoch]() { sweep(epoch); });
}

std::size_t
FailureDetector::failed_count() const
{
    std::size_t n = 0;
    for (bool f : failed_) {
        if (f)
            ++n;
    }
    return n;
}

}  // namespace hivemind::core

#pragma once

/**
 * @file
 * Controller high availability (Secs. 4.6-4.7).
 *
 * The real HiveMind controller "runs as a centralized process with
 * two hot standbys" and "periodically checkpoints its state" so a
 * standby can take over after missed heartbeats. This module models
 * that stack honestly instead of as a fixed delay:
 *
 *  - ControllerCheckpoint is the serialized controller state: device
 *    registry (alive/failed flags), the load balancer's region
 *    partition, per-device in-flight offload counts and a
 *    tasks-started watermark. Its byte size is accounted.
 *  - CheckpointStore persists checkpoints through the cloud::DataStore
 *    queue model; a checkpoint is durable only when the write
 *    completes, so datastore outages delay durability.
 *  - HaCluster runs the primary's heartbeat, the standby's
 *    missed-deadline election, checkpoint read + replay, and the
 *    reconciliation/redrive delays. It exposes available() so the
 *    platform can drop edge devices into degraded-mode local control
 *    while no controller is reachable.
 *
 * Recovery time therefore decomposes into detection (election timeout)
 * + checkpoint read + state replay + reconciliation, and grows with
 * the age of the last durable checkpoint — the knob the
 * abl_controller_ha bench sweeps.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "cloud/datastore.hpp"
#include "core/load_balancer.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hivemind::core {

/** HA tuning (defaults follow Sec. 4.6 timing constants). */
struct HaConfig
{
    /** Platform wiring force-enables this when a plan has controller
     *  faults; defaults off so fault-free runs are byte-identical to
     *  the pre-HA behavior. */
    bool enabled = false;
    /** Period between controller state checkpoints. */
    sim::Time checkpoint_interval = 5 * sim::kSecond;
    /** Primary -> standby heartbeat period. */
    sim::Time primary_beat_interval = 500 * sim::kMillisecond;
    /** Missed-heartbeat silence that triggers the standby election. */
    sim::Time election_timeout = 1500 * sim::kMillisecond;
    /** Hot standbys behind the primary (Sec. 4.7: two). */
    int standbys = 2;
    /** Checkpoint deserialization/replay bandwidth, bytes/second. */
    double replay_Bps = 64e6;
    /** Re-registration ping cost per edge device during reconcile. */
    sim::Time reconcile_per_device = 20 * sim::kMillisecond;
    /** Redrive cost per in-flight/lost offload (epoch-redrive path). */
    sim::Time redrive_per_offload = 5 * sim::kMillisecond;
    /**
     * Fraction of the checkpoint's age spent replaying the event delta
     * (heartbeats, detections, partition moves) that post-dates it.
     * This is what makes recovery time grow with checkpoint age.
     */
    double drift_replay_frac = 0.15;

    bool operator==(const HaConfig&) const = default;
};

/** Serialized controller state (Sec. 4.6 checkpoint format). */
struct ControllerCheckpoint
{
    /** When the snapshot was taken (not when it became durable). */
    sim::Time taken_at = 0;
    /** Monotone checkpoint sequence number. */
    std::uint64_t seq = 0;
    /** Device registry: failed flag per device. */
    std::vector<char> device_failed;
    /** Region partition at snapshot time. */
    SwarmLoadBalancer::Snapshot partition;
    /** In-flight offload count per device (task-graph bookkeeping). */
    std::vector<std::uint32_t> inflight;
    /** Tasks started since boot (progress watermark for redrive). */
    std::uint64_t tasks_started = 0;

    /** Modeled serialized size. */
    std::uint64_t size_bytes() const;
};

/** What the takeover reconciliation touched (drives its cost model). */
struct ReconcileReport
{
    /** Devices re-registered (pinged) by the new primary. */
    std::size_t devices_reregistered = 0;
    /** Offloads redriven through the epoch-redrive path. */
    std::size_t offloads_redriven = 0;
    /** Devices whose region changed while reconciling drift. */
    std::size_t regions_repartitioned = 0;
};

/**
 * Durable checkpoint storage on the datastore model.
 *
 * persist() issues an async write sized by the checkpoint; latest()
 * only returns a checkpoint once its write completed, so a crash
 * racing a write falls back to the previous durable state.
 */
class CheckpointStore
{
  public:
    /**
     * Ships @p bytes to or from durable storage and fires the
     * callback when the transfer commits; a transport that never
     * fires the callback models a lost write/read.
     */
    using Transport =
        std::function<void(std::uint64_t, std::function<void()>)>;

    /** @param store backing store; nullptr persists after one event. */
    CheckpointStore(sim::Simulator& simulator, cloud::DataStore* store);

    /**
     * Route persistence over caller-supplied transports instead of
     * the local DataStore pointer. The sharded engine uses this to
     * carry checkpoint RPCs over dedicated ShardLink planes to the
     * cloud shard's DataStore, so checkpoint traffic is metered and
     * loss-exposed like every other byte on the air.
     */
    void set_transport(Transport write, Transport read)
    {
        write_transport_ = std::move(write);
        read_transport_ = std::move(read);
    }

    /** Begin persisting @p cp; durable when the store write lands. */
    void persist(ControllerCheckpoint cp);

    /** The newest durable checkpoint, if any write completed yet. */
    const std::optional<ControllerCheckpoint>& latest() const
    {
        return durable_;
    }

    /**
     * Model the standby's checkpoint read: @p done fires once the
     * latest durable checkpoint has been fetched from the store (or
     * immediately next event when nothing is durable yet).
     */
    void read_latest(std::function<void()> done);

    /** Checkpoints made durable. */
    std::uint64_t persisted() const { return persisted_; }

    /** Bytes written (durable checkpoints only). */
    std::uint64_t bytes_written() const { return bytes_written_; }

  private:
    sim::Simulator* simulator_;
    cloud::DataStore* store_;
    Transport write_transport_;
    Transport read_transport_;
    std::optional<ControllerCheckpoint> durable_;
    std::uint64_t persisted_ = 0;
    std::uint64_t bytes_written_ = 0;
};

/**
 * Primary + hot standbys with checkpointed failover.
 *
 * The owner supplies the state callbacks: snapshot() captures the
 * live controller state each checkpoint interval, and on_takeover()
 * applies a replayed checkpoint and reconciles it against the live
 * fleet, returning what it had to touch. crash_active()/partition()
 * are driven by the chaos engine through the platform layer.
 */
class HaCluster
{
  public:
    HaCluster(sim::Simulator& simulator, cloud::DataStore* store,
              const HaConfig& config);

    /** Captures controller state for a checkpoint. */
    void set_snapshot(std::function<ControllerCheckpoint()> fn)
    {
        snapshot_ = std::move(fn);
    }

    /** Applies a replayed checkpoint; returns the reconcile report. */
    void set_on_takeover(
        std::function<ReconcileReport(const ControllerCheckpoint&)> fn)
    {
        on_takeover_ = std::move(fn);
    }

    /** Availability edge (true = controller reachable again). */
    void set_on_availability(std::function<void(bool)> fn)
    {
        on_availability_ = std::move(fn);
    }

    /** Standby election fired (controller-crash MTTD instant). */
    void set_on_detected(std::function<void()> fn)
    {
        on_detected_ = std::move(fn);
    }

    /** Service restored; arg = replayed checkpoint age s (<0: none). */
    void set_on_restored(std::function<void(double)> fn)
    {
        on_restored_ = std::move(fn);
    }

    /** A checkpoint write was issued (seq, bytes) — for tracing. */
    void set_on_checkpoint(std::function<void(std::uint64_t, std::uint64_t)> fn)
    {
        on_checkpoint_ = std::move(fn);
    }

    /** Checkpoint persistence layer (transport override seam). */
    CheckpointStore& checkpoint_store() { return store_; }

    /** Bootstrap checkpoint + heartbeat/watchdog/checkpoint timers. */
    void start();

    /** Stop all periodic activity and close the outage window. */
    void stop();

    /** Whether any controller instance is currently reachable. */
    bool available() const { return available_; }

    /** Kill the active controller instance (chaos hook). */
    void crash_active();

    /** Make the controller unreachable for @p duration (no failover). */
    void partition(sim::Time duration);

    /** Completed standby takeovers. */
    std::uint64_t failovers() const { return failovers_; }

    /** Durable checkpoints / bytes (checkpoint-size accounting). */
    std::uint64_t checkpoints_taken() const { return store_.persisted(); }
    std::uint64_t checkpoint_bytes() const { return store_.bytes_written(); }

    /** Offloads redriven across all takeovers. */
    std::uint64_t offloads_redriven() const { return offloads_redriven_; }

    /** Standbys not yet consumed by a failover. */
    int standbys_remaining() const
    {
        return config_.standbys - static_cast<int>(failovers_);
    }

    /** Total unreachable seconds (open window included). */
    double unavailable_seconds() const;

    /** Election latency samples, seconds. */
    const sim::Summary& detect_s() const { return detect_s_; }

    /** Crash -> service-restored samples, seconds. */
    const sim::Summary& recover_s() const { return recover_s_; }

    /** Replayed-checkpoint age at failover, seconds. */
    const sim::Summary& checkpoint_age_s() const { return checkpoint_age_s_; }

  private:
    void watchdog_tick();
    void checkpoint_tick();
    void begin_takeover();
    void set_available(bool up);

    sim::Simulator* simulator_;
    HaConfig config_;
    CheckpointStore store_;
    std::function<ControllerCheckpoint()> snapshot_;
    std::function<ReconcileReport(const ControllerCheckpoint&)> on_takeover_;
    std::function<void(bool)> on_availability_;
    std::function<void()> on_detected_;
    std::function<void(double)> on_restored_;
    std::function<void(std::uint64_t, std::uint64_t)> on_checkpoint_;

    bool running_ = false;
    bool available_ = true;
    bool crashed_ = false;
    bool electing_ = false;
    sim::Time last_beat_ = 0;
    sim::Time crash_at_ = 0;
    sim::Time partitioned_until_ = 0;
    sim::Time down_since_ = 0;
    double unavailable_s_ = 0.0;
    std::uint64_t failovers_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t offloads_redriven_ = 0;
    sim::Summary detect_s_;
    sim::Summary recover_s_;
    sim::Summary checkpoint_age_s_;
};

}  // namespace hivemind::core

#pragma once

/**
 * @file
 * HiveMind's serverless cloud scheduler (Secs. 4.3, 4.6).
 *
 * Implemented "directly in OpenWhisk's centralized controller": the
 * scheduler (1) co-locates child functions with their parents so the
 * hand-off is in-memory, falling back to the remote-memory fabric
 * when the parent's server is full; (2) keeps idle containers alive
 * 10-30 s to absorb instantiation overheads; (3) never shares a
 * logical core between containers (inherited from the Server model);
 * (4) respawns functions that exceed the job's 90th-percentile
 * latency and takes whichever finishes first; and (5) puts servers
 * producing repeated stragglers on probation for a few minutes.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cloud/faas.hpp"
#include "core/trace.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hivemind::core {

/**
 * Sliding-window percentile tracker for straggler thresholds.
 *
 * Keeps the most recent @p capacity latencies in a ring and caches the
 * requested percentile, recomputing it every @p refresh additions —
 * so per-completion cost stays O(1) even over million-task runs.
 */
class PercentileTracker
{
  public:
    explicit PercentileTracker(std::size_t capacity = 4096,
                               std::size_t refresh = 256)
        : capacity_(capacity), refresh_(refresh)
    {
    }

    /** Record one latency sample (seconds). */
    void add(double x);

    /** Samples ever recorded. */
    std::uint64_t count() const { return total_; }

    /** Cached percentile of the recent window; 0 until refreshed. */
    double threshold(double p) const;

  private:
    std::size_t capacity_;
    std::size_t refresh_;
    std::vector<double> ring_;
    std::size_t next_ = 0;
    std::uint64_t total_ = 0;
    mutable double cached_p_ = -1.0;
    mutable double cached_value_ = 0.0;
    mutable std::uint64_t cached_at_ = 0;
};

/** Scheduler tuning (defaults from Secs. 4.3 / 4.6). */
struct SchedulerConfig
{
    /** Idle container keep-alive window (empirically 10-30 s). */
    sim::Time keepalive_min = 10 * sim::kSecond;
    sim::Time keepalive_max = 30 * sim::kSecond;
    /** Latency percentile that flags a straggler. */
    double straggler_percentile = 90.0;
    /** Minimum completed samples before mitigation activates. */
    std::size_t straggler_min_samples = 30;
    /**
     * Leaky-bucket straggler score at which a server goes on
     * probation. Each straggler adds 1; each normal completion from
     * the same server decays the score, so probation requires
     * stragglers *concentrated* on one node (Sec. 4.6: "if several
     * underperforming tasks all come from the same physical node").
     */
    double probation_threshold = 6.0;
    /** Score decay per normal completion. */
    double probation_decay = 0.25;
    /** Probation duration ("a few minutes"). */
    sim::Time probation_duration = 120 * sim::kSecond;
    /** Never put more than this fraction of servers on probation. */
    double probation_max_fraction = 0.5;
};

/**
 * The HiveMind scheduler: wraps a FaasRuntime with placement,
 * keep-alive, straggler-mitigation, and probation policies.
 */
class HiveMindScheduler
{
  public:
    HiveMindScheduler(sim::Simulator& simulator, sim::Rng& rng,
                      cloud::FaasRuntime& runtime,
                      const SchedulerConfig& config);

    /**
     * Install the scheduler into the runtime: replaces the placement
     * policy and widens the container keep-alive window.
     */
    void install();

    /**
     * Invoke with straggler mitigation: if the invocation exceeds the
     * app's p-th percentile latency, a duplicate is respawned and the
     * first finisher wins (Sec. 4.6).
     */
    void invoke(const cloud::InvokeRequest& request,
                cloud::InvokeCallback done);

    /** Parallel fan-out variant of invoke(). */
    void invoke_parallel(const cloud::InvokeRequest& request, int ways,
                         cloud::InvokeCallback done);

    /** Duplicates launched by the mitigation policy. */
    std::uint64_t respawns() const { return respawns_; }

    /** Attach a trace sink for respawn/probation events (optional). */
    void set_trace(TraceLog* trace) { trace_ = trace; }

    /** Servers currently on probation. */
    std::size_t probation_count() const;

    /** Completed-latency history for an app. */
    const PercentileTracker& history(const std::string& app) const;

    const SchedulerConfig& config() const { return config_; }

  private:
    /** Record a completion and update server straggler accounting. */
    void note_completion(const std::string& app, double latency_s,
                         std::size_t server);

    /** Placement decision (the PlacementPolicy hook body). */
    std::optional<std::size_t>
    place(const cloud::InvokeRequest& request, const cloud::Cluster& cluster,
          std::optional<std::size_t> warm_server) const;

    sim::Simulator* simulator_;
    sim::Rng rng_;
    cloud::FaasRuntime* runtime_;
    SchedulerConfig config_;
    std::map<std::string, PercentileTracker> history_;
    std::vector<double> straggler_score_;
    TraceLog* trace_ = nullptr;
    std::uint64_t respawns_ = 0;
};

}  // namespace hivemind::core

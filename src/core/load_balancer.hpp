#pragma once

/**
 * @file
 * Swarm load balancer: field partitioning and failure recovery.
 *
 * The controller "consists of a load balancer, which partitions the
 * available work across all devices" (Sec. 4.2). At time zero the
 * field is divided equally among the devices (Sec. 2.1); when a
 * device fails, "HiveMind ... repartitions its assigned area equally
 * among its neighboring drones assuming they have sufficient battery,
 * and updates their routing information" (Fig. 10).
 */

#include <cstddef>
#include <optional>
#include <vector>

#include "geo/coverage.hpp"
#include "geo/vec2.hpp"

namespace hivemind::core {

/** Assigns field regions (and coverage routes) to devices. */
class SwarmLoadBalancer
{
  public:
    /**
     * Partition @p field equally among @p devices devices.
     *
     * Device i initially owns strip i, left to right.
     */
    SwarmLoadBalancer(const geo::Rect& field, std::size_t devices);

    /** The region currently assigned to @p device (nullopt if failed). */
    std::optional<geo::Rect> region_of(std::size_t device) const;

    /** Devices that still hold a region. */
    std::vector<std::size_t> active_devices() const;

    /**
     * Handle a device failure: its strip is split between the
     * neighbouring strips' owners (Fig. 10).
     *
     * @return the devices whose regions changed (need new routes).
     */
    std::vector<std::size_t> handle_failure(std::size_t device);

    /**
     * Handle a device rejoining after a transient failure: the widest
     * current strip is split in half and the right half handed to the
     * rejoiner (the inverse of the neighbour-absorbs-strip recovery).
     * No-op when the device still holds a region.
     *
     * @return the devices whose regions changed (donor + rejoiner).
     */
    std::vector<std::size_t> handle_rejoin(std::size_t device);

    /** Coverage sweep of a device's current region. */
    std::vector<geo::Vec2> route_for(std::size_t device,
                                     double track_spacing) const;

    /** Total area still assigned (conservation invariant). */
    double assigned_area() const;

    const geo::Rect& field() const { return field_; }

    /**
     * Serializable partition state for controller checkpoints
     * (Sec. 4.6): the ordered (device, region) list.
     */
    struct Snapshot
    {
        std::vector<std::pair<std::size_t, geo::Rect>> assignments;
    };

    /** Capture the current partition. */
    Snapshot snapshot() const;

    /** Replace the partition with a checkpointed one (standby replay). */
    void restore(const Snapshot& snap);

  private:
    struct Assignment
    {
        std::size_t device;
        geo::Rect region;
    };

    geo::Rect field_;
    std::vector<Assignment> assignments_;  // Ordered left to right.
};

}  // namespace hivemind::core

#pragma once

/**
 * @file
 * Heartbeat-based failure detection (Sec. 4.6).
 *
 * "All devices send a periodic heartbeat to HiveMind (once per
 * second). If the controller does not receive a heartbeat for more
 * than 3s, it assumes that the device has failed." Detection is
 * implemented as a periodic sweep over last-seen timestamps; the
 * failure callback feeds the load balancer's repartitioning (Fig. 10).
 *
 * Failures are not terminal: a heartbeat from a device previously
 * declared failed clears the mark and fires the recovery callback, so
 * transient faults (reboot, temporary partition) hand the device's
 * region back via SwarmLoadBalancer::handle_rejoin.
 */

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hivemind::core {

/** Monitors device heartbeats and reports failures. */
class FailureDetector
{
  public:
    /**
     * @param devices number of devices tracked
     * @param beat_interval expected heartbeat period (1 s)
     * @param timeout silence duration treated as failure (3 s)
     */
    FailureDetector(sim::Simulator& simulator, std::size_t devices,
                    sim::Time beat_interval = sim::kSecond,
                    sim::Time timeout = 3 * sim::kSecond);

    /** Begin the periodic sweep. */
    void start();

    /** Stop sweeping (ends the simulation cleanly). */
    void stop() { running_ = false; }

    /** Record a heartbeat from @p device. */
    void beat(std::size_t device);

    /**
     * Standby reconciliation after a controller takeover (Sec. 4.6):
     * overwrite the tracked state with the re-registration ping's
     * ground truth. Unlike beat()/sweep() this fires no callbacks and
     * records no latency samples — the caller repartitions explicitly.
     */
    void reconcile(std::size_t device, bool alive);

    /** Invoked once per newly detected failure. */
    void set_on_failure(std::function<void(std::size_t)> fn)
    {
        on_failure_ = std::move(fn);
    }

    /** Invoked when a failed device resumes heartbeating. */
    void set_on_recovery(std::function<void(std::size_t)> fn)
    {
        on_recovery_ = std::move(fn);
    }

    /**
     * Whether a device has been declared failed. Out-of-range ids are
     * not tracked and report not-failed.
     */
    bool is_failed(std::size_t device) const
    {
        return device < failed_.size() && failed_[device];
    }

    /** Number of devices declared failed. */
    std::size_t failed_count() const;

    /** Detection latency observed for each failure (seconds). */
    const std::vector<double>& detection_latencies() const
    {
        return detection_latencies_;
    }

    /** Failure-to-recovery latency for each rejoin (seconds). */
    const std::vector<double>& recovery_latencies() const
    {
        return recovery_latencies_;
    }

  private:
    /** @p epoch guards against stale chains after stop()/start(). */
    void sweep(std::uint64_t epoch);

    sim::Simulator* simulator_;
    sim::Time beat_interval_;
    sim::Time timeout_;
    std::vector<sim::Time> last_beat_;
    std::vector<bool> failed_;
    std::vector<sim::Time> failed_at_;
    std::function<void(std::size_t)> on_failure_;
    std::function<void(std::size_t)> on_recovery_;
    std::vector<double> detection_latencies_;
    std::vector<double> recovery_latencies_;
    bool running_ = false;
    std::uint64_t epoch_ = 0;
};

}  // namespace hivemind::core

#pragma once

/**
 * @file
 * Continuous-learning coordinator (Sec. 4.6, Fig. 15).
 *
 * "If enabled, instead of only using one device's decisions to
 * retrain it, HiveMind leverages the entire swarm's decisions to
 * retrain all devices jointly, which significantly accelerates their
 * decision quality." The coordinator owns one DetectionModel per
 * device, buffers decision feedback between retraining rounds, and
 * applies the configured RetrainMode at each round.
 */

#include <cstdint>
#include <vector>

#include "apps/detection.hpp"

namespace hivemind::core {

/** Manages per-device detection models and their retraining. */
class LearningCoordinator
{
  public:
    LearningCoordinator(std::size_t devices,
                        const apps::DetectionConfig& config,
                        apps::RetrainMode mode);

    /** Record @p samples decision feedback from @p device. */
    void record(std::size_t device, std::uint64_t samples = 1);

    /**
     * Retraining round: per the mode, each device's model absorbs its
     * own buffered samples (Self), the swarm-wide total (Swarm), or
     * nothing (None). Buffers reset afterwards.
     */
    void retrain();

    /** Detection model of a device. */
    const apps::DetectionModel& model(std::size_t device) const
    {
        return models_[device];
    }

    /** Mean detection accuracy across the swarm. */
    double swarm_p_correct() const;

    /** Mean FN / FP probabilities across the swarm. */
    double swarm_p_false_negative() const;
    double swarm_p_false_positive() const;

    apps::RetrainMode mode() const { return mode_; }

    /** Devices managed (one model per device). */
    std::size_t device_count() const { return models_.size(); }

    /** Total feedback samples recorded across all devices. */
    std::uint64_t total_samples() const { return total_samples_; }

  private:
    apps::RetrainMode mode_;
    std::vector<apps::DetectionModel> models_;
    std::vector<std::uint64_t> buffered_;
    std::uint64_t total_samples_ = 0;
};

}  // namespace hivemind::core

#include "core/swarm_controller.hpp"

#include <utility>

namespace hivemind::core {

SwarmController::SwarmController(sim::Simulator& shard0,
                                 const Config& config, Downlink send)
    : simulator_(&shard0),
      config_(config),
      send_(std::move(send)),
      detector_(shard0, config.devices, config.beat_interval,
                config.timeout)
{
    detector_.set_on_failure([this](std::size_t device) {
        ++stats_.failures;
        mix(3, device);
        repartition();
    });
    detector_.set_on_recovery([this](std::size_t device) {
        ++stats_.recoveries;
        mix(4, device);
        repartition();
    });
}

void
SwarmController::start()
{
    detector_.start();
    repartition();
    if (config_.crash_at > 0) {
        simulator_->schedule_at(config_.crash_at, [this] { crash_now(); });
        simulator_->schedule_at(config_.crash_at + config_.takeover,
                                [this] { takeover_now(); });
    }
}

void
SwarmController::crash_now()
{
    down_ = true;
    detector_.stop();
    mix(5, 0);
}

void
SwarmController::takeover_now()
{
    down_ = false;
    mix(6, 0);
    detector_.start();
    for (std::size_t d = 0; d < config_.devices; ++d) {
        DownMsg msg;
        msg.kind = DownMsg::Kind::ReRegister;
        send_(d, msg);
    }
}

void
SwarmController::stop()
{
    detector_.stop();
}

void
SwarmController::on_register(std::size_t device)
{
    if (down_) {
        ++stats_.dropped;
        return;
    }
    ++stats_.registers;
    mix(1, device);
    // Post-takeover ground truth (Sec. 4.6): responding == alive.
    const bool was_failed = detector_.is_failed(device);
    detector_.reconcile(device, true);
    detector_.beat(device);
    if (was_failed) {
        ++stats_.recoveries;
        mix(4, device);
        repartition();
    }
}

void
SwarmController::on_beat(std::size_t device)
{
    if (down_) {
        ++stats_.dropped;
        return;
    }
    ++stats_.beats;
    mix(2, device);
    detector_.beat(device);
}

void
SwarmController::on_frame(std::size_t device, std::uint64_t frame)
{
    if (down_) {
        ++stats_.dropped;
        return;
    }
    ++stats_.frames;
    mix(7, device * 1315423911u + frame);
    DownMsg msg;
    msg.kind = DownMsg::Kind::FrameAck;
    msg.frame = frame;
    send_(device, msg);
}

void
SwarmController::repartition()
{
    ++stats_.repartitions;
    std::size_t live = 0;
    for (std::size_t d = 0; d < config_.devices; ++d)
        if (!detector_.is_failed(d))
            ++live;
    if (live == 0)
        return;
    // Strip rule: live devices split [0, strip_width) evenly, in id
    // order, so the assignment is a pure function of the failed set.
    std::size_t index = 0;
    for (std::size_t d = 0; d < config_.devices; ++d) {
        if (detector_.is_failed(d))
            continue;
        DownMsg msg;
        msg.kind = DownMsg::Kind::Assign;
        msg.lo = static_cast<int>(index * config_.strip_width / live);
        msg.hi = static_cast<int>((index + 1) * config_.strip_width / live);
        mix(8, (static_cast<std::uint64_t>(d) << 32) ^
                   static_cast<std::uint64_t>(msg.hi));
        send_(d, msg);
        ++index;
    }
}

void
SwarmController::mix(std::uint64_t a, std::uint64_t b)
{
    const std::uint64_t prime = 1099511628211ull;
    auto eat = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            digest_ ^= (v >> (i * 8)) & 0xff;
            digest_ *= prime;
        }
    };
    eat(static_cast<std::uint64_t>(simulator_->now()));
    eat(a);
    eat(b);
}

}  // namespace hivemind::core

#pragma once

/**
 * @file
 * Structured trace log (Sec. 4.7).
 *
 * HiveMind ships "a monitoring system that tracks application
 * progress and device status" with negligible overhead. TraceLog is
 * its storage: a flat, append-only record of typed events that
 * experiment harnesses and the controller can write, with CSV and
 * JSON-lines exporters for offline analysis. Collection cost is one
 * vector push per event; rendering happens only on export.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hivemind::core {

/** What happened. */
enum class TraceEvent
{
    TaskSubmit,
    TaskStart,
    TaskComplete,
    TaskFault,
    ColdStart,
    WarmStart,
    DeviceFailure,
    Repartition,
    StragglerRespawn,
    ControllerFailover,
    RetrainRound,
    /** Controller state checkpoint persisted (value = bytes). */
    Checkpoint,
    /** Standby declared the primary dead and started the takeover. */
    FailoverElection,
    /** Takeover complete: checkpoint replayed, devices reconciled. */
    FailoverComplete,
    Custom,
};

/** Human-readable event name (stable; used in exports). */
const char* to_string(TraceEvent e);

/** One trace record. */
struct TraceRecord
{
    sim::Time when = 0;
    TraceEvent event = TraceEvent::Custom;
    /** Device or server id the event concerns (-1 = none). */
    std::int64_t subject = -1;
    /** Free-form label (task name, app id, reason). */
    std::string label;
    /** Optional numeric payload (latency seconds, count, ...). */
    double value = 0.0;
};

/** Append-only trace with filtered queries and exporters. */
class TraceLog
{
  public:
    /** Record an event. */
    void add(sim::Time when, TraceEvent event, std::int64_t subject = -1,
             std::string label = {}, double value = 0.0);

    /** All records, in insertion order. */
    const std::vector<TraceRecord>& records() const { return records_; }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    void clear() { records_.clear(); }

    /** Number of records of one event kind. */
    std::size_t count(TraceEvent event) const;

    /** Records of one kind, in order. */
    std::vector<TraceRecord> filter(TraceEvent event) const;

    /**
     * Render as CSV with header
     * `time_s,event,subject,label,value`. Labels containing commas or
     * quotes are quoted per RFC 4180.
     */
    std::string to_csv() const;

    /** Render as JSON lines (one object per record). */
    std::string to_jsonl() const;

  private:
    std::vector<TraceRecord> records_;
};

}  // namespace hivemind::core

#include "core/learning.hpp"

#include <numeric>

namespace hivemind::core {

LearningCoordinator::LearningCoordinator(std::size_t devices,
                                         const apps::DetectionConfig& config,
                                         apps::RetrainMode mode)
    : mode_(mode), buffered_(devices, 0)
{
    models_.reserve(devices);
    for (std::size_t i = 0; i < devices; ++i)
        models_.emplace_back(config);
}

void
LearningCoordinator::record(std::size_t device, std::uint64_t samples)
{
    if (device < buffered_.size()) {
        buffered_[device] += samples;
        total_samples_ += samples;
    }
}

void
LearningCoordinator::retrain()
{
    std::uint64_t swarm_total =
        std::accumulate(buffered_.begin(), buffered_.end(),
                        std::uint64_t{0});
    for (std::size_t d = 0; d < models_.size(); ++d)
        models_[d].observe(mode_, buffered_[d], swarm_total);
    buffered_.assign(buffered_.size(), 0);
}

double
LearningCoordinator::swarm_p_correct() const
{
    if (models_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto& m : models_)
        sum += m.p_correct();
    return sum / static_cast<double>(models_.size());
}

double
LearningCoordinator::swarm_p_false_negative() const
{
    if (models_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto& m : models_)
        sum += m.p_false_negative();
    return sum / static_cast<double>(models_.size());
}

double
LearningCoordinator::swarm_p_false_positive() const
{
    if (models_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto& m : models_)
        sum += m.p_false_positive();
    return sum / static_cast<double>(models_.size());
}

}  // namespace hivemind::core

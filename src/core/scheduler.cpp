#include "core/scheduler.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace hivemind::core {

void
PercentileTracker::add(double x)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(x);
    } else {
        ring_[next_] = x;
        next_ = (next_ + 1) % capacity_;
    }
    ++total_;
}

double
PercentileTracker::threshold(double p) const
{
    if (ring_.empty())
        return 0.0;
    if (cached_p_ == p && total_ - cached_at_ < refresh_)
        return cached_value_;
    std::vector<double> sorted = ring_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    cached_value_ = lo + 1 < sorted.size()
        ? sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac
        : sorted.back();
    cached_p_ = p;
    cached_at_ = total_;
    return cached_value_;
}

HiveMindScheduler::HiveMindScheduler(sim::Simulator& simulator, sim::Rng& rng,
                                     cloud::FaasRuntime& runtime,
                                     const SchedulerConfig& config)
    : simulator_(&simulator),
      rng_(rng.fork()),
      runtime_(&runtime),
      config_(config),
      straggler_score_(runtime.cluster().size(), 0.0)
{
}

void
HiveMindScheduler::install()
{
    // Widen the keep-alive window (Sec. 4.3: "ranges between 10 and
    // 30 seconds"); sample once so a run is internally consistent.
    sim::Time lo = config_.keepalive_min;
    sim::Time hi = config_.keepalive_max;
    runtime_->mutable_config().keepalive =
        lo + static_cast<sim::Time>(rng_.uniform(
                 0.0, static_cast<double>(hi - lo)));
    // Kept-alive containers stay hot (not paused): reuse is cheap.
    runtime_->mutable_config().warm_start = sim::from_millis(8.0);

    runtime_->set_placement_policy(
        [this](const cloud::InvokeRequest& request,
               const cloud::Cluster& cluster,
               std::optional<std::size_t> warm_server) {
            return place(request, cluster, warm_server);
        });
}

std::optional<std::size_t>
HiveMindScheduler::place(const cloud::InvokeRequest& request,
                         const cloud::Cluster& cluster,
                         std::optional<std::size_t> warm_server) const
{
    // 1. Parent co-location: run the child in its parent's container
    //    when that server still has capacity (Sec. 4.3).
    if (request.preferred_server != cloud::kNoServer) {
        const cloud::Server& pref = cluster.server(request.preferred_server);
        if (!pref.on_probation() && pref.free_cores() > 0 &&
            pref.has_memory(request.memory_mb)) {
            return request.preferred_server;
        }
    }
    // 2. A warm container for the app avoids a cold start.
    if (warm_server) {
        const cloud::Server& w = cluster.server(*warm_server);
        if (!w.on_probation() && w.free_cores() > 0)
            return warm_server;
    }
    // 3. Worker monitors: the least-occupied server with capacity.
    return cluster.least_loaded(request.memory_mb);
}

const PercentileTracker&
HiveMindScheduler::history(const std::string& app) const
{
    static const PercentileTracker empty;
    auto it = history_.find(app);
    return it == history_.end() ? empty : it->second;
}

std::size_t
HiveMindScheduler::probation_count() const
{
    std::size_t n = 0;
    for (const cloud::Server& s : runtime_->cluster().servers()) {
        if (s.on_probation())
            ++n;
    }
    return n;
}

void
HiveMindScheduler::note_completion(const std::string& app, double latency_s,
                                   std::size_t server)
{
    PercentileTracker& h = history_[app];
    bool straggled = h.count() >= config_.straggler_min_samples &&
        latency_s > h.threshold(config_.straggler_percentile);
    h.add(latency_s);
    if (server == cloud::kNoServer || server >= straggler_score_.size())
        return;
    cloud::Server& srv = runtime_->cluster().server(server);
    double& score = straggler_score_[server];
    if (!straggled) {
        // Leaky bucket: normal completions decay the score, so only a
        // node whose stragglers are disproportionate trips probation.
        score -= config_.probation_decay;
        if (score < 0.0)
            score = 0.0;
        return;
    }
    srv.note_straggler();
    score += 1.0;
    // Never bench more than a fraction of the cluster: a systemic
    // slowdown is not one bad node, and the cluster must keep serving.
    double benched = static_cast<double>(probation_count());
    double cap = config_.probation_max_fraction *
        static_cast<double>(runtime_->cluster().size());
    if (score >= config_.probation_threshold && !srv.on_probation() &&
        benched + 1.0 <= cap) {
        srv.set_probation(true);
        std::size_t id = server;
        simulator_->schedule_in(config_.probation_duration, [this, id]() {
            cloud::Server& s = runtime_->cluster().server(id);
            s.set_probation(false);
            s.reset_stragglers();
            straggler_score_[id] = 0.0;
            // Capacity returned: retry anything parked in the queue.
            runtime_->poke();
        });
    }
}

void
HiveMindScheduler::invoke(const cloud::InvokeRequest& request,
                          cloud::InvokeCallback done)
{
    struct RaceState
    {
        bool finished = false;
        bool duplicate_launched = false;
        cloud::InvokeCallback done;
    };
    auto race = std::make_shared<RaceState>();
    race->done = std::move(done);

    auto finish = [this, race, app = request.app](
                      const cloud::InvocationTrace& trace) {
        if (race->finished)
            return;  // The other copy already won.
        race->finished = true;
        note_completion(app, trace.total_s(), trace.server);
        if (race->done)
            race->done(trace);
    };

    runtime_->invoke(request, finish);

    // Straggler watchdog: once the invocation exceeds the app's p-th
    // percentile, launch a duplicate; first finisher wins.
    const PercentileTracker& h = history(request.app);
    if (h.count() >= config_.straggler_min_samples) {
        double deadline_s = h.threshold(config_.straggler_percentile);
        auto self = this;
        cloud::InvokeRequest dup = request;
        simulator_->schedule_in(
            sim::from_seconds(deadline_s), [self, race, dup, finish]() {
                if (race->finished || race->duplicate_launched)
                    return;
                race->duplicate_launched = true;
                ++self->respawns_;
                if (self->trace_) {
                    self->trace_->add(self->simulator_->now(),
                                      TraceEvent::StragglerRespawn, -1,
                                      dup.app);
                }
                self->runtime_->invoke(dup, finish);
            });
    }
}

void
HiveMindScheduler::invoke_parallel(const cloud::InvokeRequest& request,
                                   int ways, cloud::InvokeCallback done)
{
    if (ways <= 1) {
        invoke(request, std::move(done));
        return;
    }
    // Mitigation applies per fan-out worker inside the runtime; here
    // we mirror FaasRuntime::invoke_parallel but route through the
    // scheduler so each worker gets the watchdog.
    struct JoinState
    {
        int remaining;
        cloud::InvocationTrace merged;
        cloud::InvokeCallback done;
        bool first = true;
    };
    auto join = std::make_shared<JoinState>();
    join->remaining = ways;
    join->done = std::move(done);

    cloud::InvokeRequest part = request;
    part.work_core_ms = request.work_core_ms / static_cast<double>(ways);
    part.input_bytes = request.input_bytes / static_cast<std::uint64_t>(ways);
    part.output_bytes =
        request.output_bytes / static_cast<std::uint64_t>(ways);

    for (int w = 0; w < ways; ++w) {
        invoke(part, [join](const cloud::InvocationTrace& t) {
            if (join->first) {
                join->merged = t;
                join->first = false;
            } else {
                join->merged.scheduled =
                    std::max(join->merged.scheduled, t.scheduled);
                join->merged.container_ready =
                    std::max(join->merged.container_ready, t.container_ready);
                join->merged.input_ready =
                    std::max(join->merged.input_ready, t.input_ready);
                join->merged.exec_done =
                    std::max(join->merged.exec_done, t.exec_done);
                join->merged.done = std::max(join->merged.done, t.done);
                join->merged.submit = std::min(join->merged.submit, t.submit);
                join->merged.cold_start |= t.cold_start;
            }
            if (--join->remaining == 0 && join->done)
                join->done(join->merged);
        });
    }
}

}  // namespace hivemind::core

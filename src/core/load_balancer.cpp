#include "core/load_balancer.hpp"

namespace hivemind::core {

SwarmLoadBalancer::SwarmLoadBalancer(const geo::Rect& field,
                                     std::size_t devices)
    : field_(field)
{
    std::vector<geo::Rect> strips = geo::partition_field(field, devices);
    assignments_.reserve(devices);
    for (std::size_t i = 0; i < strips.size(); ++i)
        assignments_.push_back({i, strips[i]});
}

std::optional<geo::Rect>
SwarmLoadBalancer::region_of(std::size_t device) const
{
    for (const Assignment& a : assignments_) {
        if (a.device == device)
            return a.region;
    }
    return std::nullopt;
}

std::vector<std::size_t>
SwarmLoadBalancer::active_devices() const
{
    std::vector<std::size_t> out;
    out.reserve(assignments_.size());
    for (const Assignment& a : assignments_)
        out.push_back(a.device);
    return out;
}

std::vector<std::size_t>
SwarmLoadBalancer::handle_failure(std::size_t device)
{
    std::vector<std::size_t> changed;
    for (std::size_t i = 0; i < assignments_.size(); ++i) {
        if (assignments_[i].device != device)
            continue;
        // Mirror geo::repartition_after_failure on the Rect list while
        // tracking which owners grew.
        std::vector<geo::Rect> regions;
        regions.reserve(assignments_.size());
        for (const Assignment& a : assignments_)
            regions.push_back(a.region);
        geo::repartition_after_failure(regions, i);
        if (i > 0)
            changed.push_back(assignments_[i - 1].device);
        if (i + 1 < assignments_.size())
            changed.push_back(assignments_[i + 1].device);
        assignments_.erase(assignments_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        for (std::size_t j = 0; j < assignments_.size(); ++j)
            assignments_[j].region = regions[j];
        return changed;
    }
    return changed;
}

std::vector<std::size_t>
SwarmLoadBalancer::handle_rejoin(std::size_t device)
{
    std::vector<std::size_t> changed;
    for (const Assignment& a : assignments_) {
        if (a.device == device)
            return changed;  // Still holds a region; nothing to do.
    }
    if (assignments_.empty()) {
        // Everyone was gone: the rejoiner takes the whole field.
        assignments_.push_back({device, field_});
        changed.push_back(device);
        return changed;
    }
    // Split the widest strip (deterministic first-max, left to right):
    // the donor keeps the left half, the rejoiner works the right.
    std::size_t widest = 0;
    for (std::size_t i = 1; i < assignments_.size(); ++i) {
        if (assignments_[i].region.width() >
            assignments_[widest].region.width())
            widest = i;
    }
    geo::Rect& donor = assignments_[widest].region;
    double mid = (donor.x0 + donor.x1) / 2.0;
    geo::Rect given{mid, donor.y0, donor.x1, donor.y1};
    donor.x1 = mid;
    changed.push_back(assignments_[widest].device);
    changed.push_back(device);
    assignments_.insert(
        assignments_.begin() + static_cast<std::ptrdiff_t>(widest) + 1,
        {device, given});
    return changed;
}

std::vector<geo::Vec2>
SwarmLoadBalancer::route_for(std::size_t device, double track_spacing) const
{
    auto region = region_of(device);
    if (!region)
        return {};
    return geo::coverage_route(*region, track_spacing);
}

SwarmLoadBalancer::Snapshot
SwarmLoadBalancer::snapshot() const
{
    Snapshot snap;
    snap.assignments.reserve(assignments_.size());
    for (const Assignment& a : assignments_)
        snap.assignments.emplace_back(a.device, a.region);
    return snap;
}

void
SwarmLoadBalancer::restore(const Snapshot& snap)
{
    assignments_.clear();
    assignments_.reserve(snap.assignments.size());
    for (const auto& [device, region] : snap.assignments)
        assignments_.push_back({device, region});
}

double
SwarmLoadBalancer::assigned_area() const
{
    double a = 0.0;
    for (const Assignment& as : assignments_)
        a += as.region.area();
    return a;
}

}  // namespace hivemind::core

#pragma once

/**
 * @file
 * The centralized HiveMind controller (Sec. 4.2).
 *
 * A cloud-resident process with global visibility into cloud and edge
 * resources: it owns the load balancer that partitions work across
 * devices, the heartbeat failure detector whose detections trigger
 * repartitioning (Fig. 10), the serverless scheduler interface, the
 * continuous-learning coordinator, and the monitoring system. The
 * real controller runs as a centralized process with two hot
 * standbys (Sec. 4.7); standby fail-over is modeled as a fixed
 * takeover delay.
 */

#include <cstddef>
#include <functional>
#include <memory>

#include "apps/detection.hpp"
#include "core/ha.hpp"
#include "core/heartbeat.hpp"
#include "core/learning.hpp"
#include "core/load_balancer.hpp"
#include "core/monitor.hpp"
#include "core/trace.hpp"
#include "geo/vec2.hpp"
#include "sim/simulator.hpp"

namespace hivemind::core {

/** Controller composition options. */
struct ControllerConfig
{
    /** Heartbeat period (Sec. 4.6: once per second). */
    sim::Time heartbeat_interval = sim::kSecond;
    /** Silence treated as device failure (Sec. 4.6: 3 s). */
    sim::Time heartbeat_timeout = 3 * sim::kSecond;
    /** Continuous-learning mode for recognition models. */
    apps::RetrainMode retrain_mode = apps::RetrainMode::Swarm;
    /** Retraining round period. */
    sim::Time retrain_interval = 10 * sim::kSecond;
    /** Detection-model accuracy parameters. */
    apps::DetectionConfig detection;
    /** Hot-standby takeover delay on controller failure (Sec. 4.7). */
    sim::Time standby_takeover = sim::from_millis(500.0);
    /** High-availability stack tuning (checkpoint/election/replay). */
    HaConfig ha;
};

/**
 * Facade over the controller's subsystems; the platform layer drives
 * it (device registration, heartbeats, decision feedback).
 */
class HiveMindController
{
  public:
    /**
     * @param field the operating area to partition
     * @param devices swarm size
     */
    HiveMindController(sim::Simulator& simulator, const geo::Rect& field,
                       std::size_t devices, const ControllerConfig& config);

    /**
     * Enable the HA stack (config().ha tuning): checkpoints this
     * controller's registry + partition to @p store (nullptr = local
     * durable store) and reconciles them back on failover. Call before
     * start().
     */
    void enable_ha(cloud::DataStore* store);

    /** The HA cluster, or nullptr when enable_ha() was not called. */
    HaCluster* ha() { return ha_.get(); }

    /** Start heartbeat sweeping and periodic retraining. */
    void start();

    /** Stop periodic activity. */
    void stop();

    /** Forward a device heartbeat. */
    void heartbeat(std::size_t device) { detector_.beat(device); }

    /**
     * Called with the ids of devices whose regions changed after a
     * failure; the platform re-routes them.
     */
    void set_on_reassign(std::function<void(std::vector<std::size_t>)> fn)
    {
        on_reassign_ = std::move(fn);
    }

    /** Record recognition feedback for continuous learning. */
    void record_decision(std::size_t device, std::uint64_t samples = 1)
    {
        learning_.record(device, samples);
    }

    /** Structured event trace (Sec. 4.7 monitoring). */
    TraceLog& trace() { return trace_; }
    const TraceLog& trace() const { return trace_; }

    SwarmLoadBalancer& load_balancer() { return balancer_; }
    const SwarmLoadBalancer& load_balancer() const { return balancer_; }
    FailureDetector& failure_detector() { return detector_; }
    LearningCoordinator& learning() { return learning_; }
    const LearningCoordinator& learning() const { return learning_; }
    MetricRegistry& metrics() { return metrics_; }

  private:
    void retrain_tick();

    sim::Simulator* simulator_;
    ControllerConfig config_;
    SwarmLoadBalancer balancer_;
    FailureDetector detector_;
    LearningCoordinator learning_;
    MetricRegistry metrics_;
    TraceLog trace_;
    std::unique_ptr<HaCluster> ha_;
    std::function<void(std::vector<std::size_t>)> on_reassign_;
    bool running_ = false;
};

}  // namespace hivemind::core

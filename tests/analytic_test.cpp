/**
 * @file
 * Tests for the queueing primitives and the analytic swarm model
 * (src/analytic).
 */

#include <gtest/gtest.h>

#include "analytic/model.hpp"
#include "analytic/queueing.hpp"

namespace hivemind::analytic {
namespace {

TEST(Queueing, ErlangCBasics)
{
    // Single server: Erlang-C reduces to rho.
    EXPECT_NEAR(erlang_c(1, 0.5), 0.5, 1e-9);
    EXPECT_NEAR(erlang_c(1, 0.9), 0.9, 1e-9);
    // Overload saturates at 1.
    EXPECT_DOUBLE_EQ(erlang_c(2, 3.0), 1.0);
    // No load: no waiting.
    EXPECT_DOUBLE_EQ(erlang_c(4, 0.0), 0.0);
    // More servers at equal load wait less.
    EXPECT_LT(erlang_c(4, 2.0), erlang_c(2, 1.8));
}

TEST(Queueing, Mm1Sojourn)
{
    EXPECT_NEAR(mm1_sojourn(0.5, 1.0), 2.0, 1e-9);
    EXPECT_LT(mm1_sojourn(1.5, 1.0), 0.0);  // Unstable flagged.
}

TEST(Queueing, MmcMatchesMm1AtOneServer)
{
    EXPECT_NEAR(mmc_sojourn(0.5, 1.0, 1), mm1_sojourn(0.5, 1.0), 1e-9);
}

TEST(Queueing, MmcScalesWithServers)
{
    // 2 servers at half the per-server load wait less than 1.
    double one = mmc_sojourn(0.8, 1.0, 1);
    double two = mmc_sojourn(1.6, 1.0, 2);
    EXPECT_GT(one, 0.0);
    EXPECT_GT(two, 0.0);
    EXPECT_LT(two, one);
}

TEST(Queueing, ExponentialPercentile)
{
    EXPECT_NEAR(exponential_percentile(1.0, 50.0), 0.6931, 1e-3);
    EXPECT_NEAR(exponential_percentile(1.0, 99.0), 4.6052, 1e-3);
    EXPECT_DOUBLE_EQ(exponential_percentile(0.0, 99.0), 0.0);
}

TEST(Queueing, SaturatedSojournGrowsWithOverload)
{
    double stable = saturated_sojourn(0.5, 1.0, 1, 120.0);
    double near = saturated_sojourn(0.96, 1.0, 1, 120.0);
    double over = saturated_sojourn(2.0, 1.0, 1, 120.0);
    double way_over = saturated_sojourn(4.0, 1.0, 1, 120.0);
    EXPECT_LT(stable, near);
    EXPECT_LT(near, over);
    EXPECT_LT(over, way_over);
    EXPECT_GT(over, 30.0);  // Backlog over a 2-minute horizon.
}

TEST(Model, CentralizedUsesMoreBandwidthThanHiveMind)
{
    AnalyticInput in;
    in.apply_platform(platform::PlatformOptions::centralized_faas());
    auto centr = evaluate(in);
    in = AnalyticInput{};
    in.apply_platform(platform::PlatformOptions::hivemind());
    auto hive = evaluate(in);
    in = AnalyticInput{};
    in.apply_platform(platform::PlatformOptions::distributed_edge());
    auto distr = evaluate(in);
    // Fig. 14b ordering: centralized > HiveMind > distributed.
    EXPECT_GT(centr.bandwidth_MBps, hive.bandwidth_MBps);
    EXPECT_GT(hive.bandwidth_MBps, distr.bandwidth_MBps);
}

TEST(Model, DistributedSlowerForHeavyCompute)
{
    AnalyticInput in;
    in.work_core_ms = 350.0;
    in.task_rate_hz = 0.4;  // Keep the edge core stable.
    in.apply_platform(platform::PlatformOptions::distributed_edge());
    auto distr = evaluate(in);
    AnalyticInput in2 = in;
    in2.apply_platform(platform::PlatformOptions::centralized_faas());
    auto centr = evaluate(in2);
    EXPECT_GT(distr.mean_latency_s, centr.mean_latency_s);
}

TEST(Model, CentralizedCollapsesAtScale)
{
    // Fig. 1 / 17b: with 1000+ devices the centralized stack
    // saturates (controller + network), HiveMind does not.
    AnalyticInput in;
    in.devices = 1000;
    in.scale_infra = true;
    in.apply_platform(platform::PlatformOptions::centralized_faas());
    auto centr = evaluate(in);
    AnalyticInput in2;
    in2.devices = 1000;
    in2.scale_infra = true;
    in2.apply_platform(platform::PlatformOptions::hivemind());
    auto hive = evaluate(in2);
    EXPECT_GT(centr.tail_latency_s, 10.0 * hive.tail_latency_s);
    EXPECT_GT(centr.max_utilization, 0.97);
    EXPECT_LT(hive.max_utilization, 0.97);
}

TEST(Model, TailAboveMean)
{
    AnalyticInput in;
    for (auto opt : {platform::PlatformOptions::centralized_faas(),
                     platform::PlatformOptions::distributed_edge(),
                     platform::PlatformOptions::hivemind()}) {
        AnalyticInput i = in;
        i.apply_platform(opt);
        auto out = evaluate(i);
        EXPECT_GT(out.tail_latency_s, out.mean_latency_s);
        EXPECT_GT(out.mean_latency_s, 0.0);
    }
}

TEST(Model, ApplyAppCopiesWorkload)
{
    AnalyticInput in;
    in.apply_app(apps::app_by_id("S1"));
    EXPECT_DOUBLE_EQ(in.work_core_ms, 350.0);
    EXPECT_EQ(in.input_bytes, 8u << 20);
    EXPECT_EQ(in.parallelism, 8);
}

TEST(Model, BatteryDominatedByMotion)
{
    AnalyticInput in;
    in.apply_platform(platform::PlatformOptions::hivemind());
    auto out = evaluate(in);
    // 80 W motion on a 60 kJ pack is ~8%/min; idle adds a little.
    EXPECT_GT(out.battery_pct_per_min, 7.0);
    EXPECT_LT(out.battery_pct_per_min, 12.0);
}

/** Property: latency is monotone in offered load (fixed capacity). */
class LoadMonotonicity : public ::testing::TestWithParam<int>
{
};

TEST_P(LoadMonotonicity, MoreDevicesNeverFaster)
{
    double prev = 0.0;
    platform::PlatformOptions opt =
        GetParam() == 0 ? platform::PlatformOptions::centralized_faas()
                        : platform::PlatformOptions::hivemind();
    for (std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
        AnalyticInput in;
        in.devices = n;
        in.apply_platform(opt);
        auto out = evaluate(in);
        EXPECT_GE(out.mean_latency_s, prev * 0.999);
        prev = out.mean_latency_s;
    }
}

INSTANTIATE_TEST_SUITE_P(Platforms, LoadMonotonicity,
                         ::testing::Values(0, 1));

}  // namespace
}  // namespace hivemind::analytic

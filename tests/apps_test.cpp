/**
 * @file
 * Tests for the application suite: specs, detection/learning models,
 * scenario worlds, and load patterns (src/apps).
 */

#include <gtest/gtest.h>

#include "apps/appspec.hpp"
#include "apps/detection.hpp"
#include "apps/workload.hpp"
#include "apps/world.hpp"

namespace hivemind::apps {
namespace {

TEST(AppSpec, TenApplications)
{
    const auto& apps = all_apps();
    ASSERT_EQ(apps.size(), 10u);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        EXPECT_EQ(apps[i].id, "S" + std::to_string(i + 1));
        EXPECT_GT(apps[i].work_core_ms, 0.0);
        EXPECT_GT(apps[i].task_rate_hz, 0.0);
        EXPECT_GE(apps[i].parallelism, 1);
        EXPECT_GT(apps[i].input_bytes, 0u);
    }
}

TEST(AppSpec, LookupById)
{
    EXPECT_EQ(app_by_id("S1").name, "Face Recognition");
    EXPECT_EQ(app_by_id("S10").name, "SLAM");
    EXPECT_THROW(app_by_id("S11"), std::invalid_argument);
    EXPECT_THROW(app_by_id(""), std::invalid_argument);
}

TEST(AppSpec, PaperCharacterization)
{
    // S3/S4/S7 are the edge-friendly trio of Secs. 2.3 / 5.1.
    EXPECT_TRUE(app_by_id("S3").edge_friendly);
    EXPECT_TRUE(app_by_id("S4").edge_friendly);
    EXPECT_TRUE(app_by_id("S7").edge_friendly);
    EXPECT_FALSE(app_by_id("S1").edge_friendly);
    // S4 gains from running in place (skips re-planning round trips).
    EXPECT_LT(app_by_id("S4").edge_work_factor, 1.0);
    // S7 is the shortest task (instantiation dominates, Fig. 6b);
    // S6 is long-running with a low rate (drones move slowly).
    const auto& apps = all_apps();
    for (const AppSpec& a : apps) {
        EXPECT_LE(app_by_id("S7").work_core_ms, a.work_core_ms);
    }
    EXPECT_GT(app_by_id("S6").work_core_ms, 500.0);
    EXPECT_LT(app_by_id("S6").task_rate_hz, 0.5);
    // S9/S10 have ample parallelism (Sec. 3.2).
    EXPECT_GE(app_by_id("S9").parallelism, 8);
    EXPECT_GE(app_by_id("S10").parallelism, 8);
}

TEST(Detection, NoRetrainStaysAtBase)
{
    DetectionConfig cfg;
    DetectionModel m(cfg);
    EXPECT_DOUBLE_EQ(m.p_correct(), cfg.base_correct);
    m.observe(RetrainMode::None, 1000, 16000);
    EXPECT_DOUBLE_EQ(m.p_correct(), cfg.base_correct);
}

TEST(Detection, LearningImprovesAccuracy)
{
    DetectionConfig cfg;
    DetectionModel m(cfg);
    double before = m.p_correct();
    m.observe(RetrainMode::Self, 400, 6400);
    double after = m.p_correct();
    EXPECT_GT(after, before);
    EXPECT_LE(after, cfg.max_correct);
}

TEST(Detection, SwarmLearnsFasterThanSelf)
{
    DetectionConfig cfg;
    DetectionModel self_model(cfg);
    DetectionModel swarm_model(cfg);
    // Same per-device feedback; the swarm pools 16 devices' worth.
    self_model.observe(RetrainMode::Self, 100, 1600);
    swarm_model.observe(RetrainMode::Swarm, 100, 1600);
    EXPECT_GT(swarm_model.p_correct(), self_model.p_correct());
}

TEST(Detection, ErrorSplitSumsToResidual)
{
    DetectionConfig cfg;
    DetectionModel m(cfg);
    EXPECT_NEAR(m.p_false_negative() + m.p_false_positive(),
                1.0 - m.p_correct(), 1e-12);
    EXPECT_GT(m.p_false_negative(), m.p_false_positive());  // fn_share>.5
}

TEST(Detection, ModeNames)
{
    EXPECT_STREQ(to_string(RetrainMode::None), "None");
    EXPECT_STREQ(to_string(RetrainMode::Self), "Self");
    EXPECT_STREQ(to_string(RetrainMode::Swarm), "Swarm");
}

TEST(ItemField, PlacementAndVisibility)
{
    sim::Rng rng(5);
    geo::Rect field{0, 0, 100, 100};
    ItemField items(field, 15, rng);
    EXPECT_EQ(items.item_count(), 15u);
    for (const geo::Vec2& p : items.items())
        EXPECT_TRUE(field.contains(p));
    // A footprint covering the whole field sees everything.
    auto all = items.items_in_view({50, 50}, 200, 200);
    EXPECT_EQ(all.size(), 15u);
    // A tiny footprint far away sees nothing... unless unlucky.
    auto none = items.items_in_view({-500, -500}, 1, 1);
    EXPECT_TRUE(none.empty());
}

TEST(ItemField, FoundTracking)
{
    sim::Rng rng(5);
    ItemField items(geo::Rect{0, 0, 10, 10}, 3, rng);
    EXPECT_EQ(items.found_count(), 0u);
    EXPECT_FALSE(items.all_found());
    items.mark_found(0);
    items.mark_found(0);  // Idempotent.
    EXPECT_EQ(items.found_count(), 1u);
    items.mark_found(1);
    items.mark_found(2);
    EXPECT_TRUE(items.all_found());
}

TEST(CrowdField, PopulationAndCounting)
{
    sim::Rng rng(6);
    CrowdField crowd(geo::Rect{0, 0, 50, 50}, 25, 1.4, rng);
    EXPECT_EQ(crowd.population(), 25u);
    auto all = crowd.people_in_view(0, {25, 25}, 200, 200);
    EXPECT_EQ(all.size(), 25u);
    crowd.mark_counted(3);
    crowd.mark_counted(3);
    EXPECT_EQ(crowd.counted_count(), 1u);
}

TEST(CrowdField, PeopleMove)
{
    sim::Rng rng(6);
    CrowdField crowd(geo::Rect{0, 0, 50, 50}, 10, 1.4, rng);
    auto t0 = crowd.people_in_view(0, {10, 10}, 8, 8);
    auto t1 = crowd.people_in_view(120 * sim::kSecond, {10, 10}, 8, 8);
    // Not a strict guarantee per person, but the sets differ with
    // overwhelming probability over two minutes.
    EXPECT_TRUE(t0 != t1 || t0.empty());
}

TEST(TreasureHunt, CourseLayout)
{
    sim::Rng rng(7);
    geo::Rect area{0, 0, 30, 30};
    TreasureHunt hunt(area, 5, rng);
    EXPECT_EQ(hunt.panel_count(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_TRUE(area.contains(hunt.panel(i)));
    double len = hunt.course_length({0, 0});
    EXPECT_GT(len, 0.0);
    // Triangle inequality: course length >= direct distance to final.
    geo::Vec2 origin{0, 0};
    double direct = origin.distance_to(hunt.final_target());
    EXPECT_GE(len, direct - 1e-9);
}

TEST(LoadPattern, ConstantAndInterpolation)
{
    LoadPattern p = LoadPattern::constant(5.0);
    EXPECT_DOUBLE_EQ(p.rate_at(0), 5.0);
    EXPECT_DOUBLE_EQ(p.rate_at(100 * sim::kSecond), 5.0);

    LoadPattern ramp;
    ramp.add(0, 0.0);
    ramp.add(10 * sim::kSecond, 10.0);
    EXPECT_DOUBLE_EQ(ramp.rate_at(5 * sim::kSecond), 5.0);
    EXPECT_DOUBLE_EQ(ramp.rate_at(20 * sim::kSecond), 10.0);
    EXPECT_DOUBLE_EQ(ramp.peak(), 10.0);
}

TEST(LoadPattern, FluctuatingShape)
{
    sim::Time dur = 400 * sim::kSecond;
    LoadPattern p = LoadPattern::fluctuating(1.0, 50.0, dur);
    EXPECT_DOUBLE_EQ(p.rate_at(0), 1.0);
    EXPECT_DOUBLE_EQ(p.rate_at(dur / 2), 50.0);
    EXPECT_DOUBLE_EQ(p.rate_at(dur), 1.0);
    EXPECT_GT(p.average(dur), 1.0);
    EXPECT_LT(p.average(dur), 50.0);
}

}  // namespace
}  // namespace hivemind::apps

/**
 * @file
 * End-to-end determinism regression tests for the event kernel.
 *
 * The kernel overhaul (slab slots, inline callables, timer-wheel fast
 * lane) must preserve the ordering contract bit-for-bit: two runs of
 * the same scenario with the same seed produce identical metrics and
 * identical sample *traces* (insertion order included — Summary keeps
 * samples in the order events recorded them, so any kernel reordering
 * shows up as a checksum mismatch even when the sorted percentiles
 * would agree). The fig01-style scenario exercises every lane the
 * kernel has: short recurring timers (heartbeats, battery, link
 * ticks) ride the wheel, far-future guards sit on the heap, and retry
 * timeouts are cancelled when responses win the race.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "platform/metrics.hpp"
#include "platform/options.hpp"
#include "platform/scenario.hpp"
#include "platform/sharded_scenario.hpp"
#include "platform/sharded_swarm.hpp"

namespace {

using namespace hivemind;

/** FNV-1a over a stream of 64-bit words. */
class Checksum
{
  public:
    void add(std::uint64_t word)
    {
        hash_ ^= word;
        hash_ *= 0x100000001b3ull;
    }

    void add(double value)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof bits);
        add(bits);
    }

    void add(const sim::Summary& s)
    {
        add(static_cast<std::uint64_t>(s.count()));
        for (double v : s.samples())
            add(v);  // Insertion order: an event-order trace.
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/** Order-sensitive digest of everything a run measured. */
std::uint64_t
run_checksum(const platform::RunMetrics& m)
{
    Checksum c;
    c.add(m.task_latency_s);
    c.add(m.network_s);
    c.add(m.mgmt_s);
    c.add(m.data_s);
    c.add(m.exec_s);
    c.add(m.battery_pct);
    c.add(m.job_latency_s);
    c.add(m.bandwidth_MBps);
    c.add(m.completion_s);
    c.add(static_cast<std::uint64_t>(m.completed));
    c.add(m.goal_fraction);
    c.add(m.tasks_completed);
    c.add(m.tasks_shed);
    c.add(m.cold_starts);
    c.add(m.warm_starts);
    c.add(m.faults);
    c.add(m.respawns);
    c.add(m.cloud_rpc_cpu_s);
    return c.value();
}

/** Fig. 1 scenario A, shrunk to unit-test scale (same code paths). */
platform::ScenarioConfig
fig01_scenario()
{
    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::StationaryItems;
    sc.field_size_m = 48.0;
    sc.targets = 6;
    sc.time_cap = 300 * sim::kSecond;
    return sc;
}

platform::DeploymentConfig
fig01_deployment(std::uint64_t seed)
{
    platform::DeploymentConfig cfg;
    cfg.devices = 8;
    cfg.servers = 4;
    cfg.cores_per_server = 8;
    cfg.seed = seed;
    return cfg;
}

platform::RunMetrics
run_once(const platform::PlatformOptions& opt, sim::Time inject_at)
{
    platform::ScenarioConfig sc = fig01_scenario();
    // A mid-run device crash exercises cancellation at scale: pending
    // heartbeats, retries and timers of the dead device are torn down
    // while wheel and heap events from the rest interleave.
    sc.inject_failure_at = inject_at;
    sc.inject_failure_device = 2;
    return platform::run_scenario(sc, opt, fig01_deployment(42));
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<const char*, sim::Time>>
{
  protected:
    platform::PlatformOptions options() const
    {
        const char* name = std::get<0>(GetParam());
        if (std::strcmp(name, "hivemind") == 0)
            return platform::PlatformOptions::hivemind();
        return platform::PlatformOptions::centralized_faas();
    }
};

TEST_P(DeterminismTest, SameSeedRunsAreByteIdentical)
{
    const sim::Time inject_at = std::get<1>(GetParam());
    platform::RunMetrics a = run_once(options(), inject_at);
    platform::RunMetrics b = run_once(options(), inject_at);

    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.completion_s, b.completion_s);
    EXPECT_EQ(run_checksum(a), run_checksum(b))
        << "same-seed runs diverged: the kernel broke (time, seq) "
           "ordering somewhere";
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, DeterminismTest,
    ::testing::Values(
        std::tuple<const char*, sim::Time>{"hivemind", 0},
        std::tuple<const char*, sim::Time>{"hivemind",
                                           60 * sim::kSecond},
        std::tuple<const char*, sim::Time>{"centralized", 0}));

/**
 * The sharded runtime extends the contract across kernels: a
 * fig01-style swarm on the SwarmRuntime produces the same checksum at
 * shard counts {1, 2, 4} — including a mid-run device crash whose
 * owner shard changes with N, and a controller failover whose
 * re-registration wave crosses every shard boundary. The deeper
 * shard_test.cpp suite varies the chaos; this is the byte-identity
 * gate next to the single-kernel one above.
 */
TEST(ShardDeterminismTest, ShardCountDoesNotChangeTheRun)
{
    auto cfg = [](int shards) {
        platform::ShardedSwarmConfig c;
        c.shards = shards;
        c.devices = 8;
        c.seed = 42;
        c.duration = 30 * sim::kSecond;
        c.faults.device_crash(6 * sim::kSecond, 2, 8 * sim::kSecond);
        c.crash_controller_at = 15 * sim::kSecond;
        return c;
    };
    platform::ShardedSwarmResult one = platform::run_sharded_swarm(cfg(1));
    platform::ShardedSwarmResult two = platform::run_sharded_swarm(cfg(2));
    platform::ShardedSwarmResult four = platform::run_sharded_swarm(cfg(4));
    EXPECT_EQ(two.checksum, one.checksum);
    EXPECT_EQ(four.checksum, one.checksum);
    EXPECT_GE(one.controller.failures, 1u);
    EXPECT_GT(one.controller.dropped, 0u);
}

/**
 * EngineChoice::Auto at shards=1 is a pure alias for the sharded
 * engine since the rover port: same engine, same shard count, and a
 * byte-identical metric trace as an explicit EngineChoice::Sharded
 * config. The legacy harness is reachable only by explicit choice or
 * the HIVEMIND_LEGACY_ENGINE hatch (resilience_parity_test).
 */
TEST(ShardDeterminismTest, AutoIsByteIdenticalToExplicitSharded)
{
    platform::ScenarioConfig sc = fig01_scenario();
    platform::RunResult picked = platform::run(
        sc, platform::PlatformOptions::hivemind(), fig01_deployment(42));
    EXPECT_EQ(picked.engine_used, platform::EngineChoice::Sharded);
    EXPECT_EQ(picked.shards_used, 1);
    sc.engine = platform::EngineChoice::Sharded;
    platform::RunResult forced = platform::run(
        sc, platform::PlatformOptions::hivemind(), fig01_deployment(42));
    EXPECT_EQ(forced.checksum, picked.checksum);
    EXPECT_EQ(run_checksum(forced.metrics), run_checksum(picked.metrics));
}

/** Same seed, same shard count: the sharded engine replays exactly. */
TEST(ShardDeterminismTest, ShardedScenarioRepeatsByteIdentical)
{
    platform::ScenarioConfig sc = fig01_scenario();
    sc.shards = 2;
    platform::RunMetrics a = platform::run_scenario(
        sc, platform::PlatformOptions::hivemind(), fig01_deployment(42));
    platform::RunMetrics b = platform::run_scenario(
        sc, platform::PlatformOptions::hivemind(), fig01_deployment(42));
    EXPECT_EQ(run_checksum(a), run_checksum(b));
    EXPECT_GT(a.tasks_completed, 0u);
}

/**
 * Chaos on four shards replays exactly: the HA checkpoint RPCs, the
 * Gilbert-Elliott loss chains, and the degraded-mode drains all come
 * off seeded Rngs and shard-local event order, so two runs of the
 * same plan agree on the engine digest and on every recovery counter.
 */
TEST(ShardDeterminismTest, ShardedChaosReplaysByteIdentical)
{
    auto run = []() {
        platform::ScenarioConfig sc = fig01_scenario();
        sc.time_cap = 45 * sim::kSecond;
        sc.targets = 50;  // The cap ends the run.
        sc.faults.device_crash(3 * sim::kSecond, 2, 4 * sim::kSecond)
            .link_burst(5 * sim::kSecond, 6 * sim::kSecond, 0.9)
            .controller_crash(12 * sim::kSecond)
            .controller_partition(25 * sim::kSecond, 3 * sim::kSecond);
        return platform::run_scenario_sharded(
            sc, platform::PlatformOptions::hivemind(), fig01_deployment(42),
            4);
    };
    platform::ShardedScenarioResult a = run();
    platform::ShardedScenarioResult b = run();
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(run_checksum(a.metrics), run_checksum(b.metrics));
    const fault::RecoveryMetrics& ra = a.metrics.recovery;
    const fault::RecoveryMetrics& rb = b.metrics.recovery;
    EXPECT_EQ(ra.controller_failovers, rb.controller_failovers);
    EXPECT_EQ(ra.checkpoints_taken, rb.checkpoints_taken);
    EXPECT_EQ(ra.checkpoint_bytes, rb.checkpoint_bytes);
    EXPECT_EQ(ra.frames_buffered_degraded, rb.frames_buffered_degraded);
    EXPECT_EQ(ra.buffered_frames_drained, rb.buffered_frames_drained);
    EXPECT_EQ(ra.wireless_retransmissions, rb.wireless_retransmissions);
    ASSERT_EQ(ra.controller_mttr_s.count(), rb.controller_mttr_s.count());
    if (!ra.controller_mttr_s.empty()) {
        EXPECT_DOUBLE_EQ(ra.controller_mttr_s.mean(),
                         rb.controller_mttr_s.mean());
    }
    // The chaos actually ran.
    EXPECT_EQ(ra.controller_crashes, 1u);
    EXPECT_EQ(ra.link_burst_windows, 1u);
}

/** A small rover mission with a crash that interrupts a leg mid-drive. */
platform::ScenarioConfig
rover_scenario(platform::ScenarioKind kind)
{
    platform::ScenarioConfig sc;
    sc.kind = kind;
    sc.field_size_m = 48.0;
    sc.course_legs = 4;
    sc.maze_side = 5;
    sc.time_cap = 300 * sim::kSecond;
    sc.faults.device_crash(5 * sim::kSecond, 2, 6 * sim::kSecond);
    return sc;
}

/**
 * Rover missions ride the sharded engine by default now and replay
 * byte-identically: leg state machines, the crash/rejoin resume, and
 * the pipeline round trips all come off seeded Rngs and kernel event
 * order.
 */
TEST(RoverDeterminismTest, SameSeedRoverRunsAreByteIdentical)
{
    for (platform::ScenarioKind kind :
         {platform::ScenarioKind::TreasureHunt,
          platform::ScenarioKind::RoverMaze}) {
        auto once = [kind]() {
            return platform::run(rover_scenario(kind),
                                 platform::PlatformOptions::hivemind(),
                                 fig01_deployment(42));
        };
        platform::RunResult a = once();
        platform::RunResult b = once();
        EXPECT_EQ(a.engine_used, platform::EngineChoice::Sharded);
        EXPECT_EQ(a.checksum, b.checksum) << platform::to_string(kind);
        EXPECT_EQ(run_checksum(a.metrics), run_checksum(b.metrics))
            << platform::to_string(kind);
        EXPECT_GT(a.metrics.job_latency_s.count(), 0u);
    }
}

/**
 * The HIVEMIND_LEGACY_ENGINE hatch covers the rover kinds too: a
 * hatched Auto run is bit-identical to an explicit
 * EngineChoice::Legacy run of the same config and seed.
 */
TEST(RoverDeterminismTest, LegacyEscapeHatchCoversRoverKinds)
{
    platform::ScenarioConfig sc =
        rover_scenario(platform::ScenarioKind::TreasureHunt);
    platform::ScenarioConfig direct_cfg = sc;
    direct_cfg.engine = platform::EngineChoice::Legacy;
    platform::RunResult direct = platform::run(
        direct_cfg, platform::PlatformOptions::hivemind(),
        fig01_deployment(42));
    EXPECT_EQ(direct.engine_used, platform::EngineChoice::Legacy);

    ASSERT_EQ(setenv("HIVEMIND_LEGACY_ENGINE", "1", 1), 0);
    platform::RunResult hatched = platform::run(
        sc, platform::PlatformOptions::hivemind(), fig01_deployment(42));
    unsetenv("HIVEMIND_LEGACY_ENGINE");

    EXPECT_EQ(hatched.engine_used, platform::EngineChoice::Legacy);
    EXPECT_EQ(hatched.checksum, direct.checksum);
    EXPECT_EQ(run_checksum(hatched.metrics), run_checksum(direct.metrics));
}

}  // namespace

/**
 * @file
 * Tests for controller high availability (Secs. 4.6-4.7): checkpoint
 * durability through the datastore, load-balancer state
 * snapshot/restore, standby election + takeover timing, degraded-mode
 * edge autonomy (local waypoint continuation and bounded frame
 * buffering), and full scenario runs that lose their swarm controller
 * mid-flight yet still complete.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cloud/datastore.hpp"
#include "core/controller.hpp"
#include "core/ha.hpp"
#include "core/load_balancer.hpp"
#include "edge/device.hpp"
#include "fault/plan.hpp"
#include "platform/options.hpp"
#include "platform/scenario.hpp"
#include "platform/sharded_scenario.hpp"
#include "sim/simulator.hpp"

namespace hivemind::core {
namespace {

// ---------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------

ControllerCheckpoint
small_checkpoint(std::uint64_t seq, std::size_t devices)
{
    ControllerCheckpoint cp;
    cp.seq = seq;
    cp.device_failed.assign(devices, 0);
    cp.inflight.assign(devices, 0);
    return cp;
}

TEST(CheckpointStore, DurableOnlyAfterWriteCompletes)
{
    sim::Simulator s;
    CheckpointStore store(s, nullptr);  // Local store: one-event write.
    ControllerCheckpoint cp = small_checkpoint(1, 4);
    std::uint64_t bytes = cp.size_bytes();
    store.persist(cp);
    EXPECT_FALSE(store.latest().has_value());  // Not durable yet.
    s.run();
    ASSERT_TRUE(store.latest().has_value());
    EXPECT_EQ(store.latest()->seq, 1u);
    EXPECT_EQ(store.persisted(), 1u);
    EXPECT_EQ(store.bytes_written(), bytes);
}

TEST(CheckpointStore, DatastoreOutageDelaysDurability)
{
    sim::Simulator s;
    sim::Rng rng(11);
    cloud::DataStore ds(s, rng, cloud::DataStoreConfig{});
    ds.fail_until(2 * sim::kSecond);
    CheckpointStore store(s, &ds);
    store.persist(small_checkpoint(1, 4));
    s.schedule_at(sim::kSecond, [&]() {
        // Mid-outage: the write is still queued behind the window.
        EXPECT_FALSE(store.latest().has_value());
    });
    s.run();
    ASSERT_TRUE(store.latest().has_value());
    EXPECT_EQ(store.persisted(), 1u);
}

TEST(CheckpointStore, SlowWriteNeverClobbersNewerCheckpoint)
{
    sim::Simulator s;
    sim::Rng rng(12);
    cloud::DataStore ds(s, rng, cloud::DataStoreConfig{});
    CheckpointStore store(s, &ds);
    // Both writes race through the store's queue; whatever the
    // completion order, the newest seq must win (a write finishing
    // after a newer durable checkpoint is discarded, not counted).
    store.persist(small_checkpoint(1, 4));
    store.persist(small_checkpoint(2, 4));
    s.run();
    ASSERT_TRUE(store.latest().has_value());
    EXPECT_EQ(store.latest()->seq, 2u);
    EXPECT_GE(store.persisted(), 1u);
    EXPECT_LE(store.persisted(), 2u);
}

// ---------------------------------------------------------------------
// SwarmLoadBalancer snapshot / restore
// ---------------------------------------------------------------------

TEST(LoadBalancer, SnapshotRestoreRoundTrip)
{
    SwarmLoadBalancer balancer(geo::Rect{0, 0, 40, 40}, 4);
    SwarmLoadBalancer::Snapshot snap = balancer.snapshot();
    ASSERT_EQ(snap.assignments.size(), 4u);

    // Mutate: lose a device, its strip is split among neighbours.
    balancer.handle_failure(2);
    EXPECT_FALSE(balancer.region_of(2).has_value());
    EXPECT_EQ(balancer.active_devices().size(), 3u);

    // Restore rewinds to the snapshotted partition exactly.
    balancer.restore(snap);
    ASSERT_TRUE(balancer.region_of(2).has_value());
    EXPECT_EQ(balancer.active_devices().size(), 4u);
    EXPECT_NEAR(balancer.assigned_area(), 40.0 * 40.0, 1e-6);
    for (const auto& [d, r] : snap.assignments) {
        ASSERT_TRUE(balancer.region_of(d).has_value());
        EXPECT_DOUBLE_EQ(balancer.region_of(d)->x0, r.x0);
        EXPECT_DOUBLE_EQ(balancer.region_of(d)->x1, r.x1);
    }
}

// ---------------------------------------------------------------------
// HaCluster: election, takeover, partition, standby exhaustion
// ---------------------------------------------------------------------

struct HaFixture
{
    sim::Simulator s;
    HaCluster ha;
    int detected = 0;
    int restored = 0;
    std::vector<bool> availability;
    double last_age = -2.0;

    explicit HaFixture(const HaConfig& cfg = HaConfig{})
        : ha(s, nullptr, cfg)
    {
        ha.set_snapshot([this]() {
            ControllerCheckpoint cp;
            cp.device_failed.assign(8, 0);
            cp.inflight = {1, 1, 1, 0, 0, 0, 0, 0};
            return cp;
        });
        ha.set_on_takeover([](const ControllerCheckpoint& cp) {
            ReconcileReport rep;
            rep.devices_reregistered = cp.device_failed.size();
            for (std::uint32_t c : cp.inflight)
                rep.offloads_redriven += c;
            return rep;
        });
        ha.set_on_detected([this]() { ++detected; });
        ha.set_on_restored([this](double age) {
            ++restored;
            last_age = age;
        });
        ha.set_on_availability(
            [this](bool up) { availability.push_back(up); });
    }
};

TEST(HaCluster, CrashElectsWithinTimeoutAndRecovers)
{
    HaFixture f;
    f.ha.start();
    f.s.schedule_at(10 * sim::kSecond + 250 * sim::kMillisecond,
                    [&]() { f.ha.crash_active(); });
    f.s.run_until(30 * sim::kSecond);
    f.ha.stop();

    EXPECT_EQ(f.ha.failovers(), 1u);
    EXPECT_EQ(f.detected, 1);
    EXPECT_EQ(f.restored, 1);
    EXPECT_TRUE(f.ha.available());

    // Detection: election timeout (1.5 s) plus at most one watchdog
    // beat (0.5 s) of granularity — well inside the 3 s device
    // heartbeat timeout the paper quotes.
    ASSERT_EQ(f.ha.detect_s().count(), 1u);
    double mttd = f.ha.detect_s().mean();
    EXPECT_GT(mttd, 1.5 - 1e-9);
    EXPECT_LE(mttd, 2.0 + 1e-9);

    // Recovery = detection + checkpoint read + replay (size + drift)
    // + reconcile (8 devices) + redrive (3 offloads).
    ASSERT_EQ(f.ha.recover_s().count(), 1u);
    double mttr = f.ha.recover_s().mean();
    EXPECT_GT(mttr, mttd);
    EXPECT_LT(mttr, 3.0);
    EXPECT_NEAR(f.ha.unavailable_seconds(), mttr, 1e-9);

    // Crash at 10.25 s replayed the 10 s checkpoint: age 0.25 s.
    ASSERT_EQ(f.ha.checkpoint_age_s().count(), 1u);
    EXPECT_NEAR(f.ha.checkpoint_age_s().mean(), 0.25, 1e-6);
    EXPECT_NEAR(f.last_age, 0.25, 1e-6);
    EXPECT_EQ(f.ha.offloads_redriven(), 3u);

    // Down edge then up edge, in order.
    ASSERT_EQ(f.availability.size(), 2u);
    EXPECT_FALSE(f.availability[0]);
    EXPECT_TRUE(f.availability[1]);
}

TEST(HaCluster, RecoveryGrowsWithCheckpointAge)
{
    // Same crash instant, staler checkpoint: interval 2 s vs 16 s.
    auto run_with_interval = [](sim::Time interval) {
        HaConfig cfg;
        cfg.checkpoint_interval = interval;
        HaFixture f(cfg);
        f.ha.start();
        f.s.schedule_at(
            15 * sim::kSecond + 700 * sim::kMillisecond,
            [&f]() { f.ha.crash_active(); });
        f.s.run_until(40 * sim::kSecond);
        f.ha.stop();
        EXPECT_EQ(f.ha.failovers(), 1u);
        return std::pair<double, double>{f.ha.checkpoint_age_s().mean(),
                                         f.ha.recover_s().mean()};
    };
    auto [age_fresh, mttr_fresh] = run_with_interval(2 * sim::kSecond);
    auto [age_stale, mttr_stale] = run_with_interval(16 * sim::kSecond);
    EXPECT_NEAR(age_fresh, 1.7, 1e-6);   // Checkpoints at 0, 2, .., 14.
    EXPECT_NEAR(age_stale, 15.7, 1e-6);  // Only the bootstrap at 0.
    EXPECT_LT(mttr_fresh, mttr_stale);
    // The gap is the drift-replay term over the extra 14 s of age.
    EXPECT_NEAR(mttr_stale - mttr_fresh, 0.15 * 14.0, 0.1);
}

TEST(HaCluster, PartitionHealsWithoutConsumingAStandby)
{
    HaFixture f;
    f.ha.start();
    f.s.schedule_at(5 * sim::kSecond,
                    [&]() { f.ha.partition(4 * sim::kSecond); });
    f.s.schedule_at(6 * sim::kSecond,
                    [&]() { EXPECT_FALSE(f.ha.available()); });
    f.s.run_until(20 * sim::kSecond);
    f.ha.stop();

    EXPECT_EQ(f.ha.failovers(), 0u);  // Same primary all along.
    EXPECT_EQ(f.detected, 0);
    EXPECT_EQ(f.ha.detect_s().count(), 0u);
    EXPECT_TRUE(f.ha.available());
    EXPECT_NEAR(f.ha.unavailable_seconds(), 4.0, 1e-9);
    // Restored fires with a negative age: nothing was replayed.
    EXPECT_EQ(f.restored, 1);
    EXPECT_LT(f.last_age, 0.0);
}

TEST(HaCluster, StandbyExhaustionLeavesOutageOpen)
{
    HaConfig cfg;
    cfg.standbys = 1;
    HaFixture f(cfg);
    f.ha.start();
    f.s.schedule_at(5 * sim::kSecond, [&]() { f.ha.crash_active(); });
    // Second crash kills the promoted (last) standby: nobody is left.
    f.s.schedule_at(15 * sim::kSecond, [&]() { f.ha.crash_active(); });
    f.s.run_until(30 * sim::kSecond);

    EXPECT_EQ(f.ha.failovers(), 1u);
    EXPECT_EQ(f.detected, 2);  // Both elections fired...
    EXPECT_EQ(f.restored, 1);  // ...but only the first takeover ran.
    EXPECT_FALSE(f.ha.available());
    // The open window accrues until stop() closes it.
    EXPECT_GT(f.ha.unavailable_seconds(), 10.0);
    f.ha.stop();
    EXPECT_EQ(f.ha.recover_s().count(), 1u);
}

// ---------------------------------------------------------------------
// Degraded-mode edge autonomy
// ---------------------------------------------------------------------

TEST(DegradedDevice, FrameBufferIsBoundedAndDrains)
{
    sim::Simulator s;
    sim::Rng rng(3);
    edge::DeviceSpec spec = edge::DeviceSpec::drone();
    spec.frame_buffer_limit = 4;
    edge::Device dev(s, rng, 0, spec);

    dev.set_degraded(true);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(dev.buffer_frame(100));
    EXPECT_FALSE(dev.buffer_frame(100));  // Fifth exceeds the bound.
    EXPECT_EQ(dev.buffered_frames(), 4u);
    EXPECT_EQ(dev.buffered_bytes(), 400u);
    EXPECT_EQ(dev.frames_dropped_onboard(), 1u);

    edge::Device::DrainedFrames out = dev.drain_buffered();
    EXPECT_EQ(out.frames, 4u);
    EXPECT_EQ(out.bytes, 400u);
    EXPECT_EQ(dev.buffered_frames(), 0u);
    EXPECT_EQ(dev.buffered_bytes(), 0u);
    EXPECT_TRUE(dev.buffer_frame(100));  // Bound resets after drain.
}

TEST(DegradedDevice, ResumeRouteReversedKeepsFlying)
{
    sim::Simulator s;
    sim::Rng rng(4);
    edge::Device dev(s, rng, 0, edge::DeviceSpec::drone());  // 4 m/s.
    dev.set_route({{0.0, 0.0}, {40.0, 0.0}});  // 10 s of flight.

    bool checked = false;
    s.schedule_at(12 * sim::kSecond, [&]() {
        ASSERT_TRUE(dev.route_done(s.now()));
        geo::Vec2 parked = dev.position_at(s.now());
        EXPECT_NEAR(parked.x, 40.0, 1e-9);
        // No controller: retrace the last route locally instead of
        // hovering in place until one comes back.
        ASSERT_TRUE(dev.resume_route_reversed());
        EXPECT_GT(dev.route_complete_at(), s.now());
        geo::Vec2 later = dev.position_at(s.now() + 5 * sim::kSecond);
        EXPECT_NEAR(later.x, 20.0, 1e-6);  // Halfway back already.
        checked = true;
    });
    s.run_until(13 * sim::kSecond);
    EXPECT_TRUE(checked);
}

TEST(DegradedDevice, ResumeWithoutRouteHoldsPosition)
{
    sim::Simulator s;
    sim::Rng rng(5);
    edge::Device dev(s, rng, 0, edge::DeviceSpec::drone());
    EXPECT_FALSE(dev.resume_route_reversed());
}

// ---------------------------------------------------------------------
// HiveMindController facade wiring
// ---------------------------------------------------------------------

TEST(Controller, EnableHaFailoverRestoresAndTraces)
{
    sim::Simulator s;
    ControllerConfig cfg;
    HiveMindController ctrl(s, geo::Rect{0, 0, 40, 40}, 4, cfg);
    ctrl.enable_ha(nullptr);
    ASSERT_NE(ctrl.ha(), nullptr);
    ctrl.start();
    // Healthy fleet: every device heartbeats so the failure detector
    // never empties the partition underneath the failover.
    sim::recurring(s, sim::kSecond, [&](const sim::Recur& self) {
        if (s.now() > 19 * sim::kSecond)
            return;
        for (std::size_t d = 0; d < 4; ++d)
            ctrl.heartbeat(d);
        self.again_in(sim::kSecond);
    });
    s.schedule_at(7 * sim::kSecond, [&]() { ctrl.ha()->crash_active(); });
    s.run_until(20 * sim::kSecond);
    ctrl.stop();

    EXPECT_EQ(ctrl.ha()->failovers(), 1u);
    EXPECT_GT(ctrl.ha()->checkpoints_taken(), 1u);
    EXPECT_GT(ctrl.ha()->checkpoint_bytes(), 0u);
    // The partition survived the round trip: all regions intact.
    EXPECT_NEAR(ctrl.load_balancer().assigned_area(), 40.0 * 40.0, 1e-6);
    // The trace saw checkpoints, the election, and the completion.
    EXPECT_FALSE(ctrl.trace().filter(TraceEvent::Checkpoint).empty());
    EXPECT_EQ(ctrl.trace().filter(TraceEvent::FailoverElection).size(), 1u);
    EXPECT_EQ(ctrl.trace().filter(TraceEvent::FailoverComplete).size(), 1u);
}

// ---------------------------------------------------------------------
// Scenario-level: lose the controller mid-run (acceptance criteria)
// ---------------------------------------------------------------------

platform::DeploymentConfig
ha_deployment(std::uint64_t seed)
{
    platform::DeploymentConfig cfg;
    cfg.devices = 8;
    cfg.servers = 6;
    cfg.cores_per_server = 20;
    cfg.seed = seed;
    return cfg;
}

TEST(ScenarioHa, ControllerCrashMidScenarioStillCompletes)
{
    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::StationaryItems;
    sc.field_size_m = 96.0;
    sc.targets = 8;
    sc.time_cap = 120 * sim::kSecond;
    sc.faults.controller_crash(12 * sim::kSecond);

    platform::RunMetrics m = run_scenario(
        sc, platform::PlatformOptions::hivemind(), ha_deployment(77));

    // The standby took over and the mission still finished: no task
    // was permanently lost to the controller crash.
    EXPECT_TRUE(m.completed);
    EXPECT_EQ(m.recovery.controller_crashes, 1u);
    ASSERT_EQ(m.recovery.controller_mttd_s.count(), 1u);
    EXPECT_LE(m.recovery.controller_mttd_s.mean(), 3.0);  // <= hb timeout.
    ASSERT_EQ(m.recovery.controller_mttr_s.count(), 1u);
    EXPECT_GT(m.recovery.controller_mttr_s.mean(),
              m.recovery.controller_mttd_s.mean());
    EXPECT_LT(m.recovery.controller_mttr_s.mean(), 10.0);
    // Replayed checkpoint was at most one interval (5 s) stale.
    ASSERT_EQ(m.recovery.checkpoint_age_s.count(), 1u);
    EXPECT_LE(m.recovery.checkpoint_age_s.mean(), 5.5);
    // Checkpointing ran and was accounted.
    EXPECT_GT(m.recovery.checkpoints_taken, 1u);
    EXPECT_GT(m.recovery.checkpoint_bytes, 0u);
    // The outage window is visible and bounded by the MTTR.
    EXPECT_GT(m.recovery.controller_outage_s, 0.0);
    EXPECT_LT(m.recovery.controller_outage_s,
              m.recovery.controller_mttr_s.mean() + 1.0);
    // Degraded drones kept sensing: frames were buffered on-board and
    // drained once the standby came up.
    EXPECT_GT(m.recovery.frames_buffered_degraded, 0u);
    EXPECT_GT(m.recovery.buffered_frames_drained, 0u);
    // In-flight work at the crash was redriven by the new primary.
    EXPECT_GT(m.recovery.tasks_redriven_on_failover, 0u);
}

TEST(ScenarioHa, FrequentCheckpointsShrinkRecoveryTime)
{
    auto run_with_interval = [](sim::Time interval) {
        platform::ScenarioConfig sc;
        sc.kind = platform::ScenarioKind::StationaryItems;
        sc.field_size_m = 96.0;
        sc.targets = 50;  // Unreachable: the cap ends the run.
        sc.time_cap = 40 * sim::kSecond;
        sc.ha.checkpoint_interval = interval;
        sc.faults.controller_crash(
            15 * sim::kSecond + 700 * sim::kMillisecond);
        return run_scenario(sc, platform::PlatformOptions::hivemind(),
                            ha_deployment(78));
    };
    platform::RunMetrics fresh = run_with_interval(sim::kSecond);
    platform::RunMetrics stale = run_with_interval(16 * sim::kSecond);
    ASSERT_EQ(fresh.recovery.controller_mttr_s.count(), 1u);
    ASSERT_EQ(stale.recovery.controller_mttr_s.count(), 1u);
    // Staler checkpoint -> more drift to replay -> slower recovery.
    EXPECT_LT(fresh.recovery.checkpoint_age_s.mean(),
              stale.recovery.checkpoint_age_s.mean());
    EXPECT_LT(fresh.recovery.controller_mttr_s.mean(),
              stale.recovery.controller_mttr_s.mean());
    // More frequent checkpointing costs more checkpoint traffic.
    EXPECT_GT(fresh.recovery.checkpoints_taken,
              stale.recovery.checkpoints_taken);
}

TEST(ScenarioHa, PartitionDegradesAndHealsWithoutFailover)
{
    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::StationaryItems;
    sc.field_size_m = 96.0;
    sc.targets = 50;
    sc.time_cap = 30 * sim::kSecond;
    sc.faults.controller_partition(10 * sim::kSecond, 6 * sim::kSecond);

    platform::RunMetrics m = run_scenario(
        sc, platform::PlatformOptions::hivemind(), ha_deployment(79));

    EXPECT_EQ(m.recovery.controller_partitions, 1u);
    EXPECT_EQ(m.recovery.controller_crashes, 0u);
    // Same primary throughout: no election, no replayed checkpoint.
    EXPECT_EQ(m.recovery.controller_mttd_s.count(), 0u);
    EXPECT_EQ(m.recovery.controller_mttr_s.count(), 0u);
    // The outage is exactly the partition window.
    EXPECT_NEAR(m.recovery.controller_outage_s, 6.0, 0.5);
    // Edge autonomy: buffered while dark, drained after the heal.
    EXPECT_GT(m.recovery.frames_buffered_degraded, 0u);
    EXPECT_GT(m.recovery.buffered_frames_drained, 0u);
}

// ---------------------------------------------------------------------
// The same HA stack on the sharded engine
// ---------------------------------------------------------------------

TEST(ScenarioHa, ShardedPartitionDegradesAndHealsWithoutFailover)
{
    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::StationaryItems;
    sc.field_size_m = 96.0;
    sc.targets = 50;
    sc.time_cap = 30 * sim::kSecond;
    sc.faults.controller_partition(10 * sim::kSecond, 6 * sim::kSecond);

    platform::ShardedScenarioResult res = platform::run_scenario_sharded(
        sc, platform::PlatformOptions::hivemind(), ha_deployment(79), 2);
    const fault::RecoveryMetrics& r = res.metrics.recovery;

    EXPECT_EQ(r.controller_partitions, 1u);
    EXPECT_EQ(r.controller_crashes, 0u);
    EXPECT_EQ(r.controller_failovers, 0u);  // Same primary all along.
    EXPECT_EQ(r.controller_mttd_s.count(), 0u);
    EXPECT_EQ(r.controller_mttr_s.count(), 0u);
    EXPECT_NEAR(r.controller_outage_s, 6.0, 0.5);
    // Degrade/resume broadcasts reached the devices over the control
    // links: buffering while dark, a drain after the heal.
    EXPECT_GT(r.frames_buffered_degraded, 0u);
    EXPECT_GT(r.buffered_frames_drained, 0u);
}

TEST(ScenarioHa, ShardedFrequentCheckpointsShrinkRecoveryTime)
{
    auto run_with_interval = [](sim::Time interval) {
        platform::ScenarioConfig sc;
        sc.kind = platform::ScenarioKind::StationaryItems;
        sc.field_size_m = 96.0;
        sc.targets = 50;  // Unreachable: the cap ends the run.
        sc.time_cap = 40 * sim::kSecond;
        sc.ha.checkpoint_interval = interval;
        sc.faults.controller_crash(
            15 * sim::kSecond + 700 * sim::kMillisecond);
        return platform::run_scenario_sharded(
                   sc, platform::PlatformOptions::hivemind(),
                   ha_deployment(78), 2)
            .metrics;
    };
    platform::RunMetrics fresh = run_with_interval(sim::kSecond);
    platform::RunMetrics stale = run_with_interval(16 * sim::kSecond);
    ASSERT_EQ(fresh.recovery.controller_mttr_s.count(), 1u);
    ASSERT_EQ(stale.recovery.controller_mttr_s.count(), 1u);
    // Staler checkpoint -> more drift to replay -> slower recovery,
    // exactly as on the legacy engine: the checkpoint RPCs ride the
    // dedicated ShardLink plane but land on the same DataStore.
    EXPECT_LT(fresh.recovery.checkpoint_age_s.mean(),
              stale.recovery.checkpoint_age_s.mean());
    EXPECT_LT(fresh.recovery.controller_mttr_s.mean(),
              stale.recovery.controller_mttr_s.mean());
    EXPECT_GT(fresh.recovery.checkpoints_taken,
              stale.recovery.checkpoints_taken);
}

}  // namespace
}  // namespace hivemind::core

/**
 * @file
 * Tests for program synthesis: placement enumeration, API synthesis,
 * the cost model, and the explorer (src/synth).
 */

#include <gtest/gtest.h>

#include "dsl/scenarios.hpp"
#include "synth/api_synth.hpp"
#include "synth/cost_model.hpp"
#include "synth/explorer.hpp"
#include "synth/placement.hpp"

namespace hivemind::synth {
namespace {

dsl::TaskGraph
two_tier()
{
    dsl::TaskGraph g("ab");
    dsl::TaskDef a;
    a.name = "A";
    a.data_out = "x";
    a.work_core_ms = 100.0;
    a.output_bytes = 1u << 20;
    dsl::TaskDef b;
    b.name = "B";
    b.data_in = "x";
    b.work_core_ms = 200.0;
    b.parallelism = 8;
    g.add_task(a).add_task(b).add_edge("A", "B");
    return g;
}

TEST(Placement, TwoTierEnumeratesFourModels)
{
    // Sec. 4.2: "For a simple, 2-tier task graph (A -> B), HiveMind
    // would compose the APIs for a total of 4 end-to-end scenarios."
    auto placements = enumerate_placements(two_tier());
    EXPECT_EQ(placements.size(), 4u);
}

TEST(Placement, PinsReduceTheSpace)
{
    dsl::TaskGraph g = two_tier();
    g.place("A", dsl::PlacementHint::Edge);
    auto placements = enumerate_placements(g);
    ASSERT_EQ(placements.size(), 2u);
    for (const auto& p : placements)
        EXPECT_EQ(p.at("A"), Location::Edge);
}

TEST(Placement, SensorAndActuatorPinnedToEdge)
{
    dsl::TaskGraph g("s");
    dsl::TaskDef collect;
    collect.name = "collect";
    collect.sensor_source = true;
    dsl::TaskDef act;
    act.name = "steer";
    act.actuator_sink = true;
    dsl::TaskDef mid;
    mid.name = "infer";
    g.add_task(collect).add_task(mid).add_task(act);
    g.add_edge("collect", "infer").add_edge("infer", "steer");
    auto placements = enumerate_placements(g);
    ASSERT_EQ(placements.size(), 2u);  // Only "infer" is free.
    for (const auto& p : placements) {
        EXPECT_EQ(p.at("collect"), Location::Edge);
        EXPECT_EQ(p.at("steer"), Location::Edge);
    }
}

TEST(Placement, ScenarioBSpaceRespectsListing3Pins)
{
    dsl::TaskGraph g = dsl::scenario_b_graph();
    // collectImage is a sensor source; obstacleAvoidance is pinned to
    // the edge and an actuator. Free: createRoute, faceRecognition,
    // deduplication -> 8 placements.
    auto placements = enumerate_placements(g);
    EXPECT_EQ(placements.size(), 8u);
}

TEST(Placement, CrossingCount)
{
    dsl::TaskGraph g = two_tier();
    PlacementAssignment same{{"A", Location::Cloud}, {"B", Location::Cloud}};
    PlacementAssignment split{{"A", Location::Edge}, {"B", Location::Cloud}};
    EXPECT_EQ(count_crossings(g, same), 0u);
    EXPECT_EQ(count_crossings(g, split), 1u);
}

TEST(Placement, DescribeIsStable)
{
    PlacementAssignment p{{"A", Location::Edge}, {"B", Location::Cloud}};
    EXPECT_EQ(describe(p), "A@Edge,B@Cloud");
}

TEST(ApiSynth, KindsFollowPlacement)
{
    dsl::TaskGraph g = two_tier();
    PlacementAssignment split{{"A", Location::Edge}, {"B", Location::Cloud}};
    auto stubs = synthesize_apis(g, split, false);
    ASSERT_EQ(stubs.size(), 1u);
    EXPECT_EQ(stubs[0].kind, ApiKind::ThriftRpc);

    PlacementAssignment cloud{{"A", Location::Cloud}, {"B", Location::Cloud}};
    stubs = synthesize_apis(g, cloud, false);
    ASSERT_EQ(stubs.size(), 1u);
    EXPECT_EQ(stubs[0].kind, ApiKind::OpenWhiskAction);

    stubs = synthesize_apis(g, cloud, true);
    EXPECT_EQ(stubs[0].kind, ApiKind::RemoteMemory);

    PlacementAssignment edge{{"A", Location::Edge}, {"B", Location::Edge}};
    stubs = synthesize_apis(g, edge, false);
    EXPECT_EQ(stubs[0].kind, ApiKind::LocalCall);
}

TEST(ApiSynth, RenderedHeaderMentionsEveryApi)
{
    dsl::TaskGraph g = dsl::scenario_b_graph();
    PlacementAssignment p;
    for (const std::string& n : g.task_names())
        p[n] = Location::Cloud;
    auto stubs = synthesize_apis(g, p, false);
    EXPECT_EQ(stubs.size(), 4u);  // Four edges in the Listing 3 graph.
    std::string header = render_api_header(g, stubs);
    for (const ApiStub& s : stubs)
        EXPECT_NE(header.find(s.name), std::string::npos);
    EXPECT_NE(header.find("#pragma once"), std::string::npos);
}

TEST(CostModel, AllCloudPaysNetworkOnce)
{
    dsl::TaskGraph g = two_tier();
    CostModelParams params;
    PlacementAssignment cloud{{"A", Location::Cloud}, {"B", Location::Cloud}};
    PlacementAssignment edge{{"A", Location::Edge}, {"B", Location::Edge}};
    auto cloud_est = estimate_placement(g, cloud, params);
    auto edge_est = estimate_placement(g, edge, params);
    EXPECT_EQ(cloud_est.crossing_bytes, 0u);
    EXPECT_EQ(edge_est.crossing_bytes, 0u);
    EXPECT_GT(cloud_est.cloud_cost, 0.0);
    EXPECT_DOUBLE_EQ(edge_est.cloud_cost, 0.0);
    EXPECT_GT(edge_est.edge_energy_j, 0.0);
    // Slow edge CPU makes all-edge slower for this compute-heavy app.
    EXPECT_GT(edge_est.latency_s, cloud_est.latency_s);
}

TEST(CostModel, CrossingAddsBytesAndEnergy)
{
    dsl::TaskGraph g = two_tier();
    CostModelParams params;
    PlacementAssignment split{{"A", Location::Edge}, {"B", Location::Cloud}};
    auto est = estimate_placement(g, split, params);
    EXPECT_EQ(est.crossing_bytes, 1u << 20);
    EXPECT_GT(est.edge_energy_j, 0.0);
}

TEST(CostModel, ParallelismShortensCloudLatency)
{
    dsl::TaskGraph g = two_tier();
    CostModelParams params;
    PlacementAssignment cloud{{"A", Location::Cloud}, {"B", Location::Cloud}};
    auto with_par = estimate_placement(g, cloud, params);
    g.task("B").parallelism = 1;
    auto without = estimate_placement(g, cloud, params);
    EXPECT_LT(with_par.latency_s, without.latency_s);
}

TEST(Explorer, BestRespectsObjective)
{
    dsl::TaskGraph g = two_tier();
    CostModelParams params;
    PlacementExplorer explorer(g, params);
    Objective latency_obj;
    auto best_latency = explorer.best(latency_obj);
    // Latency-optimal: everything in the cloud for heavy compute.
    EXPECT_EQ(best_latency.placement.at("B"), Location::Cloud);

    Objective energy_obj;
    energy_obj.w_latency = 0.0;
    energy_obj.w_energy = 1.0;
    auto best_energy = explorer.best(energy_obj);
    // Energy-optimal placement can differ; it must not consume more
    // energy than the latency-optimal one.
    EXPECT_LE(best_energy.estimate.edge_energy_j,
              best_latency.estimate.edge_energy_j + 1e-12);
}

TEST(Explorer, ExploreAllCoversSpace)
{
    dsl::TaskGraph g = dsl::scenario_b_graph();
    PlacementExplorer explorer(g, CostModelParams{});
    auto all = explorer.explore_all();
    EXPECT_EQ(all.size(), 8u);
    for (const auto& r : all)
        EXPECT_GT(r.estimate.latency_s, 0.0);
}

TEST(Explorer, ParetoFrontierIsNonDominated)
{
    dsl::TaskGraph g = dsl::scenario_b_graph();
    PlacementExplorer explorer(g, CostModelParams{});
    auto frontier = explorer.pareto();
    ASSERT_FALSE(frontier.empty());
    for (const auto& a : frontier) {
        for (const auto& b : frontier) {
            if (&a == &b)
                continue;
            bool dominates =
                b.estimate.latency_s <= a.estimate.latency_s &&
                b.estimate.edge_energy_j <= a.estimate.edge_energy_j &&
                (b.estimate.latency_s < a.estimate.latency_s ||
                 b.estimate.edge_energy_j < a.estimate.edge_energy_j);
            EXPECT_FALSE(dominates);
        }
    }
    // Frontier is sorted by latency.
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GE(frontier[i].estimate.latency_s,
                  frontier[i - 1].estimate.latency_s);
    }
}

TEST(Explorer, ProfilerOverrides)
{
    dsl::TaskGraph g = two_tier();
    PlacementExplorer explorer(g, CostModelParams{});
    explorer.set_profiler([](const dsl::TaskGraph&,
                             const PlacementAssignment& p) {
        PlacementEstimate e;
        // Make all-edge artificially optimal.
        e.latency_s =
            p.at("B") == Location::Edge ? 0.001 : 100.0;
        return e;
    });
    auto best = explorer.best(Objective{});
    EXPECT_EQ(best.placement.at("B"), Location::Edge);
}

TEST(Explorer, InfeasibleFallback)
{
    dsl::TaskGraph g = two_tier();
    dsl::GraphConstraints c;
    c.latency_s = 1e-9;  // Impossible.
    g.constrain(c);
    PlacementExplorer explorer(g, CostModelParams{});
    auto best = explorer.best(Objective{});
    EXPECT_FALSE(best.feasible);
    EXPECT_FALSE(best.placement.empty());
}

/** Property: enumeration size is 2^(free tasks). */
class EnumerationSize : public ::testing::TestWithParam<int>
{
};

TEST_P(EnumerationSize, PowerOfTwo)
{
    dsl::TaskGraph g("chain");
    int n = GetParam();
    std::string prev;
    for (int i = 0; i < n; ++i) {
        dsl::TaskDef t;
        t.name = "t" + std::to_string(i);
        g.add_task(t);
        if (!prev.empty())
            g.add_edge(prev, t.name);
        prev = t.name;
    }
    auto placements = enumerate_placements(g);
    EXPECT_EQ(placements.size(), 1ull << n);
    // All placements distinct.
    for (std::size_t i = 0; i < placements.size(); ++i) {
        for (std::size_t j = i + 1; j < placements.size(); ++j)
            EXPECT_NE(placements[i], placements[j]);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnumerationSize,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace hivemind::synth

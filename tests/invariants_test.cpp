/**
 * @file
 * Cross-cutting invariant sweeps: properties that must hold for every
 * platform, scenario, and application, checked with parameterized
 * gtest over the full configuration matrix.
 */

#include <gtest/gtest.h>

#include "analytic/model.hpp"
#include "platform/scenario.hpp"
#include "platform/single_phase.hpp"

namespace hivemind {
namespace {

platform::PlatformOptions
platform_by_index(int i)
{
    switch (i) {
      case 0:
        return platform::PlatformOptions::centralized_iaas();
      case 1:
        return platform::PlatformOptions::centralized_faas();
      case 2:
        return platform::PlatformOptions::distributed_edge();
      default:
        return platform::PlatformOptions::hivemind();
    }
}

// ---------------------------------------------------------------------
// Single-phase invariants across (platform x app)
// ---------------------------------------------------------------------

class JobInvariants
    : public ::testing::TestWithParam<std::tuple<int, const char*>>
{
};

TEST_P(JobInvariants, MetricsAreWellFormed)
{
    auto [platform_idx, app_id] = GetParam();
    platform::PlatformOptions opt = platform_by_index(platform_idx);
    platform::DeploymentConfig dep;
    dep.devices = 6;
    dep.servers = 4;
    dep.cores_per_server = 16;
    dep.seed = 77;
    platform::JobConfig job;
    job.duration = 15 * sim::kSecond;
    job.drain = 30 * sim::kSecond;
    platform::RunMetrics m =
        platform::run_single_phase(apps::app_by_id(app_id), opt, dep, job);

    // Tasks complete and latencies are positive and ordered.
    ASSERT_GT(m.tasks_completed, 0u) << opt.label;
    EXPECT_GT(m.task_latency_s.min(), 0.0);
    EXPECT_LE(m.task_latency_s.median(), m.task_latency_s.p99());
    EXPECT_LE(m.task_latency_s.p99(), m.task_latency_s.max() + 1e-12);

    // Stage medians are non-negative and bounded by the total.
    for (const sim::Summary* s :
         {&m.network_s, &m.mgmt_s, &m.data_s, &m.exec_s}) {
        EXPECT_GE(s->min(), 0.0);
        EXPECT_LE(s->median(), m.task_latency_s.max() + 1e-9);
    }
    // Stage means compose the mean total (same task population).
    double parts = m.network_s.mean() + m.mgmt_s.mean() + m.data_s.mean() +
        m.exec_s.mean();
    EXPECT_NEAR(parts, m.task_latency_s.mean(),
                0.05 * m.task_latency_s.mean() + 1e-3);

    // Battery is a percentage per device.
    EXPECT_EQ(m.battery_pct.count(), 6u);
    EXPECT_GE(m.battery_pct.min(), 0.0);
    EXPECT_LE(m.battery_pct.max(), 100.0);

    // Bandwidth is non-negative and zero-ish only for distributed.
    EXPECT_GE(m.bandwidth_MBps.min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, JobInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values("S1", "S4", "S7", "S10")),
    [](const ::testing::TestParamInfo<std::tuple<int, const char*>>& info) {
        return std::string(platform::to_string(
                   platform_by_index(std::get<0>(info.param)).kind)) +
            "_" + std::get<1>(info.param);
    });

// ---------------------------------------------------------------------
// Scenario invariants across (platform x scenario)
// ---------------------------------------------------------------------

class ScenarioInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ScenarioInvariants, RunsToAWellFormedEnd)
{
    auto [platform_idx, scenario_idx] = GetParam();
    platform::PlatformOptions opt = platform_by_index(platform_idx);
    platform::ScenarioConfig sc;
    sc.kind = scenario_idx == 0 ? platform::ScenarioKind::StationaryItems
                                : platform::ScenarioKind::MovingPeople;
    sc.field_size_m = 48.0;
    sc.targets = 6;
    sc.time_cap = 400 * sim::kSecond;
    platform::DeploymentConfig dep;
    dep.devices = 6;
    dep.servers = 4;
    dep.cores_per_server = 16;
    dep.seed = 99;
    platform::RunMetrics m = platform::run_scenario(sc, opt, dep);

    EXPECT_GE(m.goal_fraction, 0.0);
    EXPECT_LE(m.goal_fraction, 1.0);
    EXPECT_GT(m.completion_s, 0.0);
    EXPECT_LE(m.completion_s, 400.0 + 11.0);
    if (m.completed) {
        EXPECT_DOUBLE_EQ(m.goal_fraction, 1.0);
    }
    EXPECT_GT(m.tasks_completed, 0u);
    EXPECT_LE(m.battery_pct.max(), 100.0);
    EXPECT_GE(m.detect_correct_pct, 0.0);
    EXPECT_LE(m.detect_correct_pct +
                  m.detect_fn_pct + m.detect_fp_pct,
              100.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioInvariants,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1)));

// ---------------------------------------------------------------------
// Determinism across the whole matrix
// ---------------------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DeterminismSweep, IdenticalSeedsIdenticalRuns)
{
    platform::PlatformOptions opt = platform_by_index(GetParam());
    platform::DeploymentConfig dep;
    dep.devices = 5;
    dep.servers = 4;
    dep.cores_per_server = 16;
    dep.seed = 1234;
    platform::JobConfig job;
    job.duration = 10 * sim::kSecond;
    platform::RunMetrics a = platform::run_single_phase(
        apps::app_by_id("S5"), opt, dep, job);
    platform::RunMetrics b = platform::run_single_phase(
        apps::app_by_id("S5"), opt, dep, job);
    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
    EXPECT_DOUBLE_EQ(a.task_latency_s.mean(), b.task_latency_s.mean());
    EXPECT_DOUBLE_EQ(a.task_latency_s.p99(), b.task_latency_s.p99());
    EXPECT_DOUBLE_EQ(a.battery_pct.mean(), b.battery_pct.mean());
    EXPECT_DOUBLE_EQ(a.bandwidth_MBps.mean(), b.bandwidth_MBps.mean());
}

INSTANTIATE_TEST_SUITE_P(Platforms, DeterminismSweep,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------
// Analytic model sanity across the app matrix
// ---------------------------------------------------------------------

class AnalyticSweep
    : public ::testing::TestWithParam<std::tuple<int, const char*>>
{
};

TEST_P(AnalyticSweep, OutputsAreFiniteAndOrdered)
{
    auto [platform_idx, app_id] = GetParam();
    analytic::AnalyticInput in;
    in.apply_app(apps::app_by_id(app_id));
    in.apply_platform(platform_by_index(platform_idx));
    analytic::AnalyticOutput out = analytic::evaluate(in);
    EXPECT_GT(out.mean_latency_s, 0.0);
    EXPECT_GE(out.tail_latency_s, out.mean_latency_s);
    EXPECT_LT(out.tail_latency_s, 1e4);
    EXPECT_GE(out.bandwidth_MBps, 0.0);
    EXPECT_GT(out.battery_pct_per_min, 0.0);
    EXPECT_GE(out.max_utilization, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AnalyticSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values("S1", "S3", "S6", "S9")));

}  // namespace
}  // namespace hivemind

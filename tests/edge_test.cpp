/**
 * @file
 * Tests for edge devices: battery, on-board executor, kinematics
 * (src/edge).
 */

#include <gtest/gtest.h>

#include "edge/battery.hpp"
#include "edge/device.hpp"
#include "sim/simulator.hpp"

namespace hivemind::edge {
namespace {

TEST(Battery, DrainAndDepletion)
{
    Battery b(100.0);
    EXPECT_DOUBLE_EQ(b.remaining_fraction(), 1.0);
    b.drain(25.0);
    EXPECT_DOUBLE_EQ(b.remaining_fraction(), 0.75);
    EXPECT_DOUBLE_EQ(b.consumed_percent(), 25.0);
    EXPECT_FALSE(b.depleted());
    b.drain(80.0);
    EXPECT_TRUE(b.depleted());
    EXPECT_DOUBLE_EQ(b.remaining_fraction(), 0.0);
    EXPECT_DOUBLE_EQ(b.consumed_percent(), 100.0);
}

TEST(Battery, NegativeDrainIgnored)
{
    Battery b(100.0);
    b.drain(-5.0);
    EXPECT_DOUBLE_EQ(b.used_j(), 0.0);
}

TEST(DeviceSpec, Presets)
{
    DeviceSpec drone = DeviceSpec::drone();
    DeviceSpec rover = DeviceSpec::rover();
    EXPECT_EQ(drone.kind, "drone");
    EXPECT_EQ(rover.kind, "rover");
    EXPECT_GT(drone.speed_mps, rover.speed_mps);
    EXPECT_GT(rover.cpu_speed_factor, drone.cpu_speed_factor);
    EXPECT_GT(drone.power.motion_w, rover.power.motion_w);  // Hovering.
    // Sec. 2.1 constants.
    EXPECT_DOUBLE_EQ(drone.speed_mps, 4.0);
    EXPECT_DOUBLE_EQ(drone.camera_fps, 8.0);
    EXPECT_EQ(drone.frame_bytes, 2u * 1024u * 1024u);
    EXPECT_DOUBLE_EQ(drone.footprint_w, 6.7);
    EXPECT_DOUBLE_EQ(drone.footprint_h, 8.75);
}

TEST(OnboardExecutor, SlowerThanCloudCore)
{
    sim::Simulator s;
    sim::Rng rng(1);
    OnboardExecutor ex(s, rng, 0.12, 16);
    double latency = 0.0;
    ex.submit(120.0, [&](double l) { latency = l; });
    s.run();
    // 120 ms of reference work at 0.12x speed is ~1 s.
    EXPECT_GT(latency, 0.8);
    EXPECT_LT(latency, 1.3);
    EXPECT_EQ(ex.completed(), 1u);
    EXPECT_GT(ex.busy_seconds(), 0.8);
}

TEST(OnboardExecutor, FifoSingleCore)
{
    sim::Simulator s;
    sim::Rng rng(1);
    OnboardExecutor ex(s, rng, 1.0, 16);
    std::vector<int> order;
    ex.submit(10.0, [&](double) { order.push_back(1); });
    ex.submit(10.0, [&](double) { order.push_back(2); });
    ex.submit(10.0, [&](double) { order.push_back(3); });
    EXPECT_EQ(ex.depth(), 3u);
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(OnboardExecutor, QueueOverflowSheds)
{
    sim::Simulator s;
    sim::Rng rng(1);
    OnboardExecutor ex(s, rng, 1.0, 4);
    int completions = 0;
    for (int i = 0; i < 20; ++i)
        ex.submit(10.0, [&](double) { ++completions; });
    s.run();
    EXPECT_GT(ex.shed(), 0u);
    EXPECT_EQ(static_cast<std::uint64_t>(completions) + ex.shed(), 20u);
}

TEST(Device, RouteFollowing)
{
    sim::Simulator s;
    sim::Rng rng(2);
    Device dev(s, rng, 0, DeviceSpec::drone());
    dev.set_route({{0, 0}, {0, 40}, {10, 40}});
    // 50 m at 4 m/s -> 12.5 s.
    EXPECT_NEAR(dev.route_duration_s(), 12.5, 1e-9);
    geo::Vec2 p0 = dev.position_at(0);
    EXPECT_DOUBLE_EQ(p0.x, 0.0);
    geo::Vec2 mid = dev.position_at(5 * sim::kSecond);
    EXPECT_DOUBLE_EQ(mid.x, 0.0);
    EXPECT_NEAR(mid.y, 20.0, 1e-9);
    geo::Vec2 turn = dev.position_at(11 * sim::kSecond);
    EXPECT_NEAR(turn.y, 40.0, 1e-9);
    EXPECT_NEAR(turn.x, 4.0, 1e-9);
    geo::Vec2 end = dev.position_at(60 * sim::kSecond);
    EXPECT_NEAR(end.x, 10.0, 1e-9);
    EXPECT_TRUE(dev.route_done(13 * sim::kSecond));
    EXPECT_FALSE(dev.route_done(12 * sim::kSecond));
}

TEST(Device, EmptyAndSinglePointRoutes)
{
    sim::Simulator s;
    sim::Rng rng(2);
    Device dev(s, rng, 0, DeviceSpec::drone());
    geo::Vec2 p = dev.position_at(5 * sim::kSecond);
    EXPECT_DOUBLE_EQ(p.x, 0.0);
    dev.set_route({{3, 4}});
    EXPECT_DOUBLE_EQ(dev.position_at(sim::kSecond).x, 3.0);
    EXPECT_DOUBLE_EQ(dev.route_duration_s(), 0.0);
}

TEST(Device, EnergyAccounting)
{
    sim::Simulator s;
    sim::Rng rng(2);
    DeviceSpec spec = DeviceSpec::drone();
    Device dev(s, rng, 0, spec);
    dev.account_motion(10.0);
    dev.account_compute(4.0);
    dev.account_radio(1'000'000);
    dev.account_idle(10.0);
    double expected = spec.power.motion_w * 10.0 +
        spec.power.compute_w * 4.0 +
        spec.power.radio_j_per_byte * 1e6 + spec.power.idle_w * 10.0;
    EXPECT_NEAR(dev.battery().used_j(), expected, 1e-9);
    EXPECT_TRUE(dev.alive());
}

TEST(Device, BatteryDepletionKills)
{
    sim::Simulator s;
    sim::Rng rng(2);
    Device dev(s, rng, 0, DeviceSpec::drone());
    dev.account_motion(1e6);  // Way past capacity.
    EXPECT_TRUE(dev.battery().depleted());
    EXPECT_FALSE(dev.alive());
}

TEST(Device, FailureFlag)
{
    sim::Simulator s;
    sim::Rng rng(2);
    Device dev(s, rng, 0, DeviceSpec::drone());
    EXPECT_TRUE(dev.alive());
    dev.set_failed(true);
    EXPECT_FALSE(dev.alive());
    dev.set_failed(false);
    EXPECT_TRUE(dev.alive());
}

/** Property: flight duration scales linearly with route length. */
class RouteDurationProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RouteDurationProperty, LinearInLength)
{
    sim::Simulator s;
    sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
    Device dev(s, rng, 0, DeviceSpec::drone());
    double len = 10.0 * GetParam();
    dev.set_route({{0, 0}, {len, 0}});
    EXPECT_NEAR(dev.route_duration_s(), len / 4.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, RouteDurationProperty,
                         ::testing::Values(1, 2, 5, 10, 50));

}  // namespace
}  // namespace hivemind::edge

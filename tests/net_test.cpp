/**
 * @file
 * Tests for the flow-level network: links, RPC processors, topology
 * (src/net).
 */

#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/rpc.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace hivemind::net {
namespace {

TEST(Link, SerializationTime)
{
    sim::Simulator s;
    Link link(s, "l", 8e6 /* 1 MB/s */, 0);
    sim::Time done = link.transfer(1'000'000, nullptr);
    EXPECT_EQ(done, sim::kSecond);
    EXPECT_EQ(link.bytes_total(), 1'000'000u);
}

TEST(Link, PropagationAdds)
{
    sim::Simulator s;
    Link link(s, "l", 8e6, sim::from_millis(5.0));
    sim::Time done = link.transfer(1'000'000, nullptr);
    EXPECT_EQ(done, sim::kSecond + sim::from_millis(5.0));
}

TEST(Link, FifoQueueing)
{
    sim::Simulator s;
    Link link(s, "l", 8e6, 0);
    sim::Time first = link.transfer(1'000'000, nullptr);
    sim::Time second = link.transfer(1'000'000, nullptr);
    EXPECT_EQ(first, sim::kSecond);
    EXPECT_EQ(second, 2 * sim::kSecond);  // Waits for the first.
    EXPECT_GT(link.backlog(), 0);
}

TEST(Link, CallbackFiresAtArrival)
{
    sim::Simulator s;
    Link link(s, "l", 8e6, sim::from_millis(1.0));
    sim::Time seen = 0;
    link.transfer(500'000, [&] { seen = s.now(); });
    s.run();
    EXPECT_EQ(seen, sim::from_millis(501.0));
}

TEST(Link, CongestionGrowsLatency)
{
    sim::Simulator s;
    Link link(s, "l", 8e6, 0);
    // Offered load 2x capacity: completion times diverge linearly.
    sim::Time last = 0;
    for (int i = 0; i < 10; ++i)
        last = link.transfer(2'000'000, nullptr);
    EXPECT_EQ(last, 20 * sim::kSecond);
    EXPECT_NEAR(link.utilization(), 0.0, 1e-9);  // now() still 0.
}

TEST(Link, MeterTracksThroughput)
{
    sim::Simulator s;
    Link link(s, "l", 80e6, 0);
    link.transfer(1'000'000, nullptr);
    s.run();
    auto rates = link.meter().rates(sim::kSecond);
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_DOUBLE_EQ(rates[0], 1'000'000.0);
}

TEST(Link, UtilizationCountsOnlyElapsedBusyTime)
{
    sim::Simulator s;
    Link link(s, "l", 8e6 /* 1 MB/s */, 0);
    // 10 MB queued at t=0 keeps the serializer busy until t=10 s, but
    // at t=1 s only one second of that work has actually happened.
    for (int i = 0; i < 10; ++i)
        link.transfer(1'000'000, nullptr);
    s.schedule_at(sim::kSecond, [&] {
        EXPECT_NEAR(link.utilization(), 1.0, 1e-9);
    });
    s.schedule_at(10 * sim::kSecond, [&] {
        EXPECT_NEAR(link.utilization(), 1.0, 1e-9);
    });
    // Two idle seconds after drain: 10 s busy out of 12 elapsed.
    s.schedule_at(12 * sim::kSecond, [&] {
        EXPECT_NEAR(link.utilization(), 10.0 / 12.0, 1e-9);
    });
    s.run();
}

TEST(Link, UtilizationSurvivesIdleGaps)
{
    sim::Simulator s;
    Link link(s, "l", 8e6, 0);
    link.transfer(1'000'000, [] {});  // Busy [0, 1 s).
    s.schedule_at(3 * sim::kSecond, [&] {
        link.transfer(1'000'000, [] {});  // Busy [3 s, 4 s).
    });
    s.run();
    EXPECT_NEAR(link.utilization(), 2.0 / 4.0, 1e-9);
}

TEST(Link, MeterChargesAtSerializationStart)
{
    sim::Simulator s;
    Link link(s, "l", 8e6 /* 1 MB/s */, 0);
    // Both frames enqueue at t=0 but the second only crosses the wire
    // during [1 s, 2 s): the per-second rate must never exceed the
    // physical capacity.
    link.transfer(1'000'000, nullptr);
    link.transfer(1'000'000, nullptr);
    auto rates = link.meter().rates(2 * sim::kSecond);
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0], 1'000'000.0);
    EXPECT_DOUBLE_EQ(rates[1], 1'000'000.0);
}

TEST(RpcConfig, Presets)
{
    RpcConfig sw = RpcConfig::software_stack(2);
    RpcConfig hw = RpcConfig::fpga_offload(2);
    EXPECT_GT(sw.latency, hw.latency);
    EXPECT_LT(sw.throughput_rps, hw.throughput_rps);
    EXPECT_GT(sw.cpu_s_per_msg, 0.0);
    EXPECT_DOUBLE_EQ(hw.cpu_s_per_msg, 0.0);
    // Sec. 4.5: 12.4 Mrps per core, 2.1 us RTT -> 1.05 us per end.
    EXPECT_DOUBLE_EQ(hw.throughput_rps, 12'400'000.0);
    EXPECT_EQ(hw.latency, sim::from_micros(1.05));
}

TEST(RpcProcessor, ThroughputCap)
{
    sim::Simulator s;
    RpcProcessor p(s, RpcConfig::software_stack(1));
    // 600k rps -> 1000 messages take ~1.667 ms of service time.
    sim::Time last = 0;
    for (int i = 0; i < 1000; ++i)
        last = p.process(nullptr);
    EXPECT_GT(last, sim::from_micros(1600.0));
    EXPECT_EQ(p.messages(), 1000u);
    EXPECT_NEAR(p.cpu_seconds_used(), 1000.0 / 600'000.0, 1e-9);
}

TEST(RpcProcessor, MultiCoreParallelism)
{
    sim::Simulator s;
    RpcConfig cfg = RpcConfig::software_stack(4);
    RpcProcessor p(s, cfg);
    sim::Time t1 = p.process(nullptr);
    sim::Time t2 = p.process(nullptr);
    sim::Time t3 = p.process(nullptr);
    sim::Time t4 = p.process(nullptr);
    // Four cores: all four messages complete at the same time.
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t3, t4);
    EXPECT_EQ(t1, t4);
}

TEST(Topology, UplinkDeliversAndCounts)
{
    sim::Simulator s;
    TopologyConfig cfg;
    cfg.devices = 4;
    cfg.servers = 2;
    SwarmTopology topo(s, cfg);
    sim::Time delivered = 0;
    topo.send_uplink(0, 0, 1u << 20, [&](sim::Time t) { delivered = t; });
    s.run();
    EXPECT_GT(delivered, 0);
    EXPECT_EQ(topo.device_bytes(0), 1u << 20);
    EXPECT_EQ(topo.device_bytes(1), 0u);
    EXPECT_GT(topo.air_meter().total(), 0.0);
}

TEST(Topology, DownlinkAccountsDevice)
{
    sim::Simulator s;
    TopologyConfig cfg;
    cfg.devices = 2;
    cfg.servers = 1;
    SwarmTopology topo(s, cfg);
    bool done = false;
    topo.send_downlink(0, 1, 4096, [&](sim::Time) { done = true; });
    s.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(topo.device_bytes(1), 4096u);
}

TEST(Topology, ServerToServerIsFast)
{
    sim::Simulator s;
    TopologyConfig cfg;
    cfg.devices = 1;
    cfg.servers = 2;
    SwarmTopology topo(s, cfg);
    sim::Time lan = 0;
    topo.send_server_to_server(0, 1, 64 << 10,
                               [&](sim::Time t) { lan = t; });
    s.run();
    // Well under a millisecond on 10 GbE.
    EXPECT_LT(lan, sim::from_millis(1.0));
}

TEST(Topology, WirelessSlowerThanLan)
{
    sim::Simulator s;
    TopologyConfig cfg;
    cfg.devices = 1;
    cfg.servers = 2;
    SwarmTopology topo(s, cfg);
    sim::Time up = 0, lan = 0;
    topo.send_uplink(0, 0, 256 << 10, [&](sim::Time t) { up = t; });
    topo.send_server_to_server(0, 1, 256 << 10,
                               [&](sim::Time t) { lan = t; });
    s.run();
    EXPECT_GT(up, lan);
}

TEST(Topology, SharedRouterCongestion)
{
    sim::Simulator s;
    TopologyConfig cfg;
    cfg.devices = 16;
    cfg.routers = 2;
    cfg.servers = 12;
    SwarmTopology topo(s, cfg);
    // Every device pushes 4 MB at once: router backlog must form.
    std::vector<sim::Time> arrivals(16, 0);
    for (std::size_t d = 0; d < 16; ++d) {
        topo.send_uplink(d, d % 12, 4u << 20,
                         [&, d](sim::Time t) { arrivals[d] = t; });
    }
    s.run();
    sim::Time min_t = arrivals[0], max_t = arrivals[0];
    for (sim::Time t : arrivals) {
        min_t = std::min(min_t, t);
        max_t = std::max(max_t, t);
    }
    // Serialization on the shared medium spreads the arrivals.
    EXPECT_GT(max_t, min_t + sim::from_millis(50.0));
}

TEST(Topology, RpcOffloadFreesCloudCpu)
{
    sim::Simulator s1, s2;
    TopologyConfig sw;
    sw.devices = 2;
    sw.servers = 2;
    TopologyConfig hw = sw;
    hw.cloud_rpc_offload = true;
    SwarmTopology topo_sw(s1, sw);
    SwarmTopology topo_hw(s2, hw);
    for (int i = 0; i < 50; ++i) {
        topo_sw.send_uplink(0, 0, 1024, nullptr);
        topo_hw.send_uplink(0, 0, 1024, nullptr);
    }
    s1.run();
    s2.run();
    EXPECT_GT(topo_sw.cloud_rpc_cpu_seconds(), 0.0);
    EXPECT_DOUBLE_EQ(topo_hw.cloud_rpc_cpu_seconds(), 0.0);
}

TEST(Topology, WirelessLossRetransmits)
{
    sim::Simulator s;
    sim::Rng rng(77);
    TopologyConfig cfg;
    cfg.devices = 2;
    cfg.servers = 2;
    cfg.wireless_loss = 0.5;  // Extremely lossy link.
    SwarmTopology topo(s, cfg, &rng);
    int delivered = 0;
    for (int i = 0; i < 60; ++i) {
        topo.send_uplink(0, 0, 64 << 10,
                         [&](sim::Time) { ++delivered; });
    }
    s.run();
    EXPECT_EQ(delivered, 60);  // Everything eventually arrives.
    EXPECT_GT(topo.retransmissions(), 10u);
}

TEST(Topology, ExhaustedRetryBudgetDropsAndSignalsCaller)
{
    // A blackout (loss >= 1) burns every retry, then the frame must be
    // reported dropped — never silently delivered on the last attempt.
    sim::Simulator s;
    sim::Rng rng(7);
    TopologyConfig cfg;
    cfg.devices = 1;
    cfg.servers = 1;
    cfg.wireless_loss = 1.0;
    cfg.max_retransmits = 3;
    SwarmTopology topo(s, cfg, &rng);
    int callbacks = 0;
    sim::Time verdict = 0;
    topo.send_uplink(0, 0, 64 << 10, [&](sim::Time at) {
        ++callbacks;
        verdict = at;
    });
    s.run();
    EXPECT_EQ(callbacks, 1);
    EXPECT_EQ(verdict, kDropped);
    EXPECT_EQ(topo.frames_dropped(), 1u);
    EXPECT_EQ(topo.retransmissions(), 3u);
}

TEST(Topology, LossyFinalAttemptStillRollsTheDice)
{
    // Probabilistic loss with a tight budget: every frame must resolve
    // exactly once, as either a delivery or a counted drop.
    sim::Simulator s;
    sim::Rng rng(11);
    TopologyConfig cfg;
    cfg.devices = 1;
    cfg.servers = 1;
    cfg.wireless_loss = 0.9;
    cfg.max_retransmits = 1;
    SwarmTopology topo(s, cfg, &rng);
    const int frames = 50;
    int delivered = 0;
    int dropped = 0;
    for (int i = 0; i < frames; ++i) {
        topo.send_uplink(0, 0, 16 << 10, [&](sim::Time at) {
            at == kDropped ? ++dropped : ++delivered;
        });
    }
    s.run();
    EXPECT_EQ(delivered + dropped, frames);
    EXPECT_GT(dropped, 0);
    EXPECT_GT(delivered, 0);
    EXPECT_EQ(topo.frames_dropped(), static_cast<std::uint64_t>(dropped));
}

TEST(Topology, LossFreeByDefault)
{
    sim::Simulator s;
    sim::Rng rng(77);
    TopologyConfig cfg;
    cfg.devices = 1;
    cfg.servers = 1;
    SwarmTopology topo(s, cfg, &rng);
    topo.send_uplink(0, 0, 1 << 20, nullptr);
    s.run();
    EXPECT_EQ(topo.retransmissions(), 0u);
}

TEST(Topology, LossRaisesTailLatency)
{
    auto run_loss = [](double loss) {
        sim::Simulator s;
        sim::Rng rng(5);
        TopologyConfig cfg;
        cfg.devices = 2;
        cfg.servers = 2;
        cfg.wireless_loss = loss;
        SwarmTopology topo(s, cfg, &rng);
        sim::Summary lat;
        for (int i = 0; i < 100; ++i) {
            sim::Time t0 = s.now();
            bool done = false;
            topo.send_uplink(0, 0, 256 << 10, [&](sim::Time t) {
                lat.add(sim::to_seconds(t - t0));
                done = true;
            });
            s.run();
            EXPECT_TRUE(done);
        }
        return lat;
    };
    sim::Summary clean = run_loss(0.0);
    sim::Summary lossy = run_loss(0.10);
    EXPECT_GT(lossy.p99(), clean.p99() + 0.04);  // >= one 50 ms timeout.
    EXPECT_NEAR(lossy.median(), clean.median(), 0.01);
}

TEST(Topology, InfraScaleRaisesRouterCapacity)
{
    sim::Simulator s1, s2;
    TopologyConfig small;
    small.devices = 4;
    small.servers = 2;
    TopologyConfig scaled = small;
    scaled.infra_scale = 4.0;
    SwarmTopology a(s1, small);
    SwarmTopology b(s2, scaled);
    sim::Time ta = 0, tb = 0;
    // Large burst through the router: scaled infra finishes sooner.
    for (int i = 0; i < 8; ++i) {
        a.send_uplink(0, 0, 8u << 20, [&](sim::Time t) { ta = t; });
        b.send_uplink(0, 0, 8u << 20, [&](sim::Time t) { tb = t; });
    }
    s1.run();
    s2.run();
    EXPECT_GT(ta, 0);
    EXPECT_GT(tb, 0);
    EXPECT_LE(tb, ta);
}

TEST(Topology, FlowPoolRecyclesRecordsAcrossSerialTransfers)
{
    // Serial traffic: each flow retires before the next launches, so
    // the whole run reuses one pooled record from the first slab.
    sim::Simulator s;
    TopologyConfig cfg;
    cfg.devices = 4;
    cfg.servers = 2;
    SwarmTopology topo(s, cfg);
    for (int i = 0; i < 200; ++i) {
        bool done = false;
        topo.send_uplink(0, 0, 4096, [&](sim::Time) { done = true; });
        s.run();
        EXPECT_TRUE(done);
    }
    EXPECT_EQ(topo.flows().live(), 0u);
    EXPECT_EQ(topo.flows().slabs(), 1u);
    EXPECT_LE(topo.flows().high_water(), 2u);
}

TEST(Topology, FlowPoolHighWaterTracksABurst)
{
    // A burst of concurrent uplinks keeps that many records live at
    // once; every one of them must return to the freelist at the end.
    sim::Simulator s;
    TopologyConfig cfg;
    cfg.devices = 16;
    cfg.servers = 4;
    SwarmTopology topo(s, cfg);
    int done = 0;
    for (std::size_t d = 0; d < 16; ++d)
        topo.send_uplink(d, d % 4, 1u << 20, [&](sim::Time) { ++done; });
    s.run();
    EXPECT_EQ(done, 16);
    EXPECT_EQ(topo.flows().live(), 0u);
    EXPECT_GE(topo.flows().high_water(), 16u);
    EXPECT_EQ(topo.flows().slabs(), 1u);  // 16 < kSlabFlows.
}

}  // namespace
}  // namespace hivemind::net

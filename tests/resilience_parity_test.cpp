/**
 * @file
 * Resilience parity between the legacy single-kernel harness and the
 * sharded engine: the same chaos plan on the same seed must exercise
 * the same HA/degraded-mode machinery and land comparable
 * RecoveryMetrics on both engines, the per-ShardLink Gilbert-Elliott
 * burst chains must be shard-count invariant with the right dwell
 * statistics, and the HIVEMIND_LEGACY_ENGINE escape hatch must force
 * the old harness verbatim.
 *
 * Set HIVEMIND_SHARDS to fold an extra shard count into the
 * invariance sweeps (the CI HIVEMIND_SHARDS=4 leg does).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "fault/metrics.hpp"
#include "fault/oracle.hpp"
#include "fault/shard_chaos.hpp"
#include "platform/scenario.hpp"
#include "platform/sharded_scenario.hpp"
#include "sim/swarm_runtime.hpp"

namespace {

using namespace hivemind;

/** Shard counts exercised by the invariance sweeps. */
std::vector<int>
shard_counts()
{
    std::vector<int> counts = {1, 2, 4};
    if (auto extra = platform::env::shards()) {
        if (std::find(counts.begin(), counts.end(), *extra) ==
            counts.end())
            counts.push_back(*extra);
    }
    return counts;
}

/** A scenario that outlives its fault plan on both engines. */
platform::ScenarioConfig
chaos_scenario()
{
    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::StationaryItems;
    sc.field_size_m = 96.0;
    sc.targets = 50;  // More than one sweep finds: the cap ends the run.
    sc.time_cap = 45 * sim::kSecond;
    sc.faults.controller_crash(8 * sim::kSecond)
        .link_burst(20 * sim::kSecond, 10 * sim::kSecond, 0.9);
    return sc;
}

platform::DeploymentConfig
parity_deployment()
{
    platform::DeploymentConfig cfg;
    cfg.devices = 8;
    cfg.servers = 4;
    cfg.cores_per_server = 8;
    cfg.seed = 42;
    return cfg;
}

platform::RunMetrics
run_legacy(const platform::ScenarioConfig& sc,
           const platform::PlatformOptions& opt)
{
    platform::ScenarioConfig legacy = sc;
    legacy.shards = 1;
    // Auto resolves to the sharded engine for every kind now; the
    // parity baseline must ask for the legacy harness explicitly.
    legacy.engine = platform::EngineChoice::Legacy;
    return run_scenario(legacy, opt, parity_deployment());
}

platform::RunMetrics
run_sharded(const platform::ScenarioConfig& sc,
            const platform::PlatformOptions& opt, int shards)
{
    return platform::run_scenario_sharded(sc, opt, parity_deployment(),
                                          shards)
        .metrics;
}

// ---------------------------------------------------------------------
// Differential RecoveryMetrics parity (tentpole acceptance)
// ---------------------------------------------------------------------

TEST(ResilienceParity, ControllerHaRecoveryTracksLegacyOnSamePlanAndSeed)
{
    platform::ScenarioConfig sc = chaos_scenario();
    platform::RunMetrics legacy =
        run_legacy(sc, platform::PlatformOptions::hivemind());
    platform::RunMetrics sharded =
        run_sharded(sc, platform::PlatformOptions::hivemind(), 2);

    // Both engines ran the real HA stack: one crash, one failover.
    EXPECT_EQ(legacy.recovery.controller_crashes, 1u);
    EXPECT_EQ(sharded.recovery.controller_crashes, 1u);
    EXPECT_EQ(legacy.recovery.controller_failovers, 1u);
    EXPECT_EQ(sharded.recovery.controller_failovers, 1u);

    // Every injected-fault counter both engines model identically must
    // agree exactly — the same field list the fuzz oracles pin.
    std::vector<fault::MetricsDelta> exact = fault::metrics_diff(
        legacy.recovery, sharded.recovery,
        fault::OracleSuite::cross_engine_parity_fields());
    EXPECT_TRUE(exact.empty()) << fault::metrics_diff_string(exact);

    // Detection is the same election machinery on the same timing
    // grid: within the (election_timeout, +watchdog beat] deadline on
    // both, and within half a beat of each other.
    ASSERT_EQ(legacy.recovery.controller_mttd_s.count(), 1u);
    ASSERT_EQ(sharded.recovery.controller_mttd_s.count(), 1u);
    const double mttd_a = legacy.recovery.controller_mttd_s.mean();
    const double mttd_b = sharded.recovery.controller_mttd_s.mean();
    EXPECT_GE(mttd_b, 1.5 - 1e-9);
    EXPECT_LE(mttd_b, 2.0 + 1e-9);
    EXPECT_NEAR(mttd_a, mttd_b, 0.25);

    // Recovery = detection + checkpoint read + replay + reconcile;
    // checkpoint sizes and redrive counts differ slightly between the
    // engines' controller views, so compare with a loose bound.
    ASSERT_EQ(legacy.recovery.controller_mttr_s.count(), 1u);
    ASSERT_EQ(sharded.recovery.controller_mttr_s.count(), 1u);
    EXPECT_NEAR(legacy.recovery.controller_mttr_s.mean(),
                sharded.recovery.controller_mttr_s.mean(), 2.0);

    // The replayed checkpoint is at most one interval stale on both.
    ASSERT_EQ(legacy.recovery.checkpoint_age_s.count(), 1u);
    ASSERT_EQ(sharded.recovery.checkpoint_age_s.count(), 1u);
    EXPECT_NEAR(legacy.recovery.checkpoint_age_s.mean(),
                sharded.recovery.checkpoint_age_s.mean(), 5.0);

    // Degraded-mode edge autonomy ran on both: frames buffered during
    // the outage and drained after the failover.
    EXPECT_GT(legacy.recovery.frames_buffered_degraded, 0u);
    EXPECT_GT(sharded.recovery.frames_buffered_degraded, 0u);
    EXPECT_GT(legacy.recovery.buffered_frames_drained, 0u);
    EXPECT_GT(sharded.recovery.buffered_frames_drained, 0u);

    // The outage window is the same order of magnitude (detection +
    // recovery), and checkpoints kept landing on both.
    EXPECT_GT(legacy.recovery.controller_outage_s, 1.5);
    EXPECT_GT(sharded.recovery.controller_outage_s, 1.5);
    EXPECT_NEAR(legacy.recovery.controller_outage_s,
                sharded.recovery.controller_outage_s, 2.5);
    EXPECT_GE(legacy.recovery.checkpoints_taken, 2u);
    EXPECT_GE(sharded.recovery.checkpoints_taken, 2u);
    EXPECT_GT(sharded.recovery.checkpoint_bytes, 0u);

    // The Gilbert-Elliott burst produced real wireless loss on both
    // engines (different chains, same process: compare coarsely).
    EXPECT_EQ(legacy.recovery.link_burst_windows, 1u);
    EXPECT_EQ(sharded.recovery.link_burst_windows, 1u);
    EXPECT_GT(legacy.recovery.wireless_retransmissions, 0u);
    EXPECT_GT(sharded.recovery.wireless_retransmissions, 0u);
    const double retrans_ratio =
        static_cast<double>(sharded.recovery.wireless_retransmissions) /
        static_cast<double>(legacy.recovery.wireless_retransmissions);
    EXPECT_GT(retrans_ratio, 0.1);
    EXPECT_LT(retrans_ratio, 10.0);
}

// ---------------------------------------------------------------------
// DistributedEdge metrics-ack accounting (satellite)
// ---------------------------------------------------------------------

TEST(ResilienceParity, DistributedEdgeRadioBytesMatchLegacy)
{
    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::StationaryItems;
    sc.field_size_m = 48.0;
    sc.targets = 6;
    sc.time_cap = 60 * sim::kSecond;
    platform::RunMetrics legacy =
        run_legacy(sc, platform::PlatformOptions::distributed_edge());
    platform::RunMetrics sharded =
        run_sharded(sc, platform::PlatformOptions::distributed_edge(), 2);

    ASSERT_GT(legacy.radio_bytes_total, 0u);
    ASSERT_GT(sharded.radio_bytes_total, 0u);
    // The ack is 64 bytes against multi-hundred-byte results: if the
    // sharded engine dropped it from the ledger again, the per-task
    // byte cost would fall measurably below legacy.
    const double legacy_per_task =
        static_cast<double>(legacy.radio_bytes_total) /
        static_cast<double>(legacy.tasks_completed);
    const double sharded_per_task =
        static_cast<double>(sharded.radio_bytes_total) /
        static_cast<double>(sharded.tasks_completed);
    const double ratio = sharded_per_task / legacy_per_task;
    EXPECT_GT(ratio, 0.5) << "sharded radio ledger lost bytes vs legacy";
    EXPECT_LT(ratio, 2.0) << "sharded radio ledger double-counts";
}

// ---------------------------------------------------------------------
// Gilbert-Elliott burst chains on ShardLinks (satellite)
// ---------------------------------------------------------------------

/** One loss transition as recorded by the set_device_loss hook. */
struct Transition
{
    sim::Time at;
    double loss;
    bool operator==(const Transition& o) const
    {
        return at == o.at && loss == o.loss;
    }
};

/** Run route_plan's LinkBurst chains bare and record per-device. */
std::vector<std::vector<Transition>>
record_chains(int shards, std::size_t devices, const fault::FaultPlan& plan)
{
    sim::SwarmRuntime rt(shards);
    auto owner = [shards, devices](std::size_t d) {
        return static_cast<int>(d % static_cast<std::size_t>(shards));
    };
    for (std::size_t d = 0; d < devices; ++d) {
        // Self-channels so every shard has a finite lookahead.
        rt.declare_channel(owner(d), owner(d), sim::kMillisecond);
    }
    // Outer vector sized up front: each inner vector is only touched
    // from its device's owner shard, so recording is race-free.
    std::vector<std::vector<Transition>> rec(devices);
    fault::ShardChaosHooks hooks;
    hooks.devices = devices;
    hooks.burst_seed = 42;
    hooks.set_device_loss = [&rt, &rec, owner](std::size_t d, double loss) {
        rec[d].push_back({rt.shard(owner(d)).now(), loss});
    };
    fault::ShardChaosReport rep =
        fault::route_plan(rt, plan, owner, hooks, 0);
    EXPECT_EQ(rep.link_bursts, 1u);
    rt.run_until(120 * sim::kSecond);
    return rec;
}

TEST(GilbertElliott, ChainsAreShardInvariantWithExponentialDwells)
{
    constexpr std::size_t kDevices = 8;
    fault::FaultPlan plan;
    plan.link_burst(sim::kSecond, 60 * sim::kSecond, 0.9);

    std::vector<std::vector<Transition>> ref =
        record_chains(1, kDevices, plan);
    for (int n : shard_counts()) {
        std::vector<std::vector<Transition>> rec =
            record_chains(n, kDevices, plan);
        EXPECT_EQ(rec, ref) << "shards=" << n;
    }

    // Shape: the window opens in the good state, alternates, and the
    // final transition restores the configured loss (-1).
    std::vector<double> bad_dwells, good_dwells;
    for (std::size_t d = 0; d < kDevices; ++d) {
        const std::vector<Transition>& t = ref[d];
        ASSERT_GE(t.size(), 3u) << "device " << d;
        EXPECT_EQ(t.front().at, sim::kSecond);
        EXPECT_EQ(t.front().loss, 0.0);  // loss_good default.
        EXPECT_EQ(t.back().at, 61 * sim::kSecond);
        EXPECT_EQ(t.back().loss, -1.0);
        for (std::size_t i = 1; i + 1 < t.size(); ++i) {
            const bool entering_bad = (i % 2) == 1;
            EXPECT_EQ(t[i].loss, entering_bad ? 0.9 : 0.0)
                << "device " << d << " transition " << i;
            const double dwell = sim::to_seconds(t[i + 1].at - t[i].at);
            if (entering_bad)
                bad_dwells.push_back(dwell);
            else
                good_dwells.push_back(dwell);
        }
    }
    // Dwell statistics follow the two-state chain's means (2 s good,
    // 500 ms bad by default); loose 3-sigma-ish bounds for ~100+
    // exponential samples.
    ASSERT_GE(bad_dwells.size(), 30u);
    ASSERT_GE(good_dwells.size(), 30u);
    auto mean = [](const std::vector<double>& v) {
        double s = 0.0;
        for (double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    const double mean_bad = mean(bad_dwells);
    const double mean_good = mean(good_dwells);
    EXPECT_GT(mean_bad, 0.2);
    EXPECT_LT(mean_bad, 1.2);
    EXPECT_GT(mean_good, 1.0);
    EXPECT_LT(mean_good, 4.0);
    // The two states are actually distinct processes.
    EXPECT_GT(mean_good, 1.5 * mean_bad);
}

// ---------------------------------------------------------------------
// Sharded HA invariance with the full chaos plan (tentpole acceptance)
// ---------------------------------------------------------------------

TEST(ShardedHa, ChecksumInvariantWithFullChaosPlan)
{
    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::StationaryItems;
    sc.field_size_m = 48.0;
    sc.targets = 6;
    sc.time_cap = 120 * sim::kSecond;
    sc.faults.device_crash(3 * sim::kSecond, 2, 4 * sim::kSecond)
        .server_crash(4 * sim::kSecond, 1, 3 * sim::kSecond)
        .link_burst(5 * sim::kSecond, 6 * sim::kSecond, 0.9)
        .controller_crash(12 * sim::kSecond)
        .controller_partition(20 * sim::kSecond, 2 * sim::kSecond);
    platform::ShardedScenarioResult ref = platform::run_scenario_sharded(
        sc, platform::PlatformOptions::hivemind(), parity_deployment(), 1);

    // The real HA stack drove recovery: durable checkpoints on the
    // cloud-shard DataStore, election within the heartbeat deadline,
    // degraded-mode buffering during the outages.
    const fault::RecoveryMetrics& r = ref.metrics.recovery;
    EXPECT_EQ(r.controller_crashes, 1u);
    EXPECT_EQ(r.controller_partitions, 1u);
    EXPECT_EQ(r.controller_failovers, 1u);
    EXPECT_GE(r.checkpoints_taken, 2u);
    EXPECT_GT(r.checkpoint_bytes, 0u);
    ASSERT_EQ(r.controller_mttd_s.count(), 1u);
    EXPECT_GE(r.controller_mttd_s.mean(), 1.5 - 1e-9);
    EXPECT_LE(r.controller_mttd_s.mean(), 2.0 + 1e-9);
    EXPECT_GT(r.frames_buffered_degraded, 0u);
    EXPECT_GT(r.buffered_frames_drained, 0u);
    EXPECT_EQ(r.link_burst_windows, 1u);
    EXPECT_GT(r.wireless_retransmissions, 0u);

    for (int n : shard_counts()) {
        platform::ShardedScenarioResult run = platform::run_scenario_sharded(
            sc, platform::PlatformOptions::hivemind(), parity_deployment(),
            n);
        EXPECT_EQ(run.checksum, ref.checksum) << "shards=" << n;
        // The whole recovery ledger must be shard-invariant, not just a
        // couple of sentinel counters; on mismatch the diff printer
        // names every divergent field.
        EXPECT_TRUE(run.metrics.recovery == ref.metrics.recovery)
            << "shards=" << n << "\n"
            << fault::metrics_diff_string(ref.metrics.recovery,
                                          run.metrics.recovery);
    }
}

// ---------------------------------------------------------------------
// Rover parity + invariance (rover-port tentpole acceptance)
// ---------------------------------------------------------------------

/**
 * A rover mission under churn: two crash/rejoin windows that interrupt
 * legs mid-drive or mid-offload, plus a lossy burst over the sense
 * round trips. Course sized so both engines can still finish inside
 * the cap once the rejoins resume the interrupted legs.
 */
platform::ScenarioConfig
rover_chaos_scenario(platform::ScenarioKind kind)
{
    platform::ScenarioConfig sc;
    sc.kind = kind;
    sc.field_size_m = 48.0;
    sc.course_legs = 6;
    sc.maze_side = 5;
    sc.time_cap = 300 * sim::kSecond;
    sc.faults.device_crash(5 * sim::kSecond, 1, 6 * sim::kSecond)
        .device_crash(9 * sim::kSecond, 3, 4 * sim::kSecond)
        .link_burst(15 * sim::kSecond, 8 * sim::kSecond, 0.9);
    return sc;
}

TEST(ResilienceParity, RoverRecoveryTracksLegacyOnSamePlanAndSeed)
{
    for (platform::ScenarioKind kind :
         {platform::ScenarioKind::TreasureHunt,
          platform::ScenarioKind::RoverMaze}) {
        platform::ScenarioConfig sc = rover_chaos_scenario(kind);
        platform::RunMetrics legacy =
            run_legacy(sc, platform::PlatformOptions::hivemind());
        platform::RunMetrics sharded =
            run_sharded(sc, platform::PlatformOptions::hivemind(), 2);

        // Every injected-fault counter both engines model identically
        // must agree exactly — the same list the fuzz oracles pin.
        std::vector<fault::MetricsDelta> exact = fault::metrics_diff(
            legacy.recovery, sharded.recovery,
            fault::OracleSuite::cross_engine_parity_fields());
        EXPECT_TRUE(exact.empty())
            << platform::to_string(kind) << "\n"
            << fault::metrics_diff_string(exact);

        // The plan really ran on both engines.
        EXPECT_EQ(legacy.recovery.device_crashes, 2u)
            << platform::to_string(kind);
        EXPECT_EQ(legacy.recovery.device_rejoins, 2u);
        EXPECT_EQ(legacy.recovery.link_burst_windows, 1u);

        // Both engines finish the full course under churn: the rejoin
        // resumes the interrupted leg instead of stranding the rover.
        EXPECT_TRUE(legacy.completed) << platform::to_string(kind);
        EXPECT_TRUE(sharded.completed) << platform::to_string(kind);
        EXPECT_EQ(legacy.job_latency_s.count(), 8u);
        EXPECT_EQ(sharded.job_latency_s.count(), 8u);
    }
}

TEST(ShardedRover, ChecksumInvariantWithFullChaosPlan)
{
    for (platform::ScenarioKind kind :
         {platform::ScenarioKind::TreasureHunt,
          platform::ScenarioKind::RoverMaze}) {
        platform::ScenarioConfig sc = rover_chaos_scenario(kind);
        // Fold in the controller-side faults so the rover path runs
        // against the whole HA/degraded stack too.
        sc.faults.controller_crash(12 * sim::kSecond);
        platform::ShardedScenarioResult ref =
            platform::run_scenario_sharded(
                sc, platform::PlatformOptions::hivemind(),
                parity_deployment(), 1);
        EXPECT_EQ(ref.metrics.recovery.device_crashes, 2u)
            << platform::to_string(kind);
        EXPECT_EQ(ref.metrics.recovery.device_rejoins, 2u);
        EXPECT_EQ(ref.metrics.recovery.controller_crashes, 1u);
        EXPECT_EQ(ref.metrics.recovery.controller_failovers, 1u);

        for (int n : shard_counts()) {
            platform::ShardedScenarioResult run =
                platform::run_scenario_sharded(
                    sc, platform::PlatformOptions::hivemind(),
                    parity_deployment(), n);
            EXPECT_EQ(run.checksum, ref.checksum)
                << platform::to_string(kind) << " shards=" << n;
            EXPECT_TRUE(run.metrics.recovery == ref.metrics.recovery)
                << platform::to_string(kind) << " shards=" << n << "\n"
                << fault::metrics_diff_string(ref.metrics.recovery,
                                              run.metrics.recovery);
        }
    }
}

// ---------------------------------------------------------------------
// HIVEMIND_LEGACY_ENGINE escape hatch (PR 7 groundwork satellite)
// ---------------------------------------------------------------------

TEST(LegacyEscapeHatch, EnvForcesLegacyEngineDespiteShardsKnob)
{
    platform::ScenarioConfig sc;
    sc.kind = platform::ScenarioKind::StationaryItems;
    sc.field_size_m = 48.0;
    sc.targets = 6;
    sc.time_cap = 60 * sim::kSecond;

    platform::RunMetrics direct =
        run_legacy(sc, platform::PlatformOptions::hivemind());

    ASSERT_EQ(setenv("HIVEMIND_LEGACY_ENGINE", "1", 1), 0);
    platform::ScenarioConfig forced = sc;
    forced.shards = 4;  // Would route to the sharded engine without
                        // the escape hatch.
    platform::RunMetrics hatched = platform::run_scenario(
        forced, platform::PlatformOptions::hivemind(), parity_deployment());
    unsetenv("HIVEMIND_LEGACY_ENGINE");

    // The hatch replays the legacy engine bit-identically.
    EXPECT_DOUBLE_EQ(hatched.completion_s, direct.completion_s);
    EXPECT_EQ(hatched.tasks_completed, direct.tasks_completed);
    EXPECT_EQ(hatched.task_latency_s.count(), direct.task_latency_s.count());
    if (!direct.task_latency_s.empty()) {
        EXPECT_DOUBLE_EQ(hatched.task_latency_s.mean(),
                         direct.task_latency_s.mean());
    }
    EXPECT_EQ(hatched.radio_bytes_total, direct.radio_bytes_total);

    // And "0" (or unset) keeps the sharded routing.
    ASSERT_EQ(setenv("HIVEMIND_LEGACY_ENGINE", "0", 1), 0);
    platform::RunMetrics sharded = platform::run_scenario(
        forced, platform::PlatformOptions::hivemind(), parity_deployment());
    unsetenv("HIVEMIND_LEGACY_ENGINE");
    platform::RunMetrics sharded_direct =
        run_sharded(sc, platform::PlatformOptions::hivemind(), 4);
    EXPECT_DOUBLE_EQ(sharded.completion_s, sharded_direct.completion_s);
    EXPECT_EQ(sharded.tasks_completed, sharded_direct.tasks_completed);
}

}  // namespace
